"""Setuptools shim.

Kept alongside ``pyproject.toml`` so editable installs work on
environments without the ``wheel`` package (offline boxes):
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
