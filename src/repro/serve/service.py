"""The online match-serving facade.

:class:`MatchService` ties the serve layer together: a
:class:`~repro.serve.mutable.MutableIndex` for storage, a
generation-keyed :class:`~repro.serve.cache.ResultCache` in front of
it, and a micro-batching query path that routes :meth:`query_batch`
through the vectorized :meth:`VectorEngine.run_candidates
<repro.parallel.chunked.VectorEngine.run_candidates>` verifier instead
of per-query scalar DP.

Batching matters for the same reason the join layer is vectorized: one
query against an FBF index spends most of its time in Python dispatch
(signature, bucket walk, small DP calls), while a batch amortises that
into a handful of NumPy sweeps over packed arrays.  The right-side
engine state (codes, signatures) depends only on the index contents, so
it is prepared once per index *generation* and shared across batches
via the engine's ``share_right`` hook.

Observability plugs into the same :class:`~repro.obs.stats
.StatsCollector` funnel the batch joins use: every query is a
considered-pairs row, cache traffic and compactions land in the
collector's counters, and per-call latency lands in the tracer's
span summaries.  The funnel conservation invariant
(``pairs == rejected + survivors``) holds for served traffic exactly
as it does for batch joins — the batched path follows the planner's
generator-accounting pattern so candidates are never double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from time import perf_counter_ns

from repro.core.index import FBFIndex
from repro.core.passjoin import PassJoinIndex
from repro.core.signatures import SignatureScheme
from repro.obs.events import NULL_EVENTS, EventLog
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
)
from repro.obs.stats import NULL_COLLECTOR
from repro.parallel.chunked import VectorEngine
from repro.serve.cache import MISS, ResultCache
from repro.serve.mutable import MutableIndex
from repro.serve.shard import ShardedIndex
from repro.serve.snapshot import load_index, save_index

__all__ = ["MatchService", "QueryResult"]

#: verifiers sharing the OSA metric with the vectorized FPDL stack;
#: only these may take the batched path (``"myers"`` is Levenshtein —
#: a different metric — so it always verifies per query).
OSA_METRIC = ("osa", "osa-bitparallel")


@dataclass(frozen=True)
class QueryResult:
    """One answered query.

    ``ids`` are the index's stable external ids (sorted ascending) and
    ``matches`` the corresponding strings; ``cached`` tells whether the
    answer came from the result cache, and ``generation`` pins the
    index state it is valid for.
    """

    value: str
    method: str
    k: int
    ids: tuple[int, ...]
    matches: tuple[str, ...]
    cached: bool
    generation: int


class MatchService:
    """Online approximate-match serving over a mutable FBF index.

    Parameters
    ----------
    strings:
        Initial population (external ids ``0..n-1``).
    k:
        Default edit-distance threshold for queries.
    scheme, verifier:
        Index configuration (see :class:`~repro.core.index.FBFIndex`);
        ``verifier`` is also the default query method.
    cache_size:
        Result-cache bound (``0`` disables caching).
    compact_ratio:
        Tombstone fraction triggering automatic compaction (``None``
        disables it).
    collector:
        Optional :class:`~repro.obs.stats.StatsCollector` receiving the
        filter funnel, cache/compaction counters and latency spans.
    metrics:
        Live telemetry.  ``None`` (default) creates a fresh
        :class:`~repro.obs.metrics.MetricsRegistry`; pass an existing
        registry to share one, or ``False`` to disable recording
        entirely (the no-op registry).  The registry carries request
        latency histograms, cache and error counters, index/queue
        gauges and — with ``workers > 1`` — per-worker pool heartbeat
        gauges; :attr:`events` records lifecycle events (compaction,
        snapshot save/load, engine rebuild, worker respawn).  Exposed
        by the JSON-lines ``metrics`` op and the optional HTTP
        ``/metrics`` listener (:mod:`repro.serve.httpd`).
    workers:
        With ``workers > 1``, batched OSA queries fan out to the
        process-wide shared-memory pool
        (:func:`repro.parallel.shm.shared_pool`): the roster encodings
        are published once per index generation and each batch ships
        only its query-side arrays.  Answers are identical to the
        single-process path.
    shards:
        With ``shards > 1`` the service stores its population in a
        :class:`~repro.serve.shard.ShardedIndex` and answers batched
        queries by scatter/gather over the routed shards.  Combined
        with ``workers > 1`` each shard is pinned to a pool slot
        (*affinity* mode) whose worker holds the shard's published
        roster between batches; compaction or crash-respawn is healed
        by snapshot-style roster handoff, and :meth:`rebalance` moves
        shards between slots when the per-worker load counters drift.
        The default (``1``) keeps the original single-index behavior
        unchanged.
    candidates:
        Candidate generation for batched OSA queries.  ``"fbf"`` walks
        the FBF signature index (the original behavior);
        ``"pass-join"`` probes a per-generation
        :class:`~repro.core.passjoin.PassJoinIndex` over the same
        rows — exact for OSA, sub-quadratic, and ~7x faster on large
        rosters at ``k=1``; ``"auto"`` (default) picks PASS-JOIN when
        the roster has at least :attr:`PASSJOIN_MIN_ROSTER` rows and
        ``k <= 1``, mirroring the join planner's cost model.  Either
        way answers are identical — only the funnel's generator stage
        name changes.  The pooled *sharded* scatter keeps FBF (its
        workers generate candidates from the shared roster).
    """

    #: scatters between automatic rebalance checks (pooled sharded mode)
    REBALANCE_EVERY = 32

    #: below this roster size the PASS-JOIN build doesn't amortise over
    #: a batch — ``candidates="auto"`` stays on the FBF signature walk
    PASSJOIN_MIN_ROSTER = 50_000

    #: accepted values for the ``candidates`` constructor knob
    CANDIDATE_MODES = ("auto", "fbf", "pass-join")

    def __init__(
        self,
        strings: Sequence[str] = (),
        *,
        k: int = 1,
        scheme: SignatureScheme | str | None = None,
        verifier: str = "osa",
        cache_size: int = 1024,
        compact_ratio: float | None = 0.25,
        collector=None,
        workers: int | None = None,
        shards: int = 1,
        metrics: MetricsRegistry | bool | None = None,
        candidates: str = "auto",
        kernels: str = "auto",
    ):
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if candidates not in self.CANDIDATE_MODES:
            raise ValueError(
                f"unknown candidates mode {candidates!r}; "
                f"choose from {', '.join(self.CANDIDATE_MODES)}"
            )
        self.k = k
        self._candidates = candidates
        #: kernel tier for every engine this service builds and for the
        #: pooled workers ("auto" = compiled kernels when available)
        self._kernels = kernels
        if shards > 1:
            self._index = ShardedIndex(
                strings,
                n_shards=shards,
                scheme=scheme,
                verifier=verifier,
                compact_ratio=compact_ratio,
            )
        else:
            self._index = MutableIndex(
                strings,
                scheme=scheme,
                verifier=verifier,
                compact_ratio=compact_ratio,
            )
        self._cache = ResultCache(cache_size)
        self._obs = collector if collector else NULL_COLLECTOR
        # Prepared right-side engine, valid for exactly one generation.
        self._base_engine: VectorEngine | None = None
        self._base_generation = -1
        self._workers = workers
        # Shared-memory roster, also valid for exactly one generation.
        self._shm_roster = None
        self._shm_generation = -1
        self._init_sharding()
        self._init_telemetry(metrics)

    def _init_sharding(self) -> None:
        """Scatter-path state: per-shard engine/roster caches (each
        valid for exactly one shard generation), the shard -> pool-slot
        placement and the load window the rebalancer consumes."""
        n = getattr(self._index, "n_shards", 1)
        workers = max(1, int(self._workers or 1))
        #: (cache key, k) -> (generation, PASS-JOIN partition index)
        self._pj_indexes: dict[
            tuple[object, int], tuple[int, PassJoinIndex]
        ] = {}
        #: shard -> (generation, prepared right-side engine)
        self._shard_engines: dict[int, tuple[int, VectorEngine]] = {}
        #: shard -> (generation, published SharedSide)
        self._shard_rosters: dict[int, tuple[int, object]] = {}
        #: shard -> owning pool slot (affinity routing)
        self._placement: dict[int, int] = {
            si: si % workers for si in range(n)
        }
        #: shard -> filter pairs dispatched since the last rebalance
        self._shard_load: dict[int, int] = {}
        self._scatters = 0
        #: per-slot busy_ns at the last rebalance check
        self._slot_busy_base: list[float] = []

    @property
    def sharded(self) -> bool:
        return isinstance(self._index, ShardedIndex)

    def _init_telemetry(self, metrics: MetricsRegistry | bool | None) -> None:
        """Create (or adopt) the registry and pre-bind the hot-path
        instruments so recording is attribute access, not dict lookups."""
        if metrics is None:
            metrics = MetricsRegistry()
        elif metrics is False:
            metrics = NULL_METRICS
        self.metrics = metrics
        self.events = EventLog() if metrics else NULL_EVENTS
        self._last_metrics_snapshot: dict[str, object] | None = None
        m = metrics
        self._h_query = m.histogram(
            "serve_request_seconds",
            "request latency by op",
            labels={"op": "query"},
        )
        self._h_batch = m.histogram(
            "serve_request_seconds",
            "request latency by op",
            labels={"op": "query_batch"},
        )
        self._h_batch_size = m.histogram(
            "serve_batch_size",
            "values per query_batch call",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._c_queries = m.counter(
            "serve_queries_total", "individual queries answered"
        )
        self._c_cache_hits = m.counter(
            "serve_cache_hits_total", "result-cache hits"
        )
        self._c_cache_misses = m.counter(
            "serve_cache_misses_total", "result-cache misses"
        )
        self._c_errors = m.counter(
            "serve_request_errors_total", "requests answered with an error"
        )
        self._c_engine_rebuilds = m.counter(
            "serve_engine_rebuilds_total",
            "per-generation engine preparations (cache generation bumps)",
        )
        self._g_queue_depth = m.gauge(
            "serve_queue_depth",
            "uncached queries pending in the in-flight batch",
        )
        self._g_cache_entries = m.gauge(
            "serve_cache_entries", "live result-cache entries"
        )
        self._c_handoffs = self._c_rebalances = None
        if self.sharded:
            self._c_handoffs = m.counter(
                "shard_handoffs_total",
                "shard roster republishes adopted by workers",
            )
            self._c_rebalances = m.counter(
                "shard_rebalances_total",
                "shard-to-slot placement recomputations applied",
            )
        self._index.instrument(metrics, self.events)

    # -- telemetry -----------------------------------------------------------

    def refresh_metrics(self) -> None:
        """Bring scrape-time gauges current (index state, cache size,
        pool heartbeats).  Called by the exposition paths right before
        rendering, so a scrape always sees live state even if no
        request arrived since the last one."""
        if not self.metrics:
            return
        self._index._refresh_gauges()
        self._g_cache_entries.set(self._cache.stats()["size"])
        if self.sharded:
            for si, slot in self._placement.items():
                self.metrics.gauge(
                    "shard_worker",
                    "pool slot owning this shard",
                    {"shard": str(si)},
                ).set(slot)
        if self._workers and self._workers > 1:
            from repro.parallel import shm

            pool = shm._SHARED_POOLS.get(
                (max(1, int(self._workers or 0)), self.sharded)
            )
            if pool is not None and pool.started and not pool.closed:
                shm.publish_pool_metrics(pool, self.metrics, self.events)

    def metrics_snapshot(self) -> dict[str, object]:
        """Full JSON snapshot of the registry (gauges refreshed)."""
        self.refresh_metrics()
        snap = self.metrics.snapshot()
        self._last_metrics_snapshot = snap
        return snap

    def metrics_delta(self) -> dict[str, object]:
        """Counters/histograms since the previous snapshot or delta
        call on this service; gauges stay absolute."""
        previous = self._last_metrics_snapshot
        current = self.metrics_snapshot()
        return MetricsRegistry.delta(current, previous)

    def note_request_error(self, reason: str) -> None:
        """Tally one protocol-level failure (malformed JSON, unknown
        op, bad field) into the error counter, a per-reason counter and
        the collector's free-form counters — so bad traffic is visible
        instead of vanishing down the response stream."""
        self._c_errors.inc()
        self.metrics.counter(
            "serve_bad_requests_total",
            "protocol-level request failures by reason",
            labels={"reason": reason},
        ).inc()
        self._obs.add_counter(f"serve_error_{reason}")

    # -- introspection ------------------------------------------------------

    @property
    def index(self) -> MutableIndex:
        """The underlying mutable index (mutating it directly works —
        the cache is generation-keyed — but prefer the service methods,
        which also maintain the counters)."""
        return self._index

    @property
    def cache(self) -> ResultCache:
        return self._cache

    @property
    def generation(self) -> int:
        return self._index.generation

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, sid: int) -> bool:
        return sid in self._index

    def get(self, sid: int) -> str:
        """The live string behind an id (KeyError if removed)."""
        return self._index.get(sid)

    def items(self):
        """Live ``(id, string)`` pairs in id order."""
        return self._index.items()

    # -- mutation -----------------------------------------------------------

    def add(self, s: str) -> int:
        """Index one string; returns its stable id."""
        with self._obs.span("serve.add"):
            before = self._index.compactions
            sid = self._index.add(s)
            self._count_compactions(before)
        return sid

    def add_batch(self, strings: Sequence[str]) -> list[int]:
        """Index a batch; returns the assigned ids."""
        with self._obs.span("serve.add"):
            before = self._index.compactions
            sids = self._index.extend(strings)
            self._count_compactions(before)
        return sids

    def remove(self, sid: int) -> None:
        """Remove one entry by id (KeyError if unknown/already gone)."""
        with self._obs.span("serve.remove"):
            before = self._index.compactions
            self._index.remove(sid)
            self._count_compactions(before)

    def compact(self) -> int:
        """Force a compaction; returns the tombstones reclaimed."""
        with self._obs.span("serve.compact"):
            before = self._index.compactions
            reclaimed = self._index.compact()
            self._count_compactions(before)
        return reclaimed

    def _count_compactions(self, before: int) -> None:
        delta = self._index.compactions - before
        if delta:
            self._obs.add_counter("compactions", delta)

    # -- queries ------------------------------------------------------------

    def query(
        self, value: str, k: int | None = None, method: str | None = None
    ) -> QueryResult:
        """Answer one query (cache-aware, scalar index search)."""
        k, method = self._resolve(k, method)
        t0 = perf_counter_ns()
        with self._obs.span("serve.query"):
            hit = self._lookup(value, k, method)
            result = (
                hit if hit is not None
                else self._answer_scalar(value, k, method)
            )
        self._c_queries.inc()
        self._h_query.observe((perf_counter_ns() - t0) / 1e9)
        return result

    def query_batch(
        self,
        values: Sequence[str],
        k: int | None = None,
        method: str | None = None,
    ) -> list[QueryResult]:
        """Answer a batch of queries, one result per input (in order).

        Duplicate values are answered once; cached values skip the
        index entirely.  The remaining *pending* values go through the
        vectorized candidate/verify path when ``method`` shares the
        FPDL stack's OSA metric, and fall back to per-query scalar
        search otherwise (``"myers"`` is a different metric).
        """
        k, method = self._resolve(k, method)
        t0 = perf_counter_ns()
        with self._obs.span("serve.query_batch"):
            answered: dict[str, QueryResult] = {}
            pending: list[str] = []
            seen: set[str] = set()
            for value in values:
                if value in answered or value in seen:
                    continue
                hit = self._lookup(value, k, method)
                if hit is not None:
                    answered[value] = hit
                else:
                    seen.add(value)
                    pending.append(value)
            if pending:
                self._g_queue_depth.set(len(pending))
                if method in OSA_METRIC and self._index.rows:
                    for res in self._answer_batched(pending, k, method):
                        answered[res.value] = res
                else:
                    for value in pending:
                        answered[value] = self._answer_scalar(
                            value, k, method
                        )
                self._g_queue_depth.set(0)
        self._c_queries.inc(len(values))
        self._h_batch_size.observe(len(values))
        self._h_batch.observe((perf_counter_ns() - t0) / 1e9)
        return [answered[v] for v in values]

    def _resolve(
        self, k: int | None, method: str | None
    ) -> tuple[int, str]:
        k = self.k if k is None else k
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        method = self._index.verifier if method is None else method
        if method not in FBFIndex.VERIFIERS:
            raise ValueError(
                f"method must be one of {FBFIndex.VERIFIERS}, "
                f"got {method!r}"
            )
        return k, method

    def _lookup(
        self, value: str, k: int, method: str
    ) -> QueryResult | None:
        key = (value, method, k, self._index.generation)
        hit = self._cache.get(key)
        if hit is MISS:
            self._obs.add_counter("cache_misses")
            self._c_cache_misses.inc()
            return None
        self._obs.add_counter("cache_hits")
        self._c_cache_hits.inc()
        return replace(hit, cached=True)

    def _store(
        self, value: str, k: int, method: str, ids: Sequence[int]
    ) -> QueryResult:
        result = QueryResult(
            value=value,
            method=method,
            k=k,
            ids=tuple(ids),
            matches=tuple(self._index.get(sid) for sid in ids),
            cached=False,
            generation=self._index.generation,
        )
        self._cache.put((value, method, k, result.generation), result)
        return result

    def _answer_scalar(self, value: str, k: int, method: str) -> QueryResult:
        ids = self._index.search(
            value, k, collector=self._obs if self._obs else None,
            verifier=method,
        )
        return self._store(value, k, method, ids)

    # -- the batched path ---------------------------------------------------

    def _engine_for(self, queries: list[str], k: int) -> VectorEngine:
        """A per-batch engine sharing the per-generation right side."""
        gen = self._index.generation
        fbf = self._index.index
        if self._base_engine is None or self._base_generation != gen:
            with self._obs.span("serve.prepare_engine"):
                self._base_engine = VectorEngine(
                    [], fbf.strings, k=k, scheme_kind=fbf.scheme,
                    kernels=self._kernels,
                )
                self._base_generation = gen
                self._obs.add_counter("engine_rebuilds")
                self._c_engine_rebuilds.inc()
                self.events.emit(
                    "engine_rebuild", generation=gen, rows=len(fbf)
                )
        return VectorEngine(
            queries,
            fbf.strings,
            k=k,
            share_right=self._base_engine,
            record_matches=True,
            kernels=self._kernels,
        )

    def _roster_side(self):
        """The shared-memory roster for the current generation,
        publishing (and retiring the stale copy) on generation change."""
        from repro.parallel import shm

        gen = self._index.generation
        fbf = self._index.index
        if self._shm_roster is None or self._shm_generation != gen:
            with self._obs.span("serve.publish_roster"):
                if self._shm_roster is not None:
                    self._shm_roster.close()
                self._shm_roster = shm.SharedSide(
                    fbf.strings, scheme=fbf.scheme
                )
                self._shm_generation = gen
                self._obs.add_counter("shm_roster_publishes")
                self.events.emit(
                    "roster_publish",
                    generation=gen,
                    bytes=self._shm_roster.bytes_shared,
                )
        return self._shm_roster

    def _run_pooled(self, pending: list[str], k: int, blocks):
        """Fan one batch out to the shared worker pool: roster arrays
        come from the per-generation shared segments, the (small) query
        side ships inline with the tasks."""
        from repro.parallel import shm

        roster = self._roster_side()
        queries = shm.inline_side(pending, scheme=roster.scheme)
        pool = shm.shared_pool(self._workers)
        result = shm.run_hybrid(
            pool,
            queries,
            roster.arrays,
            "FPDL",
            blocks,
            scheme=roster.scheme,
            k=k,
            self_join=False,
            collector=self._obs if self._obs else None,
            record_matches=True,
            shared_source=roster,
            kernels=self._kernels,
        )
        if self.metrics:
            shm.publish_pool_metrics(pool, self.metrics, self.events)
        return result

    def _answer_batched(
        self, pending: list[str], k: int, method: str
    ) -> Iterator[QueryResult]:
        if self.sharded:
            return self._answer_batched_sharded(pending, k, method)
        return self._answer_batched_single(pending, k, method)

    # -- candidate generation for the batched paths --------------------------

    def _passjoin_for(self, key: object, mutable, k: int) -> PassJoinIndex:
        """``mutable``'s PASS-JOIN partition index for ``k``, rebuilt
        lazily whenever its generation moves (mirrors the engine and
        roster caches — one build amortised over every batch of a
        generation)."""
        gen = mutable.generation
        held = self._pj_indexes.get((key, k))
        if held is None or held[0] != gen:
            with self._obs.span("serve.build_passjoin"):
                idx = PassJoinIndex(mutable.index.strings, k=k)
            self._pj_indexes[(key, k)] = (gen, idx)
            self.events.emit(
                "passjoin_rebuild", generation=gen, rows=len(idx)
            )
        return self._pj_indexes[(key, k)][1]

    def _candidate_source(self, key: object, mutable, k: int):
        """(funnel stage name, ``blocks(values)`` callable) answering a
        batch against ``mutable``'s rows.

        Candidate rows refer to internal roster rows either way, so the
        downstream ``live_mask``/``external_ids`` gather is unchanged;
        the batched paths only run OSA verifiers, for which PASS-JOIN
        is exact.
        """
        use_pj = self._candidates == "pass-join" or (
            self._candidates == "auto"
            and k <= 1
            and len(mutable.index) >= self.PASSJOIN_MIN_ROSTER
        )
        if use_pj:
            pj = self._passjoin_for(key, mutable, k)
            return "pass-join", pj.candidate_blocks
        fbf = mutable.index
        return "fbf-index", lambda vals: fbf.candidate_blocks(vals, k)

    def _answer_batched_single(
        self, pending: list[str], k: int, method: str
    ) -> Iterator[QueryResult]:
        """Verify a batch of uncached queries in one vectorized pass.

        Follows the planner's generator-accounting pattern: the index's
        ``candidate_blocks`` generator runs *without* the collector (the
        backend counts every emitted candidate as a considered pair),
        then the generator stage is credited with the full product and
        the pairs it skipped — so the funnel conservation invariant
        holds with no double counting.
        """
        obs = self._obs
        stage, blocks = self._candidate_source("base", self._index, k)
        product = len(pending) * len(self._index.index)
        emitted = 0

        def counted() -> Iterator[tuple[np.ndarray, np.ndarray]]:
            nonlocal emitted
            for qi, ids in blocks(pending):
                emitted += len(qi)
                yield qi, ids

        if obs:
            obs.stage(stage)
        if self._workers and self._workers > 1:
            result = self._run_pooled(pending, k, counted())
        else:
            engine = self._engine_for(pending, k)
            result = engine.run_candidates(
                "FPDL", counted(), collector=obs if obs else None
            )
        if obs:
            obs.add_stage(stage, product, emitted)
            obs.add_pairs(product - emitted)
        per_query: dict[int, list[int]] = {
            qi: [] for qi in range(len(pending))
        }
        if result.matches:
            ii = np.fromiter(
                (m[0] for m in result.matches),
                dtype=np.int64,
                count=len(result.matches),
            )
            jj = np.fromiter(
                (m[1] for m in result.matches),
                dtype=np.int64,
                count=len(result.matches),
            )
            keep = self._index.live_mask(jj)
            ii, jj = ii[keep], jj[keep]
            ext = self._index.external_ids(jj)
            for qi, sid in zip(ii.tolist(), ext.tolist()):
                per_query[qi].append(sid)
        for qi, value in enumerate(pending):
            yield self._store(value, k, method, sorted(per_query[qi]))

    # -- the sharded scatter/gather path ------------------------------------

    def _shard_plan(
        self, pending: list[str], k: int
    ) -> dict[int, tuple[list[str], list[int]]]:
        """Scatter plan: shard -> (routed query values, their positions
        in ``pending``).  Routing is the PASS-JOIN length window, so a
        query visits at most ``min(2k+1, n_shards)`` shards; empty
        shards are skipped (no rows, no work, no funnel credit)."""
        plan: dict[int, tuple[list[str], list[int]]] = {}
        index = self._index
        for qi, value in enumerate(pending):
            for si in index.route(len(value), k):
                if not len(index.shards[si].index):
                    continue
                vals, idxs = plan.setdefault(si, ([], []))
                vals.append(value)
                idxs.append(qi)
        return plan

    def _gather(
        self,
        ii: np.ndarray,
        jj: np.ndarray,
        shard: MutableIndex,
        idxs: list[int],
        per_query: dict[int, list[int]],
    ) -> None:
        """Fold one shard's raw matches (local query row, internal
        roster row) into the global per-query answer lists.  Ids come
        out global for free — shards index global external ids."""
        keep = shard.live_mask(jj)
        ii, jj = ii[keep], jj[keep]
        ext = shard.external_ids(jj)
        for qi, sid in zip(ii.tolist(), ext.tolist()):
            per_query[idxs[qi]].append(sid)

    def _shard_engine(self, si: int, k: int) -> VectorEngine:
        """Shard ``si``'s prepared right-side engine, rebuilt when the
        shard's generation moves (mirrors :meth:`_engine_for`)."""
        shard = self._index.shards[si]
        gen = shard.generation
        held = self._shard_engines.get(si)
        if held is None or held[0] != gen:
            with self._obs.span("serve.prepare_engine"):
                base = VectorEngine(
                    [],
                    shard.index.strings,
                    k=k,
                    scheme_kind=shard.index.scheme,
                    kernels=self._kernels,
                )
                held = (gen, base)
                self._shard_engines[si] = held
                self._obs.add_counter("engine_rebuilds")
                self._c_engine_rebuilds.inc()
                self.events.emit(
                    "engine_rebuild",
                    generation=gen,
                    rows=len(shard.index),
                    shard=si,
                )
        return held[1]

    def _shard_roster(self, si: int):
        """Shard ``si``'s published shared-memory roster for its
        current generation.

        The handoff protocol: the *new* roster is published before the
        stale one is unlinked, and workers keep their resolved views of
        the old segments until a task stamped with the new generation
        swaps their held state — so compaction (or adopting a recovery
        blob) never leaves a window where the shard cannot answer.
        """
        from repro.parallel import shm

        shard = self._index.shards[si]
        gen = shard.generation
        held = self._shard_rosters.get(si)
        if held is None or held[0] != gen:
            with self._obs.span("serve.publish_roster"):
                side = shm.SharedSide(
                    shard.index.strings, scheme=shard.index.scheme
                )
                self._shard_rosters[si] = (gen, side)
                self._obs.add_counter("shm_roster_publishes")
                if held is not None:
                    held[1].close()
                    if self._c_handoffs is not None:
                        self._c_handoffs.inc()
                    self.events.emit(
                        "shard_handoff",
                        shard=si,
                        generation=gen,
                        bytes=side.bytes_shared,
                    )
                else:
                    self.events.emit(
                        "roster_publish",
                        shard=si,
                        generation=gen,
                        bytes=side.bytes_shared,
                    )
            held = self._shard_rosters[si]
        return held[1]

    def _scatter_inprocess(
        self,
        plan: dict[int, tuple[list[str], list[int]]],
        per_query: dict[int, list[int]],
        k: int,
    ) -> None:
        """Scatter over the routed shards in-process, one vectorized
        candidate/verify pass per shard; same generator-accounting
        pattern as the single-index path, credited once over the whole
        scatter so the funnel stays conserved."""
        obs = self._obs
        #: stage name -> [product, emitted]; per-shard source selection
        #: can mix generators (small shards stay on fbf), so each used
        #: generator is credited as its own conserved funnel stage.
        funnel: dict[str, list[int]] = {}
        for si in sorted(plan):
            vals, idxs = plan[si]
            shard = self._index.shards[si]
            fbf = shard.index
            stage, blocks = self._candidate_source(si, shard, k)
            if obs and stage not in funnel:
                obs.stage(stage)
            tallies = funnel.setdefault(stage, [0, 0])
            tallies[0] += len(vals) * len(fbf)
            block_emitted = [0]

            def counted(blocks=blocks, vals=vals, out=block_emitted):
                for qi, ids in blocks(vals):
                    out[0] += len(qi)
                    yield qi, ids

            engine = VectorEngine(
                vals,
                fbf.strings,
                k=k,
                share_right=self._shard_engine(si, k),
                record_matches=True,
                kernels=self._kernels,
            )
            result = engine.run_candidates(
                "FPDL", counted(), collector=obs if obs else None
            )
            tallies[1] += block_emitted[0]
            self._shard_load[si] = (
                self._shard_load.get(si, 0) + len(vals) * len(fbf)
            )
            if result.matches:
                ii = np.fromiter(
                    (m[0] for m in result.matches),
                    dtype=np.int64,
                    count=len(result.matches),
                )
                jj = np.fromiter(
                    (m[1] for m in result.matches),
                    dtype=np.int64,
                    count=len(result.matches),
                )
                self._gather(ii, jj, shard, idxs, per_query)
        if obs:
            for stage, (product, emitted) in funnel.items():
                obs.add_stage(stage, product, emitted)
                obs.add_pairs(product - emitted)

    def _scatter_pooled(
        self,
        plan: dict[int, tuple[list[str], list[int]]],
        per_query: dict[int, list[int]],
        k: int,
    ) -> None:
        """Scatter over the routed shards through the affinity pool:
        each shard's task is pinned to its placement slot, whose worker
        holds the shard's resolved roster between batches.  The dense
        worker sweep does its own funnel accounting (merged back by
        ``run_shard_scatter``), so no parent-side stage credit here."""
        from repro.parallel import shm

        obs = self._obs
        pool = shm.shared_pool(self._workers, affinity=True)
        calls: list[tuple] = []
        slots: list[int] = []
        order: list[int] = []
        for si in sorted(plan):
            vals, _idxs = plan[si]
            shard = self._index.shards[si]
            roster = self._shard_roster(si)
            queries = shm.inline_side(vals, scheme=roster.scheme)
            calls.append(
                shm.shard_query_call(
                    si,
                    shard.generation,
                    roster.arrays,
                    queries,
                    scheme=roster.scheme,
                    k=k,
                    collect=bool(obs),
                    kernels=self._kernels,
                )
            )
            slots.append(self._placement.get(si, si % pool.workers))
            order.append(si)
            self._shard_load[si] = (
                self._shard_load.get(si, 0) + len(vals) * len(shard.index)
            )
        outs = shm.run_shard_scatter(
            pool, calls, slots=slots, collector=obs if obs else None
        )
        for si, out in zip(order, outs):
            shard = self._index.shards[si]
            idxs = plan[si][1]
            if out["mi"]:
                ii = np.concatenate(out["mi"])
                jj = np.concatenate(out["mj"])
                self._gather(ii, jj, shard, idxs, per_query)
        if self.metrics:
            shm.publish_pool_metrics(pool, self.metrics, self.events)
        self._maybe_rebalance(pool)

    def _answer_batched_sharded(
        self, pending: list[str], k: int, method: str
    ) -> Iterator[QueryResult]:
        """Scatter a batch of uncached queries over the routed shards,
        gather the per-shard matches, merge per query.  Identical
        answers to the single-index batched path (property-tested by
        the sharded equivalence suite)."""
        plan = self._shard_plan(pending, k)
        per_query: dict[int, list[int]] = {
            qi: [] for qi in range(len(pending))
        }
        if plan:
            for si in plan:
                self.metrics.counter(
                    "shard_queries_total",
                    "queries routed to this shard",
                    labels={"shard": str(si)},
                ).inc(len(plan[si][0]))
            if self._workers and self._workers > 1:
                self._scatter_pooled(plan, per_query, k)
            else:
                self._scatter_inprocess(plan, per_query, k)
        for qi, value in enumerate(pending):
            yield self._store(value, k, method, sorted(per_query[qi]))

    # -- rebalancing --------------------------------------------------------

    def _maybe_rebalance(self, pool) -> None:
        """Every ``REBALANCE_EVERY`` pooled scatters, read the per-slot
        ``busy_ns`` deltas from the pool's heartbeat counters and
        trigger a :meth:`rebalance` when the busiest slot has done at
        least twice the work of the idlest since the last check."""
        self._scatters += 1
        if self._scatters % self.REBALANCE_EVERY:
            return
        busy: list[float] = []
        for pid in pool.slot_pids():
            ws = pool.worker_stats.get(pid) if pid is not None else None
            busy.append(float(ws["busy_ns"]) if ws else 0.0)
        base = self._slot_busy_base
        self._slot_busy_base = busy
        delta = [
            b - (base[i] if i < len(base) else 0.0)
            for i, b in enumerate(busy)
        ]
        if len(delta) < 2:
            return
        hi, lo = max(delta), min(delta)
        if hi > 0 and hi >= 2.0 * max(lo, 1.0):
            self.rebalance()

    def rebalance(self) -> dict[int, int]:
        """Recompute the shard -> pool-slot placement by greedy LPT
        over the load window (filter pairs dispatched per shard since
        the last rebalance) and return the new placement.

        Ties prefer the default ``si % workers`` slot, so an idle
        service never churns its placement.  An applied change emits a
        ``shard_rebalance`` event and bumps
        ``shard_rebalances_total``; the load window resets either way.
        No-op (returns the identity placement) for single-shard or
        in-process services.
        """
        if not self.sharded or not self._workers or self._workers <= 1:
            return dict(self._placement)
        workers = max(1, int(self._workers))
        loads = sorted(
            (
                (self._shard_load.get(si, 0), si)
                for si in range(self._index.n_shards)
            ),
            key=lambda t: (-t[0], t[1]),
        )
        slot_load = [0] * workers
        placement: dict[int, int] = {}
        for load, si in loads:
            slot = min(
                range(workers),
                key=lambda w: (slot_load[w], (w - si) % workers),
            )
            placement[si] = slot
            slot_load[slot] += load
        moved = {
            si: slot
            for si, slot in placement.items()
            if self._placement.get(si) != slot
        }
        self._shard_load = {}
        if moved:
            self._placement = placement
            if self._c_rebalances is not None:
                self._c_rebalances.inc()
            self._obs.add_counter("shard_rebalances")
            self.events.emit(
                "shard_rebalance",
                moved={str(si): slot for si, slot in moved.items()},
                placement={
                    str(si): slot for si, slot in placement.items()
                },
            )
        return dict(self._placement)

    # -- stats and snapshots ------------------------------------------------

    def stats(self) -> dict[str, object]:
        """JSON-ready service state snapshot (size, cache, counters).

        ``latency`` quantiles come from the registry's fixed-bucket
        histograms, not a sliding sample window — they describe the
        whole run however long it has been, with error bounded by the
        bucket ratio (~1.78x by default).
        """
        index = self._index
        out: dict[str, object] = {
            "size": len(index),
            "rows": index.rows,
            "tombstones": index.tombstones,
            "generation": index.generation,
            "compactions": index.compactions,
            "k": self.k,
            "scheme": index.scheme.name,
            "verifier": index.verifier,
            "cache": self._cache.stats(),
        }
        if self.sharded:
            out["shards"] = [
                {
                    "size": len(shard),
                    "rows": shard.rows,
                    "tombstones": shard.tombstones,
                    "generation": shard.generation,
                    "slot": self._placement.get(si),
                }
                for si, shard in enumerate(index.shards)
            ]
        if self.metrics:
            out["latency"] = {
                "query": _latency_ms(self._h_query),
                "query_batch": _latency_ms(self._h_batch),
            }
            out["events"] = self.events.total
        return out

    def save(self, path: str | Path) -> Path:
        """Snapshot the index (plus service config) to one file."""
        with self._obs.span("serve.snapshot"):
            saved = save_index(
                self._index,
                path,
                meta={"k": self.k, "cache_size": self._cache.maxsize},
            )
        self.events.emit(
            "snapshot_save",
            path=str(saved),
            size=len(self._index),
            generation=self._index.generation,
        )
        return saved

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        cache_size: int | None = None,
        collector=None,
        workers: int | None = None,
        metrics: MetricsRegistry | bool | None = None,
    ) -> "MatchService":
        """Rebuild a warm service from a snapshot (no re-indexing).

        ``cache_size`` overrides the saved setting; the cache itself
        always starts empty.
        """
        index, header = load_index(path)
        meta = header.get("meta", {})
        svc = cls.__new__(cls)
        svc.k = int(meta.get("k", 1))
        svc._index = index
        svc._cache = ResultCache(
            int(meta.get("cache_size", 1024))
            if cache_size is None
            else cache_size
        )
        svc._obs = collector if collector else NULL_COLLECTOR
        svc._base_engine = None
        svc._base_generation = -1
        svc._workers = workers
        svc._candidates = "auto"
        svc._shm_roster = None
        svc._shm_generation = -1
        svc._init_sharding()
        svc._init_telemetry(metrics)
        svc.events.emit(
            "snapshot_load",
            path=str(path),
            size=len(index),
            generation=index.generation,
        )
        return svc


def _latency_ms(hist) -> dict[str, float]:
    """ms-unit latency summary from a seconds-unit histogram."""
    s = hist.summary()
    return {
        "count": s["count"],
        "mean_ms": s["mean"] * 1e3,
        "p50_ms": s["p50"] * 1e3,
        "p95_ms": s["p95"] * 1e3,
        "p99_ms": s["p99"] * 1e3,
    }
