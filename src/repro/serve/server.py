"""A JSON-lines request loop over :class:`MatchService`.

The ``repro-fbf serve`` subcommand speaks this protocol on
stdin/stdout: one JSON object per line in, one JSON object per line
out, in request order.  It is deliberately transport-free — the loop
reads any iterable of lines and writes any file-like object — so tests
drive it with lists and ``io.StringIO``, and a real deployment can wrap
it in whatever socket framing it likes.

Requests are ``{"op": ..., ...}``; every response carries ``"ok"``
(and echoes ``"op"``), with errors reported per request
(``{"ok": false, "error": ...}``) rather than killing the loop — a bad
line from one client must not take the service down.

Ops::

    {"op": "query",  "value": "SMITH", "k": 1, "method": "osa"}
    {"op": "query_batch", "values": ["SMITH", "JONES"]}
    {"op": "add",    "value": "SMITH"}      (or "values": [...])
    {"op": "remove", "id": 7}
    {"op": "compact"}
    {"op": "rebalance"}                     (recompute the shard->slot
                                             placement; identity for a
                                             single-shard service)
    {"op": "stats"}
    {"op": "metrics"}                       (live telemetry snapshot;
                                             "delta": true for the
                                             since-last-poll view,
                                             "format": "prometheus" for
                                             the text exposition,
                                             "events": N to include the
                                             last N lifecycle events)
    {"op": "snapshot", "path": "warm.npz"}
    {"op": "shutdown"}

Protocol failures are telemetry, not just responses: malformed JSON
lines and unknown ops are tallied into the service's metrics registry
(``serve_bad_requests_total{reason=...}``) and collector counters, and
the ``shutdown`` acknowledgment carries the loop's ``served`` and
``errors`` totals so a draining client sees the final account.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.serve.service import MatchService, QueryResult

__all__ = ["MAX_REQUEST_BYTES", "handle", "query_payload", "serve_lines"]


def query_payload(res: QueryResult) -> dict[str, object]:
    return {
        "value": res.value,
        "k": res.k,
        "method": res.method,
        "ids": list(res.ids),
        "matches": list(res.matches),
        "cached": res.cached,
        "generation": res.generation,
    }


def handle(service: MatchService, request: dict) -> dict[str, object]:
    """Execute one request dict; returns the response dict.

    Raises nothing: every failure — unknown op, missing field, index
    error — comes back as ``{"ok": False, "error": ...}``.
    """
    op = request.get("op")
    try:
        if op == "query":
            res = service.query(
                str(request["value"]),
                k=request.get("k"),
                method=request.get("method"),
            )
            return {"ok": True, "op": op, **query_payload(res)}
        if op == "query_batch":
            results = service.query_batch(
                [str(v) for v in request["values"]],
                k=request.get("k"),
                method=request.get("method"),
            )
            return {
                "ok": True,
                "op": op,
                "results": [query_payload(r) for r in results],
            }
        if op == "add":
            if "values" in request:
                ids = service.add_batch([str(v) for v in request["values"]])
                return {"ok": True, "op": op, "ids": ids}
            return {
                "ok": True,
                "op": op,
                "id": service.add(str(request["value"])),
            }
        if op == "remove":
            sid = int(request["id"])
            try:
                service.remove(sid)
            except KeyError as exc:
                service.note_request_error("unknown_id")
                return {"ok": False, "op": op, "error": str(exc.args[0])}
            return {"ok": True, "op": op, "id": sid}
        if op == "compact":
            return {"ok": True, "op": op, "reclaimed": service.compact()}
        if op == "rebalance":
            placement = service.rebalance()
            return {
                "ok": True,
                "op": op,
                "placement": {str(si): slot for si, slot in placement.items()},
            }
        if op == "stats":
            return {"ok": True, "op": op, "stats": service.stats()}
        if op == "metrics":
            if request.get("format") == "prometheus":
                service.refresh_metrics()
                return {
                    "ok": True,
                    "op": op,
                    "format": "prometheus",
                    "text": service.metrics.render_prometheus(),
                }
            payload = (
                service.metrics_delta()
                if request.get("delta")
                else service.metrics_snapshot()
            )
            response: dict[str, object] = {
                "ok": True,
                "op": op,
                "metrics": payload,
            }
            if "events" in request:
                response["events"] = service.events.tail(
                    int(request["events"])
                )
            return response
        if op == "snapshot":
            path = service.save(str(request["path"]))
            return {"ok": True, "op": op, "path": str(path)}
        if op == "shutdown":
            return {"ok": True, "op": op, "shutdown": True}
        service.note_request_error("unknown_op")
        return {"ok": False, "error": f"unknown op {op!r}"}
    except KeyError as exc:
        service.note_request_error("missing_field")
        return {"ok": False, "op": op, "error": f"missing field {exc}"}
    except (ValueError, TypeError) as exc:
        service.note_request_error("bad_value")
        return {"ok": False, "op": op, "error": str(exc)}


#: default per-request size bound for the line protocols (bytes)
MAX_REQUEST_BYTES = 1 << 20


def serve_lines(
    service: MatchService,
    lines: Iterable[str],
    out: IO[str],
    *,
    max_request_bytes: int = MAX_REQUEST_BYTES,
) -> int:
    """Run the request loop; returns the number of requests served.

    Stops at end of input or after a ``shutdown`` op (which is
    acknowledged — including the loop's ``served``/``errors`` totals —
    before the loop exits).  Blank lines are skipped; unparseable lines
    produce an error response, bump the malformed-request counters and
    the loop continues.  Lines longer than ``max_request_bytes`` are
    rejected the same way — a structured error response and an
    ``oversized`` tally — without ever being parsed, so one runaway
    client cannot balloon the service's memory.
    """
    served = 0
    errors = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        if len(line.encode("utf-8", "surrogateescape")) > max_request_bytes:
            service.note_request_error("oversized")
            response: dict[str, object] = {
                "ok": False,
                "error": (
                    f"request exceeds {max_request_bytes} bytes"
                ),
            }
            served += 1
            errors += 1
            out.write(json.dumps(response) + "\n")
            out.flush()
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            service.note_request_error("bad_json")
            response = {
                "ok": False,
                "error": f"bad json: {exc}",
            }
        else:
            if not isinstance(request, dict):
                service.note_request_error("not_an_object")
                response = {"ok": False, "error": "request must be an object"}
            else:
                response = handle(service, request)
        served += 1
        if not response.get("ok"):
            errors += 1
        if response.get("shutdown"):
            response["served"] = served
            response["errors"] = errors
        out.write(json.dumps(response) + "\n")
        out.flush()
        if response.get("shutdown"):
            break
    return served
