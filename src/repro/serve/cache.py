"""Bounded LRU cache for query results.

Online match traffic is heavily repetitive — the same client re-keys
the same (possibly typo-ed) value day after day — so a small LRU in
front of the index absorbs a large share of queries.  Correctness
under mutation comes from the *key*, not from explicit invalidation:
entries are keyed on ``(value, method, k, generation)``, and every
mutation bumps the index generation, so a stale entry can never be
returned — it simply stops being looked up and ages out of the LRU
window.

:class:`ResultCache` is deliberately dumb: an ``OrderedDict`` with a
size bound and hit/miss/eviction counters.  ``maxsize=0`` disables
caching entirely (every ``get`` is a miss, ``put`` is a no-op), which
is what the cache-off arm of the serving ablation runs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["ResultCache", "MISS"]

#: sentinel distinguishing "not cached" from a cached empty result
MISS = object()


class ResultCache:
    """A bounded LRU mapping with hit/miss/eviction accounting."""

    def __init__(self, maxsize: int = 1024):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable):
        """The cached value, or :data:`MISS`; counts and refreshes LRU."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return MISS
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh one entry, evicting the least recent overflow."""
        if self.maxsize == 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, object]:
        """JSON-ready counter snapshot."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
