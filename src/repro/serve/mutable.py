"""A long-lived, mutable view over the FBF signature index.

:class:`repro.core.index.FBFIndex` is append-only: ids are insertion
positions and nothing ever leaves the packed arrays.  That is the right
shape for a batch join, but an online service must also *forget* —
clients move away, records get merged, bad loads get rolled back.
:class:`MutableIndex` adds removal without giving up the index's packed
vectorized search path:

* **stable handles** — every added string gets a monotonically
  increasing external id that survives compaction (the wrapped index's
  positional ids are an internal detail);
* **tombstones** — :meth:`remove` only marks the internal row dead;
  searches filter tombstoned rows out of the wrapped index's answers,
  so removal is O(1);
* **threshold-triggered compaction** — once the dead fraction passes
  ``compact_ratio`` the wrapped index is rebuilt from the live strings,
  restoring the no-wasted-work guarantee.  Compaction bumps
  :attr:`generation` like any other mutation, so anything cached
  against the index invalidates.

The correctness contract — property-tested by the stateful suite in
``tests/serve/test_mutable_equivalence.py`` — is *rebuild equivalence*:
after any interleaving of adds, removes, compactions and snapshot
round-trips, every query answers exactly like a fresh index built from
the live entries.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.index import FBFIndex
from repro.core.signatures import SignatureScheme
from repro.obs.events import NULL_EVENTS
from repro.obs.metrics import NULL_METRICS

__all__ = ["MutableIndex"]


class MutableIndex:
    """An FBF index supporting add/extend/remove with stable ids.

    Parameters
    ----------
    strings:
        Initial contents; they receive ids ``0..n-1``.
    scheme, verifier:
        Passed through to the wrapped :class:`FBFIndex`.
    compact_ratio:
        Tombstone fraction above which a mutation triggers an automatic
        :meth:`compact` (``None`` disables auto-compaction; explicit
        calls still work).
    """

    def __init__(
        self,
        strings: Sequence[str] = (),
        *,
        scheme: SignatureScheme | str | None = None,
        verifier: str = "osa",
        compact_ratio: float | None = 0.25,
    ):
        if compact_ratio is not None and not 0.0 < compact_ratio <= 1.0:
            raise ValueError(
                f"compact_ratio must be in (0, 1], got {compact_ratio}"
            )
        self._fbf = FBFIndex(strings, scheme=scheme, verifier=verifier)
        n = len(self._fbf)
        #: internal position -> external id (monotone, so mapped search
        #: results stay sorted)
        self._ext_ids: list[int] = list(range(n))
        #: live external id -> internal position
        self._live: dict[int, int] = {i: i for i in range(n)}
        #: tombstoned internal positions
        self._dead: set[int] = set()
        self._next_id = n
        self.compact_ratio = compact_ratio
        #: bumped by every mutation (add/remove/compact); caches keyed
        #: on it invalidate automatically
        self.generation = 0
        #: total compactions performed (auto + explicit)
        self.compactions = 0
        self._reset_telemetry()

    # -- telemetry -----------------------------------------------------------

    def _reset_telemetry(self) -> None:
        """Detach instrumentation.  Also the initializer for instances
        built around ``__init__`` (``snapshot.load_index``)."""
        self._metrics = NULL_METRICS
        self._events = NULL_EVENTS
        self._g_size = self._g_rows = None
        self._g_tombstone_ratio = self._g_generation = None
        self._c_compactions = None

    def instrument(self, metrics, events=None) -> None:
        """Report live-state gauges and lifecycle events into a
        :class:`~repro.obs.metrics.MetricsRegistry` (and optionally an
        :class:`~repro.obs.events.EventLog`).

        Gauges — ``index_size`` (live entries), ``index_rows`` (packed
        rows incl. tombstones), ``index_tombstone_ratio`` and
        ``index_generation`` — are refreshed after every mutation;
        compactions bump ``index_compactions_total`` and emit a
        ``compaction`` event.  Idempotent; call again to re-point at a
        different registry.
        """
        self._metrics = metrics if metrics else NULL_METRICS
        self._events = events if events else NULL_EVENTS
        m = self._metrics
        self._g_size = m.gauge("index_size", "live (non-tombstoned) entries")
        self._g_rows = m.gauge(
            "index_rows", "packed index rows including tombstones"
        )
        self._g_tombstone_ratio = m.gauge(
            "index_tombstone_ratio", "dead fraction of packed rows"
        )
        self._g_generation = m.gauge(
            "index_generation", "mutation counter (caches key on it)"
        )
        self._c_compactions = m.counter(
            "index_compactions_total", "compactions performed (auto + explicit)"
        )
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        if self._g_size is None:
            return
        self._g_size.set(len(self._live))
        self._g_rows.set(len(self._fbf))
        self._g_tombstone_ratio.set(self.tombstone_ratio)
        self._g_generation.set(self.generation)

    # -- introspection ------------------------------------------------------

    @property
    def scheme(self) -> SignatureScheme:
        return self._fbf.scheme

    @property
    def verifier(self) -> str:
        return self._fbf.verifier

    @property
    def index(self) -> FBFIndex:
        """The wrapped (append-only) index — read-only: it still holds
        tombstoned rows, and its ids are internal positions, not the
        stable external ids this class hands out."""
        return self._fbf

    @property
    def tombstones(self) -> int:
        """Number of tombstoned (removed but not yet compacted) rows."""
        return len(self._dead)

    @property
    def rows(self) -> int:
        """Packed index rows, tombstones included (what a sweep scans)."""
        return len(self._fbf)

    @property
    def tombstone_ratio(self) -> float:
        """Dead fraction of the wrapped index's rows."""
        total = len(self._fbf)
        return len(self._dead) / total if total else 0.0

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, sid: int) -> bool:
        return sid in self._live

    def get(self, sid: int) -> str:
        """The live string behind an external id (KeyError if removed)."""
        return self._fbf[self._live[sid]]

    def items(self) -> Iterator[tuple[int, str]]:
        """Live ``(id, string)`` pairs in id order."""
        for sid in sorted(self._live):
            yield sid, self._fbf[self._live[sid]]

    # -- mutation -----------------------------------------------------------

    def add(self, s: str, *, sid: int | None = None) -> int:
        """Index one string; returns its stable external id.

        ``sid`` lets an owner that allocates ids globally (the sharded
        index places one monotone id space across many shards) assign
        the external id explicitly; it must not collide with any id
        this index has ever handed out, so the monotone-ids invariant —
        and with it the sortedness of mapped search results — survives.
        """
        if sid is None:
            sid = self._next_id
        elif sid < self._next_id:
            raise ValueError(
                f"explicit id {sid} is not above the high-water mark "
                f"{self._next_id - 1}"
            )
        internal = self._fbf.add(s)
        self._next_id = sid + 1
        self._ext_ids.append(sid)
        self._live[sid] = internal
        self.generation += 1
        self._refresh_gauges()
        return sid

    def extend(self, strings: Sequence[str]) -> list[int]:
        """Index a batch; returns the assigned external ids."""
        return [self.add(s) for s in strings]

    def remove(self, sid: int) -> None:
        """Tombstone one entry by external id.

        Raises ``KeyError`` for unknown or already-removed ids.  May
        trigger an automatic :meth:`compact` (see ``compact_ratio``).
        """
        try:
            internal = self._live.pop(sid)
        except KeyError:
            raise KeyError(f"no live entry with id {sid}") from None
        self._dead.add(internal)
        self.generation += 1
        self._refresh_gauges()
        if (
            self.compact_ratio is not None
            and self.tombstone_ratio >= self.compact_ratio
        ):
            self.compact()

    def compact(self) -> int:
        """Rebuild the wrapped index from the live entries.

        Returns the number of tombstoned rows reclaimed.  External ids
        are preserved; internal positions are reassigned in id order.
        """
        reclaimed = len(self._dead)
        live = sorted(self._live)
        strings = [self._fbf[self._live[sid]] for sid in live]
        self._fbf = FBFIndex(
            strings, scheme=self._fbf.scheme, verifier=self._fbf.verifier
        )
        self._ext_ids = live
        self._live = {sid: pos for pos, sid in enumerate(live)}
        self._dead.clear()
        self.compactions += 1
        self.generation += 1
        if self._c_compactions is not None:
            self._c_compactions.inc()
        self._refresh_gauges()
        self._events.emit(
            "compaction",
            reclaimed=reclaimed,
            rows=len(self._fbf),
            generation=self.generation,
        )
        return reclaimed

    # -- search -------------------------------------------------------------

    def search(
        self,
        query: str,
        k: int = 1,
        *,
        collector=None,
        verifier: str | None = None,
    ) -> list[int]:
        """External ids of live entries within ``k`` edits of ``query``.

        Same metric contract as :meth:`FBFIndex.search`; tombstoned
        entries never appear.  Funnel counters (when a collector is
        passed) describe the wrapped index's physical work, which
        includes scanning not-yet-compacted tombstoned rows.
        """
        raw = self._fbf.search(query, k, collector=collector, verifier=verifier)
        dead = self._dead
        ext = self._ext_ids
        return [ext[i] for i in raw if i not in dead]

    def search_strings(self, query: str, k: int = 1) -> list[str]:
        """Like :meth:`search` but returning the matched strings."""
        return [self._fbf[self._live[sid]] for sid in self.search(query, k)]

    # -- vectorized-path helpers (used by MatchService) ---------------------

    def external_ids(self, internal: np.ndarray) -> np.ndarray:
        """Map an array of internal positions to external ids."""
        return np.asarray(self._ext_ids, dtype=np.int64)[internal]

    def live_mask(self, internal: np.ndarray) -> np.ndarray:
        """Boolean mask of internal positions that are not tombstoned."""
        if not self._dead:
            return np.ones(len(internal), dtype=bool)
        dead = self._dead
        return np.fromiter(
            (int(i) not in dead for i in internal),
            dtype=bool,
            count=len(internal),
        )
