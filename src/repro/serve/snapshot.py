"""Index snapshots: persist a mutable index, reload it warm.

The paper's deployment rebuilds its index from the full population
every night; a serving process should not have to.  A snapshot captures
everything the index derived from its O(n) build — the strings, the
*packed* per-bucket signature and code matrices, the id mapping and the
tombstones — so :func:`load_index` reconstructs a query-ready
:class:`~repro.serve.mutable.MutableIndex` with no signature
generation, no encoding and no packing.

Format (one ``.npz`` file, ``allow_pickle=False`` end to end):

* ``__header__`` — a JSON document (stored as a zero-dim string array)
  with ``format`` / ``version`` markers, the scheme and verifier names,
  the generation counters and any caller metadata.  Loaders reject
  versions newer than they understand.
* ``strings``, ``ext_ids``, ``tombstones`` — the wrapped index's row
  strings, their stable external ids, and the tombstoned rows.
* ``bucket_{L}_ids`` / ``_sigs`` / ``_codes`` — each length bucket's
  packed arrays, exactly as :meth:`FBFIndex.packed_buckets` yields
  them.

A :class:`~repro.serve.shard.ShardedIndex` snapshot is a *container*:
the outer ``__header__`` carries the sharded format marker and the
global id high-water mark, and each ``shard_{i}`` entry is one inner
single-index snapshot stored as raw bytes (``uint8``).  The same inner
blob is the shard *handoff* unit — :func:`dump_index_bytes` /
:func:`load_index_bytes` round-trip one shard through memory without
touching disk, which is what ``ShardedIndex.export_shard`` ships
between processes.

Only stock (named) signature schemes round-trip — a custom scheme's
generate function cannot be serialized, so :func:`save_index` refuses
it up front rather than producing a snapshot that cannot load.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from repro.core.index import FBFIndex
from repro.core.signatures import scheme_from_name
from repro.serve.mutable import MutableIndex

__all__ = [
    "FORMAT",
    "FORMAT_SHARDED",
    "FORMAT_VERSION",
    "save_index",
    "load_index",
    "dump_index_bytes",
    "load_index_bytes",
    "read_header",
]

FORMAT = "repro-serve-snapshot"
FORMAT_SHARDED = "repro-serve-snapshot-sharded"
FORMAT_VERSION = 1


def _check_scheme(index) -> None:
    scheme = index.scheme
    try:
        scheme_from_name(scheme.name)
    except ValueError:
        raise ValueError(
            f"scheme {scheme.name!r} is not a stock scheme; custom "
            "schemes cannot be snapshotted"
        ) from None


def _mutable_arrays(
    index: MutableIndex, meta: dict[str, object] | None
) -> dict[str, np.ndarray]:
    """One MutableIndex as the flat npz array dict (header included)."""
    _check_scheme(index)
    fbf = index.index
    strings = [fbf[i] for i in range(len(fbf))]
    arrays: dict[str, np.ndarray] = {
        "strings": np.asarray(strings, dtype=np.str_)
        if strings
        else np.empty(0, dtype="<U1"),
        "ext_ids": np.asarray(index._ext_ids, dtype=np.int64),
        "tombstones": np.asarray(sorted(index._dead), dtype=np.int64),
    }
    for length, ids, sigs, codes in fbf.packed_buckets():
        arrays[f"bucket_{length}_ids"] = ids
        arrays[f"bucket_{length}_sigs"] = sigs
        arrays[f"bucket_{length}_codes"] = codes
    header = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "scheme": index.scheme.name,
        "verifier": index.verifier,
        "generation": index.generation,
        "compactions": index.compactions,
        "compact_ratio": index.compact_ratio,
        "next_id": index._next_id,
        "n_rows": len(strings),
        "n_live": len(index),
        "meta": dict(meta or {}),
    }
    arrays["__header__"] = np.asarray(json.dumps(header))
    return arrays


def _sharded_arrays(
    index, meta: dict[str, object] | None
) -> dict[str, np.ndarray]:
    """A ShardedIndex as a container npz: per-shard inner blobs."""
    _check_scheme(index)
    arrays: dict[str, np.ndarray] = {}
    for si, shard in enumerate(index.shards):
        arrays[f"shard_{si}"] = np.frombuffer(
            dump_index_bytes(shard), dtype=np.uint8
        )
    header = {
        "format": FORMAT_SHARDED,
        "version": FORMAT_VERSION,
        "n_shards": index.n_shards,
        "scheme": index.scheme.name,
        "verifier": index.verifier,
        "generation": index.generation,
        "compactions": index.compactions,
        "compact_ratio": index.compact_ratio,
        "next_id": index._next_id,
        "n_live": len(index),
        "meta": dict(meta or {}),
    }
    arrays["__header__"] = np.asarray(json.dumps(header))
    return arrays


def save_index(
    index,
    path: str | Path,
    *,
    meta: dict[str, object] | None = None,
) -> Path:
    """Write one snapshot file; returns the path written.

    Accepts a :class:`MutableIndex` or a
    :class:`~repro.serve.shard.ShardedIndex` (the formats are
    self-describing; :func:`load_index` reconstructs whichever was
    saved).  ``meta`` is stored verbatim in the header's ``"meta"``
    field (the service puts its own configuration there) and must be
    JSON-serializable.
    """
    from repro.serve.shard import ShardedIndex

    path = Path(path)
    arrays = (
        _sharded_arrays(index, meta)
        if isinstance(index, ShardedIndex)
        else _mutable_arrays(index, meta)
    )
    with path.open("wb") as fh:
        np.savez(fh, **arrays)
    return path


def dump_index_bytes(
    index: MutableIndex, *, meta: dict[str, object] | None = None
) -> bytes:
    """One single-shard snapshot as in-memory bytes (the handoff blob)."""
    buf = io.BytesIO()
    np.savez(buf, **_mutable_arrays(index, meta))
    return buf.getvalue()


def read_header(path: str | Path) -> dict[str, object]:
    """The snapshot's JSON header, validated for format and version."""
    with np.load(Path(path), allow_pickle=False) as npz:
        return _header(npz)


def _header(npz) -> dict[str, object]:
    if "__header__" not in npz:
        raise ValueError("not a repro serve snapshot: missing header")
    header = json.loads(str(npz["__header__"][()]))
    if header.get("format") not in (FORMAT, FORMAT_SHARDED):
        raise ValueError(
            f"not a repro serve snapshot: format {header.get('format')!r}"
        )
    if int(header["version"]) > FORMAT_VERSION:
        raise ValueError(
            f"snapshot format version {header['version']} is newer than "
            f"this reader (supports <= {FORMAT_VERSION})"
        )
    return header


def _mutable_from_npz(npz, header) -> MutableIndex:
    strings = [str(s) for s in npz["strings"]]
    ext_ids = npz["ext_ids"].astype(np.int64)
    dead = {int(i) for i in npz["tombstones"]}
    buckets = []
    for key in npz.files:
        if key.startswith("bucket_") and key.endswith("_ids"):
            length = int(key[len("bucket_") : -len("_ids")])
            buckets.append(
                (
                    length,
                    npz[key],
                    npz[f"bucket_{length}_sigs"],
                    npz[f"bucket_{length}_codes"],
                )
            )
    fbf = FBFIndex.from_packed(
        strings,
        buckets,
        scheme=scheme_from_name(str(header["scheme"])),
        verifier=str(header["verifier"]),
    )
    index = MutableIndex.__new__(MutableIndex)
    index._reset_telemetry()
    index._fbf = fbf
    index._ext_ids = [int(i) for i in ext_ids]
    index._live = {
        int(ext): pos for pos, ext in enumerate(ext_ids) if pos not in dead
    }
    index._dead = dead
    index._next_id = int(header["next_id"])
    index.compact_ratio = header.get("compact_ratio")
    index.generation = int(header["generation"])
    index.compactions = int(header.get("compactions", 0))
    return index


def _sharded_from_npz(npz, header):
    from repro.serve.shard import ShardedIndex

    index = ShardedIndex.__new__(ShardedIndex)
    index._reset_telemetry()
    index.n_shards = int(header["n_shards"])
    index._scheme = scheme_from_name(str(header["scheme"]))
    index._verifier = str(header["verifier"])
    index.compact_ratio = header.get("compact_ratio")
    index._shards = []
    index._locate = {}
    for si in range(index.n_shards):
        shard, _ = load_index_bytes(npz[f"shard_{si}"].tobytes())
        shard.compact_ratio = index.compact_ratio
        index._shards.append(shard)
        for sid in shard._live:
            index._locate[sid] = si
    index._next_id = int(header["next_id"])
    return index


def load_index(path: str | Path) -> tuple[object, dict[str, object]]:
    """Reconstruct ``(index, header)`` from a snapshot file.

    The returned index is fully packed (no pending adds, nothing
    recomputed) and is a :class:`MutableIndex` or a
    :class:`~repro.serve.shard.ShardedIndex` according to the saved
    format; ``header`` carries the saved metadata, including the
    caller's ``meta`` dict.
    """
    with np.load(Path(path), allow_pickle=False) as npz:
        header = _header(npz)
        if header["format"] == FORMAT_SHARDED:
            return _sharded_from_npz(npz, header), header
        return _mutable_from_npz(npz, header), header


def load_index_bytes(blob: bytes) -> tuple[MutableIndex, dict[str, object]]:
    """Reconstruct one single-shard index from an in-memory blob."""
    with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
        header = _header(npz)
        if header["format"] != FORMAT:
            raise ValueError(
                "a shard handoff blob must be a single-index snapshot, "
                f"got format {header['format']!r}"
            )
        return _mutable_from_npz(npz, header), header
