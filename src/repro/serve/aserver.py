"""An asyncio front-end for :class:`MatchService`.

The blocking loop in :mod:`repro.serve.server` answers one line at a
time; its throughput ceiling is the per-query Python dispatch cost.
:class:`AsyncMatchServer` puts an event loop in front of the same
``handle`` protocol and earns its keep three ways:

* **request coalescing** — ``query`` requests arriving from *any*
  connection inside a small window are merged into one
  :meth:`MatchService.query_batch <repro.serve.service.MatchService>`
  call, so concurrent clients ride the vectorized candidate/verify
  sweep instead of N scalar searches.  This is the serving-side
  analogue of the join layer's batching: the speedup comes from
  amortizing dispatch, not from parallel CPUs.
* **admission control** — at most ``max_inflight`` requests may be
  admitted at once; beyond that the server *sheds* instead of queueing
  without bound (``{"ok": false, "error": "overloaded",
  "shed": true}``), so latency stays bounded under overload and memory
  cannot grow with the backlog.  Sheds are tallied in
  ``serve_shed_total`` and the ``serve_bad_requests_total``
  reason=``overloaded`` series.
* **graceful drain** — ``shutdown`` stops admission first, then waits
  for every admitted request (including a pending coalesced batch) to
  finish before the acknowledgment — carrying the loop's
  ``served``/``errors`` totals — goes out and the listener closes.
  Nothing admitted is ever dropped on the way down.

Framing is the same JSON-lines protocol, with the
:data:`~repro.serve.server.MAX_REQUEST_BYTES` bound enforced *during*
read: :class:`LineFramer` never buffers more than the bound, discards
an oversized line through its terminating newline, reports it as one
structured error, and keeps the connection alive for the next request.

Ordering: responses on one connection are answered strictly in request
order (the reader awaits each response before reading the next line).
Coalescing therefore aggregates *across* connections — which is where
concurrent load lives — and never reorders one client's view of its
own mutations.

The service itself is single-threaded per call: every ``handle``
invocation runs on one dedicated executor thread, so the event loop
stays responsive while a batch verifies, and no two service calls ever
interleave (the same serialization the blocking loop provides).
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

from repro.serve.server import MAX_REQUEST_BYTES, handle, query_payload
from repro.serve.service import MatchService

__all__ = ["AsyncMatchServer", "LineFramer", "run_server"]


class LineFramer:
    """Bounded line framing over a byte stream.

    ``feed`` bytes in, iterate complete lines out.  A line longer than
    ``max_line_bytes`` never accumulates past the bound: the framer
    switches to *discard* mode, throws the rest of the line away as it
    streams past, and yields the ``OVERSIZED`` sentinel exactly once
    when the terminating newline finally arrives — so the next request
    on the connection parses cleanly.
    """

    #: sentinel yielded for a discarded over-long line
    OVERSIZED = object()

    def __init__(self, max_line_bytes: int = MAX_REQUEST_BYTES):
        self.max_line_bytes = int(max_line_bytes)
        self._buf = bytearray()
        self._discarding = False

    def feed(self, data: bytes):
        """Yield each complete line (bytes, newline stripped) in
        ``data``, or :data:`OVERSIZED` for a line over the bound."""
        self._buf.extend(data)
        while True:
            nl = self._buf.find(b"\n")
            if nl < 0:
                if self._discarding:
                    self._buf.clear()
                elif len(self._buf) > self.max_line_bytes:
                    self._discarding = True
                    self._buf.clear()
                return
            line = bytes(self._buf[:nl])
            del self._buf[: nl + 1]
            if self._discarding:
                self._discarding = False
                yield self.OVERSIZED
            elif len(line) > self.max_line_bytes:
                yield self.OVERSIZED
            else:
                yield line


class _Batcher:
    """Cross-connection query coalescing.

    Pending ``query`` requests are grouped by ``(k, method)``; a group
    flushes into one ``query_batch`` call when it reaches
    ``max_batch`` or when its ``window``-seconds timer fires —
    whichever comes first.  Each waiter gets exactly its own query's
    result back.
    """

    def __init__(self, server: "AsyncMatchServer", window: float, max_batch: int):
        self.server = server
        self.window = window
        self.max_batch = max_batch
        #: (k, method) -> list of (value, future)
        self._groups: dict[tuple, list[tuple[str, asyncio.Future]]] = {}
        self._timers: dict[tuple, asyncio.TimerHandle] = {}

    async def submit(self, value: str, k, method) -> dict:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        key = (k, method)
        group = self._groups.setdefault(key, [])
        group.append((value, fut))
        if len(group) >= self.max_batch:
            self._flush(key)
        elif key not in self._timers:
            self._timers[key] = loop.call_later(
                self.window, self._flush, key
            )
        return await fut

    def _flush(self, key) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        group = self._groups.pop(key, None)
        if group:
            asyncio.ensure_future(self._run(key, group))

    async def drain(self) -> None:
        """Flush every pending group (shutdown path)."""
        for key in list(self._groups):
            self._flush(key)

    async def _run(self, key, group) -> None:
        k, method = key
        values = [value for value, _ in group]
        server = self.server
        server.coalesced += len(values)
        if server._c_coalesced is not None:
            server._c_coalesced.inc(len(values))
        try:
            results = await server._call(
                server.service.query_batch, values, k, method
            )
        except Exception as exc:  # noqa: BLE001 - reported per waiter
            for _, fut in group:
                if not fut.done():
                    fut.set_exception(exc)
            return
        by_value = {res.value: res for res in results}
        for value, fut in group:
            if not fut.done():
                fut.set_result(
                    {
                        "ok": True,
                        "op": "query",
                        **query_payload(by_value[value]),
                    }
                )


class AsyncMatchServer:
    """Serve the JSON-lines protocol over asyncio TCP connections.

    Parameters
    ----------
    service:
        The :class:`MatchService` to answer from.  All service calls
        are serialized onto one executor thread.
    max_inflight:
        Admission bound: requests admitted (parsed and executing or
        waiting in a coalescing window) at once.  Arrivals beyond the
        bound are shed with a structured ``overloaded`` error.
    batch_window:
        Seconds a ``query`` may wait for companions before its
        coalesced batch flushes.
    max_batch:
        Coalesced batch size that flushes immediately.
    max_request_bytes:
        Per-line size bound enforced by :class:`LineFramer`.
    """

    def __init__(
        self,
        service: MatchService,
        *,
        max_inflight: int = 64,
        batch_window: float = 0.002,
        max_batch: int = 64,
        max_request_bytes: int = MAX_REQUEST_BYTES,
    ):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.service = service
        self.max_inflight = int(max_inflight)
        self.max_request_bytes = int(max_request_bytes)
        self.served = 0
        self.errors = 0
        self.shed = 0
        self.coalesced = 0
        self._inflight = 0
        self._batcher = _Batcher(self, batch_window, max_batch)
        # One thread: service calls never interleave, the loop never
        # blocks on a verify sweep.
        self._exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections: set = set()
        self._accepting = True
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        m = service.metrics
        self._c_shed = self._c_coalesced = self._g_inflight = None
        if m:
            self._c_shed = m.counter(
                "serve_shed_total", "requests shed by admission control"
            )
            self._c_coalesced = m.counter(
                "serve_coalesced_total",
                "queries answered through a coalesced batch",
            )
            self._g_inflight = m.gauge(
                "serve_inflight", "requests currently admitted"
            )

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Bind the listener; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._on_connection, host, port
        )
        return self._server.sockets[0].getsockname()[:2]

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request has fully drained."""
        await self._shutdown.wait()

    async def aclose(self) -> None:
        """Stop accepting, drain everything admitted, close."""
        self._accepting = False
        await self._batcher.drain()
        await self._idle.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle connections are parked in read(); closing their
        # transports delivers EOF so their loops exit cleanly.
        for writer in list(self._connections):
            writer.close()
        self._exec.shutdown(wait=True)
        self._shutdown.set()

    # -- plumbing -----------------------------------------------------------

    async def _call(self, fn, *args):
        """Run one service call on the single executor thread."""
        return await asyncio.get_running_loop().run_in_executor(
            self._exec, fn, *args
        )

    def _admit(self) -> bool:
        if not self._accepting or self._inflight >= self.max_inflight:
            return False
        self._inflight += 1
        self._idle.clear()
        if self._g_inflight is not None:
            self._g_inflight.set(self._inflight)
        return True

    def _release(self) -> None:
        self._inflight -= 1
        if self._g_inflight is not None:
            self._g_inflight.set(self._inflight)
        if self._inflight == 0:
            self._idle.set()

    def _shed(self) -> dict:
        self.shed += 1
        if self._c_shed is not None:
            self._c_shed.inc()
        self.service.note_request_error("overloaded")
        return {"ok": False, "error": "overloaded", "shed": True}

    # -- the connection loop ------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        framer = LineFramer(self.max_request_bytes)
        self._connections.add(writer)
        try:
            while True:
                data = await reader.read(1 << 16)
                at_eof = not data
                for line in framer.feed(data):
                    response = await self._respond(line)
                    if response is None:
                        continue
                    writer.write(
                        json.dumps(response).encode() + b"\n"
                    )
                    await writer.drain()
                    if response.get("shutdown"):
                        await self.aclose()
                        return
                if at_eof:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(self, line) -> dict | None:
        """Parse-admit-execute one framed line; None skips blanks."""
        if line is LineFramer.OVERSIZED:
            self.service.note_request_error("oversized")
            self.served += 1
            self.errors += 1
            return {
                "ok": False,
                "error": (
                    f"request exceeds {self.max_request_bytes} bytes"
                ),
            }
        text = line.decode("utf-8", "replace").strip()
        if not text:
            return None
        if not self._admit():
            self.served += 1
            self.errors += 1
            return self._shed()
        try:
            response = await self._execute(text)
        finally:
            self._release()
        self.served += 1
        if not response.get("ok"):
            self.errors += 1
        if response.get("shutdown"):
            response["served"] = self.served
            response["errors"] = self.errors
            response["shed"] = self.shed
        return response

    async def _execute(self, text: str) -> dict:
        try:
            request = json.loads(text)
        except json.JSONDecodeError as exc:
            self.service.note_request_error("bad_json")
            return {"ok": False, "error": f"bad json: {exc}"}
        if not isinstance(request, dict):
            self.service.note_request_error("not_an_object")
            return {"ok": False, "error": "request must be an object"}
        op = request.get("op")
        if op == "query" and "value" in request:
            # The coalescing path: park this query in the batcher and
            # let the window aggregate companions from other
            # connections into one vectorized query_batch call.
            return await self._batcher.submit(
                str(request["value"]),
                request.get("k"),
                request.get("method"),
            )
        if op == "shutdown":
            # Stop admitting *before* acknowledging, so the ack totals
            # are final; the connection loop closes the listener after
            # writing it.
            self._accepting = False
            return {"ok": True, "op": op, "shutdown": True}
        return await self._call(handle, self.service, request)


def run_server(
    service: MatchService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_inflight: int = 64,
    batch_window: float = 0.002,
    max_batch: int = 64,
    on_bound=None,
) -> int:
    """Blocking convenience runner for the CLI: bind, announce through
    ``on_bound((host, port))``, serve until a ``shutdown`` request.
    Returns the number of requests served."""
    total = 0

    async def main() -> None:
        nonlocal total
        server = AsyncMatchServer(
            service,
            max_inflight=max_inflight,
            batch_window=batch_window,
            max_batch=max_batch,
        )
        bound = await server.start(host, port)
        if on_bound is not None:
            on_bound(bound)
        await server.serve_until_shutdown()
        total = server.served

    asyncio.run(main())
    return total
