"""Background stdlib-HTTP ``/metrics`` listener for the serving stack.

The JSON-lines protocol multiplexes telemetry over the same pipe as
traffic (the ``metrics`` op); this module gives telemetry its own side
door, so a scraper or a human with ``curl`` can watch a live server
without touching the request stream.  Stdlib only
(``http.server.ThreadingHTTPServer`` on a daemon thread) — no new
dependencies, no asyncio.

Endpoints:

``/metrics``
    Prometheus text exposition of the service's registry (gauges are
    refreshed at scrape time via
    :meth:`~repro.serve.service.MatchService.refresh_metrics`, so a
    scrape sees current index/pool state even on an idle server);
``/metrics.json``
    the JSON snapshot (:meth:`MetricsRegistry.snapshot` shape);
``/events.json``
    the last lifecycle events, oldest first (``?n=50`` to bound);
``/healthz``
    liveness probe — ``200 ok`` while the thread runs.

Usage::

    server = start_metrics_server(service, port=9109)
    ...
    server.close()

``port=0`` binds an ephemeral port (``server.port`` reports it), which
is what the tests and the ``repro-fbf serve --metrics-port 0`` path
use.  The server binds ``127.0.0.1`` by default: telemetry often leaks
data-distribution details, so exposing it beyond localhost is an
explicit choice (``host="0.0.0.0"``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.log import get_logger

__all__ = ["MetricsServer", "start_metrics_server"]

_log = get_logger("serve.httpd")


class _MetricsHandler(BaseHTTPRequestHandler):
    """One GET handler over the owning :class:`MetricsServer`."""

    server_version = "repro-metrics/1"

    #: set per server subclass via type(); the service being exposed
    service = None

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        service = self.service
        try:
            if route == "/metrics":
                service.refresh_metrics()
                body = service.metrics.render_prometheus()
                self._reply(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif route == "/metrics.json":
                self._reply_json(200, service.metrics_snapshot())
            elif route == "/events.json":
                query = parse_qs(parsed.query)
                n = None
                if "n" in query:
                    try:
                        n = max(0, int(query["n"][0]))
                    except ValueError:
                        self._reply_json(400, {"error": "n must be an int"})
                        return
                kind = query["kind"][0] if "kind" in query else None
                self._reply_json(
                    200, {"events": service.events.tail(n, kind=kind)}
                )
            elif route in ("/", "/healthz"):
                self._reply(200, "ok\n", "text/plain; charset=utf-8")
            else:
                self._reply_json(404, {"error": f"no route {route!r}"})
        except Exception as exc:  # never kill the listener thread
            _log.warning("metrics request %s failed: %r", self.path, exc)
            try:
                self._reply_json(500, {"error": repr(exc)})
            except OSError:
                pass  # client already gone

    def _reply(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _reply_json(self, status: int, payload: dict) -> None:
        self._reply(
            status,
            json.dumps(payload, default=str) + "\n",
            "application/json; charset=utf-8",
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _log.debug("http %s", format % args)


class MetricsServer:
    """A ``ThreadingHTTPServer`` on a daemon thread, bound at init.

    Binding happens eagerly (so a taken port fails fast, in the
    foreground); request serving starts with :meth:`start`.  Idempotent
    :meth:`close`; usable as a context manager.
    """

    def __init__(self, service, *, host: str = "127.0.0.1", port: int = 0):
        handler = type(
            "_BoundMetricsHandler", (_MetricsHandler,), {"service": service}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the ephemeral one when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"repro-metrics-{self.port}",
                daemon=True,
            )
            self._thread.start()
            _log.info("metrics listener on %s/metrics", self.url)
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_metrics_server(
    service, port: int = 0, *, host: str = "127.0.0.1"
) -> MetricsServer:
    """Bind and start a :class:`MetricsServer` for ``service``."""
    return MetricsServer(service, host=host, port=port).start()
