"""Length-partitioned shards over :class:`MutableIndex`.

One :class:`~repro.serve.mutable.MutableIndex` caps serving throughput
at one process: every query sweeps one packed index, every compaction
stalls the whole roster.  :class:`ShardedIndex` splits the population
across ``n_shards`` independent :class:`MutableIndex` shards while
keeping the *single-index contract* — one monotone external-id space,
identical ``search`` answers, rebuild equivalence — so the service
layer can treat it as a drop-in index.

**Shard key.**  Strings are placed by ``len(s) % n_shards``.  This is
the PASS-JOIN observation (Li et al., arXiv 1111.7171) turned into a
partitioning rule: edit distance ≤ k implies a length difference ≤ k,
so a query of length ``L`` can only match strings whose length lies in
``[L-k, L+k]`` — which live in at most ``min(2k+1, n_shards)`` shards
(:meth:`route`).  Partitioning is therefore *exact*: scatter to the
routed shards, gather, and the union is the single-index answer.  It
also composes with the index's internal length buckets — each shard
holds every ``n_shards``-th bucket, so per-shard signature state stays
compact (the EmbedJoin-style compactness that makes snapshot handoff
blobs cheap to ship).

**Global ids.**  The sharded index allocates external ids from one
monotone counter and passes them *down* into each shard
(``MutableIndex.add(s, sid=...)``), so a shard's search results are
already global — gather is a merge of sorted id lists, with no
per-shard translation table on the hot path.  ``_locate`` maps each
live id to its shard for O(1) removal.

**Independent compaction.**  Removal tombstones only the owning shard;
a threshold compaction rebuilds *that shard's* rows, not the whole
population — the stall is ``1/n_shards`` the size, and the service's
scatter path keeps answering from the other shards' published state
meanwhile (see the handoff protocol in
:meth:`MatchService._shard_roster <repro.serve.service.MatchService>`).

**Handoff blobs.**  :meth:`export_shard` / :meth:`adopt_shard`
round-trip one shard through the snapshot format in memory — the unit
of crash recovery and shard migration.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.signatures import SignatureScheme, detect_kind, scheme_for
from repro.obs.events import NULL_EVENTS
from repro.obs.metrics import NULL_METRICS
from repro.serve.mutable import MutableIndex

__all__ = ["ShardedIndex"]


class _ShardEvents:
    """Event-log proxy stamping the owning shard's id on every emit."""

    def __init__(self, log, shard: int):
        self._log = log
        self._shard = shard

    def __bool__(self) -> bool:
        return bool(self._log)

    def emit(self, kind: str, **fields: object) -> dict[str, object]:
        fields.setdefault("shard", self._shard)
        return self._log.emit(kind, **fields)


class ShardedIndex:
    """``n_shards`` length-partitioned :class:`MutableIndex` shards
    behind the single-index API.

    Parameters
    ----------
    strings:
        Initial population (external ids ``0..n-1``, exactly as the
        single-shard index would assign them).
    n_shards:
        Shard count (>= 1).  ``1`` is a degenerate but valid
        configuration — one shard holding everything — kept so the
        equivalence suites can pin it against :class:`MutableIndex`.
    scheme, verifier, compact_ratio:
        Per-shard index configuration; the signature scheme is resolved
        *once* over the initial population and pinned on every shard,
        so all shards (and their published rosters) agree.
    """

    def __init__(
        self,
        strings: Sequence[str] = (),
        *,
        n_shards: int = 2,
        scheme: SignatureScheme | str | None = None,
        verifier: str = "osa",
        compact_ratio: float | None = 0.25,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        strings = list(strings)
        if isinstance(scheme, str):
            scheme = scheme_for(scheme)
        if scheme is None:
            kind = detect_kind(strings) if strings else "alnum"
            scheme = scheme_for(kind)
        self.n_shards = int(n_shards)
        self._scheme = scheme
        self._verifier = verifier
        self.compact_ratio = compact_ratio
        self._shards: list[MutableIndex] = [
            MutableIndex(
                scheme=scheme,
                verifier=verifier,
                compact_ratio=compact_ratio,
            )
            for _ in range(self.n_shards)
        ]
        #: live external id -> owning shard index
        self._locate: dict[int, int] = {}
        self._next_id = 0
        self._reset_telemetry()
        for s in strings:
            self.add(s)

    # -- telemetry -----------------------------------------------------------

    def _reset_telemetry(self) -> None:
        self._metrics = NULL_METRICS
        self._events = NULL_EVENTS
        self._g_size = self._g_rows = None
        self._g_tombstone_ratio = self._g_generation = None
        self._c_compactions = None
        self._shard_gauges: list[tuple] = []

    def instrument(self, metrics, events=None) -> None:
        """Report the same aggregate gauges a single
        :class:`MutableIndex` would (``index_size``, ``index_rows``,
        ``index_tombstone_ratio``, ``index_generation``,
        ``index_compactions_total``) plus per-shard labelled gauges
        (``shard_size{shard=i}``, ``shard_rows``, ``shard_tombstones``,
        ``shard_generation``).  Shard compactions emit ``compaction``
        events carrying their shard id.
        """
        self._metrics = metrics if metrics else NULL_METRICS
        self._events = events if events else NULL_EVENTS
        m = self._metrics
        self._g_size = m.gauge("index_size", "live (non-tombstoned) entries")
        self._g_rows = m.gauge(
            "index_rows", "packed index rows including tombstones"
        )
        self._g_tombstone_ratio = m.gauge(
            "index_tombstone_ratio", "dead fraction of packed rows"
        )
        self._g_generation = m.gauge(
            "index_generation", "mutation counter (caches key on it)"
        )
        self._c_compactions = m.counter(
            "index_compactions_total", "compactions performed (auto + explicit)"
        )
        self._shard_gauges = []
        for si, shard in enumerate(self._shards):
            labels = {"shard": str(si)}
            self._shard_gauges.append(
                (
                    m.gauge("shard_size", "live entries in this shard", labels),
                    m.gauge("shard_rows", "packed rows in this shard", labels),
                    m.gauge(
                        "shard_tombstones",
                        "tombstoned rows in this shard",
                        labels,
                    ),
                    m.gauge(
                        "shard_generation",
                        "this shard's mutation counter",
                        labels,
                    ),
                )
            )
            # Shards report lifecycle events (compaction) with their
            # shard id, but not the aggregate gauges — those are ours.
            shard._events = _ShardEvents(self._events, si)
        self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        if self._g_size is None:
            return
        self._g_size.set(len(self._locate))
        self._g_rows.set(self.rows)
        self._g_tombstone_ratio.set(self.tombstone_ratio)
        self._g_generation.set(self.generation)
        self._c_compactions.set_total(self.compactions)
        for (g_size, g_rows, g_tomb, g_gen), shard in zip(
            self._shard_gauges, self._shards
        ):
            g_size.set(len(shard))
            g_rows.set(len(shard.index))
            g_tomb.set(shard.tombstones)
            g_gen.set(shard.generation)

    # -- introspection ------------------------------------------------------

    @property
    def scheme(self) -> SignatureScheme:
        return self._scheme

    @property
    def verifier(self) -> str:
        return self._verifier

    @property
    def shards(self) -> tuple[MutableIndex, ...]:
        """The underlying shards, in placement order (read-only view —
        mutate through this class so the id space stays coherent)."""
        return tuple(self._shards)

    @property
    def generation(self) -> int:
        """Sum of the shard generations — monotone, bumped by every
        mutation anywhere (including a shard's auto-compaction), so
        generation-keyed caches invalidate exactly as they would over
        one index."""
        return sum(s.generation for s in self._shards)

    @property
    def compactions(self) -> int:
        return sum(s.compactions for s in self._shards)

    @property
    def tombstones(self) -> int:
        return sum(s.tombstones for s in self._shards)

    @property
    def rows(self) -> int:
        """Packed rows across all shards, tombstones included."""
        return sum(len(s.index) for s in self._shards)

    @property
    def tombstone_ratio(self) -> float:
        total = self.rows
        return self.tombstones / total if total else 0.0

    def __len__(self) -> int:
        return len(self._locate)

    def __contains__(self, sid: int) -> bool:
        return sid in self._locate

    def get(self, sid: int) -> str:
        """The live string behind an external id (KeyError if removed)."""
        return self._shards[self._locate[sid]].get(sid)

    def items(self) -> Iterator[tuple[int, str]]:
        """Live ``(id, string)`` pairs in id order."""
        for sid in sorted(self._locate):
            yield sid, self.get(sid)

    # -- placement ----------------------------------------------------------

    def shard_of(self, s: str) -> int:
        """The shard a string of this value lands in (by length)."""
        return len(s) % self.n_shards

    def route(self, length: int, k: int) -> tuple[int, ...]:
        """Shards that can hold a match for a query of ``length`` at
        edit threshold ``k`` — the PASS-JOIN length window mapped onto
        the modular placement.  At most ``min(2k+1, n_shards)`` shards.
        """
        lo = max(0, length - k)
        return tuple(
            sorted({ln % self.n_shards for ln in range(lo, length + k + 1)})
        )

    # -- mutation -----------------------------------------------------------

    def add(self, s: str) -> int:
        """Index one string; returns its stable (global) external id."""
        sid = self._next_id
        self._next_id += 1
        si = self.shard_of(s)
        self._shards[si].add(s, sid=sid)
        self._locate[sid] = si
        self._refresh_gauges()
        return sid

    def extend(self, strings: Sequence[str]) -> list[int]:
        """Index a batch; returns the assigned external ids."""
        return [self.add(s) for s in strings]

    def remove(self, sid: int) -> None:
        """Tombstone one entry by external id (KeyError if unknown).

        Only the owning shard mutates; a triggered auto-compaction
        rebuilds that shard alone.
        """
        try:
            si = self._locate.pop(sid)
        except KeyError:
            raise KeyError(f"no live entry with id {sid}") from None
        self._shards[si].remove(sid)
        self._refresh_gauges()

    def compact(self) -> int:
        """Compact every shard that holds tombstones; returns the total
        rows reclaimed.  Shards with nothing to reclaim are left alone
        (their generation does not move), so a service-level ``compact``
        op on a mostly-clean sharded index is near-free.
        """
        reclaimed = 0
        for shard in self._shards:
            if shard.tombstones:
                reclaimed += shard.compact()
        self._refresh_gauges()
        return reclaimed

    # -- search -------------------------------------------------------------

    def search(
        self,
        query: str,
        k: int = 1,
        *,
        collector=None,
        verifier: str | None = None,
    ) -> list[int]:
        """External ids of live entries within ``k`` edits of ``query``.

        Scatter to the routed shards, gather, merge — identical to the
        single-index answer because placement is exact for the length
        window (property-tested by the sharded equivalence suite).
        Global ids are monotone per shard, so the merged list needs one
        final sort only across shard boundaries.
        """
        out: list[int] = []
        for si in self.route(len(query), k):
            out.extend(
                self._shards[si].search(
                    query, k, collector=collector, verifier=verifier
                )
            )
        out.sort()
        return out

    def search_strings(self, query: str, k: int = 1) -> list[str]:
        """Like :meth:`search` but returning the matched strings."""
        return [self.get(sid) for sid in self.search(query, k)]

    # -- shard handoff ------------------------------------------------------

    def export_shard(self, si: int) -> bytes:
        """One shard serialized as an in-memory snapshot blob — the
        handoff unit for migration or crash recovery."""
        from repro.serve.snapshot import dump_index_bytes

        return dump_index_bytes(self._shards[si])

    def adopt_shard(self, si: int, blob: bytes) -> None:
        """Replace shard ``si`` with a previously exported blob.

        The id space must stay coherent: every live id in the adopted
        shard must either already belong to ``si`` or be unknown (a
        restore of lost state); ids owned by *another* shard are
        rejected.  The global id counter advances past the adopted
        shard's high-water mark.
        """
        from repro.serve.snapshot import load_index_bytes

        index, _header = load_index_bytes(blob)
        for sid in index._live:
            owner = self._locate.get(sid)
            if owner is not None and owner != si:
                raise ValueError(
                    f"id {sid} in the adopted blob is owned by shard "
                    f"{owner}, not {si}"
                )
        for sid, owner in list(self._locate.items()):
            if owner == si:
                del self._locate[sid]
        old = self._shards[si]
        index.compact_ratio = self.compact_ratio
        # Keep the shard's generation monotone across the swap so
        # generation-keyed caches and published rosters invalidate.
        index.generation = max(index.generation, old.generation) + 1
        self._shards[si] = index
        if self._events:
            index._events = _ShardEvents(self._events, si)
        for sid in index._live:
            self._locate[sid] = si
        self._next_id = max(self._next_id, index._next_id)
        self._refresh_gauges()
