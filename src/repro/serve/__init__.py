"""Online match serving: mutable indexes, caching, snapshots.

The batch layers answer "join these two datasets once"; this package
answers "keep a population resident and answer approximate-match
queries as they arrive".  The pieces:

* :class:`~repro.serve.mutable.MutableIndex` — add/remove with stable
  ids over the append-only :class:`~repro.core.index.FBFIndex`
  (tombstones + threshold-triggered compaction);
* :class:`~repro.serve.shard.ShardedIndex` — the same contract split
  across length-partitioned shards (one global id space, exact
  scatter/gather routing, per-shard compaction and handoff blobs);
* :class:`~repro.serve.service.MatchService` — the facade: cache-aware
  :meth:`query` / vectorized micro-batching :meth:`query_batch`,
  mutation counters and latency spans; ``shards > 1`` serves through
  scatter/gather, ``workers > 1`` pins shards to pool slots;
* :mod:`~repro.serve.snapshot` — one-file persistence so a restarted
  service skips the O(n) rebuild (sharded snapshots are containers of
  per-shard handoff blobs);
* :mod:`~repro.serve.server` — the JSON-lines protocol behind
  ``repro-fbf serve``;
* :mod:`~repro.serve.aserver` — the asyncio front-end: cross-client
  request coalescing, bounded-admission shedding, graceful drain
  (``repro-fbf serve --port``);
* :mod:`~repro.serve.httpd` — the optional background ``/metrics``
  HTTP listener (``repro-fbf serve --metrics-port``).
"""

from repro.serve.aserver import AsyncMatchServer, LineFramer, run_server
from repro.serve.cache import MISS, ResultCache
from repro.serve.httpd import MetricsServer, start_metrics_server
from repro.serve.mutable import MutableIndex
from repro.serve.server import MAX_REQUEST_BYTES, handle, serve_lines
from repro.serve.service import MatchService, QueryResult
from repro.serve.shard import ShardedIndex
from repro.serve.snapshot import (
    dump_index_bytes,
    load_index,
    load_index_bytes,
    read_header,
    save_index,
)

__all__ = [
    "MAX_REQUEST_BYTES",
    "MISS",
    "AsyncMatchServer",
    "LineFramer",
    "MatchService",
    "MetricsServer",
    "MutableIndex",
    "QueryResult",
    "ResultCache",
    "ShardedIndex",
    "dump_index_bytes",
    "handle",
    "load_index",
    "load_index_bytes",
    "read_header",
    "run_server",
    "save_index",
    "serve_lines",
    "start_metrics_server",
]
