"""Online match serving: mutable indexes, caching, snapshots.

The batch layers answer "join these two datasets once"; this package
answers "keep a population resident and answer approximate-match
queries as they arrive".  The pieces:

* :class:`~repro.serve.mutable.MutableIndex` — add/remove with stable
  ids over the append-only :class:`~repro.core.index.FBFIndex`
  (tombstones + threshold-triggered compaction);
* :class:`~repro.serve.service.MatchService` — the facade: cache-aware
  :meth:`query` / vectorized micro-batching :meth:`query_batch`,
  mutation counters and latency spans;
* :mod:`~repro.serve.snapshot` — one-file persistence so a restarted
  service skips the O(n) rebuild;
* :mod:`~repro.serve.server` — the JSON-lines protocol behind
  ``repro-fbf serve``;
* :mod:`~repro.serve.httpd` — the optional background ``/metrics``
  HTTP listener (``repro-fbf serve --metrics-port``).
"""

from repro.serve.cache import MISS, ResultCache
from repro.serve.httpd import MetricsServer, start_metrics_server
from repro.serve.mutable import MutableIndex
from repro.serve.server import handle, serve_lines
from repro.serve.service import MatchService, QueryResult
from repro.serve.snapshot import load_index, read_header, save_index

__all__ = [
    "MISS",
    "MatchService",
    "MetricsServer",
    "MutableIndex",
    "QueryResult",
    "ResultCache",
    "handle",
    "load_index",
    "read_header",
    "save_index",
    "serve_lines",
    "start_metrics_server",
]
