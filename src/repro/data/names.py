"""Census-calibrated name pools.

The paper draws 5,000-string samples from the 1990 Census first-name
lists (5,163 names, lengths 2-11, mean 5.96) and the 2000 Census
last-name list (151,670 names, lengths 2-15, mean 6.89; exact length
histogram in the paper's Table 13).  Those files are public but not
bundled here, so this module reconstructs statistically equivalent pools:

1. a seed vocabulary of real high-frequency census names (embedded
   below), and
2. a letter-bigram (order-2 Markov) generator trained on that seed
   vocabulary, which extends the pool to any requested size while
   *exactly* matching a target length histogram — by default the
   paper's Table 13 for last names.

FBF and the length filter are sensitive only to string length and
character-occurrence statistics, so matching the histogram and the
bigram distribution preserves every behaviour the experiments measure
(filter pass rates, DP sizes, signature densities).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Mapping, Sequence

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "PAPER_LN_LENGTH_HISTOGRAM",
    "PAPER_FN_LENGTH_HISTOGRAM",
    "NameGenerator",
    "build_last_name_pool",
    "build_first_name_pool",
    "sample_zipfian_roster",
]

#: Paper Table 13 — counts of 2000 Census last names by string length.
#: Sums to 151,670 (the paper's "151,670 Census last names").
PAPER_LN_LENGTH_HISTOGRAM: dict[int, int] = {
    2: 175,
    3: 1585,
    4: 8768,
    5: 23238,
    6: 34025,
    7: 33256,
    8: 23380,
    9: 14424,
    10: 7772,
    11: 3215,
    12: 1190,
    13: 442,
    14: 177,
    15: 23,
}

#: First-name length distribution consistent with the paper's reported
#: statistics (min 2, max 11, mean 5.96 over the merged 1990 male/female
#: lists).  Derived from the embedded seed vocabulary's shape.
PAPER_FN_LENGTH_HISTOGRAM: dict[int, int] = {
    2: 40,
    3: 180,
    4: 640,
    5: 1100,
    6: 1300,
    7: 1000,
    8: 550,
    9: 250,
    10: 80,
    11: 23,
}

# Top entries of the merged 1990 Census male/female first-name lists.
FIRST_NAMES: tuple[str, ...] = tuple(
    """
    JAMES JOHN ROBERT MICHAEL WILLIAM DAVID RICHARD CHARLES JOSEPH THOMAS
    CHRISTOPHER DANIEL PAUL MARK DONALD GEORGE KENNETH STEVEN EDWARD BRIAN
    RONALD ANTHONY KEVIN JASON MATTHEW GARY TIMOTHY JOSE LARRY JEFFREY
    FRANK SCOTT ERIC STEPHEN ANDREW RAYMOND GREGORY JOSHUA JERRY DENNIS
    WALTER PATRICK PETER HAROLD DOUGLAS HENRY CARL ARTHUR RYAN ROGER
    JOE JUAN JACK ALBERT JONATHAN JUSTIN TERRY GERALD KEITH SAMUEL
    WILLIE RALPH LAWRENCE NICHOLAS ROY BENJAMIN BRUCE BRANDON ADAM HARRY
    FRED WAYNE BILLY STEVE LOUIS JEREMY AARON RANDY HOWARD EUGENE
    CARLOS RUSSELL BOBBY VICTOR MARTIN ERNEST PHILLIP TODD JESSE CRAIG
    ALAN SHAWN CLARENCE SEAN PHILIP CHRIS JOHNNY EARL JIMMY ANTONIO
    MARY PATRICIA LINDA BARBARA ELIZABETH JENNIFER MARIA SUSAN MARGARET
    DOROTHY LISA NANCY KAREN BETTY HELEN SANDRA DONNA CAROL RUTH SHARON
    MICHELLE LAURA SARAH KIMBERLY DEBORAH JESSICA SHIRLEY CYNTHIA ANGELA
    MELISSA BRENDA AMY ANNA REBECCA VIRGINIA KATHLEEN PAMELA MARTHA DEBRA
    AMANDA STEPHANIE CAROLYN CHRISTINE MARIE JANET CATHERINE FRANCES ANN
    JOYCE DIANE ALICE JULIE HEATHER TERESA DORIS GLORIA EVELYN JEAN
    CHERYL MILDRED KATHERINE JOAN ASHLEY JUDITH ROSE JANICE KELLY NICOLE
    JUDY CHRISTINA KATHY THERESA BEVERLY DENISE TAMMY IRENE JANE LORI
    RACHEL MARILYN ANDREA KATHRYN LOUISE SARA ANNE JACQUELINE WANDA BONNIE
    JULIA RUBY LOIS TINA PHYLLIS NORMA PAULA DIANA ANNIE LILLIAN EMILY
    ROBIN PEGGY CRYSTAL GLADYS RITA DAWN CONNIE FLORENCE TRACY EDNA
    AL BO CY ED LU TY VI JO
    """.split()
)

# Top entries of the 2000 Census last-name list.
LAST_NAMES: tuple[str, ...] = tuple(
    """
    SMITH JOHNSON WILLIAMS BROWN JONES MILLER DAVIS GARCIA RODRIGUEZ WILSON
    MARTINEZ ANDERSON TAYLOR THOMAS HERNANDEZ MOORE MARTIN JACKSON THOMPSON
    WHITE LOPEZ LEE GONZALEZ HARRIS CLARK LEWIS ROBINSON WALKER PEREZ HALL
    YOUNG ALLEN SANCHEZ WRIGHT KING SCOTT GREEN BAKER ADAMS NELSON HILL
    RAMIREZ CAMPBELL MITCHELL ROBERTS CARTER PHILLIPS EVANS TURNER TORRES
    PARKER COLLINS EDWARDS STEWART FLORES MORRIS NGUYEN MURPHY RIVERA COOK
    ROGERS MORGAN PETERSON COOPER REED BAILEY BELL GOMEZ KELLY HOWARD WARD
    COX DIAZ RICHARDSON WOOD WATSON BROOKS BENNETT GRAY JAMES REYES CRUZ
    HUGHES PRICE MYERS LONG FOSTER SANDERS ROSS MORALES POWELL SULLIVAN
    RUSSELL ORTIZ JENKINS GUTIERREZ PERRY BUTLER BARNES FISHER HENDERSON
    COLEMAN SIMMONS PATTERSON JORDAN REYNOLDS HAMILTON GRAHAM KIM GONZALES
    ALEXANDER RAMOS WALLACE GRIFFIN WEST COLE HAYES CHAVEZ GIBSON BRYANT
    ELLIS STEVENS MURRAY FORD MARSHALL OWENS MCDONALD HARRISON RUIZ KENNEDY
    WELLS ALVAREZ WOODS MENDOZA CASTILLO OLSON WEBB WASHINGTON TUCKER FREEMAN
    BURNS HENRY VASQUEZ SNYDER SIMPSON CRAWFORD JIMENEZ PORTER MASON SHAW
    GORDON WAGNER HUNTER ROMERO HICKS DIXON HUNT PALMER ROBERTSON BLACK
    HOLMES STONE MEYER BOYD MILLS WARREN FOX ROSE RICE MORENO SCHMIDT
    PATEL FERGUSON NICHOLS HERRERA MEDINA RYAN FERNANDEZ WEAVER DANIELS
    STEPHENS GARDNER PAYNE KELLEY DUNN PIERCE ARNOLD TRAN SPENCER PETERS
    HAWKINS GRANT HANSEN CASTRO HOFFMAN HART ELLIOTT CUNNINGHAM KNIGHT
    BRADLEY CARROLL HUDSON DUNCAN ARMSTRONG BERRY ANDREWS JOHNSTON RAY
    LANE RILEY CARPENTER PERKINS AGUILAR SILVA RICHARDS WILLIS MATTHEWS
    CHAPMAN LAWRENCE GARZA VARGAS WATKINS WHEELER LARSON CARLSON HARPER
    GEORGE GREENE BURKE GUZMAN MORRISON MUNOZ JACOBS OBRIEN LAWSON FRANKLIN
    LYNCH BISHOP CARR SALAZAR AUSTIN MENDEZ GILBERT JENSEN WILLIAMSON
    MONTGOMERY HARVEY OLIVER HOWELL DEAN HANSON WEBER GARRETT SIMS BURTON
    FULLER SOTO MCCOY WELCH CHEN SCHULTZ WALTERS REID FIELDS WALSH LITTLE
    FOWLER BOWMAN DAVIDSON MAY DAY SCHNEIDER NEWMAN BREWER LUCAS HOLLAND
    WONG BANKS SANTOS CURTIS PEARSON DELGADO VALDEZ PENA RIOS DOUGLAS
    SANDOVAL BARRETT HOPKINS KELLER GUERRERO STANLEY BATES ALVARADO BECK
    ORTEGA WADE ESTRADA CONTRERAS BARNETT CALDWELL SANTIAGO LAMBERT POWERS
    CHAMBERS NUNEZ CRAIG LEONARD LOWE RHODES BYRD GREGORY SHELTON FRAZIER
    BECKER MALDONADO FLEMING VEGA SUTTON COHEN JENNINGS PARKS MCDANIEL
    WATTS BARKER NORRIS TERRY ROWE HODGES FRANCO MOLINA BRENNAN WYATT
    LI NG RE OH YU
    """.split()
)


class NameGenerator:
    """Letter-bigram Markov generator trained on a seed vocabulary.

    Generation conditions on the previous two letters (falling back to
    one, then to the overall letter distribution) and draws the target
    length from a user-supplied histogram, so the output pool matches
    both the micro-structure (letter transitions) and the macro-structure
    (Table 13 lengths) of real census names.
    """

    #: sentinel marking the start of a name in the transition tables
    _START = "^"

    def __init__(self, seed_vocabulary: Sequence[str]):
        if not seed_vocabulary:
            raise ValueError("seed vocabulary must be non-empty")
        self._bi: dict[str, list[str]] = defaultdict(list)
        self._uni: list[str] = []
        self._seed_list: list[str] = [n.upper() for n in seed_vocabulary]
        for name in self._seed_list:
            prev2, prev1 = self._START, self._START
            for ch in name:
                self._bi[prev2 + prev1].append(ch)
                self._bi[prev1].append(ch)
                self._uni.append(ch)
                prev2, prev1 = prev1, ch

    def _next_letter(self, prev2: str, prev1: str, rng: random.Random) -> str:
        for key in (prev2 + prev1, prev1):
            bucket = self._bi.get(key)
            if bucket:
                return rng.choice(bucket)
        return rng.choice(self._uni)

    def generate(self, length: int, rng: random.Random) -> str:
        """One name of exactly ``length`` letters."""
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        prev2, prev1 = self._START, self._START
        out: list[str] = []
        for _ in range(length):
            ch = self._next_letter(prev2, prev1, rng)
            out.append(ch)
            prev2, prev1 = prev1, ch
        return "".join(out)

    def pool(
        self,
        size: int,
        histogram: Mapping[int, int],
        rng: random.Random,
        *,
        include_seed: bool = True,
    ) -> list[str]:
        """A pool of ``size`` unique names with lengths drawn from
        ``histogram`` (scaled to ``size``).

        ``include_seed`` keeps the real seed names (that fit the
        histogram's length range) in the pool, so common names like
        SMITH appear alongside generated ones — matching the census
        files, where the high-frequency head is exactly these names.

        The pool always contains exactly ``size`` unique names: if a
        degenerate seed vocabulary exhausts the histogram's lengths
        (tiny alphabets admit few short strings), the remainder is
        generated at progressively longer lengths.
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        lengths = sorted(histogram)
        total = sum(histogram[L] for L in lengths)
        if total <= 0:
            raise ValueError("histogram must have positive total mass")
        quota = {L: max(0, round(histogram[L] * size / total)) for L in lengths}
        # Rounding drift: adjust the most common length to hit `size`.
        drift = size - sum(quota.values())
        bulk = max(lengths, key=lambda L: histogram[L])
        quota[bulk] = max(0, quota[bulk] + drift)
        pool: list[str] = []
        seen: set[str] = set()
        if include_seed:
            for name in self._seed_by_quota(quota):
                if name not in seen:
                    seen.add(name)
                    pool.append(name)
                    quota[len(name)] -= 1
        for L in lengths:
            need = quota[L]
            attempts = 0
            while need > 0:
                name = self.generate(L, rng)
                attempts += 1
                if name not in seen:
                    seen.add(name)
                    pool.append(name)
                    need -= 1
                elif attempts > 200 * max(1, quota[L]):
                    break  # this length is (effectively) exhausted
        # Top-up: degenerate seed vocabularies (tiny alphabets, single
        # names) can exhaust every histogram length.  Longer strings
        # always open fresh name space, so extend until filled rather
        # than silently under-delivering.
        extra_len = max(lengths) + 1
        attempts = 0
        while len(pool) < size:
            name = self.generate(extra_len, rng)
            if name not in seen:
                seen.add(name)
                pool.append(name)
                attempts = 0
            else:
                attempts += 1
                if attempts > 200:
                    extra_len += 1
                    attempts = 0
        rng.shuffle(pool)
        return pool[:size]

    def _seed_by_quota(self, quota: Mapping[int, int]) -> list[str]:
        names: list[str] = []
        budget = dict(quota)
        for name in self._seed_names():
            L = len(name)
            if budget.get(L, 0) > 0:
                names.append(name)
                budget[L] -= 1
        return names

    def _seed_names(self) -> list[str]:
        return self._seed_list


def build_last_name_pool(
    size: int,
    rng: random.Random,
    histogram: Mapping[int, int] | None = None,
) -> list[str]:
    """A pool of ``size`` unique census-like last names.

    Lengths follow the paper's Table 13 histogram by default.
    """
    gen = NameGenerator(LAST_NAMES)
    return gen.pool(size, histogram or PAPER_LN_LENGTH_HISTOGRAM, rng)


def build_first_name_pool(
    size: int,
    rng: random.Random,
    histogram: Mapping[int, int] | None = None,
) -> list[str]:
    """A pool of ``size`` unique census-like first names.

    Lengths follow :data:`PAPER_FN_LENGTH_HISTOGRAM` (min 2, max 11,
    mean about 5.96 — the paper's reported 1990 statistics).
    """
    gen = NameGenerator(FIRST_NAMES)
    return gen.pool(size, histogram or PAPER_FN_LENGTH_HISTOGRAM, rng)


def sample_zipfian_roster(
    size: int,
    rng: random.Random,
    *,
    vocabulary: Sequence[str] | None = None,
    exponent: float = 1.0,
    pool_size: int | None = None,
) -> list[str]:
    """A roster of ``size`` names drawn Zipf-like *with replacement*.

    The pool builders above produce all-unique vocabularies (one row per
    name, as a census list is); real rosters — a customer table, a
    payroll extract — repeat names with the census *frequency* skew,
    which is approximately Zipfian (SMITH alone covers about 1% of the
    2000 Census population).  This sampler turns a unique vocabulary
    into such a roster: name at frequency rank ``r`` is drawn with
    probability proportional to ``1 / r**exponent``.

    This is the workload the multiplicity layer
    (:mod:`repro.core.multiplicity`) exists for, and what the collapse
    ablation benchmark feeds the planner.

    >>> rng = random.Random(7)
    >>> roster = sample_zipfian_roster(1000, rng, pool_size=250)
    >>> len(roster), len(set(roster)) < 250
    (1000, True)
    """
    if size <= 0:
        return []
    if vocabulary is None:
        vocabulary = build_last_name_pool(
            pool_size or max(16, size // 4), rng
        )
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(vocabulary))]
    return rng.choices(list(vocabulary), weights=weights, k=size)
