"""Synthetic US street addresses.

The paper's address data came from local tax records: 547,771
standardized addresses over 3,874 unique streets, maximum length 25
characters.  This generator reproduces that shape with a grammar::

    <number> [<direction>] <street-name> <suffix>

over a street vocabulary built from the census surname generator plus
common descriptive street names.  Addresses are alphanumeric — digits in
the house number, letters everywhere else — which is exactly the case the
paper's 12-byte combined FBF signature (2 alpha words + 1 numeric word)
exists for.

A realistic address corpus has *many addresses per street* (about 141 in
the paper's data).  :func:`build_address_pool` therefore first fixes a
street vocabulary, then samples house numbers against it, so the pool
exhibits the high prefix-collision rate that makes address matching hard
for phonetic and token methods.
"""

from __future__ import annotations

import random
from repro.data.names import LAST_NAMES, NameGenerator

__all__ = ["AddressGenerator", "build_address_pool", "STREET_SUFFIXES"]

#: USPS-style suffix abbreviations weighted toward the common ones.
STREET_SUFFIXES: tuple[str, ...] = (
    "ST",
    "ST",
    "ST",
    "AVE",
    "AVE",
    "AVE",
    "RD",
    "RD",
    "DR",
    "DR",
    "LN",
    "CT",
    "PL",
    "BLVD",
    "WAY",
    "TER",
    "CIR",
    "PIKE",
)

_DIRECTIONS: tuple[str, ...] = ("", "", "", "", "N", "S", "E", "W")

#: Descriptive street-name stems mixed into the surname-derived streets.
_DESCRIPTIVE_STEMS: tuple[str, ...] = (
    "MAIN",
    "OAK",
    "PINE",
    "MAPLE",
    "CEDAR",
    "ELM",
    "WALNUT",
    "CHESTNUT",
    "SPRUCE",
    "WILLOW",
    "PARK",
    "LAKE",
    "HILL",
    "RIDGE",
    "RIVER",
    "SPRING",
    "SUNSET",
    "HIGHLAND",
    "FOREST",
    "MEADOW",
    "CHERRY",
    "DOGWOOD",
    "MARKET",
    "BROAD",
    "CHURCH",
    "MILL",
    "BRIDGE",
    "CANAL",
    "FRONT",
    "WATER",
)

#: Paper's maximum standardized address length.
MAX_ADDRESS_LENGTH = 25


class AddressGenerator:
    """Grammar-based address generator over a fixed street vocabulary."""

    def __init__(
        self,
        n_streets: int = 3874,
        rng: random.Random | None = None,
        *,
        max_length: int = MAX_ADDRESS_LENGTH,
    ):
        if n_streets < 1:
            raise ValueError(f"n_streets must be >= 1, got {n_streets}")
        self.max_length = max_length
        rng = rng or random.Random(0)
        namegen = NameGenerator(LAST_NAMES)
        streets: set[str] = set(_DESCRIPTIVE_STEMS[: min(len(_DESCRIPTIVE_STEMS), n_streets)])
        # Street-name stems are surname-shaped: 4-9 letters.
        while len(streets) < n_streets:
            streets.add(namegen.generate(rng.randint(4, 9), rng))
        self.streets: tuple[str, ...] = tuple(sorted(streets))

    def generate(self, rng: random.Random) -> str:
        """One standardized address, at most ``max_length`` characters."""
        while True:
            number = str(rng.randint(1, 9999))
            direction = rng.choice(_DIRECTIONS)
            street = rng.choice(self.streets)
            suffix = rng.choice(STREET_SUFFIXES)
            parts = [number]
            if direction:
                parts.append(direction)
            parts.extend((street, suffix))
            address = " ".join(parts)
            if len(address) <= self.max_length:
                return address

    def pool(self, size: int, rng: random.Random) -> list[str]:
        """A pool of ``size`` unique addresses."""
        seen: set[str] = set()
        out: list[str] = []
        attempts = 0
        limit = 100 * size + 1000
        while len(out) < size:
            a = self.generate(rng)
            attempts += 1
            if a not in seen:
                seen.add(a)
                out.append(a)
            if attempts > limit:
                raise RuntimeError(
                    f"could not generate {size} unique addresses over "
                    f"{len(self.streets)} streets"
                )
        return out


def build_address_pool(
    size: int,
    rng: random.Random,
    n_streets: int | None = None,
) -> list[str]:
    """A pool of ``size`` unique addresses.

    The street vocabulary scales with the pool (about one street per 141
    addresses, the paper's ratio) unless ``n_streets`` is given.
    """
    streets = n_streets if n_streets is not None else max(30, size // 141 + 30)
    gen = AddressGenerator(streets, random.Random(rng.getrandbits(32)))
    return gen.pool(size, rng)
