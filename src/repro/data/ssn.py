"""Synthetic Social Security Numbers under the pre-2011 SSA scheme.

The paper generated 12,000 SSNs "by the same rules that the Social
Security Administration uses to issue actual SSNs" — i.e. the scheme in
force in 2012, before randomization:

* **Area** (3 digits): 001-899, excluding 666 (never issued; 900-999
  are reserved for ITINs).
* **Group** (2 digits): 01-99 (00 invalid).
* **Serial** (4 digits): 0001-9999 (0000 invalid).

Rendered as a fixed 9-digit string, the paper's SSN field shape.
"""

from __future__ import annotations

import random

__all__ = ["random_ssn", "build_ssn_pool", "is_valid_ssn"]


def random_ssn(rng: random.Random) -> str:
    """One SSA-valid 9-digit SSN string."""
    while True:
        area = rng.randint(1, 899)
        if area != 666:
            break
    group = rng.randint(1, 99)
    serial = rng.randint(1, 9999)
    return f"{area:03d}{group:02d}{serial:04d}"


def is_valid_ssn(ssn: str) -> bool:
    """Does a 9-digit string satisfy the pre-2011 issuance constraints?"""
    if len(ssn) != 9 or not ssn.isdigit():
        return False
    area, group, serial = int(ssn[:3]), int(ssn[3:5]), int(ssn[5:])
    return 1 <= area <= 899 and area != 666 and group >= 1 and serial >= 1


def build_ssn_pool(size: int, rng: random.Random) -> list[str]:
    """A pool of ``size`` unique SSNs."""
    seen: set[str] = set()
    out: list[str] = []
    while len(out) < size:
        s = random_ssn(rng)
        if s not in seen:
            seen.add(s)
            out.append(s)
    return out
