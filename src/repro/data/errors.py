"""Single-edit data entry error injection.

Damerau's study (cited as the paper's [17]) found that about 80% of data
entry errors are a single character substitution, deletion, insertion or
adjacent transposition.  The paper's experiments inject exactly one such
edit into each clean string to form the "error" dataset, keeping the
clean/error twins index-aligned as ground truth.

:class:`ErrorInjector` reproduces that protocol and guarantees the
injected string is at OSA distance **exactly 1** from the original (each
op is one edit, and no op can produce the original string) — an invariant
the property suite pins, because the whole evaluation depends on "k = 1
recovers every true match".
"""

from __future__ import annotations

import enum
import random
import string as _string
from typing import Sequence

__all__ = ["EditOp", "ErrorInjector", "inject_error", "infer_alphabet"]


class EditOp(enum.Enum):
    """Damerau's four single-edit data entry error classes."""

    SUBSTITUTE = "substitute"
    DELETE = "delete"
    INSERT = "insert"
    TRANSPOSE = "transpose"


_DIGITS = _string.digits
_UPPER = _string.ascii_uppercase


def infer_alphabet(s: str) -> str:
    """Plausible replacement alphabet for a string's data family.

    All-digit strings draw replacements from digits (a mistyped SSN stays
    numeric), letter strings from A-Z, and mixed content from both.
    """
    has_digit = any(c in _DIGITS for c in s)
    has_alpha = any(c.isalpha() for c in s)
    if has_digit and not has_alpha:
        return _DIGITS
    if has_alpha and not has_digit:
        return _UPPER
    return _UPPER + _DIGITS


class ErrorInjector:
    """Injects one random single edit per call.

    Parameters
    ----------
    ops:
        Permitted edit classes; defaults to all four.
    alphabet:
        Replacement/insertion alphabet; inferred per string when omitted.
    min_length:
        Deletions that would take a string below this length are
        re-drawn as other ops (default 1: no empty strings, which the
        paper's PDL rejects unconditionally).
    """

    def __init__(
        self,
        ops: Sequence[EditOp] = tuple(EditOp),
        alphabet: str | None = None,
        min_length: int = 1,
    ):
        if not ops:
            raise ValueError("at least one edit op is required")
        self.ops = tuple(ops)
        self.alphabet = alphabet
        self.min_length = max(0, min_length)

    def inject(self, s: str, rng: random.Random) -> str:
        """One single-edit corruption of ``s`` (OSA distance exactly 1)."""
        if not s:
            raise ValueError("cannot inject an error into an empty string")
        alphabet = self.alphabet or infer_alphabet(s)
        candidates = list(self.ops)
        rng.shuffle(candidates)
        for op in candidates:
            result = self._apply(op, s, alphabet, rng)
            if result is not None:
                return result
        # Every op was infeasible (e.g. single-char string, transpose-only
        # injector).  Substitution is always feasible with >= 2 symbols.
        if len(alphabet) >= 2:
            return self._apply(EditOp.SUBSTITUTE, s, alphabet, rng)  # type: ignore[return-value]
        raise ValueError(f"no feasible edit for {s!r} with ops {self.ops}")

    def inject_many(
        self, strings: Sequence[str], rng: random.Random
    ) -> list[str]:
        """One corruption per input, index-aligned."""
        return [self.inject(s, rng) for s in strings]

    def _apply(
        self, op: EditOp, s: str, alphabet: str, rng: random.Random
    ) -> str | None:
        """One edit of class ``op``, or ``None`` when infeasible."""
        if op is EditOp.SUBSTITUTE:
            i = rng.randrange(len(s))
            choices = [c for c in alphabet if c != s[i]]
            if not choices:
                return None
            return s[:i] + rng.choice(choices) + s[i + 1 :]
        if op is EditOp.DELETE:
            if len(s) - 1 < self.min_length:
                return None
            i = rng.randrange(len(s))
            return s[:i] + s[i + 1 :]
        if op is EditOp.INSERT:
            i = rng.randrange(len(s) + 1)
            return s[:i] + rng.choice(alphabet) + s[i:]
        if op is EditOp.TRANSPOSE:
            spots = [i for i in range(len(s) - 1) if s[i] != s[i + 1]]
            if not spots:
                return None
            i = rng.choice(spots)
            return s[:i] + s[i + 1] + s[i] + s[i + 2 :]
        raise ValueError(f"unknown edit op {op!r}")


def inject_error(
    s: str,
    rng: random.Random,
    ops: Sequence[EditOp] = tuple(EditOp),
    alphabet: str | None = None,
) -> str:
    """Convenience one-shot: ``ErrorInjector(ops, alphabet).inject(s, rng)``."""
    return ErrorInjector(ops, alphabet).inject(s, rng)
