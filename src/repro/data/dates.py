"""Random birthdates over the paper's 100-year window.

The paper's birthdates were "randomly selected over 100 years between
2/25/1912 and 2/24/2012 or 36,525 unique dates" and the field is
fixed-length at 8 characters — rendered here as ``MMDDYYYY``.
"""

from __future__ import annotations

import datetime as _dt
import random

__all__ = ["PAPER_DATE_RANGE", "random_birthdate", "build_birthdate_pool"]

#: The paper's sampling window (inclusive on both ends): 36,525 days.
PAPER_DATE_RANGE: tuple[_dt.date, _dt.date] = (
    _dt.date(1912, 2, 25),
    _dt.date(2012, 2, 24),
)


def random_birthdate(
    rng: random.Random,
    date_range: tuple[_dt.date, _dt.date] = PAPER_DATE_RANGE,
) -> str:
    """One birthdate as an 8-character ``MMDDYYYY`` string."""
    start, end = date_range
    if end < start:
        raise ValueError(f"empty date range: {start}..{end}")
    span = (end - start).days
    d = start + _dt.timedelta(days=rng.randint(0, span))
    return f"{d.month:02d}{d.day:02d}{d.year:04d}"


def build_birthdate_pool(
    size: int,
    rng: random.Random,
    date_range: tuple[_dt.date, _dt.date] = PAPER_DATE_RANGE,
    *,
    unique: bool = False,
) -> list[str]:
    """A pool of ``size`` birthdates.

    The paper's 35,525 birthdates over 36,525 possible dates necessarily
    repeat in samples, so duplicates are allowed by default; pass
    ``unique=True`` for a duplicate-free pool (``size`` must then not
    exceed the number of days in the range).
    """
    if not unique:
        return [random_birthdate(rng, date_range) for _ in range(size)]
    span = (date_range[1] - date_range[0]).days + 1
    if size > span:
        raise ValueError(f"cannot draw {size} unique dates from a {span}-day range")
    seen: set[str] = set()
    out: list[str] = []
    while len(out) < size:
        d = random_birthdate(rng, date_range)
        if d not in seen:
            seen.add(d)
            out.append(d)
    return out
