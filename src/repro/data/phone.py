"""NANP-valid synthetic phone numbers.

The paper generated 12,000 phone numbers "based on the numbering scheme
of the North American Numbering Plan".  The NANP format is
``NPA-NXX-XXXX`` rendered here as a fixed 10-digit string (the paper's
phone field is 10 characters, no separators):

* **NPA** (area code): ``[2-9][0-8][0-9]``, excluding the N11 service
  codes and the 37X/96X expansion reserves.
* **NXX** (central office / exchange): ``[2-9][0-9][0-9]``, excluding
  N11 service codes and 555 (fiction / directory assistance).
* **XXXX** (subscriber): ``0000``-``9999``.

Fixed-length numeric strings are the length filter's worst case — every
pair passes — which is why the paper demonstrates FBF on them first.
"""

from __future__ import annotations

import random

__all__ = ["random_nanp_number", "build_phone_pool", "is_valid_nanp"]


def random_nanp_number(rng: random.Random) -> str:
    """One NANP-valid 10-digit phone number."""
    while True:
        npa = f"{rng.randint(2, 9)}{rng.randint(0, 8)}{rng.randint(0, 9)}"
        if npa[1:] == "11" or npa[1] == "7" and npa[0] == "3":
            continue  # N11 service codes, 37X reserve
        if npa[0] == "9" and npa[1] == "6":
            continue  # 96X reserve
        break
    while True:
        nxx = f"{rng.randint(2, 9)}{rng.randint(0, 9)}{rng.randint(0, 9)}"
        if nxx[1:] == "11" or nxx == "555":
            continue
        break
    subscriber = f"{rng.randint(0, 9999):04d}"
    return npa + nxx + subscriber


def is_valid_nanp(number: str) -> bool:
    """Does a 10-digit string satisfy the constraints generated above?"""
    if len(number) != 10 or not number.isdigit():
        return False
    npa, nxx = number[:3], number[3:6]
    if npa[0] in "01" or npa[1] == "9":
        return False
    if npa[1:] == "11" or (npa[0] == "3" and npa[1] == "7"):
        return False
    if npa[0] == "9" and npa[1] == "6":
        return False
    if nxx[0] in "01" or nxx[1:] == "11" or nxx == "555":
        return False
    return True


def build_phone_pool(size: int, rng: random.Random) -> list[str]:
    """A pool of ``size`` unique NANP numbers."""
    seen: set[str] = set()
    out: list[str] = []
    while len(out) < size:
        n = random_nanp_number(rng)
        if n not in seen:
            seen.add(n)
            out.append(n)
    return out
