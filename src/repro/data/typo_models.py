"""Realistic typo models: keyboard adjacency and OCR confusion.

The base :class:`repro.data.errors.ErrorInjector` substitutes uniformly
over the field's alphabet.  Real data entry errors are not uniform:
typists hit *neighbouring* keys, and scanned documents confuse
*look-alike* glyphs.  These models bias the replacement distribution
accordingly while preserving the ground-truth invariant everything
depends on — the corrupted string stays at OSA distance exactly 1.

FBF's safety guarantee is distribution-free, so all experiments must
come out accuracy-identical under any of these models; the error-model
ablation (``benchmarks/test_ablation_error_models.py``) verifies that
and measures how filter *selectivity* shifts (neighbour-key errors
produce signatures closer to the original than uniform ones do... or
not — the signature only sees which character, not which key).
"""

from __future__ import annotations

import random

from repro.data.errors import EditOp, ErrorInjector

__all__ = [
    "QWERTY_NEIGHBOURS",
    "KEYPAD_NEIGHBOURS",
    "OCR_CONFUSIONS",
    "keyboard_injector",
    "keypad_injector",
    "ocr_injector",
]

#: QWERTY physical adjacency (letters only, uppercase).
QWERTY_NEIGHBOURS: dict[str, str] = {
    "Q": "WA",
    "W": "QESA",
    "E": "WRDS",
    "R": "ETFD",
    "T": "RYGF",
    "Y": "TUHG",
    "U": "YIJH",
    "I": "UOKJ",
    "O": "IPLK",
    "P": "OL",
    "A": "QWSZ",
    "S": "AWEDZX",
    "D": "SERFXC",
    "F": "DRTGCV",
    "G": "FTYHVB",
    "H": "GYUJBN",
    "J": "HUIKNM",
    "K": "JIOLM",
    "L": "KOP",
    "Z": "ASX",
    "X": "ZSDC",
    "C": "XDFV",
    "V": "CFGB",
    "B": "VGHN",
    "N": "BHJM",
    "M": "NJK",
}

#: Telephone/numeric keypad adjacency (3x3 grid with 0 below 8).
KEYPAD_NEIGHBOURS: dict[str, str] = {
    "1": "24",
    "2": "135",
    "3": "26",
    "4": "157",
    "5": "2468",
    "6": "359",
    "7": "48",
    "8": "5790",
    "9": "68",
    "0": "8",
}

#: Common OCR glyph confusions (symmetrized at build time below).
_OCR_BASE: dict[str, str] = {
    "0": "OD",
    "1": "IL",
    "2": "Z",
    "5": "S",
    "6": "G",
    "8": "B",
    "O": "0DQ",
    "I": "1LT",
    "L": "1I",
    "Z": "2",
    "S": "5",
    "G": "6C",
    "B": "8R",
    "D": "0O",
    "Q": "O",
    "C": "G",
    "R": "B",
    "T": "I",
}


def _symmetrize(table: dict[str, str]) -> dict[str, str]:
    out: dict[str, set[str]] = {c: set(v) for c, v in table.items()}
    for c, vs in table.items():
        for v in vs:
            out.setdefault(v, set()).add(c)
    return {c: "".join(sorted(vs - {c})) for c, vs in out.items()}


OCR_CONFUSIONS: dict[str, str] = _symmetrize(_OCR_BASE)


class _ConfusionInjector(ErrorInjector):
    """ErrorInjector whose substitutions draw from a confusion table.

    Characters absent from the table fall back to the base alphabet
    (every character must remain corruptible or the distance-1
    guarantee would silently fail for table-sparse strings).
    """

    def __init__(
        self,
        confusions: dict[str, str],
        ops=tuple(EditOp),
        alphabet: str | None = None,
        min_length: int = 1,
    ):
        super().__init__(ops=ops, alphabet=alphabet, min_length=min_length)
        self.confusions = {
            c.upper(): v for c, v in confusions.items() if v
        }

    def _apply(self, op, s: str, alphabet: str, rng: random.Random):
        if op is EditOp.SUBSTITUTE:
            # Prefer a position whose character has confusion entries.
            positions = list(range(len(s)))
            rng.shuffle(positions)
            for i in positions:
                table = self.confusions.get(s[i].upper())
                if table:
                    repl = rng.choice(table)
                    if repl != s[i]:
                        return s[:i] + repl + s[i + 1 :]
            # No confusable character: fall back to a uniform sub.
            return super()._apply(op, s, alphabet, rng)
        return super()._apply(op, s, alphabet, rng)


def keyboard_injector(
    ops=tuple(EditOp), min_length: int = 1
) -> ErrorInjector:
    """Typist model: substitutions hit QWERTY-adjacent keys."""
    return _ConfusionInjector(QWERTY_NEIGHBOURS, ops=ops, min_length=min_length)


def keypad_injector(
    ops=tuple(EditOp), min_length: int = 1
) -> ErrorInjector:
    """Numeric-entry model: substitutions hit keypad-adjacent digits."""
    return _ConfusionInjector(KEYPAD_NEIGHBOURS, ops=ops, min_length=min_length)


def ocr_injector(ops=tuple(EditOp), min_length: int = 1) -> ErrorInjector:
    """Scanning model: substitutions confuse look-alike glyphs."""
    return _ConfusionInjector(OCR_CONFUSIONS, ops=ops, min_length=min_length)
