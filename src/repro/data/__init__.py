"""Synthetic demographic data substrate.

The paper evaluates on six data families (Section 5): Census first names,
Census last names, local street addresses, NANP phone numbers, SSA-scheme
Social Security Numbers and 100-year birthdates.  The real Census files
and tax-record addresses are not redistributable, so this subpackage
builds calibrated synthetic equivalents (see DESIGN.md, substitutions
table):

* :mod:`repro.data.names` — first/last name pools: embedded real
  high-frequency census names extended by a letter-bigram generator
  calibrated to the paper's Table 13 length histogram.
* :mod:`repro.data.addresses` — street addresses from a number /
  direction / street / suffix grammar over a configurable street
  vocabulary (the paper's source had 3,874 unique streets, max 25 chars).
* :mod:`repro.data.phone` — NANP-valid 10-digit phone numbers.
* :mod:`repro.data.ssn` — pre-2011 SSA area/group/serial SSNs.
* :mod:`repro.data.dates` — birthdates over the paper's 100-year window.
* :mod:`repro.data.errors` — single-edit error injection (substitution,
  deletion, insertion, adjacent transposition), Damerau's four
  data-entry error classes.
* :mod:`repro.data.datasets` — clean/error dataset pairing with the
  positional ground truth the experiments score against.

All generators take an explicit :class:`random.Random` so every
experiment is reproducible from a seed.
"""

from repro.data.addresses import AddressGenerator, build_address_pool
from repro.data.dates import PAPER_DATE_RANGE, build_birthdate_pool, random_birthdate
from repro.data.datasets import DatasetPair, dataset_for_family, make_pair
from repro.data.errors import EditOp, ErrorInjector, inject_error
from repro.data.names import (
    FIRST_NAMES,
    LAST_NAMES,
    NameGenerator,
    PAPER_LN_LENGTH_HISTOGRAM,
    build_first_name_pool,
    build_last_name_pool,
)
from repro.data.phone import build_phone_pool, random_nanp_number
from repro.data.ssn import build_ssn_pool, random_ssn
from repro.data.typo_models import keyboard_injector, keypad_injector, ocr_injector

__all__ = [
    "AddressGenerator",
    "DatasetPair",
    "EditOp",
    "ErrorInjector",
    "FIRST_NAMES",
    "LAST_NAMES",
    "NameGenerator",
    "PAPER_DATE_RANGE",
    "PAPER_LN_LENGTH_HISTOGRAM",
    "build_address_pool",
    "build_birthdate_pool",
    "build_first_name_pool",
    "build_last_name_pool",
    "build_phone_pool",
    "build_ssn_pool",
    "dataset_for_family",
    "inject_error",
    "keyboard_injector",
    "keypad_injector",
    "make_pair",
    "ocr_injector",
    "random_birthdate",
    "random_nanp_number",
    "random_ssn",
]
