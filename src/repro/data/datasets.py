"""Clean/error dataset pairs with positional ground truth.

The paper's string experiments all share one protocol (Section 5): draw a
sample from a data pool, copy it, inject one single-edit error into every
copied entry, and match the clean list against the error list — entry
``i`` of each list is the same entity, so the ground truth is the
diagonal of the pair matrix.

:class:`DatasetPair` packages that protocol;
:func:`dataset_for_family` builds the pair for any of the paper's six
data families by name, which is what the benchmark harness calls.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.data.addresses import build_address_pool
from repro.data.dates import build_birthdate_pool
from repro.data.errors import ErrorInjector
from repro.data.names import build_first_name_pool, build_last_name_pool
from repro.data.phone import build_phone_pool
from repro.data.ssn import build_ssn_pool

__all__ = ["DatasetPair", "make_pair", "dataset_for_family", "FAMILIES"]


@dataclass
class DatasetPair:
    """A clean list, its error-injected twin, and the sampling metadata.

    ``clean[i]`` and ``error[i]`` denote the same entity; every
    off-diagonal predicted match is a Type 1 error under this ground
    truth (even when two pool entries happen to be genuinely similar —
    the paper counts those as false positives too, which is why its DL
    rows report nonzero Type 1).
    """

    family: str
    clean: list[str]
    error: list[str]
    seed: int

    def __post_init__(self) -> None:
        if len(self.clean) != len(self.error):
            raise ValueError(
                f"clean/error length mismatch: {len(self.clean)} vs {len(self.error)}"
            )

    @property
    def n(self) -> int:
        return len(self.clean)

    @property
    def true_matches(self) -> int:
        """Number of ground-truth matching pairs (the diagonal)."""
        return self.n

    @property
    def pair_count(self) -> int:
        """Total pairs the full join compares."""
        return self.n * self.n


def make_pair(
    family: str,
    pool: Sequence[str],
    n: int,
    rng: random.Random,
    injector: ErrorInjector | None = None,
) -> DatasetPair:
    """Sample ``n`` entries from ``pool`` and build the clean/error pair."""
    if n > len(pool):
        raise ValueError(f"sample size {n} exceeds pool size {len(pool)}")
    seed = rng.getrandbits(32)
    local = random.Random(seed)
    clean = local.sample(list(pool), n)
    injector = injector or ErrorInjector()
    error = injector.inject_many(clean, local)
    return DatasetPair(family=family, clean=clean, error=error, seed=seed)


@dataclass(frozen=True)
class _Family:
    name: str
    build_pool: Callable[[int, random.Random], list[str]]
    #: pool size used by the paper (sampled down to the experiment n)
    paper_pool: int
    kind: str  # FBF signature kind
    fixed_length: bool


FAMILIES: dict[str, _Family] = {
    f.name: f
    for f in (
        _Family("FN", build_first_name_pool, 5163, "alpha", False),
        _Family("LN", build_last_name_pool, 151_670, "alpha", False),
        _Family("Ad", build_address_pool, 547_771, "alnum", False),
        _Family("Ph", build_phone_pool, 12_000, "numeric", True),
        _Family("Bi", build_birthdate_pool, 35_525, "numeric", True),
        _Family("SSN", build_ssn_pool, 12_000, "numeric", True),
    )
}


def dataset_for_family(
    family: str,
    n: int,
    seed: int = 0,
    *,
    pool_size: int | None = None,
) -> DatasetPair:
    """Build the clean/error pair for one of the paper's data families.

    ``family`` is one of ``FN``, ``LN``, ``Ad``, ``Ph``, ``Bi``, ``SSN``
    (the paper's abbreviations).  The backing pool defaults to roughly
    4x the sample (capped at the paper's pool size) so sampling is
    meaningful without paying for a 150k-name pool in every test; pass
    ``pool_size`` to override — e.g. the paper's full pool for
    paper-scale runs.
    """
    spec = FAMILIES.get(family)
    if spec is None:
        raise ValueError(f"unknown family {family!r}; expected one of {sorted(FAMILIES)}")
    rng = random.Random(seed)
    size = pool_size if pool_size is not None else min(spec.paper_pool, max(n * 4, n + 16))
    if size < n:
        raise ValueError(f"pool_size {size} is smaller than the sample {n}")
    pool = spec.build_pool(size, rng)
    return make_pair(family, pool, n, rng)
