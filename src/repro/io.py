"""Dataset I/O: CSV record files and plain string lists.

The linkage engine operates on :class:`repro.linkage.records.Record`
lists; real deployments read them from files.  This module provides the
minimal, dependency-free I/O a downstream user needs:

* :func:`read_records_csv` / :func:`write_records_csv` — client records
  with the paper's seven-field schema.  Unknown columns are ignored,
  missing columns become empty fields (the comparators' missing-value
  convention), so partial extracts load cleanly.
* :func:`read_strings` / :func:`iter_strings` / :func:`write_strings` —
  newline-delimited string lists (what the ``match``/``dedupe`` CLI
  commands consume).  ``iter_strings`` is the lazy form: it yields one
  stripped non-empty line at a time, so a roster larger than RAM can
  stream through :mod:`repro.stream` without ever materializing.  Both
  readers are gzip-aware: a ``.gz`` suffix (or the gzip magic bytes)
  transparently decompresses.
* :func:`write_matches_csv` — match pairs with their records side by
  side, the file a review workflow consumes.
"""

from __future__ import annotations

import csv
import gzip
from pathlib import Path
from typing import IO, Iterable, Iterator, Sequence

from repro.linkage.records import FIELDS, Record

__all__ = [
    "read_records_csv",
    "write_records_csv",
    "read_strings",
    "iter_strings",
    "open_text",
    "write_strings",
    "write_matches_csv",
]

#: first two bytes of every gzip stream (RFC 1952)
_GZIP_MAGIC = b"\x1f\x8b"


def _is_gzip(path: Path) -> bool:
    if path.suffix == ".gz":
        return True
    try:
        with path.open("rb") as fh:
            return fh.read(2) == _GZIP_MAGIC
    except OSError:
        return False


def open_text(path: Path | str) -> IO[str]:
    """Open ``path`` for text reading, transparently gunzipping.

    Gzip is detected by the ``.gz`` suffix or the stream's magic bytes,
    so renamed compressed extracts still load.  The returned handle
    supports ``tell()``/``seek()`` in *uncompressed* coordinates (for
    gzip, seeking rewinds and re-decompresses — linear, but correct —
    which is what the streaming checkpoint layer relies on).
    """
    path = Path(path)
    if _is_gzip(path):
        return gzip.open(path, "rt", encoding="utf-8")
    return path.open("r", encoding="utf-8")


def read_records_csv(path: Path | str) -> list[Record]:
    """Load records from a CSV file with a header row.

    Header names are matched case-insensitively against the schema
    (``first_name, last_name, address, phone, gender, ssn, birthdate``);
    at least one schema column must be present.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty file, expected a CSV header")
        mapping = {
            name: name.strip().lower()
            for name in reader.fieldnames
            if name and name.strip().lower() in FIELDS
        }
        if not mapping:
            raise ValueError(
                f"{path}: no schema columns found in header "
                f"{reader.fieldnames}; expected some of {list(FIELDS)}"
            )
        records = []
        for row in reader:
            values = {field: "" for field in FIELDS}
            for col, field in mapping.items():
                values[field] = (row.get(col) or "").strip()
            records.append(Record(**values))
    if not records:
        raise ValueError(f"{path}: no data rows")
    return records


def write_records_csv(path: Path | str, records: Sequence[Record]) -> None:
    """Write records with the full schema header."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(FIELDS)
        for r in records:
            writer.writerow([r[field] for field in FIELDS])


def iter_strings(path: Path | str) -> Iterator[str]:
    """Lazily yield the non-empty stripped lines of a text file.

    The streaming twin of :func:`read_strings`: one line is resident at
    a time, so arbitrarily large rosters can feed the out-of-core join
    driver (:mod:`repro.stream`) or any other incremental consumer.
    Gzip-compressed files are decompressed transparently.
    """
    with open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield line


def read_strings(path: Path | str) -> list[str]:
    """Non-empty stripped lines of a text file (gzip-aware)."""
    path = Path(path)
    lines = list(iter_strings(path))
    if not lines:
        raise ValueError(f"{path}: contains no strings")
    return lines


def write_strings(path: Path | str, strings: Iterable[str]) -> None:
    Path(path).write_text("".join(f"{s}\n" for s in strings))


def write_matches_csv(
    path: Path | str,
    matches: Iterable[tuple[int, int]],
    left: Sequence[Record],
    right: Sequence[Record],
) -> int:
    """Write matched record pairs side by side; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["left_id", "right_id"]
            + [f"left_{f}" for f in FIELDS]
            + [f"right_{f}" for f in FIELDS]
        )
        for i, j in matches:
            writer.writerow(
                [i, j]
                + [left[i][f] for f in FIELDS]
                + [right[j][f] for f in FIELDS]
            )
            count += 1
    return count
