"""Dataset I/O: CSV record files and plain string lists.

The linkage engine operates on :class:`repro.linkage.records.Record`
lists; real deployments read them from files.  This module provides the
minimal, dependency-free I/O a downstream user needs:

* :func:`read_records_csv` / :func:`write_records_csv` — client records
  with the paper's seven-field schema.  Unknown columns are ignored,
  missing columns become empty fields (the comparators' missing-value
  convention), so partial extracts load cleanly.
* :func:`read_strings` / :func:`write_strings` — newline-delimited
  string lists (what the ``match``/``dedupe`` CLI commands consume).
* :func:`write_matches_csv` — match pairs with their records side by
  side, the file a review workflow consumes.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.linkage.records import FIELDS, Record

__all__ = [
    "read_records_csv",
    "write_records_csv",
    "read_strings",
    "write_strings",
    "write_matches_csv",
]


def read_records_csv(path: Path | str) -> list[Record]:
    """Load records from a CSV file with a header row.

    Header names are matched case-insensitively against the schema
    (``first_name, last_name, address, phone, gender, ssn, birthdate``);
    at least one schema column must be present.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty file, expected a CSV header")
        mapping = {
            name: name.strip().lower()
            for name in reader.fieldnames
            if name and name.strip().lower() in FIELDS
        }
        if not mapping:
            raise ValueError(
                f"{path}: no schema columns found in header "
                f"{reader.fieldnames}; expected some of {list(FIELDS)}"
            )
        records = []
        for row in reader:
            values = {field: "" for field in FIELDS}
            for col, field in mapping.items():
                values[field] = (row.get(col) or "").strip()
            records.append(Record(**values))
    if not records:
        raise ValueError(f"{path}: no data rows")
    return records


def write_records_csv(path: Path | str, records: Sequence[Record]) -> None:
    """Write records with the full schema header."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(FIELDS)
        for r in records:
            writer.writerow([r[field] for field in FIELDS])


def read_strings(path: Path | str) -> list[str]:
    """Non-empty stripped lines of a text file."""
    path = Path(path)
    lines = [line.strip() for line in path.read_text().splitlines()]
    lines = [line for line in lines if line]
    if not lines:
        raise ValueError(f"{path}: contains no strings")
    return lines


def write_strings(path: Path | str, strings: Iterable[str]) -> None:
    Path(path).write_text("".join(f"{s}\n" for s in strings))


def write_matches_csv(
    path: Path | str,
    matches: Iterable[tuple[int, int]],
    left: Sequence[Record],
    right: Sequence[Record],
) -> int:
    """Write matched record pairs side by side; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["left_id", "right_id"]
            + [f"left_{f}" for f in FIELDS]
            + [f"right_{f}" for f in FIELDS]
        )
        for i, j in matches:
            writer.writerow(
                [i, j]
                + [left[i][f] for f in FIELDS]
                + [right[j][f] for f in FIELDS]
            )
            count += 1
    return count
