"""FBF signature index: one-to-many approximate search (extension).

The paper's join (Algorithm 7) is batch many-to-many; its motivating
system also answers *online* "client match queries" against the indexed
population.  :class:`FBFIndex` serves that shape: index a dataset once
(signatures + length buckets), then answer ``search(query, k)`` by

1. **length pruning** — only buckets with ``abs(len - len(query)) <= k``
   are touched at all (Algorithm 3, at bucket granularity);
2. **FBF filtering** — one vectorized XOR+popcount sweep over each
   surviving bucket's signature matrix, keeping
   ``diff_bits <= 2k + slack``;
3. **verification** — banded OSA (the paper's PDL semantics) over the
   few survivors, or Myers' bit-parallel Levenshtein for
   transposition-less workloads.

Both filter stages are *safe* (never drop a true match; property-tested
in ``tests/core/test_index.py``), so ``search`` returns exactly the
strings within ``k`` edits.  ``add`` supports the paper's daily-update
scenario: new strings are appended to pending buckets and folded into
the packed matrices lazily.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.core.popcount import popcount_batch_u32
from repro.core.signatures import SignatureScheme, detect_kind, scheme_for
from repro.core.vectorized import signatures_for_scheme
from repro.distance.base import validate_threshold
from repro.obs.stats import NULL_COLLECTOR
from repro.distance.bitparallel import osa_bitparallel_batch
from repro.distance.codec import encode_raw
from repro.distance.myers import MAX_PATTERN, myers_batch
from repro.distance.vectorized import osa_within_k_pairs

__all__ = ["FBFIndex"]


class _Bucket:
    """All indexed strings of one length: packed arrays + pending adds."""

    def __init__(self, width: int):
        self.ids: np.ndarray = np.empty(0, dtype=np.int64)
        self.sigs: np.ndarray = np.empty((0, width), dtype=np.uint32)
        self.codes: np.ndarray = np.empty((0, 0), dtype=np.uint8)
        self.pending: list[int] = []

    def __len__(self) -> int:
        return len(self.ids) + len(self.pending)


class FBFIndex:
    """An updatable FBF-filtered index over short strings.

    Parameters
    ----------
    strings:
        Initial contents (may be empty).
    scheme:
        FBF signature scheme or kind string; auto-detected when omitted
        (re-detection never happens after construction, so feed a
        representative initial batch or name the kind explicitly).
    verifier:
        ``"osa"`` (default: the paper's edit distance via the banded
        DP), ``"osa-bitparallel"`` (same metric, Hyyrö-style one-word
        bit-state — typically the fastest exact option for patterns up
        to 64 chars), or ``"myers"`` (bit-parallel Levenshtein; fastest,
        but transpositions count 2 — strictly fewer matches).
    """

    VERIFIERS = ("osa", "osa-bitparallel", "myers")

    def __init__(
        self,
        strings: Sequence[str] = (),
        *,
        scheme: SignatureScheme | str | None = None,
        verifier: str = "osa",
    ):
        if verifier not in self.VERIFIERS:
            raise ValueError(
                f"verifier must be one of {self.VERIFIERS}, got {verifier!r}"
            )
        if isinstance(scheme, str):
            scheme = scheme_for(scheme)
        if scheme is None:
            kind = detect_kind(strings) if len(strings) else "alnum"
            scheme = scheme_for(kind)
        self.scheme = scheme
        self.verifier = verifier
        self._strings: list[str] = []
        self._buckets: dict[int, _Bucket] = defaultdict(
            lambda: _Bucket(self.scheme.width)
        )
        self._generation = 0
        if strings:
            self.extend(strings)

    # -- mutation ----------------------------------------------------------

    def add(self, s: str) -> int:
        """Index one string; returns its id (position of insertion)."""
        sid = len(self._strings)
        self._strings.append(s)
        self._buckets[len(s)].pending.append(sid)
        self._generation += 1
        return sid

    def extend(self, strings: Sequence[str]) -> None:
        """Index a batch."""
        for s in strings:
            self.add(s)

    @property
    def generation(self) -> int:
        """Monotonic mutation counter: bumped once per :meth:`add`.

        Anything derived from the index contents — a result cache, a
        prepared query engine — is valid exactly as long as the
        generation it was built under; comparing generations is the
        cheap staleness test the serve layer keys its caches on.
        """
        return self._generation

    @property
    def dirty(self) -> bool:
        """True while any added string awaits folding into the packed
        arrays.

        Packing is lazy: :meth:`search` folds only the buckets a query
        touches, so after :meth:`add` the first search in each affected
        length window quietly pays the packing cost.  This flag (and
        the explicit :meth:`pack`) makes that state observable, so
        latency-sensitive callers can pack eagerly and tests can pin
        when packing happens.
        """
        return any(b.pending for b in self._buckets.values())

    def pack(self) -> None:
        """Eagerly fold every pending add into the packed arrays."""
        for bucket in self._buckets.values():
            self._pack(bucket)

    def __len__(self) -> int:
        return len(self._strings)

    @property
    def strings(self) -> list[str]:
        """The indexed strings, id-ordered.

        This is the live internal list, not a copy — callers that
        prepare a :class:`~repro.parallel.chunked.VectorEngine` over the
        index pass it as the engine's right side so ``share_right``'s
        identity check can recognise the dataset.  Do not mutate it;
        use :meth:`add` / :meth:`extend`.
        """
        return self._strings

    def __getitem__(self, sid: int) -> str:
        return self._strings[sid]

    def _pack(self, bucket: _Bucket) -> None:
        """Fold pending adds into the bucket's packed arrays."""
        if not bucket.pending:
            return
        new_strings = [self._strings[sid] for sid in bucket.pending]
        new_sigs = signatures_for_scheme(new_strings, self.scheme)
        if new_sigs.ndim == 1:
            new_sigs = new_sigs[:, None]
        new_codes, _ = encode_raw(new_strings)
        width = max(bucket.codes.shape[1], new_codes.shape[1])

        def pad(arr: np.ndarray) -> np.ndarray:
            if arr.shape[1] == width:
                return arr
            out = np.zeros((arr.shape[0], width), dtype=np.uint8)
            out[:, : arr.shape[1]] = arr
            return out

        bucket.ids = np.concatenate(
            [bucket.ids, np.asarray(bucket.pending, dtype=np.int64)]
        )
        bucket.sigs = np.concatenate([bucket.sigs, new_sigs.astype(np.uint32)])
        bucket.codes = np.concatenate([pad(bucket.codes), pad(new_codes)])
        bucket.pending.clear()

    # -- search ------------------------------------------------------------

    def search(
        self,
        query: str,
        k: int = 1,
        *,
        collector=None,
        verifier: str | None = None,
    ) -> list[int]:
        """Ids of every indexed string within ``k`` edits of ``query``.

        Exact with respect to the configured verifier's metric (OSA by
        default); ``verifier`` overrides the configured one for this
        query.  Results are sorted by id.  Following the paper's PDL
        semantics, empty strings — as query or as indexed entries —
        never match anything.

        With a :class:`repro.obs.StatsCollector` the search reports the
        same funnel the join drivers do, treating every indexed string
        as a considered pair: a ``length`` stage (bucket pruning), an
        ``fbf`` stage (signature filtering), then survivors = verified
        candidates and the matched count.  The conservation invariant
        holds per search and accumulates across searches.
        """
        validate_threshold(k)
        if verifier is None:
            verifier = self.verifier
        elif verifier not in self.VERIFIERS:
            raise ValueError(
                f"verifier must be one of {self.VERIFIERS}, got {verifier!r}"
            )
        obs = collector if collector else NULL_COLLECTOR
        n = len(self._strings)
        obs.add_pairs(n)
        if not self._strings or not query:
            obs.add_stage("length", n, 0)
            obs.add_stage("fbf", 0, 0)
            return []
        qsig = np.asarray(self.scheme.signature(query), dtype=np.uint32)
        bound = self.scheme.safe_threshold(k)
        window = 0
        survivors = 0
        matched = 0
        hits: list[np.ndarray] = []
        for length in range(max(1, len(query) - k), len(query) + k + 1):
            bucket = self._buckets.get(length)
            if bucket is None or len(bucket) == 0:
                continue
            self._pack(bucket)
            window += len(bucket.ids)
            db = np.zeros(len(bucket.ids), dtype=np.uint16)
            for w in range(self.scheme.width):
                db += popcount_batch_u32(bucket.sigs[:, w] ^ qsig[w])
            cand = np.nonzero(db <= bound)[0]
            survivors += int(cand.size)
            if cand.size == 0:
                continue
            ok = self._verify(query, bucket, cand, k, verifier)
            found = bucket.ids[cand[ok]]
            matched += len(found)
            hits.append(found)
        obs.add_stage("length", n, window)
        obs.add_stage("fbf", window, survivors)
        obs.add_survivors(survivors)
        obs.add_verified(survivors)
        obs.add_matched(matched)
        if not hits:
            return []
        out = np.concatenate(hits)
        out.sort()
        return out.tolist()

    def candidate_blocks(
        self,
        queries: Sequence[str],
        k: int = 1,
        *,
        max_pairs: int = 1 << 20,
        collector=None,
    ):
        """Yield FBF-filtered candidate blocks for a batch of queries.

        This is the index acting as a *candidate generator* for the plan
        layer: no verification happens here.  Each yielded block is a
        ``(query_idx, ids)`` pair of equal-length index arrays — every
        candidate passed the bucket length window **and** the FBF
        signature bound, so for edit-bounded verifiers no true match is
        dropped (the filters' safety property, at index granularity).

        Unlike :meth:`search`, empty queries and length-0 buckets *are*
        included: whether empty strings match is the verifier's call
        (the paper's DL says yes within ``k``, PDL says no), and a
        generator must not pre-empt it.

        ``max_pairs`` caps the query-rows × bucket-size product of one
        dense XOR sweep; larger groups are split by query rows.
        """
        validate_threshold(k)
        obs = collector if collector else NULL_COLLECTOR
        n_right = len(self._strings)
        product = len(queries) * n_right
        obs.add_pairs(product)
        if n_right == 0 or not len(queries):
            obs.add_stage("length", product, 0)
            obs.add_stage("fbf", 0, 0)
            return
        by_len: dict[int, list[int]] = defaultdict(list)
        for qi, q in enumerate(queries):
            by_len[len(q)].append(qi)
        qsigs = signatures_for_scheme(list(queries), self.scheme)
        if qsigs.ndim == 1:
            qsigs = qsigs[:, None]
        qsigs = qsigs.astype(np.uint32)
        bound = self.scheme.safe_threshold(k)
        window = 0
        emitted = 0
        for qlen in sorted(by_len):
            q_idx = np.asarray(by_len[qlen], dtype=np.int64)
            for length in range(max(0, qlen - k), qlen + k + 1):
                bucket = self._buckets.get(length)
                if bucket is None or len(bucket) == 0:
                    continue
                self._pack(bucket)
                m = len(bucket.ids)
                window += len(q_idx) * m
                rows = max(1, max_pairs // m)
                for r0 in range(0, len(q_idx), rows):
                    qchunk = q_idx[r0 : r0 + rows]
                    db = np.zeros((len(qchunk), m), dtype=np.uint16)
                    for w in range(self.scheme.width):
                        db += popcount_batch_u32(
                            qsigs[qchunk, w][:, None] ^ bucket.sigs[None, :, w]
                        )
                    qi2, bi2 = np.nonzero(db <= bound)
                    if len(qi2):
                        emitted += len(qi2)
                        yield qchunk[qi2], bucket.ids[bi2]
        obs.add_stage("length", product, window)
        obs.add_stage("fbf", window, emitted)

    def _verify(
        self,
        query: str,
        bucket: _Bucket,
        cand: np.ndarray,
        k: int,
        verifier: str | None = None,
    ) -> np.ndarray:
        if verifier is None:
            verifier = self.verifier
        # All strings in a bucket share one length; recover it from the
        # strings rather than trusting the padded matrix width.
        real_len = len(self._strings[int(bucket.ids[0])])
        lengths = np.full(len(bucket.ids), real_len, dtype=np.int64)
        fits_word = 0 < len(query) <= MAX_PATTERN
        if verifier == "myers" and fits_word:
            dists = myers_batch(query, bucket.codes[cand], lengths[cand])
            return dists <= k
        if verifier == "osa-bitparallel" and fits_word:
            dists = osa_bitparallel_batch(query, bucket.codes[cand], lengths[cand])
            return dists <= k
        qcodes, qlen = encode_raw([query])
        ii = np.zeros(len(cand), dtype=np.int64)
        return osa_within_k_pairs(
            qcodes, qlen, bucket.codes, lengths, ii, cand, k
        )

    def search_strings(self, query: str, k: int = 1) -> list[str]:
        """Like :meth:`search` but returning the matched strings."""
        return [self._strings[sid] for sid in self.search(query, k)]

    # -- packed-state export / import --------------------------------------

    def packed_buckets(self):
        """Yield every bucket's packed state: ``(length, ids, sigs, codes)``.

        Packs pending adds first, so the yielded arrays cover the whole
        index.  The arrays are the live internals (not copies) — callers
        persisting them (the serve layer's snapshots) must not mutate
        them.  Empty buckets are skipped.
        """
        self.pack()
        for length in sorted(self._buckets):
            bucket = self._buckets[length]
            if len(bucket.ids):
                yield length, bucket.ids, bucket.sigs, bucket.codes

    @classmethod
    def from_packed(
        cls,
        strings: Sequence[str],
        buckets,
        *,
        scheme: SignatureScheme | str,
        verifier: str = "osa",
    ) -> "FBFIndex":
        """Rebuild an index from previously packed state without
        recomputing signatures or codes — the warm-start path behind
        :mod:`repro.serve` snapshots.

        ``buckets`` is an iterable of ``(length, ids, sigs, codes)``
        tuples as produced by :meth:`packed_buckets`; every string id
        must appear in exactly one bucket.
        """
        index = cls((), scheme=scheme, verifier=verifier)
        index._strings = list(strings)
        covered = 0
        for length, ids, sigs, codes in buckets:
            bucket = index._buckets[int(length)]
            bucket.ids = np.asarray(ids, dtype=np.int64)
            bucket.sigs = np.asarray(sigs, dtype=np.uint32)
            bucket.codes = np.asarray(codes, dtype=np.uint8)
            if bucket.sigs.shape != (len(bucket.ids), index.scheme.width):
                raise ValueError(
                    f"bucket {length}: signature matrix shape "
                    f"{bucket.sigs.shape} does not fit {len(bucket.ids)} "
                    f"ids under scheme {index.scheme.name!r}"
                )
            covered += len(bucket.ids)
        if covered != len(index._strings):
            raise ValueError(
                f"packed buckets cover {covered} ids for "
                f"{len(index._strings)} strings"
            )
        index._generation = len(index._strings)
        return index
