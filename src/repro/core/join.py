"""Algorithm 7: ``MatchStrings`` — the all-pairs similarity join.

The paper's driver compares every pair of the Cartesian product
``S x T``, first through the filter chain, then (for survivors) the
verifier, and declares *match* or *unmatch*.  This module is the faithful
sequential driver; :mod:`repro.parallel` provides the partitioned /
vectorized drivers for larger inputs.

The evaluation's ground truth is positional — ``left[i]`` is the clean
twin of ``right[i]`` — so :class:`JoinResult` carries both the match set
and, when asked, only its confusion summary (true/false positive counts)
to keep memory flat when a sloppy method matches millions of pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.matchers import PreparedMatcher

__all__ = ["JoinResult", "match_strings"]


@dataclass
class JoinResult:
    """Outcome of one similarity join.

    ``matches`` is populated only when the join is run with
    ``record_matches=True``; the counters are always correct either way.
    """

    method: str
    n_left: int
    n_right: int
    match_count: int = 0
    #: matches where ``i == j`` (hits against the positional ground truth)
    diagonal_matches: int = 0
    verified_pairs: int = 0
    matches: list[tuple[int, int]] = field(default_factory=list)

    @property
    def pairs_compared(self) -> int:
        return self.n_left * self.n_right

    @property
    def off_diagonal_matches(self) -> int:
        """Matches the positional ground truth calls false positives."""
        return self.match_count - self.diagonal_matches


def match_strings(
    left: Sequence[str],
    right: Sequence[str],
    matcher: PreparedMatcher,
    *,
    record_matches: bool = False,
    pairs: Iterable[tuple[int, int]] | None = None,
) -> JoinResult:
    """Run ``matcher`` over ``left x right`` (or an explicit pair subset).

    Parameters
    ----------
    left, right:
        The two string datasets (the paper's ``S`` and ``T``).
    matcher:
        A method stack from :func:`repro.core.matchers.build_matcher`.
        :meth:`PreparedMatcher.prepare` is called here; callers need not.
    record_matches:
        Keep the full ``(i, j)`` match list.  Off by default: a sloppy
        comparator over a large product can match millions of pairs.
    pairs:
        Restrict the join to these index pairs (used by blocking methods
        and the parallel partitioner); defaults to the full product.

    >>> from repro.core.matchers import build_matcher
    >>> m = build_matcher("FPDL", k=1, scheme="numeric")
    >>> r = match_strings(["123456789"], ["123456780"], m)
    >>> (r.match_count, r.diagonal_matches)
    (1, 1)
    """
    matcher.prepare(left, right)
    result = JoinResult(matcher.name, len(left), len(right))
    matches = result.matches if record_matches else None
    match_count = 0
    diagonal = 0
    mfn = matcher.matches
    if pairs is None:
        for i in range(len(left)):
            for j in range(len(right)):
                if mfn(i, j):
                    match_count += 1
                    if i == j:
                        diagonal += 1
                    if matches is not None:
                        matches.append((i, j))
    else:
        for i, j in pairs:
            if mfn(i, j):
                match_count += 1
                if i == j:
                    diagonal += 1
                if matches is not None:
                    matches.append((i, j))
    result.match_count = match_count
    result.diagonal_matches = diagonal
    result.verified_pairs = matcher.verified_pairs
    return result
