"""Algorithm 7: ``MatchStrings`` — the all-pairs similarity join.

The paper's driver compares every pair of the Cartesian product
``S x T``, first through the filter chain, then (for survivors) the
verifier, and declares *match* or *unmatch*.  This module holds the
faithful sequential reference loop; since the planner refactor it is the
*scalar execution backend* of :mod:`repro.core.plan`, which composes it
(or the vectorized / multiprocess backends) with a candidate generator.
Call :func:`repro.join` for the planned entry point; the historical
:func:`match_strings` signature remains as a thin deprecated shim.

The evaluation's ground truth is positional — ``left[i]`` is the clean
twin of ``right[i]`` — so :class:`JoinResult` carries both the match set
and, when asked, only its confusion summary (true/false positive counts)
to keep memory flat when a sloppy method matches millions of pairs.

Pass a :class:`repro.obs.StatsCollector` to watch the filter funnel in
flight: per-stage rejections, verified pairs, and wall-time spans for
the prepare and pair-loop phases.  Without one, the driver runs the
original uninstrumented path.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro._compat import warn_once
from repro.core.matchers import PreparedMatcher
from repro.obs.log import get_logger

__all__ = ["JoinResult", "match_strings"]

_DEPRECATION_MSG = (
    "match_strings() is deprecated; use repro.join(left, right, method, ...) "
    "or repro.core.plan.JoinPlanner, which pick an index-backed plan for "
    "large products instead of always walking the full pair space"
)

_log = get_logger("core.join")


@dataclass
class JoinResult:
    """Outcome of one similarity join.

    ``matches`` is populated only when the join is run with
    ``record_matches=True``; the counters are always correct either way.
    ``pairs_compared`` counts the pairs the driver actually iterated —
    the full ``n_left * n_right`` product, an explicit ``pairs`` subset,
    or (under an index-backed or multiplicity-collapsed plan) the
    candidate pairs actually enumerated.  ``generator`` / ``backend``
    name the plan that produced the result; the legacy drivers leave
    them at their implicit defaults.

    **Diagonal semantics.**  For two *different* datasets,
    ``diagonal_matches`` counts matches with ``i == j`` — hits against
    the evaluation's positional ground truth.  For a *self-join*
    (``left is right``, or equal content), position is an accident of
    ordering, so the diagonal counts matches by **value identity**
    (``left[i] == right[j]``) instead: the pairs that are literal
    duplicates rather than near-misses.  Every engine applies the same
    rule, so cross-engine equivalence holds on both kinds of input.

    ``unique_left`` / ``unique_right`` expose the distinct-value counts
    when the multiplicity layer collapsed the join (``None`` when the
    join ran uncollapsed); ``verified_pairs`` and ``pairs_compared``
    then count *unique-space* work (the cost that was actually paid)
    while ``match_count`` / ``diagonal_matches`` stay in original-pair
    units.
    """

    method: str
    n_left: int
    n_right: int
    match_count: int = 0
    #: positional (``i == j``) hits — or value-identity hits on self-joins
    diagonal_matches: int = 0
    verified_pairs: int = 0
    pairs_compared: int = 0
    matches: list[tuple[int, int]] = field(default_factory=list)
    #: candidate generator that produced the pair stream (plan layer)
    generator: str = "all-pairs"
    #: execution backend that verified the candidates (plan layer)
    backend: str = "scalar"
    #: distinct left/right values under unique-string collapse (else None)
    unique_left: int | None = None
    unique_right: int | None = None

    @property
    def off_diagonal_matches(self) -> int:
        """Matches the positional ground truth calls false positives."""
        return self.match_count - self.diagonal_matches


def match_strings(
    left: Sequence[str],
    right: Sequence[str],
    matcher: PreparedMatcher,
    *,
    record_matches: bool = False,
    pairs: Iterable[tuple[int, int]] | None = None,
    collector=None,
) -> JoinResult:
    """Deprecated alias for the scalar all-pairs reference join.

    Delegates to the plan layer's scalar backend with the all-pairs
    candidate generator (or the explicit ``pairs`` subset).  Prefer
    :func:`repro.join`, which additionally knows how to skip most of the
    pair space with index-backed candidate generation.

    Parameters
    ----------
    left, right:
        The two string datasets (the paper's ``S`` and ``T``).
    matcher:
        A method stack from :func:`repro.core.matchers.build_matcher`.
        :meth:`PreparedMatcher.prepare` is called here; callers need not.
    record_matches:
        Keep the full ``(i, j)`` match list.  Off by default: a sloppy
        comparator over a large product can match millions of pairs.
    pairs:
        Restrict the join to these index pairs (used by blocking methods
        and the parallel partitioner); defaults to the full product.
    collector:
        A :class:`repro.obs.StatsCollector` for funnel counters and
        phase spans.  Attached to the matcher for the duration; for the
        PDL verifier's internal tallies, build the matcher with the
        collector instead (see :func:`build_matcher`).

    >>> from repro.core.matchers import build_matcher
    >>> m = build_matcher("FPDL", k=1, scheme="numeric")
    >>> r = match_strings(["123456789"], ["123456780"], m)
    >>> (r.match_count, r.diagonal_matches)
    (1, 1)
    """
    warn_once("core.join.match_strings", _DEPRECATION_MSG)
    return _scalar_join(
        left,
        right,
        matcher,
        record_matches=record_matches,
        pairs=pairs,
        collector=collector,
    )


def _scalar_join(
    left: Sequence[str],
    right: Sequence[str],
    matcher: PreparedMatcher,
    *,
    record_matches: bool = False,
    pairs: Iterable[tuple[int, int]] | None = None,
    collector=None,
    weighter=None,
    self_join: bool | None = None,
) -> JoinResult:
    """The scalar reference loop (the plan layer's scalar backend body).

    ``weighter`` (a :class:`repro.core.multiplicity.PairWeighter`)
    scales match counts and funnel counters by per-pair multiplicity —
    the collapsed-plan contract.  ``self_join`` switches the diagonal to
    value identity; ``None`` auto-detects it from content equality, so
    direct callers get the right semantics without the plan layer.
    """
    if collector:
        matcher.collector = collector
    else:
        collector = getattr(matcher, "collector", None)
    if weighter is not None:
        matcher.weighter = weighter
    if self_join is None:
        self_join = left is right or (
            len(left) == len(right) and list(left) == list(right)
        )
    if collector:
        collector.meta.setdefault("method", matcher.name)
        collector.meta["n_left"] = len(left)
        collector.meta["n_right"] = len(right)
    span = collector.span if collector else (lambda name: nullcontext())
    with span("join.prepare"):
        matcher.prepare(left, right)
    result = JoinResult(matcher.name, len(left), len(right))
    matches = result.matches if record_matches else None
    match_count = 0
    diagonal = 0
    compared = 0
    mfn = matcher.matches
    if self_join:
        def on_diag(i: int, j: int) -> bool:
            return left[i] == right[j]
    else:
        def on_diag(i: int, j: int) -> bool:
            return i == j
    with span("join.pairs"):
        if pairs is None:
            compared = len(left) * len(right)
            for i in range(len(left)):
                for j in range(len(right)):
                    if mfn(i, j):
                        w = 1 if weighter is None else weighter.weight(i, j)
                        match_count += w
                        if on_diag(i, j):
                            diagonal += w
                        if matches is not None:
                            matches.append((i, j))
        else:
            for i, j in pairs:
                compared += 1
                if mfn(i, j):
                    w = 1 if weighter is None else weighter.weight(i, j)
                    match_count += w
                    if on_diag(i, j):
                        diagonal += w
                    if matches is not None:
                        matches.append((i, j))
    result.match_count = match_count
    result.diagonal_matches = diagonal
    result.verified_pairs = matcher.verified_pairs
    result.pairs_compared = compared
    _log.debug(
        "%s: %d matches over %d pairs (%d verified)",
        matcher.name, match_count, compared, result.verified_pairs,
    )
    return result
