"""PASS-JOIN partition index: sub-quadratic candidates for OSA <= k.

The partition scheme of Li, Deng & Feng (PASS-JOIN, arXiv 1111.7171):
split every indexed string into ``k + 1`` contiguous segments.  For
plain Levenshtein the pigeonhole argument is immediate — ``k`` edits
can destroy at most ``k`` segments, so any string within distance ``k``
contains at least one segment *verbatim* as a substring, at a start
position bounded by the edits before it.  Probing therefore touches
only the inverted-index entries for ``O(k^2)`` substring windows
instead of walking length-bucket products.

**This repo's edit distance is OSA, not Levenshtein.**  The ``dl`` /
``pdl`` verifiers are restricted Damerau-Levenshtein (adjacent
transposition costs one edit), and the classic partition probe is
*incomplete* there: ``osa("AB", "BA") == 1``, but partitioning ``"AB"``
into ``"A"|"B"`` and probing with ``"BA"`` finds neither segment — one
transposition straddles the segment boundary and corrupts both halves.
The fix used here keeps the ``k + 1`` partition and widens the *probe*:
for every window ``c = q[p : p + l]`` we also look up the boundary-swap
variants

* ``vL  = q[p - 1] + q[p + 1 : p + l]``  (transposition straddles the
  left boundary: the segment's first character sits one slot left),
* ``vR  = q[p : p + l - 1] + q[p + l]``  (right boundary),
* ``vLR = q[p - 1] + q[p + 1 : p + l - 1] + q[p + l]`` (both; needs
  ``l >= 2`` — OSA never edits the same position twice).

Soundness: suppose ``osa(q, r) <= k`` via ``t`` boundary-straddling
transpositions and at most ``k - t`` other operations.  Only the other
operations (and interior transpositions, which cost one each) can
destroy a segment *cleanly*, so at most ``k - t`` segments are cleanly
destroyed and at least ``t + 1 >= 1`` of the ``k + 1`` segments survive
up to boundary swaps — and a surviving segment is found by one of the
four variants at its (shift-bounded) window.  The variants only ever
*add* candidates, so Levenshtein completeness is untouched, and
spurious candidates are rejected by the verifier.

Probe windows use the standard shift bound: segment ``i`` of an
indexed string of length ``L`` (start ``p_i``, length ``l_i``) can
appear in a query of length ``|q|`` only at starts

    max(0, p_i - k, p_i + D - k) <= p <= min(|q| - l_i, p_i + k, p_i + D + k)

with ``D = |q| - L`` (edits before the segment shift it by at most
``k``; edits after it bound the shift through the length difference).

The index stores no substrings: each (length, segment) bucket keeps a
sorted array of 64-bit polynomial hashes of the segment's code points
with the indexed ids alongside, and a probe batch hashes its windows
vectorized and binary-searches the buckets.  Hash collisions produce
spurious candidates only (the verifier decides); they never drop one.
Code points come from UTF-32 so any Python string — full Unicode, NUL
bytes, empty — round-trips without the latin-1 restriction of the
packed join codecs.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["PassJoinIndex", "dedup_sorted", "segment_layout"]

#: FNV-1a constants, reused as polynomial-hash base/offset (the probe
#: only needs a well-mixed 64-bit fold with silent wraparound).
_HASH_BASE = np.uint64(1099511628211)
_HASH_OFFSET = np.uint64(1469598103934665603)
_ONE = np.uint64(1)


def segment_layout(length: int, parts: int) -> list[tuple[int, int]]:
    """PASS-JOIN's even partition: ``parts`` contiguous ``(start, len)``
    segments covering ``length`` characters, the remainder spread over
    the *last* segments so lengths differ by at most one.

    Segments may be zero-length when ``length < parts``; a zero-length
    segment trivially survives any edit script, which keeps very short
    and empty strings reachable.
    """
    base, rem = divmod(length, parts)
    layout = []
    start = 0
    for i in range(parts):
        seg_len = base + (1 if i >= parts - rem else 0)
        layout.append((start, seg_len))
        start += seg_len
    return layout


def _encode_codes(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Strings as a padded uint32 code-point matrix plus lengths.

    UTF-32-LE gives one code unit per code point for *every* Python
    string (surrogates passed through), so hashing never has to reject
    input; padding cells are never read because windows stay inside
    each string's true length.
    """
    n = len(strings)
    lens = np.fromiter((len(s) for s in strings), dtype=np.int64, count=n)
    width = int(lens.max()) if n else 0
    codes = np.zeros((n, max(width, 1)), dtype=np.uint32)
    for i, s in enumerate(strings):
        if s:
            codes[i, : len(s)] = np.frombuffer(
                s.encode("utf-32-le", "surrogatepass"), dtype="<u4"
            )
    return codes, lens


def _fold(h: np.ndarray, col: np.ndarray) -> np.ndarray:
    return h * _HASH_BASE + col.astype(np.uint64) + _ONE


def _hash_rows(codes: np.ndarray) -> np.ndarray:
    """Polynomial hash of each row of a 2-D uint32 slab."""
    h = np.full(codes.shape[0], _HASH_OFFSET, dtype=np.uint64)
    for j in range(codes.shape[1]):
        h = _fold(h, codes[:, j])
    return h


def _expand_ranges(
    starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Indices ``[s, s + c)`` for every (start, count) pair, concatenated."""
    total = int(counts.sum())
    base = np.repeat(starts, counts)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return base + within


def dedup_sorted(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values via sort + neighbor-diff.

    Equivalent to ``np.unique`` but orders of magnitude faster on this
    workload: NumPy >= 2.3 routes integer ``unique`` through a hash
    table whose per-element cost dwarfs a plain sort for the tens of
    millions of candidate keys a probe batch produces.
    """
    if len(values) == 0:
        return values
    values = np.sort(values)
    keep = np.empty(len(values), dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


class PassJoinIndex:
    """Inverted segment index over one side of a join.

    ``candidate_blocks(queries)`` yields ``(query_idx, indexed_ids)``
    int64 array pairs — deduplicated, every true OSA-``<= k`` pair
    included — in the same block contract as
    :meth:`repro.core.index.FBFIndex.candidate_blocks`.  Whether empty
    or equal strings *match* stays the verifier's decision; the index
    only guarantees it never withholds a reachable pair.
    """

    def __init__(self, strings: Sequence[str], *, k: int = 1):
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.strings = list(strings)
        self.k = k
        self.parts = k + 1
        codes, lens = _encode_codes(self.strings)
        self._lens = lens
        #: (length, segment_i) -> (sorted hashes, ids in hash order)
        self._buckets: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        #: length -> segment layout, for lengths present in the index
        self._layouts: dict[int, list[tuple[int, int]]] = {}
        for length in dedup_sorted(lens):
            length = int(length)
            ids = np.flatnonzero(lens == length).astype(np.int64)
            layout = segment_layout(length, self.parts)
            self._layouts[length] = layout
            for i, (start, seg_len) in enumerate(layout):
                h = _hash_rows(codes[ids, start : start + seg_len])
                order = np.argsort(h, kind="stable")
                self._buckets[(length, i)] = (h[order], ids[order])

    def __len__(self) -> int:
        return len(self.strings)

    # -- probing -------------------------------------------------------------

    def _window_hashes(
        self, q_codes: np.ndarray, qlen: int, p: int, seg_len: int
    ) -> list[np.ndarray]:
        """Hashes of window ``[p, p + seg_len)`` of every query row,
        plus the applicable boundary-swap variants."""
        if seg_len == 0:
            return [np.full(q_codes.shape[0], _HASH_OFFSET, dtype=np.uint64)]
        # Shared fold over columns p .. p+seg_len-2, seeded with either
        # the window's own first character or its left neighbor.
        pre_base = _fold(
            np.full(q_codes.shape[0], _HASH_OFFSET, dtype=np.uint64),
            q_codes[:, p],
        )
        pre_left = (
            _fold(
                np.full(q_codes.shape[0], _HASH_OFFSET, dtype=np.uint64),
                q_codes[:, p - 1],
            )
            if p >= 1
            else None
        )
        for j in range(p + 1, p + seg_len - 1):
            pre_base = _fold(pre_base, q_codes[:, j])
            if pre_left is not None:
                pre_left = _fold(pre_left, q_codes[:, j])
        last = q_codes[:, p + seg_len - 1] if seg_len >= 2 else None
        right = q_codes[:, p + seg_len] if p + seg_len < qlen else None
        out = []
        if seg_len == 1:
            # pre_base/pre_left already fold the single character.
            out.append(pre_base)
            if pre_left is not None:
                out.append(pre_left)
            if right is not None:
                out.append(
                    _fold(
                        np.full(
                            q_codes.shape[0], _HASH_OFFSET, dtype=np.uint64
                        ),
                        right,
                    )
                )
            return out
        out.append(_fold(pre_base, last))
        if pre_left is not None:
            out.append(_fold(pre_left, last))
        if right is not None:
            out.append(_fold(pre_base, right))
        if pre_left is not None and right is not None:
            out.append(_fold(pre_left, right))
        return out

    def _probe_group(
        self, q_idx: np.ndarray, q_codes: np.ndarray, qlen: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """All (query, id) collisions for one query-length group."""
        k = self.k
        hit_q: list[np.ndarray] = []
        hit_id: list[np.ndarray] = []
        for length, layout in self._layouts.items():
            delta = qlen - length
            if abs(delta) > k:
                continue
            for i, (p_i, seg_len) in enumerate(layout):
                lo = max(0, p_i - k, p_i + delta - k)
                hi = min(qlen - seg_len, p_i + k, p_i + delta + k)
                if hi < lo:
                    continue
                hashes, ids = self._buckets[(length, i)]
                for p in range(lo, hi + 1):
                    for qh in self._window_hashes(q_codes, qlen, p, seg_len):
                        left = np.searchsorted(hashes, qh, side="left")
                        right = np.searchsorted(hashes, qh, side="right")
                        counts = right - left
                        nz = counts > 0
                        if not nz.any():
                            continue
                        starts, counts = left[nz], counts[nz]
                        hit_q.append(np.repeat(q_idx[nz], counts))
                        hit_id.append(ids[_expand_ranges(starts, counts)])
        return hit_q, hit_id

    def candidate_blocks(
        self,
        queries: Sequence[str],
        *,
        max_pairs: int = 1 << 20,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield deduplicated ``(query_idx, ids)`` candidate blocks.

        Complete for ``osa(query, indexed) <= self.k`` (see the module
        docstring for the OSA variant argument); blocks are capped at
        ``max_pairs`` pairs and grouped by query length, queries
        ascending within a group.
        """
        if not len(self.strings) or not len(queries):
            return
        q_codes, q_lens = _encode_codes(queries)
        n_index = len(self.strings)
        for qlen in dedup_sorted(q_lens):
            qlen = int(qlen)
            q_idx = np.flatnonzero(q_lens == qlen).astype(np.int64)
            hit_q, hit_id = self._probe_group(q_idx, q_codes[q_idx], qlen)
            if not hit_q:
                continue
            # One window can match through several variants and one
            # pair through several segments: dedup on (query, id) so a
            # candidate reaches the verifier exactly once.
            key = dedup_sorted(
                np.concatenate(hit_q) * n_index + np.concatenate(hit_id)
            )
            qi = key // n_index
            ids = key - qi * n_index
            for c0 in range(0, len(qi), max_pairs):
                yield qi[c0 : c0 + max_pairs], ids[c0 : c0 + max_pairs]

    def candidates(self, query: str) -> np.ndarray:
        """Candidate ids for one probe string (sorted ascending)."""
        parts = [ids for _, ids in self.candidate_blocks([query])]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)
