"""The 14 method stacks of the paper's evaluation, behind one registry.

Section 5 evaluates every combination of {no filter, FBF, length filter,
length-then-FBF} wrapping {DL, PDL, nothing}, plus the Jaro, Jaro-Winkler,
Hamming and (Tables 7-8) Soundex baselines:

====== =========================================== ==================
name   stack                                       paper table rows
====== =========================================== ==================
DL     Damerau-Levenshtein, full DP                baseline everywhere
PDL    prefix-pruned DL (banded + early exit)      Tables 1-4
Jaro   Jaro similarity >= theta                    Tables 1-4
Wink   Jaro-Winkler similarity >= theta            Tables 1-4
Ham    Hamming distance <= k                       Tables 1-4
FDL    FBF filter -> DL                            Tables 1-4
FPDL   FBF filter -> PDL                           Tables 1-5
FBF    FBF filter only                             Tables 1-4
LDL    length filter -> DL                         Tables 12, 14
LPDL   length filter -> PDL                        Tables 12, 14
LF     length filter only                          Tables 12, 14
LFDL   length filter -> FBF -> DL                  Tables 12, 14
LFPDL  length filter -> FBF -> PDL                 Tables 12, 14
LFBF   length filter -> FBF only                   Tables 12, 14
SDX    Soundex code equality                       Tables 7-8
====== =========================================== ==================

:func:`build_matcher` constructs any of them as a :class:`PreparedMatcher`
ready for the join driver and the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.filters import FBFFilter, FilterChain, LengthFilter, PairFilter
from repro.core.signatures import SignatureScheme
from repro.distance.bitparallel import MAX_PATTERN, osa_bitparallel_bounded
from repro.distance.damerau import damerau_levenshtein
from repro.distance.hamming import hamming_matcher
from repro.distance.jaro import jaro_matcher, jaro_winkler_matcher
from repro.distance.pruned import pdl, pdl_matcher
from repro.distance.soundex import soundex_matcher

__all__ = [
    "PreparedMatcher",
    "MethodSpec",
    "METHOD_NAMES",
    "method_registry",
    "build_matcher",
]


class PreparedMatcher:
    """A (filters -> verifier) stack bound to two prepared datasets.

    Usage::

        m = build_matcher("FPDL", k=1, scheme=scheme_for("numeric"))
        m.prepare(left, right)
        m.matches(i, j)   # does left[i] match right[j]?

    ``filters`` may be empty (bare verifier) and ``verifier`` may be
    ``None`` (filter-only method, e.g. the FBF row of Table 1 that counts
    every filter pass as a match).

    Attaching a :class:`repro.obs.StatsCollector` (the ``collector``
    argument, or assignment any time) routes every decision through the
    funnel accounting: considered, per-filter rejections, verified and
    matched pairs.  With no collector the decision path is the original
    branch-free one (one attribute test per pair).  Collector accounting
    supersedes the legacy ``collect_stats`` chain counters when both are
    enabled.
    """

    def __init__(
        self,
        name: str,
        filters: Sequence[PairFilter] = (),
        verifier: Callable[[str, str], bool] | None = None,
        *,
        collect_stats: bool = False,
        collector=None,
    ):
        if not filters and verifier is None:
            raise ValueError(f"method {name!r} has neither filters nor a verifier")
        self.name = name
        self.chain = FilterChain(list(filters), collect_stats=collect_stats)
        self.verifier = verifier
        self._left: Sequence[str] = ()
        self._right: Sequence[str] = ()
        self.verified_pairs = 0  # how many pairs reached the verifier
        self._obs_stages: list = []
        #: multiplicity weights (plan layer): funnel counters scale by
        #: ``weighter.weight(i, j)`` so collapsed joins conserve against
        #: the uncollapsed baseline.  None = every pair weighs 1.
        self.weighter = None
        #: bounded verdict cache (plan layer); verdicts for a canonical
        #: ``(s, t)`` are computed once.  None = verify every arrival.
        self.memo = None
        self.collector = collector

    @property
    def collector(self):
        """The attached stats collector (None or falsy = not observing)."""
        return self._collector

    @collector.setter
    def collector(self, collector) -> None:
        self._collector = collector
        # One StageStat per filter position, resolved once so the
        # per-pair loop touches no dicts.  Stats accumulate across
        # prepares by design (a collector outlives one join).
        self._obs_stages = (
            [collector.stage(f.name) for f in self.chain.filters]
            if collector
            else []
        )

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        """Precompute filter state (signatures, lengths) for the datasets."""
        self._left = left
        self._right = right
        self.verified_pairs = 0
        self.chain.prepare(left, right)

    def matches(self, i: int, j: int) -> bool:
        """Full stack decision for pair ``(left[i], right[j])``."""
        collector = self._collector
        if collector:
            return self._matches_observed(i, j, collector)
        if not self.chain.passes(i, j):
            return False
        if self.verifier is None:
            return True
        self.verified_pairs += 1
        if self.memo is None:
            return self.verifier(self._left[i], self._right[j])
        return self._verify_memoized(self._left[i], self._right[j], None)

    def _matches_observed(self, i: int, j: int, collector) -> bool:
        """The decision path with full funnel accounting.

        With a ``weighter`` attached every counter moves by the pair's
        multiplicity weight instead of 1 — the unique-space pair stands
        for that many original pairs.
        """
        w = 1 if self.weighter is None else self.weighter.weight(i, j)
        collector.pairs_considered += w
        for f, stage in zip(self.chain.filters, self._obs_stages):
            stage.tested += w
            if not f.passes(i, j):
                return False
            stage.passed += w
        collector.survivors += w
        if self.verifier is None:
            collector.matched += w
            return True
        self.verified_pairs += 1
        collector.verified += w
        if self.memo is None:
            verdict = self.verifier(self._left[i], self._right[j])
        else:
            verdict = self._verify_memoized(
                self._left[i], self._right[j], collector
            )
        if verdict:
            collector.matched += w
            return True
        return False

    def _verify_memoized(self, s: str, t: str, collector) -> bool:
        """Verify through the memo; mirror hit/miss tallies when observed."""
        verdict = self.memo.lookup(s, t)
        if verdict is None:
            verdict = self.verifier(s, t)
            self.memo.store(s, t, verdict)
            if collector:
                collector.verifier_counters["memo_misses"] += 1
        elif collector:
            collector.verifier_counters["memo_hits"] += 1
        return verdict

    @property
    def filter_stats(self):
        """Per-filter pass/reject counts (when ``collect_stats`` is on)."""
        return self.chain.stats


@dataclass(frozen=True)
class MethodSpec:
    """Registry entry: how to build one named method stack."""

    name: str
    #: which filters precede the verifier, in order
    filters: tuple[str, ...]  # subset of ("length", "fbf")
    #: "dl" | "pdl" | "jaro" | "wink" | "ham" | "sdx" | None (filter-only)
    verifier: str | None
    description: str

    @property
    def needs_scheme(self) -> bool:
        return "fbf" in self.filters

    @property
    def uses_length(self) -> bool:
        return "length" in self.filters


_SPECS = [
    MethodSpec("DL", (), "dl", "Damerau-Levenshtein edit distance (Alg. 1)"),
    MethodSpec("PDL", (), "pdl", "Prefix-pruned DL (Alg. 2)"),
    MethodSpec("Jaro", (), "jaro", "Jaro similarity threshold"),
    MethodSpec("Wink", (), "wink", "Jaro-Winkler similarity threshold"),
    MethodSpec("Ham", (), "ham", "Hamming distance threshold"),
    MethodSpec("FDL", ("fbf",), "dl", "FBF filter wrapping DL"),
    MethodSpec("FPDL", ("fbf",), "pdl", "FBF filter wrapping PDL"),
    MethodSpec("FBF", ("fbf",), None, "FBF filter alone"),
    MethodSpec("LDL", ("length",), "dl", "Length filter wrapping DL (Alg. 3)"),
    MethodSpec("LPDL", ("length",), "pdl", "Length filter wrapping PDL"),
    MethodSpec("LF", ("length",), None, "Length filter alone"),
    MethodSpec("LFDL", ("length", "fbf"), "dl", "Length then FBF wrapping DL"),
    MethodSpec("LFPDL", ("length", "fbf"), "pdl", "Length then FBF wrapping PDL"),
    MethodSpec("LFBF", ("length", "fbf"), None, "Length then FBF alone"),
    MethodSpec("SDX", (), "sdx", "Soundex code equality"),
]


def method_registry() -> dict[str, MethodSpec]:
    """Name -> spec for every method stack in the evaluation."""
    return {spec.name: spec for spec in _SPECS}


#: All method names in the paper's table order.
METHOD_NAMES = tuple(spec.name for spec in _SPECS)

_REGISTRY = method_registry()


def _make_verifier(
    kind: str | None,
    k: int,
    theta: float,
    counters: dict[str, int] | None = None,
) -> Callable | None:
    if kind is None:
        return None
    if kind == "dl":
        # The paper's baseline: full DP, then compare to k.
        def dl_verify(s: str, t: str, _k: int = k) -> bool:
            return damerau_levenshtein(s, t) <= _k

        return dl_verify
    if kind == "pdl":
        if counters is None:
            # Fast path: one-word bit-parallel OSA for patterns that fit
            # a machine word, banded DP beyond.  Only taken when nobody
            # asked for the DP's pruning tallies — observed runs keep
            # the banded DP so length_pruned/early_exit stay populated.
            def pdl_verify(s: str, t: str, _k: int = k) -> bool:
                if not s or not t:
                    return False
                if len(s) > MAX_PATTERN:
                    return pdl(s, t, _k)
                return osa_bitparallel_bounded(s, t, _k) is not None

            pdl_verify.__name__ = f"pdl_bitparallel_k{k}"
            return pdl_verify
        return pdl_matcher(k, counters=counters)
    if kind == "jaro":
        return jaro_matcher(theta)
    if kind == "wink":
        return jaro_winkler_matcher(theta)
    if kind == "ham":
        return hamming_matcher(k)
    if kind == "sdx":
        return soundex_matcher()
    raise ValueError(f"unknown verifier kind {kind!r}")


def build_matcher(
    name: str,
    k: int = 1,
    theta: float = 0.8,
    scheme: SignatureScheme | str | None = None,
    *,
    collect_stats: bool = False,
    collector=None,
) -> PreparedMatcher:
    """Construct any registered method stack.

    Parameters
    ----------
    name:
        One of :data:`METHOD_NAMES` (case-sensitive, as in the paper's
        tables).
    k:
        Edit-distance threshold for DL/PDL/Ham and the filters.
    theta:
        Similarity floor for Jaro/Wink (the paper uses 0.8, or 0.75 for
        first names).
    scheme:
        FBF signature scheme (or its kind string) for methods containing
        the FBF filter; auto-detected from the data when omitted.
    collect_stats:
        Record per-filter pass/reject counts (the paper's "FBF removed N
        comparisons" numbers) at a small per-pair cost.
    collector:
        A :class:`repro.obs.StatsCollector` receiving the full funnel
        accounting.  Building with the collector (rather than assigning
        ``matcher.collector`` later) additionally wires the PDL
        verifier's internal tallies (``length_pruned``/``early_exit``)
        into ``collector.verifier_counters``.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(f"unknown method {name!r}; expected one of {METHOD_NAMES}")
    filters: list[PairFilter] = []
    for f in spec.filters:
        if f == "length":
            filters.append(LengthFilter(k))
        elif f == "fbf":
            filters.append(FBFFilter(k, scheme))
    counters = collector.verifier_counters if collector else None
    verifier = _make_verifier(spec.verifier, k, theta, counters)
    return PreparedMatcher(
        spec.name, filters, verifier, collect_stats=collect_stats,
        collector=collector,
    )
