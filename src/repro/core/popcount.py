"""Population-count kernels.

The inner loop of the paper's Algorithm 6 (``FindDiffBits``) is Wegner's
1960 trick: ``d &= d - 1`` clears the lowest set bit, so the loop body runs
once per set bit — fast precisely because FBF signatures of short strings
are sparse.  The paper's speedup rests on this plus the XOR being a single
machine instruction.

In CPython the "machine instruction" story does not hold per call, so this
module provides the full menu a production build would choose from:

* :func:`popcount_kernighan` — the paper's loop, verbatim.
* :func:`popcount_table8` / :func:`popcount_table16` — byte/short lookup
  tables, the classic space/time trade.
* :func:`popcount_parallel` — the branch-free SWAR bit-slicing reduction.
* :func:`popcount` — dispatches to ``int.bit_count`` (a real single
  POPCNT on CPython >= 3.10), the fidelity-preserving default.
* :func:`popcount_batch_u32` — NumPy byte-table kernel for whole signature
  arrays; this is what restores the paper's constant factors at scale
  (see DESIGN.md, calibration note).

All kernels agree on arbitrary non-negative integers; the NumPy kernel on
``uint32``/``uint64`` arrays.  Property tests in
``tests/core/test_popcount.py`` pin the agreement.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount",
    "popcount_kernighan",
    "popcount_table8",
    "popcount_table16",
    "popcount_parallel",
    "popcount_batch_u32",
    "popcount_batch_u64",
    "popcount_batch_table_u32",
    "popcount_batch_table_u64",
    "POPCOUNT_KERNELS",
]

# ---------------------------------------------------------------------------
# Scalar kernels
# ---------------------------------------------------------------------------


def popcount(x: int) -> int:
    """Number of set bits in a non-negative integer (preferred kernel).

    ``int.bit_count`` compiles to a hardware POPCNT for word-sized ints,
    which is the closest CPython gets to the paper's single-instruction
    claim.

    >>> popcount(0b1011)
    3
    """
    if x < 0:
        raise ValueError("popcount is defined for non-negative integers")
    return x.bit_count()


def popcount_kernighan(x: int) -> int:
    """Wegner/Kernighan loop — the kernel inside the paper's Algorithm 6.

    Runs one iteration per set bit: ``d & (d - 1)`` clears the lowest set
    bit each pass.  Sparse signatures (short strings) make this cheap.
    """
    if x < 0:
        raise ValueError("popcount is defined for non-negative integers")
    count = 0
    while x:
        x &= x - 1
        count += 1
    return count


# 256-entry table, built once at import.
_TABLE8: list[int] = [bin(i).count("1") for i in range(256)]
# 65536-entry table: half a megabyte of ints in CPython, but one lookup
# per 16 bits — the trade a C implementation would actually consider.
_TABLE16: list[int] = [bin(i).count("1") for i in range(1 << 16)]


def popcount_table8(x: int) -> int:
    """Byte-table popcount: one lookup per 8 bits."""
    if x < 0:
        raise ValueError("popcount is defined for non-negative integers")
    count = 0
    while x:
        count += _TABLE8[x & 0xFF]
        x >>= 8
    return count


def popcount_table16(x: int) -> int:
    """Short-table popcount: one lookup per 16 bits."""
    if x < 0:
        raise ValueError("popcount is defined for non-negative integers")
    count = 0
    while x:
        count += _TABLE16[x & 0xFFFF]
        x >>= 16
    return count


def popcount_parallel(x: int) -> int:
    """Branch-free SWAR popcount for one 32-bit word (or any int, by
    32-bit chunks).

    The classic divide-and-conquer: pairs, nibbles, bytes, then a
    multiply-accumulate.  Constant time per word regardless of density —
    the alternative a dense-signature workload would prefer over Wegner.
    """
    if x < 0:
        raise ValueError("popcount is defined for non-negative integers")
    count = 0
    while x:
        v = x & 0xFFFFFFFF
        v = v - ((v >> 1) & 0x55555555)
        v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
        v = (v + (v >> 4)) & 0x0F0F0F0F
        count += ((v * 0x01010101) & 0xFFFFFFFF) >> 24
        x >>= 32
    return count


#: Registry used by the popcount ablation benchmark.
POPCOUNT_KERNELS = {
    "bit_count": popcount,
    "kernighan": popcount_kernighan,
    "table8": popcount_table8,
    "table16": popcount_table16,
    "swar": popcount_parallel,
}

# ---------------------------------------------------------------------------
# Batch (NumPy) kernels
# ---------------------------------------------------------------------------

#: byte -> popcount lookup table, built once at import; shared by the
#: batch fallback here and pinned against the compiled kernels' SWAR
#: popcount in ``tests/native/test_kernels.py``
_NP_TABLE8 = np.array(_TABLE8, dtype=np.uint8)

#: NumPy >= 2.0 ships a native popcount ufunc (vectorized POPCNT);
#: it is an order of magnitude faster than the byte-table walk, which
#: remains as the fallback for older NumPy.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount_batch_table_u32(arr: np.ndarray) -> np.ndarray:
    """Byte-table popcount of a ``uint32`` array, any shape.

    The explicit table path: views the array as bytes and sums
    byte-table lookups along the byte axis.  :func:`popcount_batch_u32`
    routes here only when ``np.bitwise_count`` is missing, so tests call
    this directly to pin both paths on every NumPy version.
    """
    a = np.ascontiguousarray(arr, dtype=np.uint32)
    by = a.view(np.uint8).reshape(a.shape + (4,))
    return _NP_TABLE8[by].sum(axis=-1, dtype=np.uint8)


def popcount_batch_table_u64(arr: np.ndarray) -> np.ndarray:
    """Byte-table popcount of a ``uint64`` array, any shape."""
    a = np.ascontiguousarray(arr, dtype=np.uint64)
    by = a.view(np.uint8).reshape(a.shape + (8,))
    return _NP_TABLE8[by].sum(axis=-1, dtype=np.uint8)


def popcount_batch_u32(arr: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint32`` array, any shape.

    Uses ``np.bitwise_count`` when available; otherwise the byte-table
    path.  Output dtype is ``uint8`` in the input shape (a uint32 has
    at most 32 set bits).
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(np.ascontiguousarray(arr, dtype=np.uint32))
    return popcount_batch_table_u32(arr)


def popcount_batch_u64(arr: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array, any shape."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(np.ascontiguousarray(arr, dtype=np.uint64))
    return popcount_batch_table_u64(arr)
