"""BK-tree index (extension: the classic metric-tree baseline).

A Burkhard-Keller tree partitions a dataset by distance to pivot
elements; a within-k search only descends into children whose edge
distance ``d_edge`` satisfies ``|d_edge - d(query, pivot)| <= k`` — the
triangle inequality does the pruning.

That correctness argument **requires a true metric**.  The paper's OSA
distance violates the triangle inequality (``CA -> AC -> ABC``), so a
BK-tree over OSA can silently miss matches.  The tree therefore runs on
plain Levenshtein (default) or the unrestricted Damerau metric — which
is exactly the comparison the benchmark draws: FBF filters the paper's
preferred non-metric at zero recall cost, while the classic metric tree
must either change metrics or lose correctness.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.distance.damerau import true_damerau_levenshtein
from repro.distance.levenshtein import levenshtein
from repro.obs.stats import NULL_COLLECTOR

__all__ = ["BKTree"]

_METRICS: dict[str, Callable[[str, str], int]] = {
    "levenshtein": levenshtein,
    "true-damerau": true_damerau_levenshtein,
}


class _Node:
    __slots__ = ("value", "ids", "children")

    def __init__(self, value: str, sid: int):
        self.value = value
        self.ids = [sid]
        self.children: dict[int, _Node] = {}


class BKTree:
    """A BK-tree over short strings.

    ``metric`` is ``"levenshtein"`` (default) or ``"true-damerau"``
    (both true metrics); a custom callable is accepted for
    experimentation, with the caller responsible for metric axioms.
    """

    def __init__(
        self,
        strings: Sequence[str] = (),
        *,
        metric: str | Callable[[str, str], int] = "levenshtein",
    ):
        if callable(metric):
            self._metric = metric
            self.metric_name = getattr(metric, "__name__", "custom")
        else:
            if metric not in _METRICS:
                raise ValueError(
                    f"metric must be one of {sorted(_METRICS)} or a callable, "
                    f"got {metric!r}"
                )
            self._metric = _METRICS[metric]
            self.metric_name = metric
        self._root: _Node | None = None
        self._strings: list[str] = []
        self.extend(strings)

    def add(self, s: str) -> int:
        """Index one string; returns its id."""
        sid = len(self._strings)
        self._strings.append(s)
        if self._root is None:
            self._root = _Node(s, sid)
            return sid
        node = self._root
        while True:
            d = self._metric(s, node.value)
            if d == 0:
                node.ids.append(sid)
                return sid
            child = node.children.get(d)
            if child is None:
                node.children[d] = _Node(s, sid)
                return sid
            node = child

    def extend(self, strings: Sequence[str]) -> None:
        for s in strings:
            self.add(s)

    def __len__(self) -> int:
        return len(self._strings)

    def __getitem__(self, sid: int) -> str:
        return self._strings[sid]

    def search(self, query: str, k: int = 1, *, collector=None) -> list[int]:
        """Ids of indexed strings within ``k`` edits (tree metric).

        With a :class:`repro.obs.StatsCollector` the search reports the
        join drivers' funnel shape: every indexed string is a considered
        pair, the ``triangle`` stage records how many survived the
        triangle-inequality pruning (strings on visited nodes, each
        paying one metric evaluation — the verified count), and
        ``matched`` counts the hits.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        obs = collector if collector else NULL_COLLECTOR
        n = len(self._strings)
        obs.add_pairs(n)
        if self._root is None:
            obs.add_stage("triangle", n, 0)
            return []
        out: list[int] = []
        stack = [self._root]
        self.last_nodes_visited = 0
        visited_strings = 0
        while stack:
            node = stack.pop()
            self.last_nodes_visited += 1
            visited_strings += len(node.ids)
            d = self._metric(query, node.value)
            if d <= k:
                out.extend(node.ids)
            # Triangle inequality: children at edge distance outside
            # [d-k, d+k] cannot contain matches.
            for edge, child in node.children.items():
                if d - k <= edge <= d + k:
                    stack.append(child)
        obs.add_stage("triangle", n, visited_strings)
        obs.add_survivors(visited_strings)
        obs.add_verified(visited_strings)
        obs.add_matched(len(out))
        if obs:
            obs.meta["nodes_visited"] = (
                int(obs.meta.get("nodes_visited", 0)) + self.last_nodes_visited
            )
        out.sort()
        return out

    def search_strings(self, query: str, k: int = 1) -> list[str]:
        return [self._strings[sid] for sid in self.search(query, k)]
