"""Pair filters: FBF, length filter and the filter-chain framework.

A *filter* is a cheap pair predicate that may only err in one direction:
when it rejects, the pair is **guaranteed** not to match within the edit
threshold; when it accepts, the expensive verifier still decides.  The
paper composes up to two filters in front of DL/PDL (Algorithm 7 and the
LFDL/LFPDL stacks of Section 6); :class:`FilterChain` generalizes that to
any ordered stack and records the pass/reject counts the paper reports
(e.g. "FBF removed 12,369,182 unnecessary pair-wise comparisons").

Filters here operate on *prepared* datasets: each filter is given the two
string lists once and precomputes whatever it needs (FBF signatures,
lengths), so the per-pair test touches only small integers.  This mirrors
the paper's design, where signature generation ("Gen" rows of Tables 1-4)
is a separate, measured, once-per-dataset cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.signatures import SignatureScheme, detect_kind, scheme_for
from repro.distance.base import validate_threshold

__all__ = ["PairFilter", "FBFFilter", "LengthFilter", "FilterChain", "FilterStats"]


class PairFilter:
    """Base class for safe pair filters.

    Subclasses implement :meth:`prepare` (per-dataset precomputation) and
    :meth:`passes` (per-pair test by index into the prepared datasets).
    The contract — enforced by the property suite — is *safety*::

        damerau_levenshtein(S[i], T[j]) <= k  =>  passes(i, j)

    i.e. a filter may pass junk but may never reject a true match.
    """

    #: human-readable name used in experiment tables
    name: str = "filter"

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        """Precompute per-string state for the two datasets."""
        raise NotImplementedError

    def passes(self, i: int, j: int) -> bool:
        """Cheap test for pair ``(left[i], right[j])``."""
        raise NotImplementedError


class FBFFilter(PairFilter):
    """The Fast Bitwise Filter: pass iff ``diff_bits(m, n) <= 2k + slack``.

    ``scheme`` selects the signature layout (see
    :func:`repro.core.signatures.scheme_for`); if omitted it is detected
    from the data at :meth:`prepare` time.  ``k`` is the edit threshold
    the downstream verifier will use.
    """

    def __init__(self, k: int, scheme: SignatureScheme | str | None = None):
        self.k = validate_threshold(k)
        if isinstance(scheme, str):
            scheme = scheme_for(scheme)
        self.scheme = scheme
        self.name = "fbf"
        self._left_sigs: list[tuple[int, ...]] = []
        self._right_sigs: list[tuple[int, ...]] = []
        self._bound = 0

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        scheme = self.scheme
        if scheme is None:
            kind = detect_kind(list(left[:128]) + list(right[:128]))
            scheme = scheme_for(kind)
            self.scheme = scheme
        self._left_sigs = scheme.signatures(left)
        self._right_sigs = scheme.signatures(right)
        self._bound = scheme.safe_threshold(self.k)

    def passes(self, i: int, j: int) -> bool:
        m = self._left_sigs[i]
        n = self._right_sigs[j]
        # Inlined diff_bits: this is the innermost loop of the whole
        # system, and one call frame per pair is measurable in CPython.
        x = 0
        for mi, ni in zip(m, n):
            x += (mi ^ ni).bit_count()
        return x <= self._bound


class LengthFilter(PairFilter):
    """Paper Algorithm 3: pass iff ``abs(|s| - |t|) <= k``.

    Safe because ``k`` edits can change a string's length by at most
    ``k``.  Useless on fixed-length fields (SSNs, phone numbers) — every
    pair passes — which is why the paper only evaluates it on names and
    addresses.
    """

    def __init__(self, k: int):
        self.k = validate_threshold(k)
        self.name = "length"
        self._left_lens: list[int] = []
        self._right_lens: list[int] = []

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        self._left_lens = [len(s) for s in left]
        self._right_lens = [len(t) for t in right]

    def passes(self, i: int, j: int) -> bool:
        return abs(self._left_lens[i] - self._right_lens[j]) <= self.k


@dataclass
class FilterStats:
    """Pass/reject accounting for one filter position in a chain."""

    name: str
    tested: int = 0
    passed: int = 0

    @property
    def rejected(self) -> int:
        return self.tested - self.passed

    @property
    def pass_rate(self) -> float:
        return self.passed / self.tested if self.tested else 0.0


@dataclass
class FilterChain:
    """An ordered stack of safe filters evaluated with short-circuiting.

    The paper's LFDL/LFPDL stacks are ``FilterChain([LengthFilter(k),
    FBFFilter(k)])``: the length test is cheapest, so it runs first and
    shields the FBF signature comparison (Section 6 credits exactly this
    for the extra 32% over FPDL).  Order is preserved as given.
    """

    filters: list[PairFilter]
    collect_stats: bool = False
    stats: list[FilterStats] = field(default_factory=list)

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        for f in self.filters:
            f.prepare(left, right)
        self.stats = [FilterStats(f.name) for f in self.filters]

    def passes(self, i: int, j: int) -> bool:
        if self.collect_stats:
            for f, st in zip(self.filters, self.stats):
                st.tested += 1
                if not f.passes(i, j):
                    return False
                st.passed += 1
            return True
        for f in self.filters:
            if not f.passes(i, j):
                return False
        return True
