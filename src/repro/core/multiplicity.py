"""The multiplicity layer: duplicate values, join symmetry, memoization.

The paper's workloads are demographic strings whose value distributions
are heavily Zipfian (census last names: SMITH alone covers ~1% of the
population), so an ``n x n`` join spends most of its time re-filtering
and re-verifying the *same* string pairs.  This module holds the three
composable pieces that make plan cost proportional to the number of
*distinct* pairs instead — with bit-identical results:

* **unique-string collapse** — :class:`CollapsedSide` factors a dataset
  into its unique values plus multiplicity and inverse-index vectors;
  the whole generator x backend funnel then runs on the
  ``u_left x u_right`` problem and :func:`expand_matches` maps matches
  back to original indices on demand.  :class:`PairWeighter` scales
  every funnel counter by ``count(i) * count(j)`` so conservation still
  holds against the uncollapsed ``n_left * n_right`` baseline.
* **triangular self-join** — when both sides are the same dataset, only
  the ``i <= j`` triangle of the unique product is enumerated; a match
  ``(u, v)`` with ``u != v`` stands for both orders (weight doubled)
  and the diagonal pair ``(u, u)`` for all ``count(u)**2`` identical
  pairs, so the weighted totals reproduce the full product exactly:
  ``sum_{u<v} 2*c_u*c_v + sum_u c_u**2 == n**2``.
* a bounded **verification memo** — :class:`VerificationMemo` caches
  verifier verdicts under a canonical ``(s, t)`` key so the scalar and
  multiprocess backends verify each distinct string pair once even when
  duplicates (or a candidate generator) resurface it.

The planner (:mod:`repro.core.plan`) estimates the uniqueness ratio
from a sample and activates the layer only when it pays; every plan
that goes through it returns a :class:`CollapsedJoinResult`, whose
match list expands lazily from unique-space matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.join import JoinResult

__all__ = [
    "CollapsedSide",
    "PairWeighter",
    "VerificationMemo",
    "CollapsedJoinResult",
    "estimate_uniqueness",
    "expand_matches",
    "positional_diagonal",
]


# ---------------------------------------------------------------------------
# Unique-string collapse
# ---------------------------------------------------------------------------


@dataclass
class CollapsedSide:
    """One dataset factored into unique values x multiplicity.

    ``values[inverse[i]] == original[i]`` for every original index
    ``i``; ``counts[u]`` is how many original rows hold ``values[u]``.
    Unique ids are assigned in first-appearance order, so collapsing an
    already-unique dataset is the identity permutation.
    """

    values: list[str]
    #: original index -> unique id
    inverse: np.ndarray
    #: unique id -> multiplicity
    counts: np.ndarray
    _groups: list[np.ndarray] | None = field(default=None, repr=False)

    @classmethod
    def from_strings(cls, strings: Sequence[str]) -> "CollapsedSide":
        """Collapse ``strings`` in one dictionary pass."""
        table: dict[str, int] = {}
        inverse = np.empty(len(strings), dtype=np.int64)
        for i, s in enumerate(strings):
            uid = table.get(s)
            if uid is None:
                uid = table[s] = len(table)
            inverse[i] = uid
        counts = np.bincount(inverse, minlength=len(table)).astype(np.int64)
        return cls(list(table), inverse, counts)

    @classmethod
    def identity(cls, strings: Sequence[str]) -> "CollapsedSide":
        """A no-dedup view (every row its own unique value).

        Used when the triangular strategy is wanted but collapsing was
        declined (``collapse="off"`` or not worth it): expansion and
        weighting degenerate to the identity.
        """
        n = len(strings)
        return cls(
            list(strings),
            np.arange(n, dtype=np.int64),
            np.ones(n, dtype=np.int64),
        )

    @property
    def n(self) -> int:
        return len(self.inverse)

    @property
    def n_unique(self) -> int:
        return len(self.values)

    def groups(self) -> list[np.ndarray]:
        """Unique id -> array of the original indices holding that value."""
        if self._groups is None:
            order = np.argsort(self.inverse, kind="stable")
            bounds = np.cumsum(self.counts)[:-1]
            self._groups = np.split(order, bounds)
        return self._groups


def estimate_uniqueness(strings: Sequence[str], sample: int = 1024) -> float:
    """Estimated fraction of distinct values, from an evenly-spaced sample.

    Returns 1.0 for empty input (nothing to collapse).  The sample is a
    stride over the whole dataset rather than a prefix, since sorted or
    clustered inputs would make a prefix wildly unrepresentative.
    """
    n = len(strings)
    if n == 0:
        return 1.0
    if n <= sample:
        return len(set(strings)) / n
    step = n / sample
    picked = {strings[int(i * step)] for i in range(sample)}
    return len(picked) / sample


# ---------------------------------------------------------------------------
# Multiplicity weighting
# ---------------------------------------------------------------------------


class PairWeighter:
    """Weight of one unique-space pair in original-pair units.

    ``weight(i, j) = w_left[i] * w_right[j]``, doubled for off-diagonal
    pairs of a *symmetric* (triangular self-join) enumeration, where
    ``(u, v)`` with ``u < v`` stands for both ``(u, v)`` and ``(v, u)``
    of the full product.  Backends scale their funnel counters and
    match counts by these weights, which is what keeps the conservation
    invariant intact against the uncollapsed ``n_left * n_right``
    baseline.
    """

    __slots__ = ("w_left", "w_right", "symmetric")

    def __init__(self, w_left, w_right, *, symmetric: bool = False):
        self.w_left = np.asarray(w_left, dtype=np.int64)
        self.w_right = np.asarray(w_right, dtype=np.int64)
        self.symmetric = symmetric

    def weight(self, i: int, j: int) -> int:
        w = int(self.w_left[i]) * int(self.w_right[j])
        if self.symmetric and i != j:
            w *= 2
        return w

    def block(self, ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
        """Per-pair weights for one candidate block."""
        w = self.w_left[ii] * self.w_right[jj]
        if self.symmetric:
            w = np.where(ii == jj, w, 2 * w)
        return w

    def total(self, ii: np.ndarray, jj: np.ndarray) -> int:
        return int(self.block(ii, jj).sum())


# ---------------------------------------------------------------------------
# Verification memo
# ---------------------------------------------------------------------------


class VerificationMemo:
    """Bounded FIFO cache of verifier verdicts for one (method, k).

    Keys are the canonical ``(min(s, t), max(s, t))`` ordering — every
    verifier in the registry (DL, PDL, Jaro, Jaro-Winkler, Hamming,
    Soundex) is symmetric, so one entry serves both orders.  One memo
    instance is scoped to a single method stack and threshold; the
    planner keeps a memo per method, which is what makes the short key
    sufficient for the full ``(s, t, method, k)`` identity.

    Eviction is first-in-first-out at ``capacity`` entries, bounding
    memory on adversarial streams while keeping the hot Zipfian head
    resident.  ``hits`` / ``misses`` count lookups for introspection;
    observed joins additionally mirror them into
    ``collector.verifier_counters``.
    """

    __slots__ = ("capacity", "hits", "misses", "_store")

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._store: dict[tuple[str, str], bool] = {}

    def __len__(self) -> int:
        return len(self._store)

    def lookup(self, s: str, t: str) -> bool | None:
        """The cached verdict for ``(s, t)``, or ``None`` on a miss."""
        key = (s, t) if s <= t else (t, s)
        verdict = self._store.get(key)
        if verdict is None and key not in self._store:
            self.misses += 1
            return None
        self.hits += 1
        return verdict

    def store(self, s: str, t: str, verdict: bool) -> None:
        key = (s, t) if s <= t else (t, s)
        if key not in self._store and len(self._store) >= self.capacity:
            # FIFO: dicts iterate in insertion order.
            del self._store[next(iter(self._store))]
        self._store[key] = bool(verdict)


# ---------------------------------------------------------------------------
# Expansion back to original indices
# ---------------------------------------------------------------------------


def expand_matches(
    unique_matches: Iterable[tuple[int, int]],
    left: CollapsedSide,
    right: CollapsedSide,
    *,
    symmetric: bool = False,
) -> list[tuple[int, int]]:
    """Map unique-space matches back to original index pairs.

    A match ``(u, v)`` expands to the product of the original rows
    holding each value; with ``symmetric`` (triangular self-join) an
    off-diagonal ``(u, v)`` additionally expands to the mirrored
    ``(v, u)`` product, so the expansion covers exactly the pairs the
    uncollapsed all-pairs join would have matched.
    """
    groups_l = left.groups()
    groups_r = right.groups()
    out: list[tuple[int, int]] = []
    for u, v in unique_matches:
        rows = groups_l[u].tolist()
        cols = groups_r[v].tolist()
        out.extend((i, j) for i in rows for j in cols)
        if symmetric and u != v:
            rows = groups_l[v].tolist()
            cols = groups_r[u].tolist()
            out.extend((i, j) for i in rows for j in cols)
    return out


def positional_diagonal(
    unique_matches: Iterable[tuple[int, int]],
    left: CollapsedSide,
    right: CollapsedSide,
) -> int:
    """Positional ``i == j`` diagonal of a collapsed (non-self) join.

    The evaluation's ground truth is positional — ``left[i]`` is the
    clean twin of ``right[i]`` — so after collapsing both sides the
    diagonal is the count of original positions whose (unique-left,
    unique-right) id pair matched.
    """
    matched = set(map(tuple, unique_matches))
    if not matched:
        return 0
    n = min(left.n, right.n)
    inv_l, inv_r = left.inverse, right.inverse
    return sum(
        1 for i in range(n) if (int(inv_l[i]), int(inv_r[i])) in matched
    )


class CollapsedJoinResult(JoinResult):
    """A :class:`JoinResult` whose match list expands lazily.

    ``unique_matches`` holds the unique-space pairs the backends
    actually verified; ``matches`` materializes the original-index
    expansion on first access (and caches it), so a collapsed join of a
    heavily duplicated dataset never pays the expansion unless someone
    reads the pairs.  Counters (``match_count``, ``diagonal_matches``)
    are already expressed in original-pair units.
    """

    def __init__(
        self,
        *args,
        unique_matches: Sequence[tuple[int, int]] = (),
        expander: Callable[[list[tuple[int, int]]], list[tuple[int, int]]]
        | None = None,
        **kwargs,
    ):
        self.unique_matches = list(unique_matches)
        self._expander = expander
        super().__init__(*args, **kwargs)
        # The dataclass __init__ above assigned the default [] through
        # the property setter; clear it so expansion stays pending.
        self._matches_cache = None

    @property
    def matches(self) -> list[tuple[int, int]]:
        if self._matches_cache is None:
            self._matches_cache = (
                self._expander(self.unique_matches) if self._expander else []
            )
        return self._matches_cache

    @matches.setter
    def matches(self, value: list[tuple[int, int]]) -> None:
        self._matches_cache = value
