"""FBF signature generation and comparison (paper Algorithms 4-6).

An FBF signature is a checklist of character occurrences packed into
32-bit words:

* **Alphabetic** (Algorithm 4, ``SetAlphaBits``): word ``j`` has bit ``c``
  set iff the ``(j+1)``-th occurrence of letter ``c`` appears in the
  string.  One word records first occurrences of A-Z; an ``l``-word
  vector records up to ``l`` occurrences of each letter.  Case-folded;
  non-letters ignored.
* **Numeric** (Algorithm 5, ``SetNumBits``): one word, bits ``3c + j``
  for digit ``c`` occurrence level ``j`` in {0, 1, 2} — up to three
  occurrences of each digit in 30 bits.  Non-digits ignored.
* **Alphanumeric**: the concatenation of an alphabetic vector and a
  numeric word (the paper's 12-byte address signature = 2 alpha words +
  1 numeric word).

Signature comparison (Algorithm 6, ``FindDiffBits``) XORs the word
vectors and counts set bits.  The load-bearing property (paper Section 4,
property-tested in ``tests/core/test_safety.py``)::

    diff_bits(sig(s), sig(t)) <= 2 * damerau_levenshtein(s, t)

so a pair with ``diff_bits > 2k`` is *guaranteed* not to match within
``k`` edits and can be discarded without running the DP — zero false
negatives.

Extended signatures (the paper's "unused bits" remark, Section 3) may add
global indicator bits (e.g. "some letter occurs more than *l* times",
"two identical letters are adjacent").  Each indicator is a single bit
and can therefore differ at most once per pair, so the safe threshold
relaxes from ``2k`` to ``2k + slack`` where ``slack`` is the number of
indicator bits — tracked by :class:`SignatureScheme` and consumed by
:class:`repro.core.filters.FBFFilter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

__all__ = [
    "ALPHA_INDEX",
    "DIGIT_INDEX",
    "alpha_signature",
    "num_signature",
    "alnum_signature",
    "find_diff_bits",
    "diff_bits",
    "SignatureScheme",
    "scheme_for",
    "scheme_from_name",
    "detect_kind",
    "ALPHA_OVERFLOW_BIT",
    "ALPHA_DOUBLED_BIT",
]

#: Letter -> bit index 0..25 ('A' -> 0 ... 'Z' -> 25), per Figure 3.
ALPHA_INDEX = {chr(ord("A") + i): i for i in range(26)}
ALPHA_INDEX.update({chr(ord("a") + i): i for i in range(26)})

#: Digit -> index 0..9, per Figure 4.
DIGIT_INDEX = {chr(ord("0") + i): i for i in range(10)}

#: Bit positions for the extended ("unused bits") indicators in the last
#: alphabetic word.  A-Z occupy bits 0-25, leaving 26-31 free.
ALPHA_OVERFLOW_BIT = 26  # some letter occurs more than `levels` times
ALPHA_DOUBLED_BIT = 27  # two identical letters are adjacent

_U32 = 0xFFFFFFFF


def alpha_signature(
    s: str, levels: int = 1, *, extended: bool = False
) -> tuple[int, ...]:
    """Paper Algorithm 4 (``SetAlphaBits``): alphabetic FBF signature.

    Returns a ``levels``-word tuple; word ``j`` bit ``c`` is set iff the
    string contains at least ``j + 1`` occurrences of letter ``c``.

    With ``extended=True``, two indicator bits are packed into the unused
    high bits of the **last** word: :data:`ALPHA_OVERFLOW_BIT` (some
    letter occurs more than ``levels`` times) and
    :data:`ALPHA_DOUBLED_BIT` (a doubled letter, e.g. the "TT" in
    "OTTO").  These tighten the filter at the cost of a slack of 2 on
    the safe threshold (see module docstring).

    >>> bin(alpha_signature("SMITH")[0]).count("1")
    5
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    words = [0] * levels
    seen = [0] * 26
    overflow = False
    doubled = False
    prev_idx = -1
    for ch in s:
        c = ALPHA_INDEX.get(ch)
        if c is None:
            prev_idx = -1
            continue
        j = seen[c]
        if j < levels:
            words[j] |= 1 << c
        else:
            overflow = True
        seen[c] = j + 1
        if c == prev_idx:
            doubled = True
        prev_idx = c
    if extended:
        if overflow:
            words[-1] |= 1 << ALPHA_OVERFLOW_BIT
        if doubled:
            words[-1] |= 1 << ALPHA_DOUBLED_BIT
    return tuple(words)


def num_signature(s: str) -> int:
    """Paper Algorithm 5 (``SetNumBits``): numeric FBF signature.

    One 32-bit word; bit ``3c + j`` set iff digit ``c`` occurs at least
    ``j + 1`` times (``j`` saturates at 2, i.e. at most three occurrences
    of each digit are recorded).  Non-digits are ignored, so formatted
    values like ``"800-555-1212"`` and ``"8005551212"`` share a
    signature.

    >>> num_signature("8005551212") == num_signature("800-555-1212")
    True
    """
    x = 0
    seen = [0] * 10
    for ch in s:
        c = DIGIT_INDEX.get(ch)
        if c is None:
            continue
        j = seen[c]
        if j < 3:
            x |= 1 << (3 * c + j)
            seen[c] = j + 1
    return x


def alnum_signature(
    s: str, alpha_levels: int = 2, *, extended: bool = False
) -> tuple[int, ...]:
    """Alphanumeric FBF signature: alpha vector followed by a numeric word.

    The paper's street-address configuration is ``alpha_levels=2`` (12
    bytes total).  Characters that are neither letters nor digits (space,
    punctuation) contribute nothing, exactly as in Algorithms 4-5.
    """
    return alpha_signature(s, alpha_levels, extended=extended) + (num_signature(s),)


def find_diff_bits(m: Sequence[int], n: Sequence[int]) -> int:
    """Paper Algorithm 6 (``FindDiffBits``), Wegner loop included.

    Counts the set bits of the word-wise XOR of two signatures — the
    number of character-occurrence slots present in exactly one of the
    two strings.  Kept as the literal transcription (the Wegner
    ``d &= d - 1`` loop); :func:`diff_bits` is the production variant.
    """
    if len(m) != len(n):
        raise ValueError(f"signature widths differ: {len(m)} vs {len(n)}")
    x = 0
    for mi, ni in zip(m, n):
        d = mi ^ ni
        while d > 0:
            x += 1
            d &= d - 1
    return x


def diff_bits(m: Sequence[int], n: Sequence[int]) -> int:
    """Signature difference via ``int.bit_count`` (hardware POPCNT)."""
    if len(m) != len(n):
        raise ValueError(f"signature widths differ: {len(m)} vs {len(n)}")
    x = 0
    for mi, ni in zip(m, n):
        x += (mi ^ ni).bit_count()
    return x


@dataclass(frozen=True)
class SignatureScheme:
    """A named FBF signature configuration.

    Bundles the generation function with the two numbers the filter
    needs: the word ``width`` of every signature it produces and the
    ``slack`` its indicator bits add to the safe threshold
    (``diff_bits <= 2k + slack`` preserves all true matches).
    """

    name: str
    width: int
    generate: Callable[[str], tuple[int, ...]]
    slack: int = 0

    def signature(self, s: str) -> tuple[int, ...]:
        """Signature of one string (fixed ``width``-word tuple)."""
        sig = self.generate(s)
        if len(sig) != self.width:
            raise ValueError(
                f"scheme {self.name!r} produced width {len(sig)}, "
                f"declared {self.width}"
            )
        return sig

    def signatures(self, strings: Iterable[str]) -> list[tuple[int, ...]]:
        """Signatures of a batch, in order."""
        return [self.signature(s) for s in strings]

    def safe_threshold(self, k: int) -> int:
        """Largest ``diff_bits`` value a true match within ``k`` edits
        can produce: ``2k + slack``."""
        return 2 * k + self.slack


def _alpha_scheme(levels: int, extended: bool) -> SignatureScheme:
    def gen(s: str, _l: int = levels, _e: bool = extended) -> tuple[int, ...]:
        return alpha_signature(s, _l, extended=_e)

    suffix = f"{levels}" + ("x" if extended else "")
    return SignatureScheme(
        name=f"alpha{suffix}",
        width=levels,
        generate=gen,
        slack=2 if extended else 0,
    )


def _alnum_scheme(levels: int, extended: bool) -> SignatureScheme:
    def gen(s: str, _l: int = levels, _e: bool = extended) -> tuple[int, ...]:
        return alnum_signature(s, _l, extended=_e)

    suffix = f"{levels}" + ("x" if extended else "")
    return SignatureScheme(
        name=f"alnum{suffix}",
        width=levels + 1,
        generate=gen,
        slack=2 if extended else 0,
    )


_NUMERIC_SCHEME = SignatureScheme(
    name="numeric", width=1, generate=lambda s: (num_signature(s),)
)


def scheme_for(kind: str, levels: int = 2, *, extended: bool = False) -> SignatureScheme:
    """Stock scheme factory.

    ``kind`` is one of:

    * ``"numeric"`` — one word, Algorithm 5 (SSNs, phones, birthdates).
    * ``"alpha"`` — ``levels`` words, Algorithm 4 (names; the paper uses
      ``levels=2``, 8 bytes).
    * ``"alnum"`` — ``levels`` alpha words + 1 numeric word (addresses;
      the paper's 12-byte configuration is ``levels=2``).
    """
    if kind == "numeric":
        if extended:
            raise ValueError("numeric signatures have no spare indicator bits")
        return _NUMERIC_SCHEME
    if kind == "alpha":
        return _alpha_scheme(levels, extended)
    if kind == "alnum":
        return _alnum_scheme(levels, extended)
    raise ValueError(f"unknown signature kind {kind!r}")


def scheme_from_name(name: str) -> SignatureScheme:
    """Reconstruct a stock scheme from its :attr:`SignatureScheme.name`.

    The inverse of :func:`scheme_for` for every scheme it can produce
    (``"numeric"``, ``"alpha2"``, ``"alnum2x"``, ...) — the hook
    snapshot loaders use to revive a persisted index.  Custom schemes
    have no parseable name and raise ``ValueError``.

    >>> scheme_from_name("alnum2x").name
    'alnum2x'
    """
    if name == "numeric":
        return _NUMERIC_SCHEME
    for prefix in ("alpha", "alnum"):
        if name.startswith(prefix):
            suffix = name[len(prefix):]
            extended = suffix.endswith("x")
            digits = suffix[:-1] if extended else suffix
            if digits.isdigit() and int(digits) >= 1:
                return scheme_for(prefix, int(digits), extended=extended)
    raise ValueError(f"not a stock scheme name: {name!r}")


def detect_kind(strings: Iterable[str], sample: int = 256) -> str:
    """Guess the signature kind for a dataset by inspecting a sample.

    All-digit (allowing separators) samples map to ``"numeric"``,
    all-letter samples to ``"alpha"``, anything mixed to ``"alnum"``.
    """
    has_alpha = False
    has_digit = False
    for i, s in enumerate(strings):
        if i >= sample:
            break
        for ch in s:
            if ch in ALPHA_INDEX:
                has_alpha = True
            elif ch in DIGIT_INDEX:
                has_digit = True
        if has_alpha and has_digit:
            return "alnum"
    if has_digit and not has_alpha:
        return "numeric"
    if has_alpha and not has_digit:
        return "alpha"
    return "alnum"
