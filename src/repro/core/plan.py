"""The join planner: candidate generation × execution backends.

The paper's driver (Algorithm 7) walks the full ``S x T`` product and
filters per pair; the repo long duplicated that loop three ways (scalar,
vectorized, multiprocess) while its sub-quadratic structures — the FBF
signature index, length bucketing, key blocking — sat outside the join.
This module decouples the two halves every related system (PASS-JOIN,
py_stringsimjoin) decouples:

* a :class:`CandidateGenerator` decides *which pairs to look at* —
  :class:`AllPairsGenerator` (the paper's product),
  :class:`LengthBucketGenerator` (length-window group products),
  :class:`FBFIndexGenerator` (bucket + signature filtering via
  :class:`repro.core.index.FBFIndex`),
  :class:`PassJoinGenerator` (PASS-JOIN segment partition index,
  :mod:`repro.core.passjoin`),
  :class:`PrefixQgramGenerator` (q-gram prefix + position inverted
  index, :mod:`repro.core.prefix`), or
  :class:`BlockingKeyGenerator` (traditional key blocking — *lossy*,
  never auto-picked);
* an :class:`ExecutionBackend` decides *how to verify them* —
  ``scalar`` (the reference loop), ``vectorized`` (NumPy chunks),
  ``multiprocess`` (scalar loop over a process pool), or ``hybrid``
  (vectorized chunk kernels over a shared-memory worker pool — see
  :mod:`repro.parallel.shm`);
* :class:`JoinPlanner` composes one of each from dataset size, the
  method spec and ``k`` via a small cost model, with explicit overrides
  for benchmarks, and runs the plan to a unified
  :class:`repro.core.join.JoinResult`.

**Safety.**  A generator is *safe* for a method when every pair the
method would match is guaranteed to be emitted.  The length window is
implied by edit-bounded verifiers (``dl``/``pdl``/``ham`` — padded
Hamming upper-bounds edit distance) and by an explicit length filter;
the FBF bound additionally requires an edit-bounded verifier or the
method's own ``fbf`` filter.  Unsafe combinations are never auto-picked;
an explicit override runs them anyway (with a log warning) so the
benchmark suite can measure blocking's recall loss.

**Funnel accounting.**  Every plan satisfies the conservation invariant
of :mod:`repro.obs`: the backend counts the candidates it actually saw,
and for non-full-product plans the planner records the generator as the
funnel's first stage (``tested`` = full product, ``passed`` = emitted
candidates) and credits the skipped pairs as considered-and-rejected —
so an index-backed plan *reports* its reduction exactly where a filter
reports its rejections.

**Multiplicity.**  Demographic workloads are heavily duplicated, so the
planner composes the :mod:`repro.core.multiplicity` layer in front of
any (generator, backend) pair: ``collapse`` runs the whole funnel on
the unique-value product with per-pair weights keeping every counter in
original-pair units; self-joins (same dataset on both sides, detected
or forced with ``self_join=True``) enumerate only the ``i <= j``
triangle of the unique product; and a bounded verification memo lets
the scalar and multiprocess backends verify each distinct string pair
once on uncollapsed duplicate-bearing plans.  All of it is
bit-identical to the uncollapsed plan (asserted by the equivalence
suite) — only the enumerated-pair cost changes.

Quickstart::

    from repro import join

    result = join(left, right, "FPDL", k=1)          # planned
    result = join(left, right, "DL", generator="all-pairs",
                  backend="scalar")                  # forced reference
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.join import JoinResult, _scalar_join
from repro.core.matchers import MethodSpec, build_matcher, method_registry
from repro.core.multiplicity import (
    CollapsedJoinResult,
    CollapsedSide,
    PairWeighter,
    VerificationMemo,
    estimate_uniqueness,
    expand_matches,
    positional_diagonal,
)
from repro.core.signatures import detect_kind, scheme_for
from repro.native import available as native_available
from repro.native import kind as native_kind
from repro.native import resolve_kernels
from repro.obs.log import get_logger
from repro.obs.stats import NULL_COLLECTOR
from repro.parallel.chunked import VectorEngine, _group_by_value
from repro.parallel.partition import iter_pair_blocks
from repro.parallel.pool import multiprocess_join

__all__ = [
    "EDIT_BOUNDED",
    "GENERATOR_NAMES",
    "GENERATOR_FACTORIES",
    "GENERATOR_SUMMARIES",
    "GeneratorCost",
    "BACKEND_NAMES",
    "CandidateGenerator",
    "AllPairsGenerator",
    "LengthBucketGenerator",
    "FBFIndexGenerator",
    "PassJoinGenerator",
    "PrefixQgramGenerator",
    "BlockingKeyGenerator",
    "ExecutionBackend",
    "HybridBackend",
    "NativeBackend",
    "JoinPlan",
    "JoinPlanner",
    "join",
]

_log = get_logger("core.plan")

#: Verifiers for which ``match(s, t)`` implies edit distance <= k, hence
#: ``|len(s) - len(t)| <= k`` and the FBF diff-bits bound — the two
#: implications the pruning generators rely on.  Jaro/Wink/SDX bound
#: neither; padded Hamming counts overhang positions as mismatches, so
#: ``Ham <= k`` does imply both.
EDIT_BOUNDED = frozenset({"dl", "pdl", "ham"})

BACKEND_NAMES = ("scalar", "vectorized", "multiprocess", "hybrid", "native")

Block = tuple[np.ndarray, np.ndarray]

# -- cost-model constants (pair-units) --------------------------------------
# 1.0 pair-unit = one gathered candidate flowing through the vectorized
# filter + verify funnel; everything else is calibrated relative to it
# from the n=1e4-1e5 LN ablations.  Dense all-pairs blocks avoid the
# gather, signature probes inside length windows touch two packed words,
# and index builds/probes are per-string NumPy sweeps.
_COST_DENSE = 0.35
_COST_WINDOW = 1.0
_COST_SIG_PROBE = 0.15
_COST_BUILD_FBF = 6.0
_COST_BUILD_SEG = 8.0
_COST_BUILD_GRAM = 14.0
_COST_PROBE_SEG = 4.0
_COST_PROBE_GRAM = 10.0
# Each inverted-list collision costs more than a verified candidate:
# range expansion, the dedup sort, and the downstream verify all touch
# it (measured ~3x on the 1e5 LN ablation, where k=2 emits 5e8).
_COST_COLLISION_SEG = 3.0
_COST_COLLISION_GRAM = 2.0


# ---------------------------------------------------------------------------
# Candidate generators
# ---------------------------------------------------------------------------


class CandidateGenerator:
    """Protocol: decide which ``(i, j)`` pairs the backend verifies.

    ``blocks(planner)`` yields ``(ii, jj)`` index-array pairs; a
    generator with ``is_full_product`` set never materializes them —
    backends use their native full-product paths instead.
    """

    name = "generator"
    #: covers the whole product (backends may take their dense paths)
    is_full_product = False
    #: guaranteed to emit every pair any method could match
    lossless = True
    #: one-line description for --help and --plan output
    summary = ""
    #: what a method must provide for this generator to be safe
    requirement = "nothing"

    def is_safe_for(self, spec: MethodSpec) -> bool:
        """May this generator prune without dropping matches of ``spec``?"""
        raise NotImplementedError

    def blocks(self, planner: "JoinPlanner") -> Iterator[Block]:
        raise NotImplementedError

    def estimate_cost(
        self, planner: "JoinPlanner", spec: MethodSpec
    ) -> tuple[float, str]:
        """(pair-unit cost estimate, one-line how) for the cost model."""
        raise NotImplementedError


class AllPairsGenerator(CandidateGenerator):
    """The paper's full Cartesian product — safe for everything."""

    name = "all-pairs"
    is_full_product = True
    summary = "full Cartesian product (the paper's driver; always safe)"

    def is_safe_for(self, spec: MethodSpec) -> bool:
        return True

    def blocks(self, planner: "JoinPlanner") -> Iterator[Block]:
        return iter_pair_blocks(
            len(planner.left), len(planner.right), planner.block_pairs
        )

    def estimate_cost(self, planner, spec):
        product = len(planner.left) * len(planner.right)
        return product * _COST_DENSE, f"dense product of {product:,} pairs"


class LengthBucketGenerator(CandidateGenerator):
    """Group products whose lengths differ by at most ``k``.

    The length filter at *group* granularity: each side is bucketed by
    string length once, and only bucket pairs within the ``k`` window
    produce candidates — incompatible bucket products are skipped
    wholesale, never enumerated.
    """

    name = "length-bucket"
    summary = "length-window bucket products"
    requirement = (
        "an edit-bounded verifier (dl/pdl/ham) or the method's own "
        "length filter"
    )

    def is_safe_for(self, spec: MethodSpec) -> bool:
        return spec.verifier in EDIT_BOUNDED or "length" in spec.filters

    def estimate_cost(self, planner, spec):
        window = planner.window_pairs()
        return window * _COST_WINDOW, f"{window:,} length-window pairs"

    def blocks(self, planner: "JoinPlanner") -> Iterator[Block]:
        groups_l, groups_r = planner.length_groups()
        cap = planner.block_pairs
        for lv, left_idx in groups_l.items():
            right_parts = [
                idx for rv, idx in groups_r.items() if abs(lv - rv) <= planner.k
            ]
            if not right_parts:
                continue
            right_idx = np.concatenate(right_parts)
            rows = max(1, cap // max(1, len(right_idx)))
            for r0 in range(0, len(left_idx), rows):
                chunk = left_idx[r0 : r0 + rows]
                yield (
                    np.repeat(chunk, len(right_idx)),
                    np.tile(right_idx, len(chunk)),
                )


class FBFIndexGenerator(CandidateGenerator):
    """Bucket + FBF-signature pruning via :class:`FBFIndex`.

    The right side is indexed once (length buckets holding packed
    signature matrices); each left string probes only its length window
    and keeps signature-compatible entries.  Unlike :meth:`FBFIndex.
    search`, empty strings and length-0 buckets are included — whether
    empties match is the verifier's decision, not the generator's.
    """

    name = "fbf-index"
    summary = "FBF signature probes inside length windows"
    requirement = (
        "an edit-bounded verifier (dl/pdl/ham) or the method's own "
        "length+fbf filters"
    )

    def is_safe_for(self, spec: MethodSpec) -> bool:
        if spec.verifier in EDIT_BOUNDED:
            return True
        return "length" in spec.filters and "fbf" in spec.filters

    def blocks(self, planner: "JoinPlanner") -> Iterator[Block]:
        return planner.index().candidate_blocks(
            planner.left, planner.k, max_pairs=planner.block_pairs
        )

    def estimate_cost(self, planner, spec):
        window = planner.window_pairs()
        cost = (
            len(planner.right) * _COST_BUILD_FBF + window * _COST_SIG_PROBE
        )
        return cost, f"signature probes over {window:,} window pairs"


class PassJoinGenerator(CandidateGenerator):
    """PASS-JOIN segment partition index (:mod:`repro.core.passjoin`).

    Exact for edit-bounded verifiers: candidates come from inverted
    segment-index collisions, so generation cost tracks collisions, not
    the n x m product.  OSA-complete via boundary-transposition probe
    variants (see the module docstring).
    """

    name = "pass-join"
    summary = "PASS-JOIN segment partition index (exact, sub-quadratic)"
    requirement = "an edit-bounded verifier (dl/pdl/ham)"

    def is_safe_for(self, spec: MethodSpec) -> bool:
        return spec.verifier in EDIT_BOUNDED

    def blocks(self, planner: "JoinPlanner") -> Iterator[Block]:
        return planner.passjoin_index().candidate_blocks(
            planner.left, max_pairs=planner.block_pairs
        )

    def estimate_cost(self, planner, spec):
        emitted = planner.sampled_emit("pass-join")
        cost = (
            len(planner.right) * _COST_BUILD_SEG
            + len(planner.left) * _COST_PROBE_SEG
            + emitted * _COST_COLLISION_SEG
        )
        return cost, f"~{emitted:,.0f} sampled segment collisions"


class PrefixQgramGenerator(CandidateGenerator):
    """q-gram prefix + position filter (:mod:`repro.core.prefix`).

    Exact for edit-bounded verifiers; generation cost tracks
    inverted-list collisions of the rarest-first gram prefixes.
    """

    name = "prefix"
    summary = "q-gram prefix+position inverted index (exact, sub-quadratic)"
    requirement = "an edit-bounded verifier (dl/pdl/ham)"

    def is_safe_for(self, spec: MethodSpec) -> bool:
        return spec.verifier in EDIT_BOUNDED

    def blocks(self, planner: "JoinPlanner") -> Iterator[Block]:
        return planner.prefix_index().candidate_blocks(
            planner.left, max_pairs=planner.block_pairs
        )

    def estimate_cost(self, planner, spec):
        emitted = planner.sampled_emit("prefix")
        cost = (
            len(planner.right) * _COST_BUILD_GRAM
            + len(planner.left) * _COST_PROBE_GRAM
            + emitted * _COST_COLLISION_GRAM
        )
        return cost, f"~{emitted:,.0f} sampled gram collisions"


class BlockingKeyGenerator(CandidateGenerator):
    """Traditional key blocking as a candidate generator.

    Wraps any object with the :class:`repro.linkage.blocking.
    BlockingMethod` shape (``name``, ``pairs``, ``pairs_observed``) —
    duck-typed so this module never imports the linkage layer.  Key
    blocking is **lossy** (a key error silently drops a true match: the
    paper's core argument against it), so the planner never auto-picks
    it; it exists for explicit use, the linkage engine, and the
    completeness benchmarks.

    ``keys`` override what the blocking method sees per side; by default
    the joined strings are their own keys.
    """

    is_full_product = False
    lossless = False
    summary = "traditional key blocking (lossy — never auto-picked)"
    requirement = "nothing — key blocking is lossy by design"

    def __init__(
        self,
        method,
        *,
        key_left: Sequence[str] | None = None,
        key_right: Sequence[str] | None = None,
        buffer_pairs: int = 1 << 16,
    ):
        self.method = method
        self.name = f"blocking:{getattr(method, 'name', 'custom')}"
        self.key_left = key_left
        self.key_right = key_right
        self.buffer_pairs = buffer_pairs

    def is_safe_for(self, spec: MethodSpec) -> bool:
        return False

    def key_pairs(
        self, left: Sequence[str], right: Sequence[str]
    ) -> Iterator[tuple[int, int]]:
        """The wrapped method's raw pair stream (linkage-engine entry)."""
        return self.method.pairs(left, right)

    def key_pairs_observed(
        self, left: Sequence[str], right: Sequence[str], collector
    ) -> Iterator[tuple[int, int]]:
        """Pair stream with the method's own funnel-stage accounting."""
        return self.method.pairs_observed(left, right, collector)

    def blocks(self, planner: "JoinPlanner") -> Iterator[Block]:
        left = self.key_left if self.key_left is not None else planner.left
        right = self.key_right if self.key_right is not None else planner.right
        buf_i: list[int] = []
        buf_j: list[int] = []
        for i, j in self.method.pairs(left, right):
            buf_i.append(i)
            buf_j.append(j)
            if len(buf_i) >= self.buffer_pairs:
                yield (
                    np.asarray(buf_i, dtype=np.int64),
                    np.asarray(buf_j, dtype=np.int64),
                )
                buf_i, buf_j = [], []
        if buf_i:
            yield (
                np.asarray(buf_i, dtype=np.int64),
                np.asarray(buf_j, dtype=np.int64),
            )

    def estimate_cost(self, planner, spec):
        return float("inf"), "lossy by design — never auto-picked"


def _default_blocking() -> BlockingKeyGenerator:
    """The registry's ``"blocking"`` entry: Soundex standard blocking
    (the configuration the CLI and the recall benchmarks use).  Lazy so
    the plan layer never imports the linkage layer unless asked."""
    from repro.distance.soundex import soundex
    from repro.linkage.blocking import StandardBlocking

    return BlockingKeyGenerator(StandardBlocking(key=soundex))


_default_blocking.summary = BlockingKeyGenerator.summary

#: name -> zero-arg factory for every registered generator.  The CLI
#: derives its ``--generator`` choices and help text from this mapping,
#: and :meth:`JoinPlanner.generator` instantiates entries lazily — so a
#: new generator registers here once and appears everywhere.
GENERATOR_FACTORIES: dict[str, type | object] = {
    "all-pairs": AllPairsGenerator,
    "length-bucket": LengthBucketGenerator,
    "fbf-index": FBFIndexGenerator,
    "pass-join": PassJoinGenerator,
    "prefix": PrefixQgramGenerator,
    "blocking": _default_blocking,
}

GENERATOR_NAMES = tuple(GENERATOR_FACTORIES)

GENERATOR_SUMMARIES = {
    name: factory.summary for name, factory in GENERATOR_FACTORIES.items()
}


@dataclass(frozen=True)
class GeneratorCost:
    """One generator's cost-model score for a method (see
    :meth:`JoinPlanner.generator_costs`)."""

    name: str
    generator: CandidateGenerator
    #: estimated pair-units; ``inf`` for lossy generators
    cost: float
    #: may the cost model pick it (lossless and safe for the method)?
    safe: bool
    detail: str


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """Protocol: verify a candidate stream (or the full product)."""

    name = "backend"

    def run(
        self,
        planner: "JoinPlanner",
        method: str,
        blocks: Iterator[Block] | None,
        *,
        collector,
        record_matches: bool,
    ) -> JoinResult:
        """Execute; ``blocks=None`` means the full product (use the
        native dense path)."""
        raise NotImplementedError


def _flatten(blocks: Iterable[Block]) -> Iterator[tuple[int, int]]:
    for ii, jj in blocks:
        yield from zip(ii.tolist(), jj.tolist())


class ScalarBackend(ExecutionBackend):
    """The paper-faithful per-pair reference loop."""

    name = "scalar"

    def run(self, planner, method, blocks, *, collector, record_matches):
        matcher = build_matcher(
            method,
            k=planner.k,
            theta=planner.theta,
            scheme=planner.scheme(),
            collector=collector,
        )
        memo = planner.memo_for(method)
        if memo is not None:
            matcher.memo = memo
        result = _scalar_join(
            planner.left,
            planner.right,
            matcher,
            record_matches=record_matches,
            pairs=None if blocks is None else _flatten(blocks),
            collector=collector,
            weighter=planner.weighter,
            self_join=planner.content_equal,
        )
        result.backend = self.name
        return result


class VectorizedBackend(ExecutionBackend):
    """The chunked NumPy engine (:class:`VectorEngine`)."""

    name = "vectorized"

    def run(self, planner, method, blocks, *, collector, record_matches):
        engine = planner.engine()
        engine.record_matches = record_matches
        if blocks is None:
            v = engine.run(method, collector=collector)
            result = JoinResult(
                method,
                v.n_left,
                v.n_right,
                match_count=v.match_count,
                diagonal_matches=v.diagonal_matches,
                verified_pairs=v.verified_pairs,
                pairs_compared=v.pairs_compared,
                backend=self.name,
            )
            result.matches = v.matches
            return result
        result = engine.run_candidates(
            method, blocks, collector=collector, weighter=planner.weighter
        )
        result.backend = self.name
        return result


class NativeBackend(VectorizedBackend):
    """The vectorized engine with compiled inner kernels.

    Identical dataflow, chunking and funnel accounting to
    :class:`VectorizedBackend` — the planner's cached engine is
    temporarily armed with the :mod:`repro.native` kernel set (numba or
    the ctypes/cc provider, whichever loaded), which swaps only the
    innermost loops: the fused XOR+popcount candidate scan and the
    batched bit-parallel/banded OSA verifier.  Decisions are
    bit-identical by construction (providers must pass the native
    self-check) and pinned by the plan-equivalence suite.  When no
    provider is available the run degrades to the plain vectorized
    tier with a once-per-process warning.
    """

    name = "native"

    def run(self, planner, method, blocks, *, collector, record_matches):
        kernels = resolve_kernels("native", warn_key="backend")
        if kernels is None:
            return planner._backends["vectorized"].run(
                planner, method, blocks,
                collector=collector, record_matches=record_matches,
            )
        engine = planner.engine()
        prev = engine._native
        engine._native = kernels
        try:
            return super().run(
                planner, method, blocks,
                collector=collector, record_matches=record_matches,
            )
        finally:
            engine._native = prev


class MultiprocessBackend(ExecutionBackend):
    """The scalar loop fanned out over a process pool."""

    name = "multiprocess"

    def run(self, planner, method, blocks, *, collector, record_matches):
        memo = planner.memo_for(method)
        result = multiprocess_join(
            planner.left,
            planner.right,
            method,
            k=planner.k,
            theta=planner.theta,
            scheme_kind=planner.kind(),
            workers=planner.workers,
            record_matches=record_matches,
            collector=collector,
            pairs=None if blocks is None else list(_flatten(blocks)),
            weighter=planner.weighter,
            memo_capacity=memo.capacity if memo is not None else 0,
            self_join=planner.content_equal,
        )
        result.backend = self.name
        return result


class HybridBackend(ExecutionBackend):
    """Shared-memory worker pool running the vectorized chunk kernels.

    Both sides are published once per planner (cached
    :class:`repro.parallel.shm.SharedDatasets`), then every run fans
    out over the process-wide warm pool — workers × SIMD, with the
    datasets crossing the process boundary at most once per pool
    lifetime.  Decisions and funnel counters are identical to the
    scalar reference (per-worker collectors merge into the parent's).
    """

    name = "hybrid"

    def run(self, planner, method, blocks, *, collector, record_matches):
        from repro.parallel import shm

        spec = method_registry()[method]
        datasets = planner.shared_datasets(need_sdx=spec.verifier == "sdx")
        pool = shm.shared_pool(planner.workers)
        result = shm.run_hybrid(
            pool,
            datasets.left,
            datasets.right,
            method,
            blocks,
            scheme=datasets.scheme,
            k=planner.k,
            theta=planner.theta,
            self_join=planner.content_equal,
            collector=collector,
            record_matches=record_matches,
            weighter=planner.weighter,
            shared_source=datasets,
        )
        result.backend = self.name
        return result


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinPlan:
    """One chosen (generator, backend) composition."""

    method: str
    generator: CandidateGenerator
    backend: ExecutionBackend
    n_left: int
    n_right: int
    reason: str

    @property
    def product(self) -> int:
        return self.n_left * self.n_right

    def describe(self) -> str:
        return (
            f"{self.method}: {self.generator.name} -> {self.backend.name} "
            f"over {self.n_left} x {self.n_right} "
            f"({self.product:,} pairs) [{self.reason}]"
        )


class JoinPlanner:
    """Pick and run a (candidate generator, execution backend) pair.

    One planner is bound to two datasets and the join parameters;
    :meth:`run` executes any registered method under the chosen (or
    overridden) plan.  Prepared state — the vectorized engine, the FBF
    index, length groups — is built lazily and cached, so repeated runs
    over the same datasets (the experiment harness's shape) pay
    preparation once; :meth:`prepare` forces it eagerly for timing
    loops that must exclude it.

    Cost model (see :meth:`plan`): index-backed candidate generation
    needs the product to be large enough to amortize building the index
    (``index_min_pairs``) and a small ``k`` (window width scales bucket
    probes); the scalar backend is only right for products small enough
    that NumPy setup dominates (``scalar_max_pairs``); multiprocess is
    explicit-only, since process startup dwarfs any product the
    vectorized engine can't already handle in-core.  Products above the
    scalar cutoff prefer the native backend (same dataflow, compiled
    constants) whenever a :mod:`repro.native` provider validated —
    otherwise vectorized.
    """

    def __init__(
        self,
        left: Sequence[str],
        right: Sequence[str],
        *,
        k: int = 1,
        theta: float = 0.8,
        scheme: str | None = None,
        levels: int = 2,
        workers: int | None = None,
        record_matches: bool = False,
        collector=None,
        block_pairs: int = 1 << 20,
        scalar_max_pairs: int = 1 << 14,
        index_min_pairs: int = 1 << 20,
        hybrid_min_pairs: int = 1 << 22,
        max_index_k: int = 4,
        collapse: str = "auto",
        self_join: bool | None = None,
        memo: str = "auto",
        memo_capacity: int = 1 << 16,
        collapse_min_pairs: int = 1 << 20,
        collapse_auto_ratio: float = 0.5,
    ):
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if collapse not in ("auto", "on", "off"):
            raise ValueError(
                f"collapse must be 'auto', 'on' or 'off', got {collapse!r}"
            )
        if memo not in ("auto", "on", "off"):
            raise ValueError(
                f"memo must be 'auto', 'on' or 'off', got {memo!r}"
            )
        same_object = right is left
        self.left = list(left)
        self.right = self.left if same_object else list(right)
        #: both sides hold the same values (the self-join *condition*);
        #: detected once so backends get value-identity diagonal
        #: semantics without re-comparing datasets per run
        self.content_equal = same_object or (
            len(self.left) == len(self.right) and self.left == self.right
        )
        if self_join and not self.content_equal:
            raise ValueError(
                "self_join=True requires left and right to hold the same "
                "values (the triangular enumeration mirrors every pair)"
            )
        #: use the triangular enumeration strategy (the self-join
        #: *optimization*; diagonal semantics follow the data, not this)
        self.self_join = self.content_equal if self_join is None else bool(self_join)
        self.k = k
        self.theta = theta
        self.levels = levels
        self.workers = workers
        self.record_matches = record_matches
        self.collector = collector
        self.block_pairs = block_pairs
        self.scalar_max_pairs = scalar_max_pairs
        self.index_min_pairs = index_min_pairs
        self.hybrid_min_pairs = hybrid_min_pairs
        self.max_index_k = max_index_k
        self.collapse = collapse
        self.memo = memo
        self.memo_capacity = memo_capacity
        self.collapse_min_pairs = collapse_min_pairs
        self.collapse_auto_ratio = collapse_auto_ratio
        #: per-pair multiplicity weights, set around a collapsed run so
        #: the backends (which only see this planner) pick them up
        self.weighter: PairWeighter | None = None
        self._uniqueness: float | None = None
        self._memos: dict[str, VerificationMemo] = {}
        self._collapsed: tuple[CollapsedSide, CollapsedSide] | None = None
        self._inner: "JoinPlanner" | None = None
        self._kind = scheme
        self._scheme = None
        self._engine: VectorEngine | None = None
        self._index = None
        self._passjoin = None
        self._prefix = None
        self._shm_datasets = None
        self._len_groups: tuple[dict, dict] | None = None
        self._len_hist: tuple[dict, dict] | None = None
        self._window_pairs: int | None = None
        self._cost_samples: dict[str, float] = {}
        #: lazily instantiated from GENERATOR_FACTORIES (see generator())
        self._generators: dict[str, CandidateGenerator] = {}
        self._backends = {
            b.name: b
            for b in (
                ScalarBackend(),
                VectorizedBackend(),
                NativeBackend(),
                MultiprocessBackend(),
                HybridBackend(),
            )
        }

    # -- cached prepared state ---------------------------------------------

    def kind(self) -> str:
        """The FBF signature kind (detected once, like the engines do)."""
        if self._kind is None:
            self._kind = detect_kind(
                list(self.left[:128]) + list(self.right[:128])
            )
        return self._kind

    def scheme(self):
        """The shared signature scheme — one object for matcher, engine
        and index, so FBF decisions agree across every plan."""
        if self._scheme is None:
            self._scheme = scheme_for(self.kind(), self.levels)
        return self._scheme

    def engine(self) -> VectorEngine:
        if self._engine is None:
            self._engine = VectorEngine(
                self.left,
                self.right,
                k=self.k,
                theta=self.theta,
                scheme_kind=self.kind(),
                levels=self.levels,
                record_matches=self.record_matches,
            )
        return self._engine

    def index(self):
        if self._index is None:
            from repro.core.index import FBFIndex

            self._index = FBFIndex(self.right, scheme=self.scheme())
        return self._index

    def passjoin_index(self):
        """The PASS-JOIN segment index over the right side (cached per
        planner, like :meth:`index`)."""
        if self._passjoin is None:
            from repro.core.passjoin import PassJoinIndex

            self._passjoin = PassJoinIndex(self.right, k=self.k)
        return self._passjoin

    def prefix_index(self):
        """The q-gram prefix index over the right side (cached)."""
        if self._prefix is None:
            from repro.core.prefix import PrefixQgramIndex

            self._prefix = PrefixQgramIndex(self.right, k=self.k)
        return self._prefix

    def generator(self, name: str) -> CandidateGenerator | None:
        """The registered generator instance for ``name`` (lazily built
        from :data:`GENERATOR_FACTORIES`), or ``None`` if unknown."""
        gen = self._generators.get(name)
        if gen is None:
            factory = GENERATOR_FACTORIES.get(name)
            if factory is None:
                return None
            gen = self._generators[name] = factory()
        return gen

    def shared_datasets(self, *, need_sdx: bool = False):
        """Both sides published through shared memory (hybrid backend).

        Built lazily and cached, like the engine and the index: repeated
        hybrid runs over one planner attach to the same segments, so the
        datasets cross the process boundary once.  Soundex codes are
        published on the first method that needs them.
        """
        from repro.parallel import shm

        if self._shm_datasets is None:
            self._shm_datasets = shm.SharedDatasets(
                self.left,
                self.right,
                scheme=self.scheme(),
                self_join=self.content_equal,
                need_sdx=need_sdx,
            )
        elif need_sdx and not self._shm_datasets.has_sdx:
            self._shm_datasets.add_sdx(self.left, self.right)
        return self._shm_datasets

    def length_groups(self) -> tuple[dict, dict]:
        if self._len_groups is None:
            len_l = np.fromiter(
                (len(s) for s in self.left), dtype=np.int64, count=len(self.left)
            )
            len_r = np.fromiter(
                (len(s) for s in self.right), dtype=np.int64, count=len(self.right)
            )
            self._len_groups = (_group_by_value(len_l), _group_by_value(len_r))
        return self._len_groups

    def prepare(self, backend: str = "vectorized") -> None:
        """Eagerly build the named backend's cached state (timing parity
        with the pre-planner drivers, which prepared outside the clock)."""
        if backend == "vectorized":
            self.engine()
        elif backend == "hybrid":
            self.shared_datasets()
            from repro.parallel import shm

            shm.shared_pool(self.workers).ensure()

    # -- multiplicity layer --------------------------------------------------

    def uniqueness_ratio(self) -> float:
        """Sampled estimate of ``unique product / full product``.

        The product of each side's :func:`estimate_uniqueness`; cached,
        since it both gates auto-collapse and auto-enables the memo.
        """
        if self._uniqueness is None:
            ul = estimate_uniqueness(self.left)
            ur = ul if self.content_equal else estimate_uniqueness(self.right)
            self._uniqueness = ul * ur
        return self._uniqueness

    def collapse_active(self) -> bool:
        """Will plans run on the unique-value product?

        ``"on"``/``"off"`` are honored verbatim.  ``"auto"`` collapses a
        self-join whenever the sampled unique product is at most
        ``collapse_auto_ratio`` of the full one; a two-dataset join
        additionally needs a product of at least ``collapse_min_pairs``
        (collapsing pays a dictionary pass per side up front, which tiny
        joins never earn back).
        """
        if self.collapse == "on":
            return True
        if self.collapse == "off":
            return False
        ratio = self.uniqueness_ratio()
        if self.self_join:
            return ratio <= self.collapse_auto_ratio
        product = len(self.left) * len(self.right)
        return (
            product >= self.collapse_min_pairs
            and ratio <= self.collapse_auto_ratio
        )

    def _multiplicity_active(self) -> bool:
        """Route through the collapsed path (triangle and/or collapse)?"""
        return self.self_join or self.collapse_active()

    def memo_for(self, method: str) -> VerificationMemo | None:
        """The per-method verification memo, or ``None`` when disabled.

        ``"auto"`` enables the memo only when duplicates were sampled
        (``uniqueness_ratio() < 1``) — on unique data every canonical
        pair arrives once and the cache is pure overhead.  The collapsed
        path disables it outright (its inner planner is built with
        ``memo="off"``): unique-space pairs never repeat either.
        Filter-only methods have no verifier to memoize.
        """
        if self.memo == "off":
            return None
        if self.memo == "auto" and self.uniqueness_ratio() >= 1.0:
            return None
        spec = method_registry().get(method)
        if spec is None or spec.verifier is None:
            return None
        m = self._memos.get(method)
        if m is None:
            m = self._memos[method] = VerificationMemo(self.memo_capacity)
        return m

    def _collapsed_sides(self) -> tuple[CollapsedSide, CollapsedSide]:
        """The factored sides (shared object for self-joins; identity
        views when the triangle is wanted but collapsing declined)."""
        if self._collapsed is None:
            make = (
                CollapsedSide.from_strings
                if self.collapse_active()
                else CollapsedSide.identity
            )
            cl = make(self.left)
            cr = cl if self.content_equal else make(self.right)
            self._collapsed = (cl, cr)
        return self._collapsed

    def _unique_planner(self) -> "JoinPlanner":
        """The inner planner over unique values.

        Cached: it owns the prepared state (engine, index) of the
        unique-space problem, so repeated runs pay preparation once just
        like the uncollapsed planner does.  Built with ``collapse="off"``
        / ``self_join=False`` / ``memo="off"`` so it never recurses into
        the multiplicity layer; for self-joins both sides are the *same
        object*, which is how the backends detect value-identity
        diagonal semantics.
        """
        if self._inner is None:
            cl, cr = self._collapsed_sides()
            self._inner = JoinPlanner(
                cl.values,
                cl.values if self.content_equal else cr.values,
                k=self.k,
                theta=self.theta,
                scheme=self.kind(),
                levels=self.levels,
                workers=self.workers,
                block_pairs=self.block_pairs,
                scalar_max_pairs=self.scalar_max_pairs,
                index_min_pairs=self.index_min_pairs,
                hybrid_min_pairs=self.hybrid_min_pairs,
                max_index_k=self.max_index_k,
                collapse="off",
                self_join=False,
                memo="off",
            )
        return self._inner

    # -- plan selection -----------------------------------------------------

    #: stride-sample sizes for the collision estimates in sampled_emit
    COST_SAMPLE_LEFT = 256
    COST_SAMPLE_RIGHT = 512

    def window_pairs(self) -> int:
        """Exact count of pairs within the ``k`` length window, from the
        per-side length histograms (cheap: one ``len()`` pass)."""
        if self._window_pairs is None:
            if self._len_hist is None:
                from collections import Counter

                self._len_hist = (
                    Counter(len(s) for s in self.left),
                    Counter(len(s) for s in self.right),
                )
            hist_l, hist_r = self._len_hist
            self._window_pairs = sum(
                cl * cr
                for lv, cl in hist_l.items()
                for rv, cr in hist_r.items()
                if abs(lv - rv) <= self.k
            )
        return self._window_pairs

    def sampled_emit(self, kind: str) -> float:
        """Estimated candidates an inverted index would emit, from a
        stride-sampled build + probe (collisions are a pair-level
        phenomenon, so the sample count scales by both side ratios)."""
        est = self._cost_samples.get(kind)
        if est is None:
            n_l, n_r = len(self.left), len(self.right)
            stride_l = max(1, n_l // self.COST_SAMPLE_LEFT)
            stride_r = max(1, n_r // self.COST_SAMPLE_RIGHT)
            left = self.left[::stride_l]
            right = self.right[::stride_r]
            if kind == "pass-join":
                from repro.core.passjoin import PassJoinIndex

                index = PassJoinIndex(right, k=self.k)
            elif kind == "prefix":
                from repro.core.prefix import PrefixQgramIndex

                index = PrefixQgramIndex(right, k=self.k)
            else:
                raise ValueError(f"no sampler for generator {kind!r}")
            emitted = sum(
                len(qi) for qi, _ in index.candidate_blocks(left)
            )
            scale = (n_l / max(1, len(left))) * (n_r / max(1, len(right)))
            est = self._cost_samples[kind] = emitted * scale
        return est

    def generator_costs(self, method: str) -> list[GeneratorCost]:
        """Every registered generator's cost-model score for ``method``,
        cheapest first (what ``--plan`` prints and auto picks from)."""
        spec = method_registry().get(method)
        if spec is None:
            raise ValueError(f"unknown method {method!r}")
        scores = []
        for name in GENERATOR_NAMES:
            gen = self.generator(name)
            cost, detail = gen.estimate_cost(self, spec)
            safe = gen.lossless and (
                gen.is_full_product or gen.is_safe_for(spec)
            )
            scores.append(GeneratorCost(name, gen, cost, safe, detail))
        return sorted(scores, key=lambda c: (c.cost, c.name))

    def _resolve_generator(
        self, generator, spec: MethodSpec
    ) -> tuple[CandidateGenerator, str]:
        if isinstance(generator, CandidateGenerator):
            return generator, "explicit"
        if generator is not None and generator != "auto":
            gen = self.generator(generator)
            if gen is None:
                raise ValueError(
                    f"unknown generator {generator!r}; expected one of "
                    f"{', '.join(sorted(GENERATOR_NAMES))} or a "
                    "CandidateGenerator instance"
                )
            return gen, "explicit"
        product = len(self.left) * len(self.right)
        if product < self.index_min_pairs or self.k > self.max_index_k:
            # Small products never amortize an index build (and large k
            # degrades every pruning structure): skip the samplers.
            reason = (
                f"product {product:,} below index threshold "
                f"{self.index_min_pairs:,}"
                if product < self.index_min_pairs
                else f"k={self.k} > {self.max_index_k}: pruning degrades"
            )
            return self.generator("all-pairs"), reason
        best = next(c for c in self.generator_costs(spec.name) if c.safe)
        return best.generator, (
            f"cost model: {best.name} ~ {best.cost:,.0f} pair-units "
            f"({best.detail})"
        )

    def _resolve_backend(self, backend) -> tuple[ExecutionBackend, str]:
        if isinstance(backend, ExecutionBackend):
            return backend, "explicit"
        if backend is not None and backend != "auto":
            be = self._backends.get(backend)
            if be is None:
                raise ValueError(
                    f"unknown backend {backend!r}; expected one of "
                    f"{BACKEND_NAMES} or an ExecutionBackend instance"
                )
            return be, "explicit"
        product = len(self.left) * len(self.right)
        if product <= self.scalar_max_pairs:
            return self._backends["scalar"], (
                f"product {product:,} <= {self.scalar_max_pairs:,}: "
                "NumPy setup would dominate"
            )
        # The hybrid pool is only auto-picked when the caller opted into
        # parallelism (workers > 1) and the product amortizes the first
        # publish + spawn; single-worker hybrid is strictly vectorized
        # plus IPC overhead.
        if (
            self.workers
            and self.workers > 1
            and product >= self.hybrid_min_pairs
        ):
            return self._backends["hybrid"], (
                f"workers={self.workers} and product {product:,} >= "
                f"{self.hybrid_min_pairs:,}: shared-memory pool amortizes"
            )
        # Same dataflow as vectorized, strictly better constants: prefer
        # the compiled kernels whenever a validated provider loaded.
        if native_available():
            return self._backends["native"], (
                f"product {product:,} > {self.scalar_max_pairs:,}; "
                f"compiled kernels loaded ({native_kind()})"
            )
        return self._backends["vectorized"], (
            f"product {product:,} > {self.scalar_max_pairs:,}"
        )

    def plan(
        self, method: str, *, generator=None, backend=None
    ) -> JoinPlan:
        """Choose (or honor) the plan for one method, without running it.

        ``generator`` / ``backend`` are names, instances, ``"auto"`` or
        ``None`` (auto).  An explicitly named generator that is unsafe
        for the method is honored — with a warning — so blocking-recall
        experiments stay expressible.
        """
        spec = method_registry().get(method)
        if spec is None:
            raise ValueError(f"unknown method {method!r}")
        if self._multiplicity_active():
            inner = self._unique_planner()
            p = inner.plan(method, generator=generator, backend=backend)
            parts = []
            if self.self_join:
                parts.append("triangular self-join")
            if self.collapse_active():
                parts.append("unique-collapse")
            prefix = " + ".join(parts)
            return JoinPlan(
                method, p.generator, p.backend, p.n_left, p.n_right,
                f"{prefix}: {p.reason}",
            )
        gen, gen_reason = self._resolve_generator(generator, spec)
        be, be_reason = self._resolve_backend(backend)
        if not gen.is_full_product and not gen.is_safe_for(spec):
            _log.warning(
                "generator %s is not safe for %s: the plan may drop matches "
                "(%s)",
                gen.name,
                method,
                "lossy by design"
                if not gen.lossless
                else f"requires {gen.requirement}",
            )
        reason = gen_reason if gen_reason == be_reason else (
            f"{gen_reason}; {be_reason}"
        )
        return JoinPlan(method, gen, be, len(self.left), len(self.right), reason)

    # -- execution ----------------------------------------------------------

    def run(
        self,
        method: str,
        *,
        generator=None,
        backend=None,
        collector=None,
        record_matches: bool | None = None,
    ) -> JoinResult:
        """Plan and execute one method; returns the unified result.

        The funnel (when a collector is given) satisfies conservation
        for every plan: non-full-product generators appear as the first
        stage, with the pairs they never emitted counted as considered
        and rejected there.
        """
        obs = collector if collector else (
            self.collector if self.collector else NULL_COLLECTOR
        )
        record = self.record_matches if record_matches is None else record_matches
        if self._multiplicity_active():
            return self._run_collapsed(
                method, generator=generator, backend=backend,
                obs=obs, record=record,
            )
        plan = self.plan(method, generator=generator, backend=backend)
        _log.info("plan %s", plan.describe())
        if obs:
            obs.meta["generator"] = plan.generator.name
            obs.meta["backend"] = plan.backend.name
        if plan.generator.is_full_product:
            result = plan.backend.run(
                self,
                method,
                None,
                collector=obs if obs else None,
                record_matches=record,
            )
        else:
            emitted = 0

            def counted() -> Iterator[Block]:
                nonlocal emitted
                for ii, jj in plan.generator.blocks(self):
                    emitted += len(ii)
                    yield ii, jj

            # Register the generator's stage before the backend creates
            # the filter stages, so the funnel renders in dataflow order.
            if obs:
                obs.stage(plan.generator.name)
            result = plan.backend.run(
                self,
                method,
                counted(),
                collector=obs if obs else None,
                record_matches=record,
            )
            if obs:
                # The backend counted the emitted candidates; credit the
                # generator with the full product and the skipped pairs.
                obs.add_stage(plan.generator.name, plan.product, emitted)
                obs.add_pairs(plan.product - emitted)
        result.generator = plan.generator.name
        result.backend = plan.backend.name
        return result

    def _run_collapsed(
        self, method: str, *, generator, backend, obs, record: bool
    ) -> CollapsedJoinResult:
        """Run one method through the multiplicity layer.

        The inner planner's (generator, backend) pair executes over the
        unique-value product — restricted to the ``i <= j`` triangle for
        self-joins — with a :class:`PairWeighter` keeping every counter
        in original-pair units.  The generator is accounted as the
        funnel's first stage against the *original* product, so
        conservation holds exactly as for uncollapsed plans; the skipped
        weight is the enumerated-pair reduction this layer exists for.
        """
        cl, cr = self._collapsed_sides()
        inner = self._unique_planner()
        plan = self.plan(method, generator=generator, backend=backend)
        _log.info("plan %s", plan.describe())
        weighter = PairWeighter(cl.counts, cr.counts, symmetric=self.self_join)
        # Unique-space matches are needed for the lazy expansion and,
        # on two-dataset joins, for the positional diagonal.
        need_matches = record or not self.self_join
        product = len(self.left) * len(self.right)
        if obs:
            obs.meta["generator"] = plan.generator.name
            obs.meta["backend"] = plan.backend.name
            obs.meta["collapse"] = self.collapse_active()
            obs.meta["self_join"] = self.self_join
            # Register the generator's stage before the backend creates
            # the filter stages (dataflow order in the funnel).
            obs.stage(plan.generator.name)
        emitted_w = 0

        def counted() -> Iterator[Block]:
            nonlocal emitted_w
            for ii, jj in plan.generator.blocks(inner):
                if self.self_join:
                    keep = ii <= jj
                    ii, jj = ii[keep], jj[keep]
                if len(ii) == 0:
                    continue
                emitted_w += weighter.total(ii, jj)
                yield ii, jj

        inner.weighter = weighter
        try:
            result = plan.backend.run(
                inner,
                method,
                counted(),
                collector=obs if obs else None,
                record_matches=need_matches,
            )
        finally:
            inner.weighter = None
        if obs:
            obs.add_stage(plan.generator.name, product, emitted_w)
            obs.add_pairs(product - emitted_w)
            # The backend stamped unique-space sizes; restore originals.
            obs.meta["n_left"] = len(self.left)
            obs.meta["n_right"] = len(self.right)
        unique_matches = list(result.matches) if need_matches else []
        if self.self_join:
            # Unique values are distinct, so the backend's value-identity
            # diagonal is exactly the weighted sum over matched (u, u).
            diagonal = result.diagonal_matches
        else:
            diagonal = positional_diagonal(unique_matches, cl, cr)
        expander = None
        if record:
            symmetric = self.self_join

            def expander(um):
                return expand_matches(um, cl, cr, symmetric=symmetric)

        return CollapsedJoinResult(
            method,
            len(self.left),
            len(self.right),
            match_count=result.match_count,
            diagonal_matches=diagonal,
            verified_pairs=result.verified_pairs,
            pairs_compared=result.pairs_compared,
            generator=plan.generator.name,
            backend=plan.backend.name,
            unique_left=cl.n_unique,
            unique_right=cr.n_unique,
            unique_matches=unique_matches,
            expander=expander,
        )


def join(
    left: Sequence[str],
    right: Sequence[str],
    method: str = "FPDL",
    *,
    k: int = 1,
    theta: float = 0.8,
    scheme: str | None = None,
    generator=None,
    backend=None,
    workers: int | None = None,
    record_matches: bool = False,
    collector=None,
    collapse: str = "auto",
    self_join: bool | None = None,
    **planner_kwargs,
) -> JoinResult:
    """One-shot planned similarity join (the public entry point).

    Builds a :class:`JoinPlanner` and runs ``method`` under the plan its
    cost model picks — or under an explicit ``generator`` / ``backend``
    override.  For repeated joins over the same datasets, hold a
    planner instead.

    ``collapse`` (``"auto"``/``"on"``/``"off"``) controls unique-string
    collapse; ``self_join=True`` forces the triangular enumeration for
    content-equal sides (it is auto-detected when both arguments are the
    same object or hold the same values).  The memo knobs (``memo``,
    ``memo_capacity``) pass through ``planner_kwargs``.

    >>> r = join(["123456789"], ["123456780"], "FPDL", k=1, scheme="numeric")
    >>> (r.match_count, r.generator, r.backend)
    (1, 'all-pairs', 'scalar')
    """
    planner = JoinPlanner(
        left,
        right,
        k=k,
        theta=theta,
        scheme=scheme,
        workers=workers,
        record_matches=record_matches,
        collector=collector,
        collapse=collapse,
        self_join=self_join,
        **planner_kwargs,
    )
    return planner.run(method, generator=generator, backend=backend)
