"""NumPy batch engines for FBF signatures and signature filtering.

The paper's constant factors come from signatures living in machine words
and the filter being one XOR + POPCNT.  Interpreted CPython cannot show
that per call, so — per the calibration note in DESIGN.md — this module
moves the *batch* operations into NumPy:

* :func:`alpha_signatures_batch` / :func:`num_signatures_batch` /
  :func:`alnum_signatures_batch` — signature matrices ``(n, width)`` of
  ``uint32``, bit-identical to the scalar Algorithms 4-5 (pinned by
  tests).
* :func:`pairwise_diff_bits` — the full ``(n_left, n_right)`` diff-bit
  matrix via XOR broadcasting and a byte-table popcount.
* :func:`fbf_candidates` — the filter proper: the index pairs whose
  diff-bits are within the safe threshold, computed in row chunks so
  memory stays flat at ``O(chunk * n_right)``.
* :func:`length_candidates` — the length filter over a batch.

These are the building blocks of the scaled joins in
:mod:`repro.parallel`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.popcount import popcount_batch_u32
from repro.core.signatures import (
    ALPHA_DOUBLED_BIT,
    ALPHA_OVERFLOW_BIT,
    SignatureScheme,
)
from repro.distance.codec import ALPHA_CODEC, DIGIT_CODEC

__all__ = [
    "alpha_signatures_batch",
    "num_signatures_batch",
    "alnum_signatures_batch",
    "signatures_for_scheme",
    "pairwise_diff_bits",
    "fbf_candidates",
    "length_candidates",
    "value_identity_codes",
]


def value_identity_codes(
    left: Sequence[str], right: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Integer codes under which ``code_l[i] == code_r[j]`` iff
    ``left[i] == right[j]``.

    One shared dictionary pass over both sides; the vectorized engines
    use these for the value-identity diagonal of self-joins, where an
    ``(ii == jj)`` positional test would miss duplicate values.
    """
    table: dict[str, int] = {}

    def encode(strings: Sequence[str]) -> np.ndarray:
        out = np.empty(len(strings), dtype=np.int64)
        for idx, s in enumerate(strings):
            code = table.get(s)
            if code is None:
                code = table[s] = len(table)
            out[idx] = code
        return out

    codes_l = encode(left)
    codes_r = codes_l if right is left else encode(right)
    return codes_l, codes_r


def _occurrence_counts(strings: Sequence[str], codec, n_symbols: int) -> np.ndarray:
    """Per-string occurrence count of each alphabet symbol: ``(n, n_symbols)``.

    Encodes the batch once into a padded code matrix and histograms each
    row.  Codes are 1-based (0 is padding, ``n_symbols + 1`` is "other"),
    so column ``c`` of the result counts symbol ``c`` of the codec
    alphabet.
    """
    codes, _lengths = codec.encode_padded(strings)
    n = len(strings)
    if codes.size == 0:
        return np.zeros((n, n_symbols), dtype=np.int64)
    # Histogram all rows at once: offset each row's codes into a private
    # bucket range, then one bincount over the flattened array.
    offsets = (np.arange(n, dtype=np.int64) * (n_symbols + 2))[:, None]
    flat = (codes.astype(np.int64) + offsets).ravel()
    counts = np.bincount(flat, minlength=n * (n_symbols + 2))
    counts = counts.reshape(n, n_symbols + 2)
    return counts[:, 1 : n_symbols + 1]


def alpha_signatures_batch(
    strings: Sequence[str], levels: int = 1, *, extended: bool = False
) -> np.ndarray:
    """Batch Algorithm 4: ``(n, levels)`` uint32 signature matrix.

    Equivalent to ``[alpha_signature(s, levels, extended=extended) for s
    in strings]`` (property-tested), built from one histogram pass.
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    counts = _occurrence_counts(strings, ALPHA_CODEC, 26)
    n = len(strings)
    sigs = np.zeros((n, levels), dtype=np.uint32)
    weights = (np.uint32(1) << np.arange(26, dtype=np.uint32)).astype(np.uint32)
    for j in range(levels):
        present = counts > j  # (n, 26): has at least j+1 occurrences
        sigs[:, j] = (present * weights).sum(axis=1, dtype=np.uint32)
    if extended:
        overflow = (counts > levels).any(axis=1)
        doubled = _has_doubled_letter(strings)
        sigs[:, -1] |= overflow.astype(np.uint32) << np.uint32(ALPHA_OVERFLOW_BIT)
        sigs[:, -1] |= doubled.astype(np.uint32) << np.uint32(ALPHA_DOUBLED_BIT)
    return sigs


def _has_doubled_letter(strings: Sequence[str]) -> np.ndarray:
    """Boolean per string: two identical letters adjacent (case-folded)."""
    codes, _ = ALPHA_CODEC.encode_padded(strings)
    if codes.shape[1] < 2:
        return np.zeros(len(strings), dtype=bool)
    a = codes[:, :-1]
    b = codes[:, 1:]
    is_letter = (a >= 1) & (a <= 26)
    return ((a == b) & is_letter).any(axis=1)


def num_signatures_batch(strings: Sequence[str]) -> np.ndarray:
    """Batch Algorithm 5: ``(n,)`` uint32 numeric signatures."""
    counts = _occurrence_counts(strings, DIGIT_CODEC, 10)
    n = len(strings)
    sig = np.zeros(n, dtype=np.uint32)
    for c in range(10):
        for j in range(3):
            bit = (counts[:, c] > j).astype(np.uint32)
            sig |= bit << np.uint32(3 * c + j)
    return sig


def alnum_signatures_batch(
    strings: Sequence[str], alpha_levels: int = 2, *, extended: bool = False
) -> np.ndarray:
    """Batch alphanumeric signatures: ``(n, alpha_levels + 1)`` uint32."""
    alpha = alpha_signatures_batch(strings, alpha_levels, extended=extended)
    num = num_signatures_batch(strings)
    return np.concatenate([alpha, num[:, None]], axis=1)


def signatures_for_scheme(
    strings: Sequence[str], scheme: SignatureScheme
) -> np.ndarray:
    """Batch signatures matching a scalar :class:`SignatureScheme`.

    Dispatches on the scheme name produced by
    :func:`repro.core.signatures.scheme_for`; unknown (custom) schemes
    fall back to calling the scalar generator per string.
    """
    name = scheme.name
    extended = name.endswith("x")
    if name == "numeric":
        return num_signatures_batch(strings)[:, None]
    if name.startswith("alpha"):
        levels = int(name[len("alpha") :].rstrip("x"))
        return alpha_signatures_batch(strings, levels, extended=extended)
    if name.startswith("alnum"):
        levels = int(name[len("alnum") :].rstrip("x"))
        return alnum_signatures_batch(strings, levels, extended=extended)
    # Custom scheme: scalar fallback, one row per string.
    rows = [scheme.signature(s) for s in strings]
    return np.array(rows, dtype=np.uint32).reshape(len(strings), scheme.width)


def _as_sig_matrix(sigs: np.ndarray) -> np.ndarray:
    """Coerce a signature array to ``(n, width)`` uint32.

    A 1-D input is a width-1 signature *column* (one word per string),
    not a single multi-word signature — hence the explicit reshape
    rather than ``np.atleast_2d`` (which would produce ``(1, n)``).
    """
    arr = np.asarray(sigs, dtype=np.uint32)
    if arr.ndim == 1:
        return arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"signatures must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def pairwise_diff_bits(left_sigs: np.ndarray, right_sigs: np.ndarray) -> np.ndarray:
    """Full diff-bit matrix: ``out[i, j] = diff_bits(left[i], right[j])``.

    Inputs are ``(n, width)`` uint32 matrices (a 1-D array is treated as
    width 1).  Output is ``(n_left, n_right)`` uint16.  Allocates one
    ``n_left x n_right`` uint32 temporary per signature word; use
    :func:`fbf_candidates` for products too large to hold.
    """
    L = _as_sig_matrix(left_sigs)
    R = _as_sig_matrix(right_sigs)
    if L.shape[1] != R.shape[1]:
        raise ValueError(f"signature widths differ: {L.shape[1]} vs {R.shape[1]}")
    out = np.zeros((L.shape[0], R.shape[0]), dtype=np.uint16)
    for w in range(L.shape[1]):
        xor = L[:, w][:, None] ^ R[:, w][None, :]
        out += popcount_batch_u32(xor)
    return out


def fbf_candidates(
    left_sigs: np.ndarray,
    right_sigs: np.ndarray,
    bound: int,
    *,
    chunk_rows: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs with ``diff_bits <= bound`` — the FBF filter at scale.

    Streams the left side in ``chunk_rows`` blocks so peak memory is
    ``O(chunk_rows * n_right)`` regardless of product size.  Returns
    ``(ii, jj)`` int64 arrays.
    """
    L = _as_sig_matrix(left_sigs)
    R = _as_sig_matrix(right_sigs)
    ii_parts: list[np.ndarray] = []
    jj_parts: list[np.ndarray] = []
    for start in range(0, L.shape[0], chunk_rows):
        block = L[start : start + chunk_rows]
        db = pairwise_diff_bits(block, R)
        bi, bj = np.nonzero(db <= bound)
        ii_parts.append(bi.astype(np.int64) + start)
        jj_parts.append(bj.astype(np.int64))
    if not ii_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(ii_parts), np.concatenate(jj_parts)


def length_candidates(
    left_lengths: np.ndarray, right_lengths: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs passing the length filter: ``abs(|s| - |t|) <= k``."""
    ll = np.asarray(left_lengths, dtype=np.int64)
    rl = np.asarray(right_lengths, dtype=np.int64)
    diff = np.abs(ll[:, None] - rl[None, :])
    ii, jj = np.nonzero(diff <= k)
    return ii.astype(np.int64), jj.astype(np.int64)
