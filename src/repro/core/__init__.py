"""The paper's primary contribution: the Fast Bitwise Filter (FBF).

Layout:

* :mod:`repro.core.popcount` — population-count kernels (Wegner's loop from
  the paper's Algorithm 6, table-driven variants, NumPy byte-table batch
  kernel).
* :mod:`repro.core.signatures` — FBF signature generation (Algorithms 4-5
  plus the alphanumeric combination and l-level occurrence vectors).
* :mod:`repro.core.filters` — the FBF filter, length filter and the
  composable filter-chain framework.
* :mod:`repro.core.matchers` — the 14 method stacks of the evaluation
  (DL, PDL, Jaro, Wink, Ham, FDL, FPDL, FBF, LDL, LPDL, LF, LFDL, LFPDL,
  LFBF) behind one factory registry.
* :mod:`repro.core.join` — Algorithm 7 ``MatchStrings``: the all-pairs
  similarity join with pluggable filter/verify stages (now the plan
  layer's scalar backend).
* :mod:`repro.core.plan` — the join planner: candidate generators
  (all-pairs, length buckets, FBF index, key blocking) × execution
  backends (scalar, vectorized, multiprocess), composed by a cost
  model behind :func:`repro.join`.
* :mod:`repro.core.vectorized` — NumPy batch engines: signature matrices,
  pairwise XOR-popcount candidate generation, chunked banded DP.
"""

from repro.core.filters import (
    FBFFilter,
    FilterChain,
    FilterStats,
    LengthFilter,
    PairFilter,
)
from repro.core.bktree import BKTree
from repro.core.index import FBFIndex
from repro.core.join import JoinResult, match_strings
from repro.core.plan import JoinPlan, JoinPlanner, join
from repro.core.triejoin import TrieIndex
from repro.core.matchers import (
    METHOD_NAMES,
    MethodSpec,
    PreparedMatcher,
    build_matcher,
    method_registry,
)
from repro.core.popcount import (
    popcount,
    popcount_kernighan,
    popcount_parallel,
    popcount_table8,
    popcount_table16,
)
from repro.core.signatures import (
    SignatureScheme,
    alnum_signature,
    alpha_signature,
    diff_bits,
    find_diff_bits,
    num_signature,
    scheme_for,
    scheme_from_name,
)

__all__ = [
    "BKTree",
    "FBFFilter",
    "FBFIndex",
    "FilterChain",
    "TrieIndex",
    "FilterStats",
    "JoinPlan",
    "JoinPlanner",
    "JoinResult",
    "LengthFilter",
    "METHOD_NAMES",
    "MethodSpec",
    "PairFilter",
    "PreparedMatcher",
    "SignatureScheme",
    "alnum_signature",
    "alpha_signature",
    "build_matcher",
    "diff_bits",
    "find_diff_bits",
    "join",
    "match_strings",
    "method_registry",
    "num_signature",
    "popcount",
    "popcount_kernighan",
    "popcount_parallel",
    "popcount_table8",
    "popcount_table16",
    "scheme_for",
    "scheme_from_name",
]
