"""Trie-based similarity search (the paper's related work, ref [20]).

The paper's PDL is "similar to an edit distance Prefix Pruning method
for Trie-based string similarity joins" (Wang, Feng, Li — Trie-Join).
This module implements that family's core: a trie over the indexed
strings, searched with an edit-distance DFS that maintains one DP row
per trie node and prunes any subtree whose row minimum exceeds ``k``
(prefix pruning — shared prefixes pay for their DP rows once).

The DP carries the OSA transposition term (the paper's metric), so
:meth:`TrieIndex.search` returns exactly the same id sets as
:class:`repro.core.index.FBFIndex` with the default verifier — pinned by
the cross-index equivalence tests.  The benchmark suite compares the two
as candidate-generation strategies: signature filtering (FBF) versus
prefix sharing (trie).
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.stats import NULL_COLLECTOR

__all__ = ["TrieIndex"]


class _Node:
    __slots__ = ("children", "ids")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        self.ids: list[int] = []


class TrieIndex:
    """A trie over short strings supporting within-k edit search.

    Matching semantics follow the paper: restricted Damerau-Levenshtein
    (OSA), with empty strings — as query or entry — never matching
    (PDL's Step 1).
    """

    def __init__(self, strings: Sequence[str] = ()):
        self._root = _Node()
        self._strings: list[str] = []
        self.extend(strings)

    def add(self, s: str) -> int:
        """Index one string; returns its id."""
        sid = len(self._strings)
        self._strings.append(s)
        node = self._root
        for ch in s:
            node = node.children.setdefault(ch, _Node())
        node.ids.append(sid)
        return sid

    def extend(self, strings: Sequence[str]) -> None:
        for s in strings:
            self.add(s)

    def __len__(self) -> int:
        return len(self._strings)

    def __getitem__(self, sid: int) -> str:
        return self._strings[sid]

    def node_count(self) -> int:
        """Number of trie nodes (prefix-sharing diagnostic)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def search(self, query: str, k: int = 1, *, collector=None) -> list[int]:
        """Ids of indexed strings within ``k`` OSA edits of ``query``.

        DFS over the trie; each visited node evaluates one DP row
        against the query (cost O(|query|)), and subtrees are pruned as
        soon as a row's minimum exceeds ``k`` — the same prefix-pruning
        idea as the paper's Algorithm 2, amortized across every indexed
        string sharing the prefix.

        With a :class:`repro.obs.StatsCollector` the search reports the
        funnel with every indexed string as a considered pair: the trie
        decides match/unmatch *inside* its single ``prefix-prune``
        stage (filter and verification are fused in the DP), so stage
        survivors equal matches, ``verified`` stays 0, and the visited
        node count lands in ``meta["nodes_visited"]``.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        obs = collector if collector else NULL_COLLECTOR
        total = len(self._strings)
        obs.add_pairs(total)
        if not query or not self._strings:
            obs.add_stage("prefix-prune", total, 0)
            return []
        nodes_visited = 0
        n = len(query)
        root_row = list(range(n + 1))
        out: list[int] = []
        # Stack frames: (node, edge_char, row, parent_row, parent_char)
        # parent rows feed the transposition term two levels up.
        stack: list[tuple[_Node, str, list[int], list[int] | None, str]] = [
            (self._root, "", root_row, None, "")
        ]
        while stack:
            node, edge_char, row, parent_row, parent_char = stack.pop()
            nodes_visited += 1
            depth_cost = row[n]
            if node.ids and depth_cost <= k and edge_char != "":
                out.extend(node.ids)
            elif node.ids and edge_char == "":
                # Root terminal = indexed empty string: never matches.
                pass
            for ch, child in node.children.items():
                child_row = self._advance(
                    query, row, parent_row, ch, edge_char
                )
                if min(child_row) <= k:
                    stack.append((child, ch, child_row, row, edge_char))
        obs.add_stage("prefix-prune", total, len(out))
        obs.add_survivors(len(out))
        obs.add_matched(len(out))
        if obs:
            obs.meta["nodes_visited"] = (
                int(obs.meta.get("nodes_visited", 0)) + nodes_visited
            )
        out.sort()
        return out

    def _advance(
        self,
        query: str,
        row: list[int],
        parent_row: list[int] | None,
        ch: str,
        prev_ch: str,
    ) -> list[int]:
        """One OSA DP row: prefix+ch against every query prefix."""
        n = len(query)
        new = [row[0] + 1] + [0] * n
        for j in range(1, n + 1):
            qj = query[j - 1]
            if ch == qj:
                d = row[j - 1]
            else:
                d = min(row[j], new[j - 1], row[j - 1]) + 1
                if (
                    parent_row is not None
                    and j > 1
                    and ch == query[j - 2]
                    and prev_ch == qj
                ):
                    d = min(d, parent_row[j - 2] + 1)
            new[j] = d
        return new

    def search_strings(self, query: str, k: int = 1) -> list[str]:
        """Like :meth:`search` but returning the matched strings."""
        return [self._strings[sid] for sid in self.search(query, k)]
