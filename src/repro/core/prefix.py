"""Prefix + position q-gram filter: inverted-list candidates for OSA <= k.

The classic prefix-filter construction (ed-join / py_stringsimjoin's
PrefixIndex + PositionIndex): tokenize every string into padded
positional q-grams, order all grams by ascending global frequency
(rarest first, gram string as tie-break), and index only each string's
*prefix* — its first ``P`` gram occurrences under that order.  If two
strings are within edit distance ``k`` their prefixes must share a
gram, so probing touches only the inverted lists of a query's prefix
grams instead of any length-bucket product.

Two deviations from the Levenshtein textbook version, both forced by
this repo's OSA verifiers (``dl``/``pdl`` count an adjacent
transposition as *one* edit):

* **Prefix length.**  A substitution/insertion/deletion destroys at
  most ``q`` padded grams, but a transposition touches two adjacent
  characters and destroys up to ``q + 1``.  The safe prefix length is
  therefore ``P = (q + 1) * k + 1`` rather than ``q * k + 1``.
* **Short strings.**  A string with at most ``(q + 1) * k`` gram
  occurrences (``len(s) <= (q + 1) * k - q + 1``) can lose *all* of
  them to ``k`` edits — e.g. ``osa("", "a") = 1`` with disjoint gram
  sets — so the prefix argument says nothing about it.  Short strings
  are kept out of the inverted lists and matched through per-length id
  tables instead: a short *query* scans every indexed length within
  the ``k`` window, and a long query adds the short *indexed* strings
  in its window.  Both directions stay exact because the length filter
  is implied by ``osa <= k``.

The position filter rides along unchanged: edits shift a preserved
gram by at most ``k`` positions (transpositions shift none), so an
inverted-list entry only survives when ``|pos_query - pos_indexed| <=
k`` — and the length filter ``|len_query - len_indexed| <= k`` prunes
the rest.  Candidates are deduplicated per query; the verifier keeps
the final say, so spurious candidates cost time, never correctness.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Sequence

import numpy as np

from repro.core.passjoin import dedup_sorted
from repro.distance.qgram import PAD_CHAR

__all__ = ["PrefixQgramIndex", "positional_qgrams"]


def positional_qgrams(s: str, q: int) -> list[tuple[str, int]]:
    """Padded q-grams of ``s`` with their start positions.

    Same convention as :func:`repro.distance.qgram.qgram_profile`
    (``q - 1`` pad characters each side), but positional: a string of
    length ``n`` yields ``n + q - 1`` occurrences.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    padded = PAD_CHAR * (q - 1) + s + PAD_CHAR * (q - 1)
    return [(padded[i : i + q], i) for i in range(len(s) + q - 1)]


class PrefixQgramIndex:
    """Inverted prefix-gram index over one side of a join.

    Same block contract as :class:`repro.core.passjoin.PassJoinIndex`:
    ``candidate_blocks(queries)`` yields deduplicated ``(query_idx,
    ids)`` int64 array pairs containing every OSA-``<= k`` pair.
    """

    def __init__(self, strings: Sequence[str], *, k: int = 1, q: int = 2):
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.strings = list(strings)
        self.k = k
        self.q = q
        #: first P gram occurrences under the global order
        self.prefix_len = (q + 1) * k + 1
        #: strings this short can lose every gram to k edits
        self.short_max_len = (q + 1) * k - q + 1
        n = len(self.strings)
        lens = np.fromiter((len(s) for s in self.strings), dtype=np.int64, count=n)
        self._lens = lens
        #: length -> all indexed ids of that length (short-query fallback)
        self._by_len: dict[int, np.ndarray] = {
            int(v): np.flatnonzero(lens == v).astype(np.int64)
            for v in dedup_sorted(lens)
        }
        #: length -> short indexed ids of that length (long-query add-on)
        self._short_by_len: dict[int, np.ndarray] = {
            v: ids
            for v, ids in self._by_len.items()
            if v <= self.short_max_len
        }
        occs = [positional_qgrams(s, q) for s in self.strings]
        # Global order: ascending frequency over the *indexed* side,
        # gram string as tie-break.  Query grams absent from the index
        # sort before everything (frequency 0) — they hit empty lists,
        # but both sides must rank them identically for the prefix
        # guarantee, hence the explicit two-level key in _prefix_occs.
        freq = Counter(g for string_occs in occs for g, _ in string_occs)
        self._rank = {
            g: r for r, (g, _) in enumerate(sorted(freq.items(), key=lambda kv: (kv[1], kv[0])))
        }
        grams: dict[str, tuple[list[int], list[int], list[int]]] = {}
        for sid, string_occs in enumerate(occs):
            if lens[sid] <= self.short_max_len:
                continue
            for g, pos in self._prefix_occs(string_occs):
                ids, positions, lengths = grams.setdefault(g, ([], [], []))
                ids.append(sid)
                positions.append(pos)
                lengths.append(int(lens[sid]))
        #: gram -> (ids, positions, lengths) as parallel int64 arrays
        self._inverted = {
            g: (
                np.asarray(ids, dtype=np.int64),
                np.asarray(positions, dtype=np.int64),
                np.asarray(lengths, dtype=np.int64),
            )
            for g, (ids, positions, lengths) in grams.items()
        }

    def __len__(self) -> int:
        return len(self.strings)

    def _prefix_occs(
        self, string_occs: list[tuple[str, int]]
    ) -> list[tuple[str, int]]:
        """The first ``prefix_len`` occurrences under the global order
        (unknown grams first by gram string, then position)."""
        rank = self._rank
        # rank.get(g, -1) puts index-unseen grams below every known
        # rank; the (rank, gram, position) key keeps the order total
        # and identical on both sides, which the prefix lemma needs.
        ordered = sorted(
            string_occs, key=lambda occ: (rank.get(occ[0], -1), occ[0], occ[1])
        )
        return ordered[: self.prefix_len]

    # -- probing -------------------------------------------------------------

    def _length_window_ids(
        self, table: dict[int, np.ndarray], qlen: int
    ) -> list[np.ndarray]:
        return [
            ids
            for length, ids in table.items()
            if abs(length - qlen) <= self.k
        ]

    def _probe(self, query: str) -> list[np.ndarray]:
        k = self.k
        qlen = len(query)
        if qlen <= self.short_max_len:
            # Too short for the prefix guarantee in either direction:
            # take everything in the length window (small by design —
            # only lengths within k of a short string qualify).
            return self._length_window_ids(self._by_len, qlen)
        parts = self._length_window_ids(self._short_by_len, qlen)
        for g, pos in self._prefix_occs(positional_qgrams(query, self.q)):
            entry = self._inverted.get(g)
            if entry is None:
                continue
            ids, positions, lengths = entry
            keep = (np.abs(positions - pos) <= k) & (
                np.abs(lengths - qlen) <= k
            )
            if keep.any():
                parts.append(ids[keep])
        return parts

    def candidate_blocks(
        self,
        queries: Sequence[str],
        *,
        max_pairs: int = 1 << 20,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield deduplicated ``(query_idx, ids)`` candidate blocks,
        queries in input order, blocks capped at ``max_pairs`` pairs."""
        if not len(self.strings):
            return
        buf_q: list[np.ndarray] = []
        buf_id: list[np.ndarray] = []
        buffered = 0
        for qi, query in enumerate(queries):
            parts = self._probe(query)
            if not parts:
                continue
            ids = dedup_sorted(np.concatenate(parts))
            buf_q.append(np.full(len(ids), qi, dtype=np.int64))
            buf_id.append(ids)
            buffered += len(ids)
            if buffered >= max_pairs:
                yield np.concatenate(buf_q), np.concatenate(buf_id)
                buf_q, buf_id, buffered = [], [], 0
        if buffered:
            yield np.concatenate(buf_q), np.concatenate(buf_id)

    def candidates(self, query: str) -> np.ndarray:
        """Candidate ids for one probe string (sorted ascending)."""
        parts = self._probe(query)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return dedup_sorted(np.concatenate(parts))
