"""repro — Fast Bitwise Filter (FBF) approximate string matching.

A from-scratch reproduction of *"Understanding Cloud Data Using
Approximate String Matching and Edit Distance"* (Jupin, Shi, Obradovic —
SC 2012): the FBF filter-and-verify system for edit-distance string
matching and the record-linkage pipeline it was built for.

Quickstart::

    from repro import join

    clean = ["123456789", "555443333"]
    dirty = ["123456780", "555443333"]
    result = join(clean, dirty, "FPDL", k=1, scheme="numeric")
    assert result.match_count == 2

:func:`join` plans each call: a candidate generator (all-pairs, length
buckets, the FBF signature index, key blocking) picks which pairs to
look at, an execution backend (scalar, vectorized, multiprocess)
verifies them, and a cost model composes the two from dataset size —
see :mod:`repro.core.plan` for overrides and :class:`JoinPlanner` for
reuse across calls.  Duplicate-heavy inputs are collapsed to their
unique values and self-joins enumerate only the pair triangle
(:mod:`repro.core.multiplicity`), with results bit-identical to the
full product.

Package map (details in DESIGN.md):

* :mod:`repro.core` — FBF signatures, filters, the 14 evaluated method
  stacks, the similarity join and the join planner (the paper's
  contribution plus the scaling layer over it).
* :mod:`repro.distance` — the string metrics substrate (DL/OSA, PDL,
  Jaro, Jaro-Winkler, Hamming, Soundex, q-grams) plus vectorized
  pair-batch engines.
* :mod:`repro.data` — calibrated synthetic demographic data and
  single-edit error injection.
* :mod:`repro.linkage` — the record-linkage system (comparators,
  scorers, blocking, engine).
* :mod:`repro.parallel` — scaled join drivers (chunked NumPy engine,
  multiprocessing pool).
* :mod:`repro.eval` — the paper's experiments, timing protocols and
  table rendering.
* :mod:`repro.serve` — online match serving: mutable indexes with
  stable ids, query micro-batching, result caching and snapshots
  (``repro-fbf serve``).
* :mod:`repro.stream` — out-of-core streaming joins: chunked disk
  scans broadcast-joined against an in-memory roster, with disk spill
  and crash-resumable checkpoints (``repro-fbf join-stream``).
* :mod:`repro.obs` — observability: filter-funnel counters, wall-time
  spans, exporters and the ``repro.*`` logger hierarchy.
"""

from repro.core.filters import FBFFilter, FilterChain, LengthFilter
from repro.core.join import JoinResult, match_strings
from repro.core.matchers import METHOD_NAMES, build_matcher
from repro.core.multiplicity import (
    CollapsedSide,
    PairWeighter,
    VerificationMemo,
)
from repro.core.plan import JoinPlanner, join
from repro.core.signatures import (
    SignatureScheme,
    alnum_signature,
    alpha_signature,
    diff_bits,
    find_diff_bits,
    num_signature,
    scheme_for,
)
from repro.distance import (
    damerau_levenshtein,
    hamming,
    jaro,
    jaro_winkler,
    levenshtein,
    pdl,
    soundex,
)
from repro.obs import StatsCollector, render_funnel
from repro.parallel.chunked import ChunkedJoin, VectorEngine
from repro.serve import MatchService, MutableIndex, QueryResult
from repro.stream import StreamResult, join_stream

__version__ = "1.9.0"

__all__ = [
    "ChunkedJoin",
    "CollapsedSide",
    "FBFFilter",
    "FilterChain",
    "JoinPlanner",
    "JoinResult",
    "LengthFilter",
    "METHOD_NAMES",
    "MatchService",
    "MutableIndex",
    "PairWeighter",
    "QueryResult",
    "SignatureScheme",
    "StatsCollector",
    "StreamResult",
    "VectorEngine",
    "VerificationMemo",
    "__version__",
    "alnum_signature",
    "alpha_signature",
    "build_matcher",
    "damerau_levenshtein",
    "diff_bits",
    "find_diff_bits",
    "hamming",
    "jaro",
    "jaro_winkler",
    "join",
    "join_stream",
    "levenshtein",
    "match_strings",
    "num_signature",
    "pdl",
    "render_funnel",
    "scheme_for",
    "soundex",
]
