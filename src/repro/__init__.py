"""repro — Fast Bitwise Filter (FBF) approximate string matching.

A from-scratch reproduction of *"Understanding Cloud Data Using
Approximate String Matching and Edit Distance"* (Jupin, Shi, Obradovic —
SC 2012): the FBF filter-and-verify system for edit-distance string
matching and the record-linkage pipeline it was built for.

Quickstart::

    from repro import build_matcher, match_strings

    clean = ["123456789", "555443333"]
    dirty = ["123456780", "555443333"]
    matcher = build_matcher("FPDL", k=1, scheme="numeric")
    result = match_strings(clean, dirty, matcher)
    assert result.match_count == 2

Package map (details in DESIGN.md):

* :mod:`repro.core` — FBF signatures, filters, the 14 evaluated method
  stacks and the similarity join (the paper's contribution).
* :mod:`repro.distance` — the string metrics substrate (DL/OSA, PDL,
  Jaro, Jaro-Winkler, Hamming, Soundex, q-grams) plus vectorized
  pair-batch engines.
* :mod:`repro.data` — calibrated synthetic demographic data and
  single-edit error injection.
* :mod:`repro.linkage` — the record-linkage system (comparators,
  scorers, blocking, engine).
* :mod:`repro.parallel` — scaled join drivers (chunked NumPy engine,
  multiprocessing pool).
* :mod:`repro.eval` — the paper's experiments, timing protocols and
  table rendering.
* :mod:`repro.obs` — observability: filter-funnel counters, wall-time
  spans, exporters and the ``repro.*`` logger hierarchy.
"""

from repro.core.filters import FBFFilter, FilterChain, LengthFilter
from repro.core.join import JoinResult, match_strings
from repro.core.matchers import METHOD_NAMES, build_matcher
from repro.core.signatures import (
    SignatureScheme,
    alnum_signature,
    alpha_signature,
    diff_bits,
    find_diff_bits,
    num_signature,
    scheme_for,
)
from repro.distance import (
    damerau_levenshtein,
    hamming,
    jaro,
    jaro_winkler,
    levenshtein,
    pdl,
    soundex,
)
from repro.obs import StatsCollector, render_funnel
from repro.parallel.chunked import ChunkedJoin

__version__ = "1.0.0"

__all__ = [
    "ChunkedJoin",
    "FBFFilter",
    "FilterChain",
    "JoinResult",
    "LengthFilter",
    "METHOD_NAMES",
    "SignatureScheme",
    "StatsCollector",
    "__version__",
    "alnum_signature",
    "alpha_signature",
    "build_matcher",
    "damerau_levenshtein",
    "diff_bits",
    "find_diff_bits",
    "hamming",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "match_strings",
    "num_signature",
    "pdl",
    "render_funnel",
    "scheme_for",
    "soundex",
]
