"""Command-line interface: ``repro-fbf``.

Three subcommands cover the workflows the paper motivates:

* ``match``  — approximate-join two newline-delimited string files and
  print the matching pairs (the nightly linkage job).
* ``dedupe`` — self-join one file and print duplicate clusters.
* ``experiment`` — run one of the paper's string experiments and print
  its table (``--family SSN --n 500 --k 1``).

The serve layer adds two more:

* ``serve`` — keep a population resident and answer JSON-lines
  requests on stdin/stdout (see :mod:`repro.serve.server` for ops).
  ``--shards N`` splits the population across length-partitioned
  shards served by scatter/gather; ``--port`` swaps the blocking
  stdio loop for the asyncio front-end (cross-client query
  coalescing, ``--max-inflight`` admission control, graceful drain).
* ``query`` — one-shot approximate-match queries against a file or a
  snapshot, printed as TSV (or ``--json``).

Examples::

    repro-fbf match clean.txt dirty.txt --k 1 --method FPDL
    repro-fbf dedupe roster.txt --k 1 --stats
    repro-fbf experiment --family LN --n 400 --k 1 --stats-json funnel.json
    repro-fbf query --data roster.txt SMITH JONES --k 1
    echo '{"op": "query", "value": "SMITH"}' | repro-fbf serve --data roster.txt

``match`` and ``dedupe`` run through the join planner: a cost model
picks the candidate generator and execution backend from dataset size,
``--generator``/``--backend`` override it, and ``--plan`` prints the
chosen plan to stderr without changing the output.

Observability: every data subcommand accepts ``--stats`` (print the
filter-funnel report to stderr), ``--stats-json PATH`` (write the
full collector tree as JSON) and ``--metrics-json PATH`` (write a
metrics-registry snapshot — the funnel bridged through
:func:`repro.obs.metrics.registry_from_collector` for batch joins, the
service's live registry for ``serve``/``query``); ``-v``/``-vv`` raise
the ``repro.*`` logger verbosity and ``-q`` silences warnings.
``serve --metrics-port N`` additionally starts a background HTTP
``/metrics`` listener (0 picks an ephemeral port, announced on
stderr), and ``repro-fbf metrics PORT`` polls one from the outside.

The module is import-safe: ``main(argv)`` takes an explicit argument
list, so the test suite drives it without subprocesses.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.core.matchers import METHOD_NAMES
from repro.core.plan import (
    BACKEND_NAMES,
    GENERATOR_NAMES,
    GENERATOR_SUMMARIES,
    JoinPlanner,
)
from repro.linkage.resolution import resolve
from repro.stream.driver import STREAM_GENERATORS
from repro.obs import (
    StatsCollector,
    configure_logging,
    get_logger,
    render_funnel,
    write_stats_json,
)

__all__ = ["main", "build_parser"]

_log = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fbf",
        description=(
            "FBF filter-and-verify approximate string matching "
            "(SC 2012 reproduction)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise log verbosity (-v info, -vv debug)",
    )
    parser.add_argument(
        "-q",
        dest="log_quiet",
        action="store_true",
        help="log errors only",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    match = sub.add_parser("match", help="join two string files")
    match.add_argument("left", type=Path, help="newline-delimited strings")
    match.add_argument("right", type=Path, help="newline-delimited strings")
    match.add_argument(
        "--self-join",
        action="store_true",
        help=(
            "assert both files hold the same values and enumerate only "
            "the pair triangle (auto-detected for identical inputs; "
            "dedupe always self-joins)"
        ),
    )
    _common_join_args(match)

    dedupe = sub.add_parser("dedupe", help="find duplicate clusters in one file")
    dedupe.add_argument("path", type=Path, help="newline-delimited strings")
    _common_join_args(dedupe)

    stream = sub.add_parser(
        "join-stream",
        help="out-of-core join: stream a disk dataset against a roster",
        description=(
            "Join a disk-resident dataset of any size against an "
            "in-memory roster under a bounded footprint: the roster is "
            "indexed once, the big side streams in chunks, matches "
            "spill to disk, and --checkpoint makes a killed run "
            "resumable with --resume."
        ),
    )
    stream.add_argument(
        "source", type=Path, help="big side: text/CSV(.gz) or parquet file"
    )
    stream.add_argument(
        "roster", type=Path, help="small side: newline-delimited strings"
    )
    stream.add_argument("--k", type=int, default=1, help="edit threshold")
    stream.add_argument(
        "--method",
        default="FPDL",
        choices=list(METHOD_NAMES),
        help="method stack (paper name)",
    )
    stream.add_argument(
        "--generator",
        default="auto",
        choices=["auto", *STREAM_GENERATORS],
        help="candidate generator (auto: cost model over the first chunk)",
    )
    stream.add_argument(
        "--backend",
        default="auto",
        choices=["auto", "scalar", "vectorized", "hybrid"],
        help="execution backend (auto: hybrid when --workers > 1)",
    )
    stream.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the hybrid backend",
    )
    stream.add_argument(
        "--chunk-rows",
        type=int,
        default=None,
        metavar="N",
        help="big-side rows per chunk (overrides --memory-budget)",
    )
    stream.add_argument(
        "--memory-budget",
        type=float,
        default=None,
        metavar="MB",
        help="derive the chunk size from a memory budget in MiB",
    )
    stream.add_argument(
        "--format",
        default="auto",
        choices=["auto", "text", "csv", "parquet"],
        help="source format (auto: by file suffix)",
    )
    stream.add_argument(
        "--column",
        default=None,
        metavar="NAME",
        help="CSV/parquet column holding the strings (CSV: first)",
    )
    stream.add_argument(
        "--spill",
        type=Path,
        default=None,
        metavar="PATH",
        help="spill matches to this file instead of RAM",
    )
    stream.add_argument(
        "--spill-format",
        default="jsonl",
        choices=["jsonl", "csv"],
        help="spill file format",
    )
    stream.add_argument(
        "--spill-values",
        action="store_true",
        help="spill the matched strings, not just row numbers",
    )
    stream.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a resume checkpoint after every chunk (needs --spill)",
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint if it exists",
    )
    stream.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help="pause after N chunks (checkpoint stays; resume later)",
    )
    stream.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    _stats_args(stream)

    exp = sub.add_parser("experiment", help="run one paper string experiment")
    exp.add_argument(
        "--family",
        default="SSN",
        choices=["FN", "LN", "Ad", "Ph", "Bi", "SSN"],
        help="data family (paper abbreviation)",
    )
    exp.add_argument("--n", type=int, default=500, help="sample size per list")
    exp.add_argument("--k", type=int, default=1, help="edit threshold")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument(
        "--length-filter",
        action="store_true",
        help="run the Table 12/14 method set instead of the Table 1 set",
    )
    _stats_args(exp)

    link = sub.add_parser(
        "link", help="record-linkage over two CSV record files"
    )
    link.add_argument("left", type=Path, help="CSV with a header row")
    link.add_argument("right", type=Path, help="CSV with a header row")
    link.add_argument("--k", type=int, default=1, help="per-field edit threshold")
    link.add_argument(
        "--method",
        default="FPDL",
        choices=list(METHOD_NAMES),
        help="string-comparator stack for the approximate fields",
    )
    link.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="point-and-threshold score cutoff (default: scorer default)",
    )
    link.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write matched pairs to this CSV",
    )
    _stats_args(link)

    serve = sub.add_parser(
        "serve",
        help="serve match queries over JSON lines on stdin/stdout",
    )
    _serve_source_args(serve)
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="result-cache bound (0 disables caching)",
    )
    serve.add_argument(
        "--compact-ratio",
        type=float,
        default=0.25,
        help="tombstone fraction triggering compaction (0 disables)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "start a background HTTP /metrics listener on this port "
            "(0 picks an ephemeral port; the bound URL is printed to "
            "stderr)"
        ),
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve the JSON-lines protocol over asyncio TCP on this "
            "port instead of stdin/stdout (0 picks an ephemeral port, "
            "announced on stderr; coalesces concurrent queries)"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help=(
            "asyncio admission bound: requests in flight before the "
            "server sheds with an 'overloaded' error (with --port)"
        ),
    )
    _stats_args(serve)

    query = sub.add_parser(
        "query", help="one-shot approximate-match queries"
    )
    _serve_source_args(query)
    query.add_argument("values", nargs="+", help="query strings")
    query.add_argument(
        "--json",
        action="store_true",
        help="print one JSON object per query instead of TSV",
    )
    _stats_args(query)

    metrics = sub.add_parser(
        "metrics",
        help="poll a running server's /metrics listener",
    )
    metrics.add_argument(
        "port", type=int, help="the listener's port (see --metrics-port)"
    )
    metrics.add_argument(
        "--host", default="127.0.0.1", help="listener host"
    )
    metrics.add_argument(
        "--json",
        action="store_true",
        help="fetch the JSON snapshot instead of the Prometheus text",
    )
    metrics.add_argument(
        "--events",
        action="store_true",
        help="fetch the lifecycle event log instead of the metrics",
    )
    metrics.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="HTTP timeout in seconds",
    )

    report = sub.add_parser(
        "report", help="assemble REPORT.md from saved benchmark results"
    )
    report.add_argument(
        "--results",
        type=Path,
        default=Path("benchmarks/results"),
        help="directory of saved benchmark tables",
    )
    report.add_argument(
        "--output", type=Path, default=None, help="write to this file"
    )
    return parser


def _common_join_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--k", type=int, default=1, help="edit threshold")
    sub.add_argument(
        "--method",
        default="FPDL",
        choices=list(METHOD_NAMES),
        help="method stack (paper name)",
    )
    sub.add_argument(
        "--scheme",
        default=None,
        choices=[None, "numeric", "alpha", "alnum"],
        help="FBF signature kind (auto-detected by default)",
    )
    sub.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    sub.add_argument(
        "--generator",
        default="auto",
        choices=["auto", *GENERATOR_NAMES],
        help="candidate generator (auto: cost model). "
        + "; ".join(
            f"{name}: {summary}"
            for name, summary in GENERATOR_SUMMARIES.items()
        ),
    )
    sub.add_argument(
        "--backend",
        default="auto",
        choices=["auto", *BACKEND_NAMES],
        help="execution backend (auto: cost model)",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the multiprocess/hybrid backends "
            "(with N > 1 the cost model may auto-pick hybrid for "
            "large products)"
        ),
    )
    sub.add_argument(
        "--collapse",
        default="auto",
        choices=["auto", "on", "off"],
        help=(
            "unique-string collapse: run the join over distinct values "
            "only (auto: when sampled duplication makes it pay)"
        ),
    )
    sub.add_argument(
        "--plan",
        action="store_true",
        help="print the chosen plan to stderr before running",
    )
    _stats_args(sub)


def _serve_source_args(sub: argparse.ArgumentParser) -> None:
    """Population source + index options shared by serve/query."""
    source = sub.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--data",
        type=Path,
        default=None,
        help="newline-delimited strings to index",
    )
    source.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        help="warm-start from a snapshot written by the snapshot op",
    )
    sub.add_argument("--k", type=int, default=1, help="edit threshold")
    sub.add_argument(
        "--scheme",
        default=None,
        choices=[None, "numeric", "alpha", "alnum"],
        help="FBF signature kind (auto-detected by default)",
    )
    sub.add_argument(
        "--method",
        default="osa",
        choices=["osa", "osa-bitparallel", "myers"],
        help="query verifier (also the index default)",
    )
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="fan batched queries out to N shared-memory pool workers",
    )
    sub.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "split the population across N length-partitioned shards "
            "(scatter/gather serving; 1 keeps the single index)"
        ),
    )


def _stats_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--stats",
        action="store_true",
        help="print the filter-funnel report to stderr",
    )
    sub.add_argument(
        "--stats-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write funnel counters and spans as JSON",
    )
    sub.add_argument(
        "--metrics-json",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "write a metrics-registry snapshot as JSON (funnel counters "
            "as Prometheus-shaped series; serve/query export the live "
            "service registry)"
        ),
    )


def _plan_overrides(args: argparse.Namespace):
    """Map the --generator/--backend flags to planner arguments.

    Names pass straight through: the planner's generator registry
    instantiates every registered generator, including the default
    Soundex standard blocking.
    """
    generator = None if args.generator == "auto" else args.generator
    backend = None if args.backend == "auto" else args.backend
    return generator, backend


def _planned_join(args: argparse.Namespace, left, right, collector):
    """Build the planner, honor --plan, and run the join."""
    try:
        planner = JoinPlanner(
            left,
            right,
            k=args.k,
            scheme=args.scheme,
            record_matches=True,
            collector=collector,
            collapse=args.collapse,
            self_join=True if getattr(args, "self_join", False) else None,
            workers=getattr(args, "workers", None),
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    generator, backend = _plan_overrides(args)
    if args.plan:
        from repro.native import native_status

        plan = planner.plan(args.method, generator=generator, backend=backend)
        print(f"# plan: {plan.describe()}", file=sys.stderr)
        status = native_status()
        if status["available"]:
            native_line = f"loaded ({status['kind']})"
        elif status["disabled"]:
            native_line = "disabled (REPRO_NO_NATIVE=1)"
        else:
            reasons = "; ".join(
                f"{name}: {why}" for name, why in status["providers"].items()
            )
            native_line = f"unavailable ({reasons or 'no providers'})"
        print(f"# native kernels: {native_line}", file=sys.stderr)
        for cost in planner.generator_costs(args.method):
            score = "lossy" if cost.cost == float("inf") else f"{cost.cost:,.0f}"
            mark = "*" if cost.name == plan.generator.name else " "
            print(
                f"# cost{mark} {cost.name:<14s} {score:>18s}  {cost.detail}",
                file=sys.stderr,
            )
    return planner.run(args.method, generator=generator, backend=backend)


def _collector_for(args: argparse.Namespace) -> StatsCollector | None:
    """One collector when any stats output was requested, else None."""
    if (
        args.stats
        or args.stats_json is not None
        or args.metrics_json is not None
    ):
        return StatsCollector(args.command)
    return None


def _emit_stats(
    args: argparse.Namespace,
    collector: StatsCollector | None,
    *,
    registry=None,
) -> None:
    if collector is None:
        return
    if args.stats:
        print(render_funnel(collector), file=sys.stderr)
    if args.stats_json is not None:
        try:
            write_stats_json(args.stats_json, collector)
        except OSError as exc:
            raise SystemExit(
                f"error: cannot write stats to {args.stats_json}: {exc}"
            ) from exc
        _log.info("wrote stats JSON to %s", args.stats_json)
    if args.metrics_json is not None:
        from repro.obs.metrics import registry_from_collector

        reg = registry if registry is not None else registry_from_collector(
            collector
        )
        try:
            reg.write_json(args.metrics_json)
        except OSError as exc:
            raise SystemExit(
                f"error: cannot write metrics to {args.metrics_json}: {exc}"
            ) from exc
        _log.info("wrote metrics JSON to %s", args.metrics_json)


def _read_lines(path: Path) -> list[str]:
    from repro.io import read_strings

    try:
        return read_strings(path)
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _cmd_match(args: argparse.Namespace) -> int:
    left = _read_lines(args.left)
    right = _read_lines(args.right)
    _log.info("matching %d x %d strings with %s", len(left), len(right), args.method)
    collector = _collector_for(args)
    result = _planned_join(args, left, right, collector)
    if not args.quiet:
        for i, j in result.matches:
            print(f"{left[i]}\t{right[j]}")
    print(
        f"# {result.match_count} matches over {result.pairs_compared:,} pairs "
        f"({args.method}, k={args.k}, verified {result.verified_pairs:,})",
        file=sys.stderr,
    )
    _emit_stats(args, collector)
    return 0


def _cmd_dedupe(args: argparse.Namespace) -> int:
    strings = _read_lines(args.path)
    collector = _collector_for(args)
    result = _planned_join(args, strings, strings, collector)
    pairs = [(i, j) for i, j in result.matches if i < j]
    clusters = [c for c in resolve(len(strings), pairs) if len(c) > 1]
    if not args.quiet:
        for cluster in clusters:
            print(" | ".join(strings[i] for i in cluster))
    unique_note = (
        f", {result.unique_left} unique"
        if result.unique_left is not None
        else ""
    )
    print(
        f"# {len(clusters)} duplicate clusters among {len(strings)} strings"
        f"{unique_note} ({args.method}, k={args.k})",
        file=sys.stderr,
    )
    _emit_stats(args, collector)
    return 0


def _cmd_join_stream(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.stream import join_stream

    roster = _read_lines(args.roster)
    collector = _collector_for(args)
    registry = (
        MetricsRegistry() if args.metrics_json is not None else None
    )
    try:
        result = join_stream(
            args.source,
            roster,
            args.method,
            k=args.k,
            generator=args.generator,
            backend=args.backend,
            workers=args.workers,
            chunk_rows=args.chunk_rows,
            memory_budget_mb=args.memory_budget,
            fmt=args.format,
            column=args.column,
            spill=args.spill,
            spill_format=args.spill_format,
            spill_values=args.spill_values,
            checkpoint=args.checkpoint,
            resume=args.resume,
            max_chunks=args.max_chunks,
            collector=collector,
            metrics=registry,
        )
    except (ValueError, OSError, RuntimeError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    if result.matches is not None and not args.quiet:
        for row, rid in result.matches:
            print(f"{row}\t{roster[rid]}")
    resumed = (
        f", resumed after chunk {result.resumed_after}"
        if result.resumed_after is not None
        else ""
    )
    state = "complete" if result.completed else "paused (checkpoint kept)"
    spill_note = (
        f", spilled {result.spill_bytes:,} B to {result.spill}"
        if result.spill is not None
        else ""
    )
    print(
        f"# {result.match_count} matches over {result.rows:,} x "
        f"{result.n_roster:,} rows in {result.chunks} chunks "
        f"({args.method}, k={args.k}, {result.generator} -> "
        f"{result.backend}){spill_note}{resumed}; {state}",
        file=sys.stderr,
    )
    if registry is not None and collector is not None:
        from repro.obs.metrics import registry_from_collector

        registry.merge(registry_from_collector(collector))
    _emit_stats(args, collector, registry=registry)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.eval.experiments import (
        DEFAULT_TABLE_METHODS,
        LENGTH_TABLE_METHODS,
        run_string_experiment,
    )
    from repro.eval.tables import format_string_experiment

    methods = LENGTH_TABLE_METHODS if args.length_filter else DEFAULT_TABLE_METHODS
    collector = _collector_for(args)
    result = run_string_experiment(
        args.family,
        args.n,
        k=args.k,
        seed=args.seed,
        methods=methods,
        collector=collector,
    )
    print(format_string_experiment(result))
    _emit_stats(args, collector)
    return 0


def _cmd_link(args: argparse.Namespace) -> int:
    from repro.io import read_records_csv, write_matches_csv
    from repro.linkage.engine import default_engine
    from repro.linkage.scoring import PointThresholdScorer

    try:
        left = read_records_csv(args.left)
        right = read_records_csv(args.right)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    scorer = (
        PointThresholdScorer(threshold=args.threshold)
        if args.threshold is not None
        else None
    )
    collector = _collector_for(args)
    engine = default_engine(args.method, args.k, scorer=scorer, collector=collector)
    engine.record_matches = args.output is not None
    result = engine.link(left, right)
    if args.output is not None:
        rows = write_matches_csv(args.output, result.matches, left, right)
        print(f"wrote {rows} matched pairs to {args.output}", file=sys.stderr)
    print(
        f"# {result.true_positives + result.false_positives} matches over "
        f"{result.candidates:,} candidate pairs "
        f"(precision vs positional truth: {result.precision:.3f}, "
        f"recall: {result.recall:.3f})",
        file=sys.stderr,
    )
    _emit_stats(args, collector)
    return 0


def _serve_service(args: argparse.Namespace, collector):
    """Build the MatchService from --data or --snapshot."""
    from repro.serve import MatchService

    cache_size = getattr(args, "cache_size", 1024)
    workers = getattr(args, "workers", None)
    shards = getattr(args, "shards", 1) or 1
    if args.snapshot is not None:
        try:
            return MatchService.load(
                args.snapshot,
                cache_size=cache_size,
                collector=collector,
                workers=workers,
            )
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"error: cannot load snapshot {args.snapshot}: {exc}"
            ) from exc
    ratio = getattr(args, "compact_ratio", 0.25)
    return MatchService(
        _read_lines(args.data),
        k=args.k,
        scheme=args.scheme,
        verifier=args.method,
        cache_size=cache_size,
        compact_ratio=ratio if ratio else None,
        collector=collector,
        workers=workers,
        shards=shards,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve_lines

    collector = _collector_for(args)
    service = _serve_service(args, collector)
    _log.info(
        "serving %d strings (k=%d, scheme=%s)",
        len(service),
        service.k,
        service.index.scheme.name,
    )
    metrics_server = None
    if args.metrics_port is not None:
        from repro.serve import start_metrics_server

        try:
            metrics_server = start_metrics_server(
                service, args.metrics_port
            )
        except OSError as exc:
            raise SystemExit(
                f"error: cannot bind metrics port "
                f"{args.metrics_port}: {exc}"
            ) from exc
        print(
            f"# metrics listening on {metrics_server.url}/metrics",
            file=sys.stderr,
            flush=True,
        )
    try:
        if getattr(args, "port", None) is not None:
            from repro.serve import run_server

            def announce(bound) -> None:
                print(
                    f"# serving on {bound[0]}:{bound[1]}",
                    file=sys.stderr,
                    flush=True,
                )

            served = run_server(
                service,
                port=args.port,
                max_inflight=args.max_inflight,
                on_bound=announce,
            )
        else:
            served = serve_lines(service, sys.stdin, sys.stdout)
    finally:
        if metrics_server is not None:
            metrics_server.close()
    cache = service.cache.stats()
    print(
        f"# served {served} requests over {len(service)} strings "
        f"(cache hit rate {cache['hit_rate']:.2f}, "
        f"{service.index.compactions} compactions)",
        file=sys.stderr,
    )
    service.refresh_metrics()
    _emit_stats(args, collector, registry=service.metrics or None)
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.server import query_payload

    collector = _collector_for(args)
    service = _serve_service(args, collector)
    results = service.query_batch(args.values, k=args.k, method=args.method)
    total = 0
    for res in results:
        total += len(res.ids)
        if args.json:
            print(_json.dumps(query_payload(res)))
        else:
            for sid, matched in zip(res.ids, res.matches):
                print(f"{res.value}\t{sid}\t{matched}")
    print(
        f"# {total} matches for {len(args.values)} queries "
        f"(k={args.k}, method={args.method}, n={len(service)})",
        file=sys.stderr,
    )
    service.refresh_metrics()
    _emit_stats(args, collector, registry=service.metrics or None)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    if args.events:
        route = "/events.json"
    elif args.json:
        route = "/metrics.json"
    else:
        route = "/metrics"
    url = f"http://{args.host}:{args.port}{route}"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as resp:
            body = resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as exc:
        raise SystemExit(f"error: cannot scrape {url}: {exc}") from exc
    sys.stdout.write(body if body.endswith("\n") else body + "\n")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(-1 if args.log_quiet else args.verbose)
    if args.command == "match":
        return _cmd_match(args)
    if args.command == "dedupe":
        return _cmd_dedupe(args)
    if args.command == "join-stream":
        return _cmd_join_stream(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "link":
        return _cmd_link(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "report":
        from repro.eval.report import build_report

        text = build_report(args.results)
        if args.output is not None:
            args.output.write_text(text)
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
        return 0
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
