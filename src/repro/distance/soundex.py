"""American Soundex (paper Tables 7-8 baseline).

Soundex reduces a name to a letter plus three digits grouping phonetically
similar consonants.  The paper's client system used Soundex for name
matching; Tables 7-8 show it misses over half the true matches under
single-edit errors while producing 6-40x more false positives than DL —
the motivation for switching to edit distance (and hence for FBF).

This is the classic Knuth/Census variant: H and W are transparent
(skipped without breaking a run of same-coded consonants), vowels break
runs, and the leading letter's code is suppressed when the following
letter shares it.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["soundex", "soundex_matcher"]

_CODES = {
    **dict.fromkeys("BFPV", "1"),
    **dict.fromkeys("CGJKQSXZ", "2"),
    **dict.fromkeys("DT", "3"),
    "L": "4",
    **dict.fromkeys("MN", "5"),
    "R": "6",
}
_TRANSPARENT = frozenset("HW")
_VOWELS = frozenset("AEIOUY")


def soundex(name: str) -> str:
    """Four-character Soundex code, e.g. ``soundex("Robert") == "R163"``.

    Non-alphabetic characters are ignored.  An empty or fully
    non-alphabetic input yields the empty string (which never matches
    anything, mirroring how a blank name field is treated).

    >>> soundex("Robert")
    'R163'
    >>> soundex("Rupert")
    'R163'
    >>> soundex("Ashcraft")  # H is transparent: S and C merge
    'A261'
    """
    letters = [c for c in name.upper() if "A" <= c <= "Z"]
    if not letters:
        return ""
    first = letters[0]
    code = [first]
    prev_code = _CODES.get(first, "")
    for c in letters[1:]:
        if c in _TRANSPARENT:
            continue  # transparent: do not reset prev_code
        digit = _CODES.get(c, "")
        if not digit:  # vowel: breaks a run of identical codes
            prev_code = ""
            continue
        if digit != prev_code:
            code.append(digit)
            if len(code) == 4:
                break
        prev_code = digit
    return "".join(code).ljust(4, "0")


def soundex_matcher() -> Callable[[str, str], bool]:
    """Pair predicate: do the two names share a Soundex code?

    Empty codes (blank fields) never match, consistent with the paper's
    treatment of empty strings in PDL.
    """

    def matcher(s: str, t: str) -> bool:
        cs = soundex(s)
        return bool(cs) and cs == soundex(t)

    matcher.__name__ = "soundex"
    return matcher
