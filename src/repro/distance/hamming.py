"""Hamming distance (paper's "Ham" baseline).

Hamming distance counts positional mismatches and is O(n) — the leanest
comparator in the paper's line-up — but it cannot see insertions or
deletions, which shift every later character.  That is why it is the only
method with Type 2 errors (missed matches) in Tables 1, 3 and 4.

The classic definition requires equal lengths.  Demographic fields are
not all fixed-length, so, following the common record-linkage convention,
unequal-length strings are compared over the shorter length and each
surplus character counts as one mismatch.
"""

from __future__ import annotations

from typing import Callable

from repro.distance.base import validate_threshold

__all__ = ["hamming", "hamming_matcher"]


def hamming(s: str, t: str) -> int:
    """Positional mismatches, plus the length difference for the overhang.

    >>> hamming("karolin", "kathrin")
    3
    >>> hamming("12345", "1234")
    1
    """
    if len(s) > len(t):
        s, t = t, s
    mismatches = len(t) - len(s)
    for cs, ct in zip(s, t):
        if cs != ct:
            mismatches += 1
    return mismatches


def hamming_matcher(k: int) -> Callable[[str, str], bool]:
    """Bind a threshold: ``matcher(s, t) <=> hamming(s, t) <= k``.

    Short-circuits as soon as the running count exceeds ``k``, mirroring
    the early termination the paper applies to DL.
    """
    validate_threshold(k)

    def matcher(s: str, t: str) -> bool:
        if abs(len(s) - len(t)) > k:
            return False
        count = abs(len(s) - len(t))
        for cs, ct in zip(s, t):
            if cs != ct:
                count += 1
                if count > k:
                    return False
        return True

    matcher.__name__ = f"hamming_k{k}"
    return matcher
