"""String distance and similarity metrics (substrate for the FBF system).

This subpackage contains from-scratch implementations of every string
comparator used in the paper's evaluation (Section 5):

* :func:`levenshtein` — classic edit distance (substitution/insert/delete).
* :func:`damerau_levenshtein` — restricted Damerau-Levenshtein / optimal
  string alignment (OSA), the paper's Algorithm 1 ("DL").
* :func:`true_damerau_levenshtein` — unrestricted Damerau-Levenshtein
  (extension; the paper uses the restricted form).
* :func:`pdl` — Prefix-Pruned Damerau-Levenshtein, the paper's Algorithm 2:
  a banded, early-terminating Boolean threshold test.
* :func:`bounded_osa` — banded OSA returning the distance when it is
  ``<= k`` and ``None`` otherwise.
* :func:`hamming` — positional mismatch count (paper's "Ham").
* :func:`jaro` / :func:`jaro_winkler` — similarity metrics in [0, 1].
* :func:`soundex` — the phonetic code the paper's client system used
  before adopting edit distance (Tables 7-8).
* :func:`qgram_distance` — q-gram profile distance (extension; the paper
  cites token/q-gram filters as related work).

All functions treat strings as plain Python ``str``; vectorized batch
engines over NumPy code arrays live in :mod:`repro.core.vectorized`.
"""

from repro.distance.base import (
    BoundedMatcher,
    StringMetric,
    StringSimilarity,
    validate_threshold,
)
from repro.distance.codec import (
    ALPHA_CODEC,
    ASCII_CODEC,
    DIGIT_CODEC,
    Codec,
    encode_batch,
    encode_raw,
)
from repro.distance.damerau import damerau_levenshtein, true_damerau_levenshtein
from repro.distance.hamming import hamming, hamming_matcher
from repro.distance.jaro import jaro, jaro_matcher, jaro_winkler, jaro_winkler_matcher
from repro.distance.levenshtein import bounded_levenshtein, levenshtein
from repro.distance.bitparallel import (
    osa_bitparallel,
    osa_bitparallel_batch,
    osa_bitparallel_bounded,
)
from repro.distance.myers import myers_batch, myers_bounded, myers_distance
from repro.distance.pruned import bounded_osa, pdl, pdl_matcher
from repro.distance.qgram import qgram_distance, qgram_profile
from repro.distance.soundex import soundex, soundex_matcher
from repro.distance.tokens import (
    cosine_qgrams,
    dice,
    jaccard,
    overlap_coefficient,
    token_matcher,
)
from repro.distance.weighted import (
    keyboard_cost,
    keypad_cost,
    ocr_cost,
    weighted_osa,
)

__all__ = [
    "ALPHA_CODEC",
    "ASCII_CODEC",
    "DIGIT_CODEC",
    "BoundedMatcher",
    "Codec",
    "StringMetric",
    "StringSimilarity",
    "bounded_levenshtein",
    "bounded_osa",
    "cosine_qgrams",
    "dice",
    "damerau_levenshtein",
    "encode_batch",
    "encode_raw",
    "hamming",
    "hamming_matcher",
    "jaccard",
    "jaro",
    "jaro_matcher",
    "jaro_winkler",
    "jaro_winkler_matcher",
    "keyboard_cost",
    "keypad_cost",
    "levenshtein",
    "myers_batch",
    "myers_bounded",
    "myers_distance",
    "ocr_cost",
    "osa_bitparallel",
    "overlap_coefficient",
    "osa_bitparallel_batch",
    "osa_bitparallel_bounded",
    "pdl",
    "pdl_matcher",
    "qgram_distance",
    "qgram_profile",
    "soundex",
    "soundex_matcher",
    "token_matcher",
    "true_damerau_levenshtein",
    "validate_threshold",
    "weighted_osa",
]
