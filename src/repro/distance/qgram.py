"""q-gram profile distance (extension).

The paper's related-work section points at q-gram and token-based filters
(Gravano et al., SSJoin) as the established filter-and-verify family that
FBF competes with.  This module provides a reference q-gram distance so
the benchmark suite can place FBF next to the approach it claims to beat:
an FBF signature is effectively a 1-gram occurrence sketch compressed to
machine words, whereas a q-gram profile is an exact multiset of substrings.

The q-gram distance lower-bounds edit distance: one edit touches at most
``q`` q-grams, so ``qgram_distance(s, t, q) <= 2 * q * levenshtein(s, t)``
— the same *safe filter* shape as FBF's ``diffbits <= 2k`` bound.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable

__all__ = ["qgram_profile", "qgram_distance", "qgram_filter"]

#: Padding character used to extend strings so edge characters appear in
#: as many q-grams as interior ones.  Chosen outside all data alphabets.
PAD_CHAR = "\x00"


def qgram_profile(s: str, q: int = 2, *, padded: bool = True) -> Counter:
    """Multiset of the (padded) q-grams of ``s``.

    With ``padded=True`` the string is extended by ``q - 1`` pad
    characters on each side, the standard construction for edit-distance
    filtering.

    >>> sorted(qgram_profile("AB", 2, padded=False))
    ['AB']
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if padded:
        pad = PAD_CHAR * (q - 1)
        s = f"{pad}{s}{pad}"
    return Counter(s[i : i + q] for i in range(max(0, len(s) - q + 1)))


def qgram_distance(s: str, t: str, q: int = 2) -> int:
    """Size of the symmetric difference of the two q-gram profiles.

    >>> qgram_distance("12345", "12345")
    0
    """
    ps, pt = qgram_profile(s, q), qgram_profile(t, q)
    diff = 0
    for gram in ps.keys() | pt.keys():
        diff += abs(ps[gram] - pt[gram])
    return diff


def qgram_filter(k: int, q: int = 2) -> Callable[[str, str], bool]:
    """Safe filter for edit threshold ``k``: pass iff the q-gram distance
    does not already prove ``levenshtein(s, t) > k``.

    One edit creates/destroys at most ``q`` q-grams on each side, so a
    true match within ``k`` edits has q-gram distance at most ``2 * q *
    k``.  Anything above that bound is guaranteed not to match.
    """
    bound = 2 * q * k

    def matcher(s: str, t: str) -> bool:
        return qgram_distance(s, t, q) <= bound

    matcher.__name__ = f"qgram{q}_k{k}"
    return matcher
