"""Vectorized pair-batch string metrics (NumPy engines).

Every function here evaluates one metric over a *batch of pairs* at once:
the two datasets are encoded once into padded ``uint8`` code matrices
(:func:`repro.distance.codec.encode_raw`, lossless so results match the
scalar metrics exactly), and the dynamic programs run with the pair axis
vectorized — each DP cell update is one NumPy operation over the whole
batch instead of one Python statement per pair.

This is the guides' "vectorize the inner loop" discipline applied to
string comparison, and it is what lets the benchmark harness run the
paper's quadratic experiments at meaningful sizes in CPython.  The
scalar implementations in the sibling modules remain the specification;
``tests/distance/test_vectorized.py`` pins exact agreement.

All functions share the same signature shape::

    f(codes_a, lengths_a, codes_b, lengths_b, ii, jj, ...) -> ndarray

where ``ii``/``jj`` are index arrays selecting the pairs
``(a[ii[p]], b[jj[p]])``.  Callers chunk ``ii``/``jj`` to bound memory;
:mod:`repro.parallel.chunked` does exactly that.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "osa_pairs",
    "osa_within_k_pairs",
    "levenshtein_pairs",
    "hamming_pairs",
    "jaro_pairs",
    "jaro_winkler_pairs",
]


def _gather(codes: np.ndarray, lengths: np.ndarray, idx: np.ndarray):
    sel = np.asarray(idx, dtype=np.int64)
    return codes[sel], np.asarray(lengths, dtype=np.int64)[sel]


def osa_pairs(
    codes_a: np.ndarray,
    lengths_a: np.ndarray,
    codes_b: np.ndarray,
    lengths_b: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
) -> np.ndarray:
    """Restricted Damerau-Levenshtein (OSA) distance for a pair batch.

    Full dynamic program, pair axis vectorized; rolling rows with the
    extra row the transposition clause needs.  Each pair's result is
    captured when the row index reaches its left-string length.
    Complexity: ``O(max_len_a * max_len_b)`` vector operations of batch
    width.
    """
    sa, la = _gather(codes_a, lengths_a, ii)
    sb, lb = _gather(codes_b, lengths_b, jj)
    P = sa.shape[0]
    La, Lb = sa.shape[1], sb.shape[1]
    cols = np.arange(Lb + 1, dtype=np.int32)
    prev = np.broadcast_to(cols, (P, Lb + 1)).copy()
    prev2 = np.zeros((P, Lb + 1), dtype=np.int32)
    cur = np.zeros((P, Lb + 1), dtype=np.int32)
    result = np.where(la == 0, lb, -1).astype(np.int32)
    # Pairs with empty left strings were resolved at row 0 above.
    pending = int((la > 0).sum())
    max_rows = int(la.max()) if P else 0
    for i in range(1, max_rows + 1):
        cur[:, 0] = i
        si = sa[:, i - 1]
        si_prev = sa[:, i - 2] if i > 1 else None
        for j in range(1, Lb + 1):
            tj = sb[:, j - 1]
            eq = si == tj
            d = np.minimum(np.minimum(prev[:, j], cur[:, j - 1]), prev[:, j - 1]) + 1
            d = np.where(eq, prev[:, j - 1], d)
            if i > 1 and j > 1:
                trans = (si == sb[:, j - 2]) & (si_prev == tj)
                # Safe to apply even when eq holds: the diagonal value
                # never exceeds prev2[j-2] + 1.
                d = np.where(trans, np.minimum(d, prev2[:, j - 2] + 1), d)
            cur[:, j] = d
        done = la == i
        if done.any():
            rows = np.nonzero(done)[0]
            result[rows] = cur[rows, lb[rows]]
            pending -= len(rows)
            if pending == 0:
                break
        prev2, prev, cur = prev, cur, prev2
    return result


def levenshtein_pairs(
    codes_a: np.ndarray,
    lengths_a: np.ndarray,
    codes_b: np.ndarray,
    lengths_b: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
) -> np.ndarray:
    """Plain Levenshtein distance for a pair batch (no transpositions)."""
    sa, la = _gather(codes_a, lengths_a, ii)
    sb, lb = _gather(codes_b, lengths_b, jj)
    P = sa.shape[0]
    Lb = sb.shape[1]
    cols = np.arange(Lb + 1, dtype=np.int32)
    prev = np.broadcast_to(cols, (P, Lb + 1)).copy()
    cur = np.zeros((P, Lb + 1), dtype=np.int32)
    result = np.where(la == 0, lb, -1).astype(np.int32)
    pending = int((la > 0).sum())
    max_rows = int(la.max()) if P else 0
    for i in range(1, max_rows + 1):
        cur[:, 0] = i
        si = sa[:, i - 1]
        for j in range(1, Lb + 1):
            eq = si == sb[:, j - 1]
            d = np.minimum(np.minimum(prev[:, j], cur[:, j - 1]), prev[:, j - 1]) + 1
            cur[:, j] = np.where(eq, prev[:, j - 1], d)
        done = la == i
        if done.any():
            rows = np.nonzero(done)[0]
            result[rows] = cur[rows, lb[rows]]
            pending -= len(rows)
            if pending == 0:
                break
        prev, cur = cur, prev
    return result


def osa_within_k_pairs(
    codes_a: np.ndarray,
    lengths_a: np.ndarray,
    codes_b: np.ndarray,
    lengths_b: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
    k: int,
) -> np.ndarray:
    """Banded OSA threshold test for a pair batch — vectorized PDL.

    Returns a boolean array: ``osa(a, b) <= k`` per pair.  Only the
    ``2k + 1``-wide diagonal band is computed (the paper's prefix-pruning
    strip), and the batch stops early once every still-undecided pair has
    exceeded ``k`` in some row — the vector analogue of Algorithm 2's
    ``x <= 0`` termination.

    Pairs with ``abs(len_a - len_b) > k`` are rejected without touching
    the DP, and — matching the paper's Step 1 — pairs with an empty
    string on either side are rejected outright.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    sa, la = _gather(codes_a, lengths_a, ii)
    sb, lb = _gather(codes_b, lengths_b, jj)
    P = sa.shape[0]
    Lb = sb.shape[1]
    out = np.zeros(P, dtype=bool)
    viable = (np.abs(la - lb) <= k) & (la > 0) & (lb > 0)
    if k == 0:
        # Within the band nothing but equality survives.
        width = sa.shape[1]
        if width == 0 or Lb == 0:
            return out
        w = min(width, Lb)
        eq = (sa[:, :w] == sb[:, :w]).all(axis=1) & (la == lb) & (la <= w)
        out[:] = viable & eq
        return out
    INF = np.int32(k + 1)
    prev2 = np.full((P, Lb + 2), INF, dtype=np.int32)
    prev = np.full((P, Lb + 2), INF, dtype=np.int32)
    cur = np.full((P, Lb + 2), INF, dtype=np.int32)
    w0 = min(k + 1, Lb + 2)
    prev[:, :w0] = np.arange(w0, dtype=np.int32)  # row 0 inside the band
    alive = viable.copy()
    max_rows = int(la.max()) if P else 0
    for i in range(1, max_rows + 1):
        lo = max(1, i - k)
        hi = min(Lb, i + k)
        if lo > Lb:
            break
        cur[:, lo - 1] = np.int32(i) if (lo == 1 and i <= k) else INF
        if hi + 1 <= Lb + 1:
            cur[:, hi + 1] = INF
        si = sa[:, i - 1]
        si_prev = sa[:, i - 2] if i > 1 else None
        row_min = np.full(P, INF, dtype=np.int32)
        if lo == 1 and i <= k:
            row_min[:] = np.int32(i)
        for j in range(lo, hi + 1):
            tj = sb[:, j - 1]
            eq = si == tj
            d = np.minimum(np.minimum(prev[:, j], cur[:, j - 1]), prev[:, j - 1]) + 1
            d = np.where(eq, prev[:, j - 1], d)
            if i > 1 and j > 1:
                trans = (si == sb[:, j - 2]) & (si_prev == tj)
                d = np.where(trans, np.minimum(d, prev2[:, j - 2] + 1), d)
            d = np.minimum(d, INF)  # clamp so the band border stays INF-like
            cur[:, j] = d
            np.minimum(row_min, d, out=row_min)
        finished = alive & (la == i)
        if finished.any():
            rows = np.nonzero(finished)[0]
            out[rows] = cur[rows, lb[rows]] <= k
        alive &= row_min <= k
        if not (alive & (la > i)).any():
            break
        prev2, prev, cur = prev, cur, prev2
        cur[:, lo - 1 : hi + 2] = INF  # reset the recycled row's band
    return out


def hamming_pairs(
    codes_a: np.ndarray,
    lengths_a: np.ndarray,
    codes_b: np.ndarray,
    lengths_b: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
) -> np.ndarray:
    """Hamming distance (overhang counted) for a pair batch.

    Positional mismatches over the common prefix length plus the length
    difference — identical to :func:`repro.distance.hamming.hamming`.
    Padding bytes are zero on both sides, so positions beyond both
    lengths never mismatch; positions covered by exactly one string
    compare a character against NUL and are re-counted exactly by the
    common-length correction below.
    """
    sa, la = _gather(codes_a, lengths_a, ii)
    sb, lb = _gather(codes_b, lengths_b, jj)
    w = min(sa.shape[1], sb.shape[1])
    mism = (sa[:, :w] != sb[:, :w]).sum(axis=1, dtype=np.int32) if w else np.zeros(
        len(sa), dtype=np.int32
    )
    # Mismatches counted in the overhang region (char vs NUL) equal the
    # overhang size itself, which is what the scalar metric adds; beyond
    # the shared padded width every cell is NUL vs NUL.  The only
    # correction needed is overhang that falls outside the shared width.
    common = np.minimum(la, lb)
    longer = np.maximum(la, lb)
    overhang_in_w = np.minimum(longer, w) - np.minimum(common, w)
    mism += (longer - common - overhang_in_w).astype(np.int32)
    return mism


def jaro_pairs(
    codes_a: np.ndarray,
    lengths_a: np.ndarray,
    codes_b: np.ndarray,
    lengths_b: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
    variant: str = "paper",
) -> np.ndarray:
    """Jaro similarity for a pair batch.

    Reproduces the scalar greedy matching exactly: for each position of
    the left string, the first unclaimed window position of the right
    string with the same character is claimed.  The i/j loops stay in
    Python but every iteration operates on the whole batch.
    Transpositions are counted by scattering matched characters into
    rank-ordered buffers and comparing them slot by slot.  ``variant``
    follows :func:`repro.distance.jaro.jaro`.
    """
    sa, la = _gather(codes_a, lengths_a, ii)
    sb, lb = _gather(codes_b, lengths_b, jj)
    P = sa.shape[0]
    La, Lb = sa.shape[1], sb.shape[1]
    window = np.maximum(np.maximum(la, lb) // 2 - 1, 0)
    s_matched = np.zeros((P, La), dtype=bool)
    t_matched = np.zeros((P, Lb), dtype=bool)
    for i in range(La):
        valid_i = i < la
        for j in range(Lb):
            # Window width varies per pair, so no columns can be
            # statically skipped; the claim test is one vector op.
            claim = (
                valid_i
                & (j < lb)
                & ~s_matched[:, i]
                & ~t_matched[:, j]
                & (np.abs(i - j) <= window)
                & (sa[:, i] == sb[:, j])
            )
            if claim.any():
                s_matched[:, i] |= claim
                t_matched[:, j] |= claim
    m = s_matched.sum(axis=1).astype(np.int64)
    # Rank-order matched characters to count transpositions.
    max_m = int(m.max()) if P else 0
    if max_m:
        buf_s = np.zeros((P, max_m + 1), dtype=np.uint8)
        buf_t = np.zeros((P, max_m + 1), dtype=np.uint8)
        rank_s = np.cumsum(s_matched, axis=1) * s_matched  # 0 for unmatched
        rank_t = np.cumsum(t_matched, axis=1) * t_matched
        np.put_along_axis(
            buf_s, np.minimum(rank_s, max_m), np.where(s_matched, sa, 0), axis=1
        )
        np.put_along_axis(
            buf_t, np.minimum(rank_t, max_m), np.where(t_matched, sb, 0), axis=1
        )
        half_trans = (buf_s[:, 1:] != buf_t[:, 1:]).sum(axis=1)
    else:
        half_trans = np.zeros(P, dtype=np.int64)
    if variant == "standard":
        r = half_trans / 2.0
    elif variant == "paper":
        r = half_trans / 4.0
    else:
        raise ValueError(f"variant must be 'paper' or 'standard', got {variant!r}")
    safe_m = np.maximum(m, 1)
    safe_ls = np.maximum(la, 1)
    safe_lt = np.maximum(lb, 1)
    score = (m / safe_ls + m / safe_lt + (m - r) / safe_m) / 3.0
    both_empty = (la == 0) & (lb == 0)
    return np.where(m == 0, np.where(both_empty, 1.0, 0.0), score)


def jaro_winkler_pairs(
    codes_a: np.ndarray,
    lengths_a: np.ndarray,
    codes_b: np.ndarray,
    lengths_b: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
    prefix_scale: float = 0.1,
    variant: str = "paper",
) -> np.ndarray:
    """Jaro-Winkler similarity for a pair batch (prefix capped at 4)."""
    base = jaro_pairs(codes_a, lengths_a, codes_b, lengths_b, ii, jj, variant)
    sa, la = _gather(codes_a, lengths_a, ii)
    sb, lb = _gather(codes_b, lengths_b, jj)
    P = sa.shape[0]
    depth = min(4, sa.shape[1], sb.shape[1])
    still = np.ones(P, dtype=bool)
    prefix = np.zeros(P, dtype=np.int64)
    for d in range(depth):
        still &= (d < la) & (d < lb) & (sa[:, d] == sb[:, d])
        prefix += still
    return base + prefix * prefix_scale * (1.0 - base)
