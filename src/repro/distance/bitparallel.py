"""Bit-parallel restricted Damerau-Levenshtein (Hyyrö-style, extension).

:mod:`repro.distance.myers` computes plain Levenshtein with one word of
bit-state per column.  This module extends the recurrence with adjacent
transpositions, giving the paper's *exact* metric (OSA, Algorithm 1) at
bit-parallel speed — the verifier a C implementation of FPDL would
ideally use for patterns up to 64 characters.

The transposition term: at column ``j``, the DP cell ``(i, j)`` may take
``d[i-2][j-2] + 1``.  That sets the diagonal-zero bit of ``(i, j)``
exactly when

* ``s[i] == t[j-1]``   (bit ``i`` of the previous column's match mask),
* ``s[i-1] == t[j]``   (bit ``i-1`` of this column's match mask), and
* the diagonal delta at ``(i-1, j-1)`` was +1 (bit ``i-1`` of the
  previous column's negated ``D0``),

because then ``d[i-2][j-2] + 1 == d[i-1][j-1]``.  In bit-vector form::

    TR = (((~D0_prev) & PM_j) << 1) & PM_{j-1}

folded into ``D0`` before the horizontal/vertical delta updates.
Correctness is pinned against the DP reference by exhaustive property
tests (``tests/distance/test_bitparallel.py``).
"""

from __future__ import annotations

import numpy as np

from repro.distance.damerau import damerau_levenshtein

__all__ = ["osa_bitparallel", "osa_bitparallel_bounded", "osa_bitparallel_batch"]

#: maximum pattern length for the single-word implementation
MAX_PATTERN = 64


def osa_bitparallel(s: str, t: str) -> int:
    """Restricted Damerau-Levenshtein via one-word bit-parallelism.

    Patterns longer than 64 characters fall back to the rolling-row DP.

    >>> osa_bitparallel("SMITH", "SMIHT")
    1
    """
    m = len(s)
    if m == 0:
        return len(t)
    if not t:
        return m
    if m > MAX_PATTERN:
        return damerau_levenshtein(s, t)
    mask = (1 << m) - 1
    high = 1 << (m - 1)
    pm: dict[str, int] = {}
    for i, ch in enumerate(s):
        pm[ch] = pm.get(ch, 0) | (1 << i)
    vp = mask
    vn = 0
    d0 = 0
    pm_prev = 0
    score = m
    for ch in t:
        pm_j = pm.get(ch, 0)
        tr = ((((~d0) & pm_j) << 1) & pm_prev) & mask
        d0 = ((((pm_j & vp) + vp) ^ vp) | pm_j | vn) & mask
        d0 |= tr
        hp = (vn | (~(d0 | vp) & mask)) & mask
        hn = d0 & vp
        if hp & high:
            score += 1
        elif hn & high:
            score -= 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = (hn | (~(d0 | hp) & mask)) & mask
        vn = hp & d0
        pm_prev = pm_j
    return score


def osa_bitparallel_bounded(s: str, t: str, k: int) -> int | None:
    """Thresholded variant: the OSA distance if ``<= k``, else ``None``."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if abs(len(s) - len(t)) > k:
        return None
    d = osa_bitparallel(s, t)
    return d if d <= k else None


def osa_bitparallel_batch(
    pattern: str, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """OSA distance from ``pattern`` to every encoded target at once.

    The batch twin of :func:`osa_bitparallel`, mirroring
    :func:`repro.distance.myers.myers_batch`: ``uint64`` bit-state
    arrays advance all targets in lock-step; each target's score is
    frozen when the column index reaches its length.
    """
    m = len(pattern)
    n = codes.shape[0]
    lengths = np.asarray(lengths, dtype=np.int64)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if m == 0:
        return lengths.copy()
    if m > MAX_PATTERN:
        raise ValueError(
            f"pattern length {m} exceeds the {MAX_PATTERN}-char word limit"
        )
    mask = np.uint64((1 << m) - 1)
    high = np.uint64(1 << (m - 1))
    one = np.uint64(1)
    peq = np.zeros(256, dtype=np.uint64)
    for i, byte in enumerate(pattern.encode("latin-1")):
        peq[byte] |= np.uint64(1 << i)
    vp = np.full(n, mask, dtype=np.uint64)
    vn = np.zeros(n, dtype=np.uint64)
    d0 = np.zeros(n, dtype=np.uint64)
    pm_prev = np.zeros(n, dtype=np.uint64)
    score = np.full(n, m, dtype=np.int64)
    result = np.where(lengths == 0, np.int64(m), np.int64(-1))
    max_len = int(lengths.max())
    for j in range(min(codes.shape[1], max_len)):
        pm_j = peq[codes[:, j]]
        active = j < lengths
        tr = (((~d0) & pm_j) << one) & pm_prev & mask
        new_d0 = ((((pm_j & vp) + vp) ^ vp) | pm_j | vn) & mask
        new_d0 |= tr
        hp = (vn | (~(new_d0 | vp) & mask)) & mask
        hn = new_d0 & vp
        inc = (hp & high) != 0
        dec = (hn & high) != 0
        score[active & inc] += 1
        score[active & dec & ~inc] -= 1
        hp = ((hp << one) | one) & mask
        hn = (hn << one) & mask
        new_vp = (hn | (~(new_d0 | hp) & mask)) & mask
        new_vn = hp & new_d0
        vp = np.where(active, new_vp, vp)
        vn = np.where(active, new_vn, vn)
        d0 = np.where(active, new_d0, d0)
        pm_prev = np.where(active, pm_j, pm_prev)
        done = lengths == j + 1
        if done.any():
            result[done] = score[done]
    return result
