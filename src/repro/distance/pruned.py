"""Prefix-Pruned Damerau-Levenshtein (PDL) — paper Algorithm 2.

PDL is the paper's *verify* step: a thresholded Boolean version of the OSA
dynamic program that

1. rejects immediately when ``abs(len(s) - len(t)) > k`` (length pruning),
2. evaluates only the diagonal band ``i - k <= j <= i + k`` (a 2k+1-wide
   strip, reducing O(mn) to O(k * min(m, n))), and
3. terminates early as soon as an entire band row exceeds ``k`` (no later
   cell can then fall back below ``k``).

``PDL(s, t, k) is True  <=>  damerau_levenshtein(s, t) <= k`` for
non-empty strings.  The paper's Step 1 returns FALSE when *either* string
is empty — even for two empty strings, whose OSA distance is 0.  That is
deliberate in a record-linkage setting (an empty field carries no
identity evidence), and is kept as the default; pass
``empty_matches=True`` for the mathematically consistent behaviour.

Both pruning mechanisms can report how often they fired: pass a
``counters`` dict and PDL increments ``counters["length_pruned"]`` per
step-1 rejection and ``counters["early_exit"]`` per band-row
termination — the tallies :class:`repro.obs.StatsCollector` surfaces as
the verifier's avoided work.  ``counters=None`` (the default) keeps the
hot path branch-free on accepts.
"""

from __future__ import annotations

from typing import Callable

from repro.distance.base import validate_threshold

__all__ = ["pdl", "bounded_osa", "pdl_matcher"]


def pdl(
    s: str,
    t: str,
    k: int,
    *,
    empty_matches: bool = False,
    counters: dict[str, int] | None = None,
) -> bool:
    """Paper Algorithm 2: is the OSA distance between s and t at most k?

    >>> pdl("Saturday", "Sunday", 3)
    True
    >>> pdl("Saturday", "Sunday", 2)
    False
    """
    validate_threshold(k)
    m, n = len(s), len(t)
    if m == 0 or n == 0:
        if empty_matches:
            return abs(m - n) <= k
        return False
    if abs(m - n) > k:
        if counters is not None:
            counters["length_pruned"] += 1
        return False
    return _banded_osa(s, t, k, counters) is not None


def bounded_osa(s: str, t: str, k: int) -> int | None:
    """Banded OSA distance: the exact distance if ``<= k``, else ``None``.

    The same band-and-terminate computation as :func:`pdl` but exposing
    the distance, which record-linkage scorers use for graded points.
    """
    validate_threshold(k)
    m, n = len(s), len(t)
    if abs(m - n) > k:
        return None
    if s == t:
        return 0
    if m == 0 or n == 0:
        d = max(m, n)
        return d if d <= k else None
    return _banded_osa(s, t, k)


def _banded_osa(
    s: str, t: str, k: int, counters: dict[str, int] | None = None
) -> int | None:
    """Core banded OSA DP shared by :func:`pdl` and :func:`bounded_osa`.

    Preconditions: both strings non-empty and ``abs(m - n) <= k``.
    Returns the distance when ``<= k``; ``None`` on early termination or
    when the final cell exceeds ``k``.  Cells outside the band hold
    ``INF`` — the role played by the literal 1000 border in the paper's
    pseudocode.  ``counters`` (optional) tallies early terminations.
    """
    m, n = len(s), len(t)
    if k == 0:
        return 0 if s == t else None
    INF = k + 1
    # Three rolling rows; the transposition clause consults row i-2.
    prev2 = [INF] * (n + 1)
    prev = [j if j <= k else INF for j in range(n + 1)]
    cur = [INF] * (n + 1)
    for i in range(1, m + 1):
        lo = max(1, i - k)
        hi = min(n, i + k)
        # Band-left border: column lo-1 is outside the band unless it is
        # the initialized column 0 with value i (only reachable if i <= k).
        cur[lo - 1] = i if (lo == 1 and i <= k) else INF
        row_min = cur[lo - 1]
        si = s[i - 1]
        si_prev = s[i - 2] if i > 1 else ""
        for j in range(lo, hi + 1):
            tj = t[j - 1]
            if si == tj:
                d = prev[j - 1]
            else:
                d = min(prev[j], cur[j - 1], prev[j - 1]) + 1
                if i > 1 and j > 1 and si == t[j - 2] and si_prev == tj:
                    trans = prev2[j - 2] + 1
                    if trans < d:
                        d = trans
            cur[j] = d if d <= k else INF
            if d < row_min:
                row_min = d
        # Band-right border for the *next* row's prev[j] lookups.
        if hi < n:
            cur[hi + 1] = INF
        if row_min > k:
            if counters is not None:
                counters["early_exit"] += 1
            return None  # the paper's x <= 0 early termination
        prev2, prev, cur = prev, cur, prev2
    return prev[n] if prev[n] <= k else None


def pdl_matcher(
    k: int,
    *,
    empty_matches: bool = False,
    counters: dict[str, int] | None = None,
) -> Callable[[str, str], bool]:
    """Bind a threshold: returns ``matcher(s, t) -> bool`` running PDL.

    ``counters`` (optional) receives the pruning tallies of every call —
    see :func:`pdl`.
    """
    validate_threshold(k)

    def matcher(s: str, t: str) -> bool:
        return pdl(s, t, k, empty_matches=empty_matches, counters=counters)

    matcher.__name__ = f"pdl_k{k}"
    return matcher
