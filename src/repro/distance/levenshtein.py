"""Classic Levenshtein edit distance.

The paper builds on Damerau's extension (transpositions), but plain
Levenshtein is the substrate: Algorithm 1 minus the transposition clause.
It is also the metric for which the triangle inequality genuinely holds
(OSA violates it), so the property-test suite exercises both.
"""

from __future__ import annotations

from repro.distance.base import validate_threshold

__all__ = ["levenshtein", "bounded_levenshtein"]


def levenshtein(s: str, t: str) -> int:
    """Minimum number of substitutions, insertions and deletions.

    Dynamic programming over two rolling rows: O(len(s) * len(t)) time,
    O(min(len(s), len(t))) space.

    >>> levenshtein("Saturday", "Sunday")
    3
    """
    if s == t:
        return 0
    # Iterate over the longer string so rows are as short as possible.
    if len(s) < len(t):
        s, t = t, s
    if not t:
        return len(s)
    prev = list(range(len(t) + 1))
    cur = [0] * (len(t) + 1)
    for i, cs in enumerate(s, start=1):
        cur[0] = i
        for j, ct in enumerate(t, start=1):
            if cs == ct:
                cur[j] = prev[j - 1]
            else:
                cur[j] = min(prev[j], cur[j - 1], prev[j - 1]) + 1
        prev, cur = cur, prev
    return prev[len(t)]


def bounded_levenshtein(s: str, t: str, k: int) -> int | None:
    """Banded Levenshtein: the distance if it is ``<= k``, else ``None``.

    Only the diagonal strip ``|i - j| <= k`` is evaluated (Gusfield's
    2k+1-band optimization, the same idea the paper's PDL applies to DL),
    with early termination when a whole row exceeds ``k``.
    """
    validate_threshold(k)
    m, n = len(s), len(t)
    if abs(m - n) > k:
        return None
    if s == t:
        return 0
    if k == 0:
        return None  # unequal strings cannot be within 0 edits
    INF = k + 1
    prev = [j if j <= k else INF for j in range(n + 1)]
    cur = [INF] * (n + 1)
    for i in range(1, m + 1):
        lo = max(1, i - k)
        hi = min(n, i + k)
        cur[lo - 1] = i if (lo - 1 == 0 and i <= k) else INF
        row_min = cur[lo - 1]
        cs = s[i - 1]
        for j in range(lo, hi + 1):
            if cs == t[j - 1]:
                d = prev[j - 1]
            else:
                d = min(prev[j], cur[j - 1], prev[j - 1]) + 1
            cur[j] = d if d <= k else INF
            if cur[j] < row_min:
                row_min = cur[j]
        if hi < n:
            cur[hi + 1] = INF
        if row_min > k:
            return None
        prev, cur = cur, prev
    return prev[n] if prev[n] <= k else None
