"""Shared protocols and helpers for string comparators.

The paper's experiment harness treats every method as a *pair matcher*: a
Boolean predicate over a string pair, parameterized by a threshold (an
edit-distance bound ``k`` for distance metrics, a similarity floor for
Jaro/Jaro-Winkler).  The protocols here give that shape a name so that the
filter stacks in :mod:`repro.core.matchers` and the join driver in
:mod:`repro.core.join` can be written against a stable interface.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = [
    "BoundedMatcher",
    "StringMetric",
    "StringSimilarity",
    "validate_threshold",
]


@runtime_checkable
class StringMetric(Protocol):
    """A distance: larger means more different; 0 means identical."""

    def __call__(self, s: str, t: str) -> int: ...


@runtime_checkable
class StringSimilarity(Protocol):
    """A similarity in [0, 1]: larger means more alike; 1 means identical."""

    def __call__(self, s: str, t: str) -> float: ...


@runtime_checkable
class BoundedMatcher(Protocol):
    """A Boolean pair predicate — the unit the join driver composes.

    ``matcher(s, t)`` answers "do these strings match under this method's
    threshold?".  Filter stacks (FBF, length filter) wrap one matcher in
    another; the outermost object still satisfies this protocol.
    """

    def __call__(self, s: str, t: str) -> bool: ...


def validate_threshold(k: int) -> int:
    """Check an edit-distance threshold and return it.

    The paper uses ``k`` in {1, 2}; any non-negative integer is accepted
    here.  Raises :class:`ValueError` for negative or non-integral values
    so misconfiguration fails at construction time, not per-pair.
    """
    if not isinstance(k, int) or isinstance(k, bool):
        raise ValueError(f"threshold k must be an int, got {k!r}")
    if k < 0:
        raise ValueError(f"threshold k must be >= 0, got {k}")
    return k


def validate_similarity_threshold(theta: float) -> float:
    """Check a similarity threshold in [0, 1] and return it."""
    theta = float(theta)
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"similarity threshold must be in [0, 1], got {theta}")
    return theta
