"""Myers bit-parallel Levenshtein distance (extension).

FBF exploits bit-level parallelism in the *filter*; Myers' 1999
algorithm exploits it in the *verifier*: the whole DP column fits in one
machine word as two bit-vectors (the +1/-1 deltas), so one character of
the target advances the entire column in ~15 word operations.  For
patterns up to 64 characters — every demographic field — the verify
step becomes O(|t|) word ops instead of O(|s|*|t|) cell updates.

Provided here:

* :func:`myers_distance` — scalar bit-parallel Levenshtein (pattern up
  to 64 chars; longer inputs fall back to the DP).
* :func:`myers_bounded` — thresholded variant returning ``None`` when
  the distance exceeds ``k``.
* :func:`myers_batch` — one pattern against a whole encoded dataset at
  once, with the bit-vectors held in NumPy ``uint64`` arrays: the
  column loop is per *target character position*, vectorized across all
  targets.  This is the engine behind
  :meth:`repro.core.index.FBFIndex.search`'s verify stage.

Note: Myers computes plain Levenshtein (no transposition credit), so it
is *not* a drop-in replacement for the paper's DL — a transposition
costs 2 here.  The ablation benchmark quantifies what that trade buys.
"""

from __future__ import annotations

import numpy as np

from repro.distance.levenshtein import levenshtein

__all__ = ["myers_distance", "myers_bounded", "myers_batch", "MAX_PATTERN"]

#: maximum pattern length for the single-word implementation
MAX_PATTERN = 64


def _peq_table(pattern: str) -> dict[str, int]:
    """Character -> bitmask of its positions in the pattern."""
    peq: dict[str, int] = {}
    for i, ch in enumerate(pattern):
        peq[ch] = peq.get(ch, 0) | (1 << i)
    return peq


def myers_distance(s: str, t: str) -> int:
    """Levenshtein distance via Myers' bit-parallel algorithm.

    ``s`` is the pattern (must fit one 64-bit word; longer patterns fall
    back to the rolling-row DP, which keeps the function total).

    >>> myers_distance("Saturday", "Sunday")
    3
    """
    m = len(s)
    if m == 0:
        return len(t)
    if not t:
        return m
    if m > MAX_PATTERN:
        return levenshtein(s, t)
    peq = _peq_table(s)
    mask = (1 << m) - 1
    high = 1 << (m - 1)
    pv = mask  # all +1: column 0 is 0,1,2,...,m
    mv = 0
    score = m
    for ch in t:
        eq = peq.get(ch, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & high:
            score += 1
        elif mh & high:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        pv = mh | (~(xv | ph) & mask)
        mv = ph & xv
    return score


def myers_bounded(s: str, t: str, k: int) -> int | None:
    """Thresholded Myers: the distance if ``<= k``, else ``None``.

    Applies the length prune up front; the column scan itself is so
    cheap that mid-scan early exit is not worth the branch.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if abs(len(s) - len(t)) > k:
        return None
    d = myers_distance(s, t)
    return d if d <= k else None


def myers_batch(
    pattern: str, codes: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Levenshtein distance from ``pattern`` to every encoded target.

    ``codes``/``lengths`` come from
    :func:`repro.distance.codec.encode_raw`.  All targets advance in
    lock-step: iteration ``j`` processes character ``j`` of every
    target simultaneously with ``uint64`` bit-vector arrays; each
    target's score is frozen when ``j`` reaches its length.

    Returns an ``int64`` array of distances.
    """
    m = len(pattern)
    n = codes.shape[0]
    lengths = np.asarray(lengths, dtype=np.int64)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if m == 0:
        return lengths.copy()
    if m > MAX_PATTERN:
        raise ValueError(
            f"pattern length {m} exceeds the {MAX_PATTERN}-char word limit"
        )
    mask = np.uint64((1 << m) - 1)
    high = np.uint64(1 << (m - 1))
    one = np.uint64(1)
    # PEQ over byte codes: row c is the position mask of byte c in the
    # pattern.  Pattern bytes are latin-1, matching encode_raw.
    peq = np.zeros(256, dtype=np.uint64)
    for i, ch in enumerate(pattern.encode("latin-1")):
        peq[ch] |= np.uint64(1 << i)
    pv = np.full(n, mask, dtype=np.uint64)
    mv = np.zeros(n, dtype=np.uint64)
    score = np.full(n, m, dtype=np.int64)
    result = np.where(lengths == 0, np.int64(m), np.int64(-1))
    width = codes.shape[1]
    max_len = int(lengths.max())
    for j in range(min(width, max_len)):
        eq = peq[codes[:, j]]
        active = j < lengths
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        inc = (ph & high) != 0
        dec = (mh & high) != 0
        score[active & inc] += 1
        score[active & dec & ~inc] -= 1
        ph = ((ph << one) | one) & mask
        mh = (mh << one) & mask
        new_pv = mh | (~(xv | ph) & mask)
        new_mv = ph & xv
        pv = np.where(active, new_pv, pv)
        mv = np.where(active, new_mv, mv)
        done = lengths == j + 1
        if done.any():
            result[done] = score[done]
    return result
