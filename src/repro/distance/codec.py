"""String-to-integer code encodings shared by the vectorized engines.

The NumPy batch engines in :mod:`repro.core.vectorized` and
:mod:`repro.parallel` operate on fixed-width ``uint8`` code matrices rather
than Python strings.  A :class:`Codec` maps characters to small integer
codes; position 0 is reserved as the padding code so that padded cells never
equal a real character.

Three stock codecs cover the paper's data families:

* :data:`ALPHA_CODEC` — case-folded A-Z (names).
* :data:`DIGIT_CODEC` — 0-9 (SSNs, phone numbers, birthdates).
* :data:`ASCII_CODEC` — printable ASCII (addresses and anything else).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "Codec",
    "ALPHA_CODEC",
    "DIGIT_CODEC",
    "ASCII_CODEC",
    "encode_batch",
    "encode_raw",
]

#: Code value used for cells beyond a string's length in a padded matrix.
PAD = 0


@dataclass(frozen=True)
class Codec:
    """A character→code mapping with optional case folding.

    Characters outside the alphabet are mapped to a dedicated "other"
    code (distinct from padding) so that, e.g., the hyphens in a phone
    number still participate in positional comparisons, matching how the
    scalar metrics see raw strings.
    """

    name: str
    alphabet: str
    casefold: bool = True
    #: lazily built 256-entry lookup, char ordinal -> code
    _table: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        table = np.full(256, len(self.alphabet) + 1, dtype=np.uint8)  # "other"
        for i, ch in enumerate(self.alphabet):
            table[ord(ch)] = i + 1  # 0 is PAD
            if self.casefold and ch.isalpha():
                table[ord(ch.swapcase())] = i + 1
        object.__setattr__(self, "_table", table)

    @property
    def size(self) -> int:
        """Number of distinct codes including PAD and "other"."""
        return len(self.alphabet) + 2

    def encode(self, s: str) -> np.ndarray:
        """Encode one string to a 1-D uint8 code array (no padding)."""
        raw = np.frombuffer(s.encode("latin-1", errors="replace"), dtype=np.uint8)
        return self._table[raw]

    def encode_padded(
        self, strings: Sequence[str], width: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode a batch into a padded ``(n, width)`` matrix plus lengths.

        Returns ``(codes, lengths)`` where ``codes[i, j]`` is the code of
        ``strings[i][j]`` (or :data:`PAD` past the end) and
        ``lengths[i] == len(strings[i])``.
        """
        n = len(strings)
        lengths = np.fromiter((len(s) for s in strings), dtype=np.int64, count=n)
        w = int(lengths.max()) if (width is None and n) else int(width or 0)
        codes = np.full((n, w), PAD, dtype=np.uint8)
        for i, s in enumerate(strings):
            if s:
                codes[i, : len(s)] = self.encode(s)[:w]
        return codes, lengths


ALPHA_CODEC = Codec("alpha", "ABCDEFGHIJKLMNOPQRSTUVWXYZ")
DIGIT_CODEC = Codec("digit", "0123456789", casefold=False)
ASCII_CODEC = Codec(
    "ascii",
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,'#&/-",
)


def encode_batch(
    strings: Sequence[str], codec: Codec = ASCII_CODEC
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: ``codec.encode_padded(strings)``."""
    return codec.encode_padded(strings)


def encode_raw(
    strings: Sequence[str], width: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Lossless latin-1 encoding into a padded ``(n, width)`` uint8 matrix.

    Every distinct character keeps a distinct code (its latin-1 byte), so
    the vectorized DP engines agree with the scalar metrics character for
    character.  NUL (the padding byte) must not occur in the data; a
    string containing it raises :class:`ValueError`.  Characters outside
    latin-1 likewise raise rather than silently aliasing.
    """
    n = len(strings)
    lengths = np.fromiter((len(s) for s in strings), dtype=np.int64, count=n)
    w = int(lengths.max()) if (width is None and n) else int(width or 0)
    codes = np.zeros((n, w), dtype=np.uint8)
    for i, s in enumerate(strings):
        if not s:
            continue
        try:
            raw = s.encode("latin-1")
        except UnicodeEncodeError as exc:
            raise ValueError(
                f"string {i} contains non-latin-1 characters: {s!r}"
            ) from exc
        if b"\x00" in raw:
            raise ValueError(f"string {i} contains NUL, the padding byte: {s!r}")
        codes[i, : len(raw)] = np.frombuffer(raw, dtype=np.uint8)[:w]
    return codes, lengths
