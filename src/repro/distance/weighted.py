"""Weighted edit distance (extension).

Production record linkage often refines plain edit distance with
*costs*: substituting a QWERTY-neighbour or an OCR look-alike is weaker
evidence of a different identity than substituting an arbitrary
character.  This module provides an OSA-shaped dynamic program with a
pluggable substitution-cost function, plus stock cost models built from
the :mod:`repro.data.typo_models` confusion tables.

Relationship to FBF: the filter bound ``diff_bits <= 2k`` is proved
against *unit* costs.  With substitution costs in ``[min_cost, 1]``, a
pair within weighted threshold ``T`` can span up to ``ceil(T /
min_cost)`` unit edits, so a safe FBF prefilter must use ``k = ceil(T /
min_cost)``.  The stock cost functions carry their ``min_cost`` as an
attribute so :class:`repro.linkage.comparators.WeightedComparator` can
derive that bound automatically.  (Property-tested.)
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.data.typo_models import KEYPAD_NEIGHBOURS, OCR_CONFUSIONS, QWERTY_NEIGHBOURS

__all__ = [
    "CostFn",
    "weighted_osa",
    "confusion_cost",
    "keyboard_cost",
    "keypad_cost",
    "ocr_cost",
]

CostFn = Callable[[str, str], float]


def weighted_osa(
    s: str,
    t: str,
    *,
    substitution_cost: CostFn | None = None,
    indel_cost: float = 1.0,
    transposition_cost: float = 1.0,
) -> float:
    """OSA dynamic program with configurable operation costs.

    ``substitution_cost(a, b)`` returns the cost of replacing ``a`` with
    ``b`` (defaults to 1.0 for any unequal pair).  Insertions/deletions
    and adjacent transpositions have flat costs.  With all defaults this
    is exactly :func:`repro.distance.damerau.damerau_levenshtein`.

    >>> weighted_osa("CAT", "CAT")
    0.0
    >>> weighted_osa("CAT", "CUT")
    1.0
    """
    if indel_cost <= 0 or transposition_cost <= 0:
        raise ValueError("operation costs must be positive")
    m, n = len(s), len(t)
    if m == 0:
        return n * indel_cost
    if n == 0:
        return m * indel_cost
    sub = substitution_cost or (lambda a, b: 1.0)
    prev2 = [0.0] * (n + 1)
    prev = [j * indel_cost for j in range(n + 1)]
    cur = [0.0] * (n + 1)
    for i in range(1, m + 1):
        cur[0] = i * indel_cost
        si = s[i - 1]
        for j in range(1, n + 1):
            tj = t[j - 1]
            if si == tj:
                d = prev[j - 1]
            else:
                cost = sub(si, tj)
                if cost < 0:
                    raise ValueError(f"negative substitution cost for {si!r}->{tj!r}")
                d = min(
                    prev[j] + indel_cost,
                    cur[j - 1] + indel_cost,
                    prev[j - 1] + cost,
                )
                if i > 1 and j > 1 and si == t[j - 2] and s[i - 2] == tj:
                    d = min(d, prev2[j - 2] + transposition_cost)
            cur[j] = d
        prev2, prev, cur = prev, cur, prev2
    return prev[n]


def confusion_cost(
    confusions: Mapping[str, str], confusable_cost: float = 0.5
) -> CostFn:
    """Cost function from a confusion table.

    Substitutions listed in ``confusions`` (case-folded) cost
    ``confusable_cost``; all others cost 1.0.  ``confusable_cost`` must
    lie in (0, 1] so the weighted metric never exceeds unit OSA.  The
    returned function carries ``min_cost`` (the smallest cost it can
    emit) for safe-filter sizing.
    """
    if not 0.0 < confusable_cost <= 1.0:
        raise ValueError(
            f"confusable_cost must be in (0, 1], got {confusable_cost}"
        )
    folded = {c.upper(): set(v.upper()) for c, v in confusions.items()}

    def cost(a: str, b: str) -> float:
        if b.upper() in folded.get(a.upper(), ()):
            return confusable_cost
        return 1.0

    cost.min_cost = confusable_cost
    return cost


def keyboard_cost(confusable_cost: float = 0.5) -> CostFn:
    """Typist model: QWERTY-adjacent substitutions are cheap."""
    return confusion_cost(QWERTY_NEIGHBOURS, confusable_cost)


def keypad_cost(confusable_cost: float = 0.5) -> CostFn:
    """Numeric-entry model: keypad-adjacent digit substitutions are cheap."""
    return confusion_cost(KEYPAD_NEIGHBOURS, confusable_cost)


def ocr_cost(confusable_cost: float = 0.5) -> CostFn:
    """Scanning model: look-alike glyph substitutions are cheap."""
    return confusion_cost(OCR_CONFUSIONS, confusable_cost)
