"""Damerau-Levenshtein edit distance (Algorithm 1 of the paper).

The paper's "DL" is the *restricted* Damerau-Levenshtein distance, also
known as Optimal String Alignment (OSA): substitutions, insertions,
deletions and transpositions of **adjacent** characters each count as one
edit, but no substring may be edited more than once.  Algorithm 1 in the
paper is the standard OSA dynamic program and is reproduced faithfully by
:func:`damerau_levenshtein`.

The *unrestricted* Damerau-Levenshtein distance (a true metric, allowing
edits to interact with earlier transpositions) is provided as
:func:`true_damerau_levenshtein` for comparison; the two differ on inputs
like ``("CA", "ABC")`` where OSA gives 3 but true DL gives 2.
"""

from __future__ import annotations

__all__ = ["damerau_levenshtein", "true_damerau_levenshtein"]


def damerau_levenshtein(s: str, t: str) -> int:
    """Restricted Damerau-Levenshtein (OSA) distance — paper Algorithm 1.

    Uses three rolling rows (current, previous, and the one before, which
    the transposition clause needs): O(len(s) * len(t)) time,
    O(len(t)) space.

    >>> damerau_levenshtein("Saturday", "Sunday")
    3
    >>> damerau_levenshtein("SMITH", "SMIHT")  # one transposition
    1
    """
    m, n = len(s), len(t)
    # Step 1 of Algorithm 1: empty-string shortcuts.
    if m == 0:
        return n
    if n == 0:
        return m
    if s == t:
        return 0
    prev2 = [0] * (n + 1)
    prev = list(range(n + 1))
    cur = [0] * (n + 1)
    for i in range(1, m + 1):
        cur[0] = i
        si = s[i - 1]
        for j in range(1, n + 1):
            if si == t[j - 1]:
                d = prev[j - 1]
            else:
                d = min(prev[j], cur[j - 1], prev[j - 1]) + 1
                if i > 1 and j > 1 and si == t[j - 2] and s[i - 2] == t[j - 1]:
                    trans = prev2[j - 2] + 1
                    if trans < d:
                        d = trans
            cur[j] = d
        prev2, prev, cur = prev, cur, prev2
    return prev[n]


def true_damerau_levenshtein(s: str, t: str) -> int:
    """Unrestricted Damerau-Levenshtein distance (extension).

    The full Damerau metric via Lowrance-Wagner: maintains, for every
    alphabet character, the last row where it occurred in ``s``, so a
    transposition may span previously edited material.  O(len(s) *
    len(t)) time, O(len(s) * len(t)) space.

    >>> true_damerau_levenshtein("CA", "ABC")
    2
    >>> damerau_levenshtein("CA", "ABC")
    3
    """
    m, n = len(s), len(t)
    if m == 0:
        return n
    if n == 0:
        return m
    if s == t:
        return 0
    maxdist = m + n
    # d has a sentinel row/column of `maxdist` at index 0; string cells
    # start at index 2 so transposition lookups never underflow.
    d = [[0] * (n + 2) for _ in range(m + 2)]
    d[0][0] = maxdist
    for i in range(m + 1):
        d[i + 1][0] = maxdist
        d[i + 1][1] = i
    for j in range(n + 1):
        d[0][j + 1] = maxdist
        d[1][j + 1] = j
    last_row: dict[str, int] = {}
    for i in range(1, m + 1):
        last_col = 0  # last column in t where s[i-1] matched, this row
        for j in range(1, n + 1):
            i1 = last_row.get(t[j - 1], 0)  # last row where t[j-1] occurred in s
            j1 = last_col
            if s[i - 1] == t[j - 1]:
                cost = 0
                last_col = j
            else:
                cost = 1
            d[i + 1][j + 1] = min(
                d[i][j] + cost,  # substitution / match
                d[i + 1][j] + 1,  # insertion
                d[i][j + 1] + 1,  # deletion
                d[i1][j1] + (i - i1 - 1) + 1 + (j - j1 - 1),  # transposition
            )
        last_row[s[i - 1]] = i
    return d[m + 1][n + 1]
