"""Token- and set-based similarity (the paper's excluded family).

Section 2 of the paper: "In [14], the authors determined that
token-based methods do not perform well for this type of data.  Hence,
we do not include token-based methods in our background or
experiments."  To make that exclusion *checkable* rather than taken on
faith, this module implements the family's standard members —

* Jaccard / Dice / overlap coefficients over word tokens,
* the same coefficients over character q-gram sets (the "soft token"
  variant used by SSJoin-style systems),
* cosine similarity over q-gram count vectors —

and the accuracy ablation (``benchmarks/test_ablation_token_methods.py``)
measures them against edit distance on the paper's demographic data,
reproducing the finding: on 6-9 character fields, token sets are too
coarse to separate single-edit twins from unrelated strings at any
threshold.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable

__all__ = [
    "word_tokens",
    "qgram_set",
    "jaccard",
    "dice",
    "overlap_coefficient",
    "cosine_qgrams",
    "token_matcher",
]


def word_tokens(s: str) -> frozenset[str]:
    """Case-folded whitespace tokens."""
    return frozenset(s.casefold().split())


def qgram_set(s: str, q: int = 2) -> frozenset[str]:
    """The *set* (not multiset) of padded character q-grams."""
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    pad = "\x00" * (q - 1)
    padded = f"{pad}{s.casefold()}{pad}"
    return frozenset(
        padded[i : i + q] for i in range(max(0, len(padded) - q + 1))
    )


def _set_similarity(
    a: frozenset, b: frozenset, combine: Callable[[int, int, int], float]
) -> float:
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    inter = len(a & b)
    return combine(inter, len(a), len(b))


def jaccard(s: str, t: str, *, q: int | None = 2) -> float:
    """Jaccard similarity: |A∩B| / |A∪B|.

    ``q`` selects character q-gram sets; ``q=None`` uses word tokens
    (the classic record-linkage "token" method).

    >>> jaccard("ABC", "ABC")
    1.0
    """
    to_set = word_tokens if q is None else (lambda x: qgram_set(x, q))
    return _set_similarity(
        to_set(s), to_set(t), lambda i, la, lb: i / (la + lb - i)
    )


def dice(s: str, t: str, *, q: int | None = 2) -> float:
    """Dice coefficient: 2|A∩B| / (|A| + |B|)."""
    to_set = word_tokens if q is None else (lambda x: qgram_set(x, q))
    return _set_similarity(to_set(s), to_set(t), lambda i, la, lb: 2 * i / (la + lb))


def overlap_coefficient(s: str, t: str, *, q: int | None = 2) -> float:
    """Overlap coefficient: |A∩B| / min(|A|, |B|)."""
    to_set = word_tokens if q is None else (lambda x: qgram_set(x, q))
    return _set_similarity(to_set(s), to_set(t), lambda i, la, lb: i / min(la, lb))


def cosine_qgrams(s: str, t: str, q: int = 2) -> float:
    """Cosine similarity over q-gram *count* vectors."""
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    ca = Counter(qgram_multiset(s, q))
    cb = Counter(qgram_multiset(t, q))
    if not ca and not cb:
        return 1.0
    if not ca or not cb:
        return 0.0
    dot = sum(ca[g] * cb[g] for g in ca.keys() & cb.keys())
    na = math.sqrt(sum(v * v for v in ca.values()))
    nb = math.sqrt(sum(v * v for v in cb.values()))
    return dot / (na * nb)


def qgram_multiset(s: str, q: int = 2) -> list[str]:
    """Padded q-grams as a list (multiset semantics for cosine)."""
    pad = "\x00" * (q - 1)
    padded = f"{pad}{s.casefold()}{pad}"
    return [padded[i : i + q] for i in range(max(0, len(padded) - q + 1))]


def token_matcher(
    theta: float, similarity: Callable[[str, str], float] = jaccard
) -> Callable[[str, str], bool]:
    """Bind a similarity floor over any token similarity."""
    if not 0.0 <= theta <= 1.0:
        raise ValueError(f"theta must be in [0, 1], got {theta}")

    def matcher(s: str, t: str) -> bool:
        return similarity(s, t) >= theta

    matcher.__name__ = f"token_{getattr(similarity, '__name__', 'sim')}_{theta:g}"
    return matcher
