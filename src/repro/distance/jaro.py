"""Jaro and Jaro-Winkler string similarity (paper Sections 2.3-2.4).

Both return a similarity in [0, 1].  Jaro counts characters of ``s`` and
``t`` that match within a sliding window of half the longer length, then
discounts transpositions among the matched characters.  Winkler's variant
boosts the score for pairs sharing a common prefix, reflecting that data
entry errors cluster toward the ends of names.

The paper uses these as accuracy baselines: they are faster than plain DL
but produce orders of magnitude more false positives at the thresholds
that recover all true matches (Tables 1-4).
"""

from __future__ import annotations

from typing import Callable

from repro.distance.base import validate_similarity_threshold

__all__ = ["jaro", "jaro_winkler", "jaro_matcher", "jaro_winkler_matcher"]

#: Winkler's standard prefix scaling factor.
DEFAULT_PREFIX_SCALE = 0.1
#: Winkler caps the rewarded common prefix at 4 characters.
MAX_PREFIX = 4


def jaro(s: str, t: str, variant: str = "paper") -> float:
    """Jaro similarity in [0, 1].

    Matching characters must lie within ``floor(max(|s|,|t|) / 2) - 1``
    positions of each other; transposed matches are discounted.

    Two variants of the transposition penalty are provided:

    * ``variant="paper"`` (default) — the formula as worked in the
      paper's Section 2.3 example: ``r`` *transpositions* cost ``r/2``,
      so SMITH/SMIHT scores ``(1 + 1 + (5 - 0.5)/5) / 3 = 0.967``.
    * ``variant="standard"`` — Jaro's original definition, where ``r``
      transpositions cost ``r`` (equivalently, the count of
      out-of-order matched characters costs half): SMITH/SMIHT scores
      0.933, and MARTHA/MARHTA the textbook 0.944.

    The paper variant penalizes transpositions half as much, which
    inflates scores slightly — consistent with the very large Jaro/Wink
    false-positive counts its Tables 1-4 report at threshold 0.8.

    >>> round(jaro("SMITH", "SMIHT"), 3)
    0.967
    >>> round(jaro("SMITH", "SMIHT", variant="standard"), 3)
    0.933
    >>> jaro("SMITH", "JONES")
    0.0
    """
    if variant not in ("paper", "standard"):
        raise ValueError(f"variant must be 'paper' or 'standard', got {variant!r}")
    if s == t:
        return 1.0
    ls, lt = len(s), len(t)
    if ls == 0 or lt == 0:
        return 0.0
    window = max(ls, lt) // 2 - 1
    if window < 0:
        window = 0
    s_matched = [False] * ls
    t_matched = [False] * lt
    m = 0
    for i, cs in enumerate(s):
        lo = max(0, i - window)
        hi = min(lt, i + window + 1)
        for j in range(lo, hi):
            if not t_matched[j] and t[j] == cs:
                s_matched[i] = True
                t_matched[j] = True
                m += 1
                break
    if m == 0:
        return 0.0
    # Count transpositions: matched characters taken in order from each
    # string; each out-of-order pair is half a transposition.
    half_transpositions = 0
    j = 0
    for i in range(ls):
        if s_matched[i]:
            while not t_matched[j]:
                j += 1
            if s[i] != t[j]:
                half_transpositions += 1
            j += 1
    # `half_transpositions` counts out-of-order matched characters; the
    # number of transpositions r is half that.
    if variant == "standard":
        penalty = half_transpositions / 2.0  # r
    else:
        penalty = half_transpositions / 4.0  # r / 2, per the paper's example
    return (m / ls + m / lt + (m - penalty) / m) / 3.0


def jaro_winkler(
    s: str,
    t: str,
    prefix_scale: float = DEFAULT_PREFIX_SCALE,
    variant: str = "paper",
) -> float:
    """Jaro-Winkler similarity: Jaro plus a common-prefix bonus.

    ``wink(s, t) = jaro + l * p * (1 - jaro)`` where ``l`` is the length
    of the shared prefix (capped at 4) and ``p`` the scaling factor.

    >>> round(jaro_winkler("SMITH", "SMIHT"), 3)
    0.977
    """
    if not 0.0 <= prefix_scale <= 0.25:
        # p * MAX_PREFIX must stay <= 1 or scores can exceed 1.
        raise ValueError(f"prefix_scale must be in [0, 0.25], got {prefix_scale}")
    base = jaro(s, t, variant)
    prefix = 0
    for cs, ct in zip(s, t):
        if cs != ct or prefix >= MAX_PREFIX:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def jaro_matcher(theta: float, variant: str = "paper") -> Callable[[str, str], bool]:
    """Bind a similarity floor: ``matcher(s, t) <=> jaro(s, t) >= theta``."""
    validate_similarity_threshold(theta)

    def matcher(s: str, t: str) -> bool:
        return jaro(s, t, variant) >= theta

    matcher.__name__ = f"jaro_{theta:g}"
    return matcher


def jaro_winkler_matcher(
    theta: float,
    prefix_scale: float = DEFAULT_PREFIX_SCALE,
    variant: str = "paper",
) -> Callable[[str, str], bool]:
    """Bind a similarity floor for Jaro-Winkler."""
    validate_similarity_threshold(theta)

    def matcher(s: str, t: str) -> bool:
        return jaro_winkler(s, t, prefix_scale, variant) >= theta

    matcher.__name__ = f"wink_{theta:g}"
    return matcher
