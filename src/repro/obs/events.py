"""Structured JSON-lines event log for discrete lifecycle events.

Counters and histograms (:mod:`repro.obs.metrics`) summarise continuous
traffic; this module records the *discrete* things a long-running
service does — a compaction ran, a pool worker died and was respawned,
a snapshot was saved or loaded, the result cache's generation moved on.
Each event is one flat JSON object::

    {"ts": 1719847301.22, "kind": "compaction", "reclaimed": 412, ...}

``ts`` is wall-clock (``time.time()``), ``kind`` is a stable
dot-free identifier, and every other field is producer-defined but must
be JSON-serialisable.  The serving stack's lifecycle kinds:
``compaction``, ``engine_rebuild``, ``roster_publish``,
``snapshot_save`` / ``snapshot_load``, ``worker_respawn``, and — from
the sharded stack — ``shard_handoff`` (a shard republished its roster
segments for a new generation) and ``shard_rebalance`` (the
shard-to-worker placement changed).  Events go two places:

* a bounded in-memory ring (default 1024) that the JSON-lines
  ``metrics`` op and the HTTP listener's ``/events.json`` expose, so a
  poller can see recent history without log shipping; and
* an optional *sink* — any ``write()``-able — receiving one JSON line
  per event as it happens (a file, stderr, a socket), which is the
  durable form.

:data:`NULL_EVENTS` is the falsy no-op twin for telemetry-off runs.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import IO

__all__ = ["EventLog", "NullEventLog", "NULL_EVENTS"]


class EventLog:
    """Bounded in-memory ring of lifecycle events + optional line sink."""

    def __init__(
        self,
        capacity: int = 1024,
        *,
        sink: IO[str] | None = None,
        clock=time.time,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._ring: deque[dict[str, object]] = deque(maxlen=capacity)
        self._sink = sink
        self._clock = clock
        #: events ever emitted (the ring only keeps the most recent)
        self.total = 0

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def emit(self, kind: str, **fields: object) -> dict[str, object]:
        """Record one event; returns the stored dict."""
        event: dict[str, object] = {"ts": self._clock(), "kind": kind}
        event.update(fields)
        self._ring.append(event)
        self.total += 1
        if self._sink is not None:
            try:
                self._sink.write(json.dumps(event, default=str) + "\n")
                self._sink.flush()
            except (OSError, ValueError):
                # A torn-down sink must never take the service with it;
                # the in-memory ring still has the event.
                self._sink = None
        return event

    def tail(
        self, n: int | None = None, *, kind: str | None = None
    ) -> list[dict[str, object]]:
        """The most recent ``n`` events, oldest first (all by default).

        ``kind`` filters to one event kind *before* the ``n`` bound, so
        ``tail(5, kind="shard_handoff")`` is the last five handoffs
        even if other kinds dominate the ring.
        """
        events = list(self._ring)
        if kind is not None:
            events = [e for e in events if e.get("kind") == kind]
        if n is not None and n >= 0:
            events = events[len(events) - min(n, len(events)):]
        return [dict(e) for e in events]

    def clear(self) -> None:
        self._ring.clear()


class NullEventLog:
    """Falsy, API-compatible no-op event log."""

    total = 0
    capacity = 0

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def emit(self, kind: str, **fields: object) -> dict[str, object]:
        return {}

    def tail(
        self, n: int | None = None, *, kind: str | None = None
    ) -> list[dict[str, object]]:
        return []

    def clear(self) -> None:
        pass


#: shared no-op instance
NULL_EVENTS = NullEventLog()
