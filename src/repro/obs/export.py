"""Funnel exporters: the filtration-ratio table and its JSON twin.

:func:`render_funnel` turns a :class:`~repro.obs.stats.StatsCollector`
into the plain-text table the paper's evaluation reasons over — one row
per funnel stage with the pairs in, rejected, surviving and the reject
percentage, so a run's output is directly comparable to the
filter-effectiveness columns of Tables 1-4 (and to the candidate-count
tables PASS-JOIN / EmbedJoin report).  :func:`stats_dict` /
:func:`write_stats_json` export the same tree machine-readably for
dashboards and regression tracking.

Formatting is local and dependency-free on purpose: the richer table
helpers in :mod:`repro.eval.tables` sit *above* the engines that import
this package, and observability must stay importable from the innermost
layers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.obs.stats import StatsCollector

__all__ = ["render_funnel", "stats_dict", "write_stats_json"]


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace alignment: first column left, the rest right."""
    cells = [list(headers)] + [list(r) for r in rows]
    widths = [max(len(r[col]) for r in cells) for col in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        padded = [
            row[0].ljust(widths[0]),
            *(c.rjust(w) for c, w in zip(row[1:], widths[1:])),
        ]
        lines.append("  ".join(padded).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.2f}%" if whole else "-"


def _funnel_lines(c: StatsCollector, *, include_spans: bool) -> list[str]:
    label = c.meta.get("method", c.name)
    header_bits = [f"funnel: {label}"]
    if "k" in c.meta:
        header_bits.append(f"k={c.meta['k']}")
    if "n_left" in c.meta and "n_right" in c.meta:
        header_bits.append(f"{c.meta['n_left']:,} x {c.meta['n_right']:,}")
    lines = [" | ".join(str(b) for b in header_bits)]

    rows: list[list[str]] = []
    flowing = c.pairs_considered
    rows.append(["considered", f"{flowing:,}", "", "", ""])
    for stage in c.stages.values():
        rows.append(
            [
                stage.name,
                f"{stage.tested:,}",
                f"{stage.rejected:,}",
                f"{stage.passed:,}",
                _pct(stage.rejected, stage.tested),
            ]
        )
        flowing = stage.passed
    if c.verified:
        rows.append(
            [
                "verify",
                f"{c.verified:,}",
                f"{c.verified - c.matched:,}",
                f"{c.matched:,}",
                _pct(c.verified - c.matched, c.verified),
            ]
        )
    rows.append(["matched", f"{c.matched:,}", "", "", ""])
    lines.append(
        _format_table(["stage", "pairs in", "rejected", "passed", "reject %"], rows)
    )

    summary = [
        f"filtration: {_pct(c.total_rejected, c.pairs_considered)} of pairs "
        f"never reached the verifier" if c.pairs_considered else "filtration: -",
        f"conserved: {'yes' if c.conserved else 'NO (counter leak!)'}",
    ]
    vc = c.verifier_counters
    if any(vc.values()):
        tallies = ", ".join(f"{k} {v:,}" for k, v in vc.items() if v)
        summary.append(f"verifier shortcuts: {tallies}")
    if c.counters:
        tallies = ", ".join(f"{k} {v:,}" for k, v in c.counters.items())
        summary.append(f"counters: {tallies}")
    lines.extend(summary)

    if include_spans and c.tracer.spans:
        span_rows = [
            [
                s.path,
                f"{s.calls:,}",
                f"{s.total_ms:,.2f}",
                f"{s.mean_ms:,.3f}",
                f"{s.p50_ms:,.3f}",
                f"{s.p95_ms:,.3f}",
                f"{s.p99_ms:,.3f}",
            ]
            for s in c.tracer.spans.values()
        ]
        lines.append("")
        lines.append(
            _format_table(
                [
                    "span",
                    "calls",
                    "total ms",
                    "mean ms",
                    "p50 ms",
                    "p95 ms",
                    "p99 ms",
                ],
                span_rows,
            )
        )
    return lines


def render_funnel(collector: StatsCollector, *, include_spans: bool = True) -> str:
    """The human-readable funnel report (children rendered indented)."""
    lines = _funnel_lines(collector, include_spans=include_spans)
    for child in collector.children.values():
        lines.append("")
        lines.extend(
            "  " + line if line else ""
            for line in _funnel_lines(child, include_spans=include_spans)
        )
    return "\n".join(lines)


def stats_dict(collector: StatsCollector) -> dict[str, object]:
    """JSON-ready snapshot (alias of :meth:`StatsCollector.as_dict`)."""
    return collector.as_dict()


def write_stats_json(path: str | Path, collector: StatsCollector) -> None:
    """Write the collector tree as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(stats_dict(collector), indent=2, default=str) + "\n"
    )
