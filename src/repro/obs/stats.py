"""Funnel counters for the filter-and-verify pipeline.

The paper's whole argument is a funnel: of the ``|S| x |T|`` candidate
pairs, the length filter rejects some, the FBF rejects most of the rest,
and only the survivors pay the O(mn) dynamic program (Tables 1-5 are
built from exactly these per-stage counts).  :class:`StatsCollector`
makes that funnel observable at runtime:

``pairs_considered``
    every pair the join looked at (the funnel's mouth);
``stages``
    one :class:`StageStat` per filter position, in evaluation order —
    each stage's ``tested`` equals the previous stage's ``passed``;
``survivors``
    pairs that passed every filter;
``verified``
    survivors handed to the verifier (equals ``survivors`` for
    verifier-backed stacks, 0 for filter-only stacks like FBF/LF);
``matched``
    pairs declared matches;
``verifier_counters``
    the verifier's internal shortcuts — ``length_pruned`` (PDL step 1
    rejections before any DP work), ``early_exit`` (band rows that
    exceeded ``k``, the paper's ``x <= 0`` termination), and
    ``memo_hits`` / ``memo_misses`` (verification-memo lookups when the
    plan layer's :class:`repro.core.multiplicity.VerificationMemo` is
    active).

Multiplicity-collapsed plans (:mod:`repro.core.multiplicity`) push
*weighted* counts — each unique-space pair counts for the
``count(i) * count(j)`` original pairs it stands for — so every counter
here stays in original-pair units and the conservation invariant holds
against the uncollapsed ``n_left * n_right`` baseline.

The conservation invariant every correctly-wired join satisfies::

    pairs_considered == sum(stage.rejected) + survivors

is exposed as :attr:`StatsCollector.conserved` and asserted by the
funnel-invariant test suite.

Collectors are *passive*: producers push counts in, so the default
(no collector) costs one attribute load and truthiness test per pair on
scalar paths and nothing at all on vectorized paths.
:data:`NULL_COLLECTOR` is an API-compatible, *falsy* no-op — hot loops
branch it away with ``if collector:`` while chunk-level callers may
invoke it unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import NULL_SPAN, Tracer

__all__ = ["StageStat", "StatsCollector", "NullStatsCollector", "NULL_COLLECTOR"]


@dataclass
class StageStat:
    """Pass/reject accounting for one funnel stage."""

    name: str
    tested: int = 0
    passed: int = 0

    @property
    def rejected(self) -> int:
        return self.tested - self.passed

    @property
    def pass_rate(self) -> float:
        return self.passed / self.tested if self.tested else 0.0

    @property
    def filtration_ratio(self) -> float:
        """Share of tested pairs discarded (the paper's effectiveness %)."""
        return 1.0 - self.pass_rate if self.tested else 0.0


class StatsCollector:
    """Accumulates one join's funnel counters, span timings and children.

    One collector per logical operation; composite pipelines (the
    linkage engine, multi-method experiments) hang one child per
    component off :meth:`child`.  All counters are plain ``int``
    attributes so scalar hot loops may increment them directly
    (``c.pairs_considered += 1``) instead of through method calls.
    """

    enabled = True

    def __init__(self, name: str = "join", tracer: Tracer | None = None):
        self.name = name
        self.tracer = tracer if tracer is not None else Tracer()
        self.pairs_considered = 0
        self.survivors = 0
        self.verified = 0
        self.matched = 0
        #: stage name -> StageStat, in first-recorded (= evaluation) order
        self.stages: dict[str, StageStat] = {}
        #: verifier-internal tallies: work the verifier itself avoided
        self.verifier_counters: dict[str, int] = {
            "length_pruned": 0,
            "early_exit": 0,
            "memo_hits": 0,
            "memo_misses": 0,
        }
        #: free-form named tallies for producers outside the funnel
        #: proper — the serve layer's cache hits/misses, compactions,
        #: queries served, ... — rendered by the exporters alongside the
        #: verifier shortcuts
        self.counters: dict[str, int] = {}
        self.children: dict[str, "StatsCollector"] = {}
        #: free-form context (method name, k, dataset sizes, ...)
        self.meta: dict[str, object] = {}

    def __bool__(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"StatsCollector({self.name!r}, considered={self.pairs_considered}, "
            f"matched={self.matched})"
        )

    # -- recording ---------------------------------------------------------

    def stage(self, name: str) -> StageStat:
        """The named stage's accumulator, created on first use."""
        stat = self.stages.get(name)
        if stat is None:
            stat = self.stages[name] = StageStat(name)
        return stat

    def add_pairs(self, n: int = 1) -> None:
        self.pairs_considered += n

    def add_stage(self, name: str, tested: int, passed: int) -> None:
        """Bulk stage record (the vectorized engines' per-sweep totals)."""
        stat = self.stage(name)
        stat.tested += tested
        stat.passed += passed

    def add_survivors(self, n: int = 1) -> None:
        self.survivors += n

    def add_verified(self, n: int = 1) -> None:
        self.verified += n

    def add_matched(self, n: int = 1) -> None:
        self.matched += n

    def add_counter(self, name: str, n: int = 1) -> None:
        """Bump a free-form named counter (created on first use)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def span(self, name: str):
        """Time a pipeline stage: ``with collector.span("fbf.filter"):``."""
        return self.tracer.span(name)

    def child(self, name: str) -> "StatsCollector":
        """A named sub-collector (per field, per method, per worker)."""
        c = self.children.get(name)
        if c is None:
            c = self.children[name] = StatsCollector(name)
        return c

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector (e.g. a per-chunk or per-worker one) in."""
        self.pairs_considered += other.pairs_considered
        self.survivors += other.survivors
        self.verified += other.verified
        self.matched += other.matched
        for name, stat in other.stages.items():
            self.add_stage(name, stat.tested, stat.passed)
        for key, n in other.verifier_counters.items():
            self.verifier_counters[key] = self.verifier_counters.get(key, 0) + n
        for key, n in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + n
        self.tracer.merge(other.tracer)
        for name, sub in other.children.items():
            self.child(name).merge(sub)
        for key, value in other.meta.items():
            self.meta.setdefault(key, value)

    # -- invariants & views ------------------------------------------------

    @property
    def total_rejected(self) -> int:
        return sum(s.rejected for s in self.stages.values())

    @property
    def conserved(self) -> bool:
        """Funnel conservation: considered = per-stage rejections + survivors."""
        return self.pairs_considered == self.total_rejected + self.survivors

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot of the whole collector tree."""
        return {
            "name": self.name,
            "pairs_considered": self.pairs_considered,
            "stages": [
                {
                    "name": s.name,
                    "tested": s.tested,
                    "passed": s.passed,
                    "rejected": s.rejected,
                }
                for s in self.stages.values()
            ],
            "survivors": self.survivors,
            "verified": self.verified,
            "matched": self.matched,
            "verifier": dict(self.verifier_counters),
            "counters": dict(self.counters),
            "conserved": self.conserved,
            "spans": self.tracer.as_dict(),
            "meta": dict(self.meta),
            "children": {
                name: c.as_dict() for name, c in self.children.items()
            },
        }


class NullStatsCollector:
    """API-compatible no-op collector.

    *Falsy*, so per-pair hot loops branch it away entirely
    (``if collector:``); chunk- or call-level code may instead hold one
    and call it unconditionally — every method discards its input.
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def stage(self, name: str) -> StageStat:
        return StageStat(name)  # throwaway

    def add_pairs(self, n: int = 1) -> None:
        pass

    def add_stage(self, name: str, tested: int, passed: int) -> None:
        pass

    def add_survivors(self, n: int = 1) -> None:
        pass

    def add_verified(self, n: int = 1) -> None:
        pass

    def add_matched(self, n: int = 1) -> None:
        pass

    def add_counter(self, name: str, n: int = 1) -> None:
        pass

    def span(self, name: str):
        return NULL_SPAN

    def child(self, name: str) -> "NullStatsCollector":
        return self

    def merge(self, other: object) -> None:
        pass

    @property
    def meta(self) -> dict[str, object]:
        return {}  # fresh throwaway: writes vanish

    @property
    def verifier_counters(self) -> dict[str, int]:
        return {}

    @property
    def counters(self) -> dict[str, int]:
        return {}  # fresh throwaway: writes vanish


#: shared no-op instance for unconditional call sites
NULL_COLLECTOR = NullStatsCollector()
