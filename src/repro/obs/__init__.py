"""repro.obs — observability for the filter-and-verify pipeline.

Three small, dependency-free pieces that every layer of the system
reports into:

* :mod:`repro.obs.stats` — :class:`StatsCollector`, the funnel counters
  (considered -> length-rejected -> FBF-rejected -> verified -> matched)
  with a falsy no-op default so the uninstrumented path costs nothing;
* :mod:`repro.obs.trace` — nested wall-time spans over
  ``time.perf_counter_ns`` (``with collector.span("fbf.filter"):``);
* :mod:`repro.obs.export` — the filtration-ratio table (text) and JSON
  snapshot, directly comparable to the paper's Tables 1-4 columns;
* :mod:`repro.obs.log` — the ``repro.*`` module-logger hierarchy behind
  the CLI's ``-v``/``-q`` flags;
* :mod:`repro.obs.metrics` — live telemetry: the
  :class:`MetricsRegistry` of counters, gauges and log-bucket
  histograms with Prometheus text + JSON snapshot/delta exposition
  (what the serving stack reports *while it runs*);
* :mod:`repro.obs.events` — the bounded JSON-lines :class:`EventLog`
  for discrete lifecycle events (compactions, worker respawns,
  snapshot load/save).

Quick tour::

    from repro import join
    from repro.obs import StatsCollector, render_funnel

    c = StatsCollector("ssn-join")
    join(left, right, "FPDL", k=1, collector=c)
    print(render_funnel(c))
    assert c.conserved        # considered == rejected-by-stage + survivors
"""

from repro.obs.events import NULL_EVENTS, EventLog, NullEventLog
from repro.obs.export import render_funnel, stats_dict, write_stats_json
from repro.obs.log import ROOT_LOGGER_NAME, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    log_buckets,
    registry_from_collector,
)
from repro.obs.stats import (
    NULL_COLLECTOR,
    NullStatsCollector,
    StageStat,
    StatsCollector,
)
from repro.obs.trace import (
    NULL_SPAN,
    SpanStat,
    Tracer,
    current_tracer,
    trace,
    use_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COLLECTOR",
    "NULL_EVENTS",
    "NULL_METRICS",
    "NULL_SPAN",
    "NullEventLog",
    "NullMetricsRegistry",
    "NullStatsCollector",
    "ROOT_LOGGER_NAME",
    "SpanStat",
    "StageStat",
    "StatsCollector",
    "Tracer",
    "configure_logging",
    "current_tracer",
    "get_logger",
    "log_buckets",
    "registry_from_collector",
    "render_funnel",
    "stats_dict",
    "trace",
    "use_tracer",
    "write_stats_json",
]
