"""Live telemetry: a metrics registry with Prometheus + JSON exposition.

The funnel counters (:mod:`repro.obs.stats`) and span tracer
(:mod:`repro.obs.trace`) answer "what did this run do" *after* it ends.
Since the serving stack (:mod:`repro.serve`) and the persistent worker
pool (:mod:`repro.parallel.shm`) run indefinitely, the system also needs
to answer "what is the service doing *right now*" — that is this
module's job.

Three instrument kinds, all O(1) to record and mergeable across pool
workers exactly like ``StatsCollector``/``Tracer`` are:

:class:`Counter`
    a monotonically non-decreasing total (requests served, cache hits);
:class:`Gauge`
    a value that goes both ways (index size, tombstone ratio, queue
    depth, per-worker busy ratio);
:class:`Histogram`
    a **fixed-bucket, log-spaced** distribution (request latency, batch
    size).  Recording is one bisect into the bucket bounds — no
    per-sample retention — so quantile estimates stay accurate over
    unbounded run lengths, unlike a sliding sample window whose
    percentiles only ever describe recent traffic.  The quantile
    estimator interpolates linearly inside the winning bucket, so its
    relative error is bounded by the bucket ratio (default ~1.78x, i.e.
    4 buckets per decade).

:class:`MetricsRegistry` owns the instruments, keyed by
``(name, labels)`` — labels are the Prometheus-style ``{key: value}``
dimensions (e.g. one gauge per pool worker pid).  It exports two ways:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition
  format (``# HELP`` / ``# TYPE`` / ``name{label="v"} value``) that any
  Prometheus-compatible scraper ingests, served over HTTP by
  :mod:`repro.serve.httpd` and as the JSON-lines ``metrics`` op;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.delta` —
  JSON-ready dicts; ``delta`` subtracts a previous snapshot's counter
  and histogram totals so a poller sees per-interval rates while gauges
  stay absolute.

:data:`NULL_METRICS` is the falsy no-op twin (the
:data:`~repro.obs.stats.NULL_COLLECTOR` pattern): instruments it hands
out swallow every record, so uninstrumented paths cost one truthiness
test and the serving stack can be run with telemetry off for A/B
overhead measurements (``benchmarks/test_ablation_obs_overhead.py``).
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.stats import StatsCollector

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "log_buckets",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "registry_from_collector",
]


def log_buckets(
    lo: float, hi: float, *, per_decade: int = 4
) -> tuple[float, ...]:
    """Log-spaced histogram bucket upper bounds covering ``[lo, hi]``.

    ``per_decade`` bounds per factor of 10, rounded to 3 significant
    digits so renderings are stable across platforms.  The returned
    tuple always starts at ``lo`` and ends at or one step above ``hi``.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    ratio = 10.0 ** (1.0 / per_decade)
    bounds: list[float] = []
    value = lo
    while True:
        bound = float(f"{value:.3g}")
        if not bounds or bound > bounds[-1]:
            bounds.append(bound)
        if bound >= hi:
            break
        value *= ratio
    return tuple(bounds)


#: request-latency bounds in seconds: 10 us .. 10 s, 4 buckets/decade
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-5, 10.0)
#: batch-size / count bounds: 1 .. 1e6, 2 buckets/decade
DEFAULT_SIZE_BUCKETS = log_buckets(1.0, 1e6, per_decade=2)


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got inc({n})")
        self.value += n

    def set_total(self, total: float) -> None:
        """Adopt an externally-tracked running total (e.g. a pool's
        lifetime task count).  Monotonicity is preserved: a stale lower
        reading never rewinds the counter."""
        if total > self.value:
            self.value = total

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def as_dict(self) -> dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins on merge)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def merge(self, other: "Gauge") -> None:
        self.value = other.value

    def as_dict(self) -> dict[str, object]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed log-spaced buckets; O(1) record, no per-sample retention.

    ``bounds`` are inclusive upper edges; one implicit ``+Inf`` bucket
    catches the overflow.  ``counts[i]`` is the number of observations
    with ``value <= bounds[i]`` (non-cumulative storage; the exposition
    cumulates), ``sum``/``count`` make means exact even though
    individual samples are forgotten.
    """

    __slots__ = ("bounds", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("bounds must be strictly increasing and non-empty")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]).

        Linear interpolation inside the winning bucket; the first
        bucket's lower edge is taken as 0 and the overflow bucket
        reports its lower edge (there is nothing to interpolate
        against).  Error is bounded by the bucket ratio.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for idx, n in enumerate(self.counts):
            if n == 0:
                continue
            previous = cumulative
            cumulative += n
            if cumulative >= rank:
                if idx >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                hi = self.bounds[idx]
                lo = self.bounds[idx - 1] if idx else 0.0
                fraction = (rank - previous) / n if n else 1.0
                return lo + (hi - lo) * min(1.0, max(0.0, fraction))
        return self.bounds[-1]  # pragma: no cover - rank <= count always

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        for idx, n in enumerate(other.counts):
            self.counts[idx] += n
        self.count += other.count
        self.sum += other.sum

    def summary(self) -> dict[str, float]:
        """Count / mean / p50 / p95 / p99 in the recorded unit."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def as_dict(self) -> dict[str, object]:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                **{f"{b:g}": n for b, n in zip(self.bounds, self.counts)},
                "+Inf": self.counts[-1],
            },
            **{k: v for k, v in self.summary().items() if k != "count"},
        }


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class MetricsRegistry:
    """Named, labelled instruments plus their exposition.

    Instruments are created on first use and cached — hot paths hold
    the returned object and call ``inc``/``set``/``observe`` directly,
    paying no dict lookups per record.  One registry per service (or
    per CLI run); worker registries fold in via :meth:`merge`.
    """

    def __init__(self) -> None:
        #: family name -> (kind, help text)
        self._families: dict[str, tuple[str, str]] = {}
        #: (name, labels) -> instrument, in creation order
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        #: bumped by every snapshot (so pollers can order them)
        self._seq = 0

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._series)

    # -- instrument access ---------------------------------------------------

    def _get(
        self,
        cls,
        name: str,
        help_: str,
        labels: Mapping[str, str] | None,
        **kwargs,
    ):
        family = self._families.get(name)
        if family is None:
            self._families[name] = (cls.kind, help_)
        elif family[0] != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family[0]}, "
                f"not a {cls.kind}"
            )
        key = (name, _label_key(labels))
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = cls(**kwargs)
        return instrument

    def counter(
        self,
        name: str,
        help_: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        return self._get(Counter, name, help_, labels)

    def gauge(
        self,
        name: str,
        help_: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        return self._get(Gauge, name, help_, labels)

    def histogram(
        self,
        name: str,
        help_: str = "",
        labels: Mapping[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help_, labels, bounds=buckets)

    def series(self) -> Iterator[tuple[str, dict[str, str], object]]:
        """``(family, labels, instrument)`` in creation order."""
        for (name, labels), instrument in self._series.items():
            yield name, dict(labels), instrument

    def remove_series(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> bool:
        """Drop one labelled series so it stops appearing in scrapes.

        Registries are append-only for live instruments, but series
        labelled by an *identity that can die* — a worker pid, a shard
        that was torn down — must be retired when the identity goes
        away, or every scrape re-reports a ghost forever.  Returns
        whether the series existed; when a family loses its last series
        the family (TYPE/HELP) entry is dropped too.

        Holders of the removed instrument object can keep recording
        into it harmlessly — it is simply no longer rendered.
        """
        key = (name, _label_key(labels))
        if self._series.pop(key, None) is None:
            return False
        if not any(n == name for n, _ in self._series):
            self._families.pop(name, None)
        return True

    # -- merge ---------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters and histograms add,
        gauges take the other's (more recent) value."""
        for (name, labels), theirs in other._series.items():
            kind, help_ = other._families[name]
            mine = self._get(
                type(theirs),
                name,
                help_,
                dict(labels),
                **(
                    {"bounds": theirs.bounds}
                    if isinstance(theirs, Histogram)
                    else {}
                ),
            )
            mine.merge(theirs)

    # -- exposition ----------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """JSON-ready full state: one entry per series plus a sequence
        number and wall-clock timestamp."""
        self._seq += 1
        return {
            "seq": self._seq,
            "ts": time.time(),
            "metrics": {
                _series_name(name, key): instrument.as_dict()
                for (name, key), instrument in self._series.items()
            },
        }

    @staticmethod
    def delta(
        current: Mapping[str, object], previous: Mapping[str, object] | None
    ) -> dict[str, object]:
        """Per-interval view between two :meth:`snapshot` results.

        Counter values and histogram count/sum/buckets become
        differences against ``previous`` (new series diff against
        zero); gauges pass through absolute.  With ``previous=None``
        the snapshot itself is returned under the same shape.
        """
        prev_metrics: Mapping[str, object] = (
            previous.get("metrics", {}) if previous else {}
        )
        out: dict[str, object] = {}
        for key, cur in current["metrics"].items():  # type: ignore[index]
            old = prev_metrics.get(key)
            if cur["type"] == "gauge" or old is None:
                out[key] = dict(cur)
                continue
            if cur["type"] == "counter":
                out[key] = {
                    "type": "counter",
                    "value": cur["value"] - old["value"],
                }
            else:  # histogram
                out[key] = {
                    "type": "histogram",
                    "count": cur["count"] - old["count"],
                    "sum": cur["sum"] - old["sum"],
                    "buckets": {
                        b: n - old["buckets"].get(b, 0)
                        for b, n in cur["buckets"].items()
                    },
                }
        return {
            "seq": current["seq"],
            "ts": current["ts"],
            "since_seq": previous["seq"] if previous else None,
            "metrics": out,
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        ``# HELP``/``# TYPE`` once per family, then one line per
        series; histograms expand to cumulative ``_bucket{le=...}``
        lines plus ``_sum`` and ``_count``.
        """
        by_family: dict[str, list[tuple[tuple[tuple[str, str], ...], object]]]
        by_family = {}
        for (name, labels), instrument in self._series.items():
            by_family.setdefault(name, []).append((labels, instrument))
        lines: list[str] = []
        for name, series in by_family.items():
            kind, help_ = self._families[name]
            if help_:
                lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, instrument in series:
                if isinstance(instrument, Histogram):
                    cumulative = 0
                    for bound, n in zip(instrument.bounds, instrument.counts):
                        cumulative += n
                        lines.append(
                            _series_name(
                                f"{name}_bucket",
                                labels + (("le", f"{bound:g}"),),
                            )
                            + f" {cumulative}"
                        )
                    lines.append(
                        _series_name(
                            f"{name}_bucket", labels + (("le", "+Inf"),)
                        )
                        + f" {instrument.count}"
                    )
                    lines.append(
                        _series_name(f"{name}_sum", labels)
                        + f" {_fmt(instrument.sum)}"
                    )
                    lines.append(
                        _series_name(f"{name}_count", labels)
                        + f" {instrument.count}"
                    )
                else:
                    lines.append(
                        _series_name(name, labels)
                        + f" {_fmt(instrument.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def write_json(self, path) -> None:
        """Write :meth:`snapshot` as pretty-printed JSON."""
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.snapshot(), indent=2, default=str) + "\n"
        )


def _fmt(value: float) -> str:
    return f"{value:g}"


class _NullInstrument:
    """One object impersonating all three instrument kinds, discarding
    every record."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, total: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict[str, float]:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def merge(self, other: object) -> None:
        pass

    def as_dict(self) -> dict[str, object]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Falsy no-op registry: telemetry off costs a truthiness test."""

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def counter(self, name, help_="", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, help_="", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name, help_="", labels=None, buckets=DEFAULT_LATENCY_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series(self):
        return iter(())

    def merge(self, other) -> None:
        pass

    def snapshot(self) -> dict[str, object]:
        return {"seq": 0, "ts": 0.0, "metrics": {}}

    delta = staticmethod(MetricsRegistry.delta)

    def render_prometheus(self) -> str:
        return ""

    def write_json(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(json.dumps(self.snapshot()) + "\n")


#: shared no-op instance (the NULL_COLLECTOR pattern)
NULL_METRICS = NullMetricsRegistry()


def registry_from_collector(collector: "StatsCollector") -> MetricsRegistry:
    """Bridge a batch join's :class:`~repro.obs.stats.StatsCollector`
    into a registry (the CLI's ``--metrics-json`` on one-shot joins).

    Funnel totals and free-form counters become counters, per-stage
    pass/reject pairs become labelled counters, and every span path
    becomes a latency histogram fed from the span's retained sample
    window (an approximation: the window is a reservoir over the run,
    so bucket counts are scaled to the span's true call count).
    """
    registry = MetricsRegistry()
    prefix = "repro_join"
    for key in ("pairs_considered", "survivors", "verified", "matched"):
        registry.counter(
            f"{prefix}_{key}_total", f"funnel {key} (original-pair units)"
        ).inc(getattr(collector, key))
    for stage in collector.stages.values():
        for outcome, n in (
            ("tested", stage.tested),
            ("passed", stage.passed),
            ("rejected", stage.rejected),
        ):
            registry.counter(
                f"{prefix}_stage_pairs_total",
                "per-stage funnel flow",
                labels={"stage": stage.name, "outcome": outcome},
            ).inc(n)
    for name, n in {
        **collector.verifier_counters,
        **collector.counters,
    }.items():
        registry.counter(
            f"{prefix}_{name}_total", "collector free-form tally"
        ).inc(n)
    for path, stat in collector.tracer.spans.items():
        hist = registry.histogram(
            f"{prefix}_span_seconds",
            "span wall time from the tracer's reservoir window",
            labels={"path": path},
        )
        if stat.samples:
            scale = stat.calls / len(stat.samples)
            for ns in stat.samples:
                hist.observe(ns / 1e9)
            hist.count = stat.calls
            hist.sum = stat.total_ns / 1e9
            hist.counts = [int(round(n * scale)) for n in hist.counts]
    for name, child in collector.children.items():
        registry.merge(registry_from_collector(child))
    return registry
