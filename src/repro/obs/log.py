"""The ``repro`` module-logger hierarchy.

Every subsystem logs through a child of the ``repro`` root logger —
``repro.cli``, ``repro.parallel.chunked``, ``repro.linkage.engine`` — so
one :func:`configure_logging` call (the CLI's ``-v``/``-q`` flags) sets
the verbosity for the whole pipeline, and embedders who never call it
get the standard library's silent default (no handler, WARNING+ to
``lastResort``).

Verbosity maps the conventional way::

    -q   -> ERROR      (verbosity -1)
    (none) -> WARNING  (verbosity 0)
    -v   -> INFO       (verbosity 1)
    -vv  -> DEBUG      (verbosity >= 2)

:func:`configure_logging` is idempotent: re-invocation replaces the
handler it previously installed rather than stacking duplicates, so
in-process CLI drivers (the test suite) can call it per command.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["ROOT_LOGGER_NAME", "get_logger", "configure_logging"]

ROOT_LOGGER_NAME = "repro"

#: marker attribute identifying the handler configure_logging installed
_HANDLER_MARK = "_repro_obs_installed"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("parallel.chunked")`` and
    ``get_logger("repro.parallel.chunked")`` return the same logger;
    ``get_logger()`` returns the hierarchy root.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def level_for(verbosity: int) -> int:
    """Map a ``-q``/``-v`` count to a stdlib logging level."""
    if verbosity < 0:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, *, stream: IO[str] | None = None
) -> logging.Logger:
    """Install a stderr handler on the ``repro`` root at ``verbosity``.

    Returns the configured root logger.  Replaces any handler a previous
    call installed; handlers added by embedding applications are left
    alone.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level_for(verbosity))
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    # Don't double-print through the stdlib root logger.
    root.propagate = False
    return root
