"""Lightweight nested-span tracing over ``time.perf_counter_ns``.

The paper's evaluation decomposes every method's cost into per-stage
wall time (signature generation, filtering, verification — the "Gen"
rows and time columns of Tables 1-4).  :class:`Tracer` records the same
decomposition at runtime: a *span* is a named ``with`` block, spans
nest, and each distinct nesting path accumulates call count and total
nanoseconds into one :class:`SpanStat`.

Design constraints, in order:

1. **Zero overhead when off.**  The module-level :func:`trace` helper
   returns a shared no-op context manager when no tracer is active —
   one global load and one ``is None`` test per call, no allocation.
2. **Cheap when on.**  A span entry/exit is two ``perf_counter_ns``
   calls, one list push/pop and one dict upsert; no objects are
   retained per call, only per distinct path.
3. **Mergeable.**  Parallel drivers trace into private tracers and
   :meth:`Tracer.merge` them into one, mirroring how their counters
   merge.

Usage::

    tracer = Tracer()
    with tracer.span("fbf.filter"):
        ...
    with use_tracer(tracer):          # route module-level trace() calls
        with trace("verify"):
            ...
    tracer.spans                       # {"fbf.filter": SpanStat(...), ...}

Nested spans key under their full path with ``/`` separators, e.g.
``"join/fbf.filter"`` — span *names* keep their conventional dots.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Iterator

__all__ = [
    "SpanStat",
    "Tracer",
    "NULL_SPAN",
    "trace",
    "use_tracer",
    "current_tracer",
]


@dataclass
class SpanStat:
    """Accumulated timing for one span path."""

    path: str
    calls: int = 0
    total_ns: int = 0

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0


class _Span:
    """One live ``with`` block; records into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self._name)
        self._t0 = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = perf_counter_ns() - self._t0
        tracer = self._tracer
        path = "/".join(tracer._stack)
        tracer._stack.pop()
        stat = tracer.spans.get(path)
        if stat is None:
            stat = tracer.spans[path] = SpanStat(path)
        stat.calls += 1
        stat.total_ns += elapsed
        return False


class _NullSpan:
    """Reusable do-nothing context manager (the inactive-tracer path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Accumulates :class:`SpanStat` per distinct nesting path."""

    def __init__(self) -> None:
        self.spans: dict[str, SpanStat] = {}
        self._stack: list[str] = []

    def span(self, name: str) -> _Span:
        """A context manager timing one named (possibly nested) span."""
        return _Span(self, name)

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's accumulated spans into this one."""
        for path, stat in other.spans.items():
            mine = self.spans.get(path)
            if mine is None:
                mine = self.spans[path] = SpanStat(path)
            mine.calls += stat.calls
            mine.total_ns += stat.total_ns

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-ready view: path -> {calls, total_ms}."""
        return {
            path: {"calls": s.calls, "total_ms": s.total_ms}
            for path, s in self.spans.items()
        }


#: the tracer module-level :func:`trace` routes to (None = tracing off)
_active: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The tracer :func:`trace` currently records into, if any."""
    return _active


def trace(name: str):
    """Span against the active tracer; free no-op when none is active."""
    tracer = _active
    return tracer.span(name) if tracer is not None else NULL_SPAN


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the active target of :func:`trace` in this block."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
