"""Lightweight nested-span tracing over ``time.perf_counter_ns``.

The paper's evaluation decomposes every method's cost into per-stage
wall time (signature generation, filtering, verification — the "Gen"
rows and time columns of Tables 1-4).  :class:`Tracer` records the same
decomposition at runtime: a *span* is a named ``with`` block, spans
nest, and each distinct nesting path accumulates call count and total
nanoseconds into one :class:`SpanStat`.

Design constraints, in order:

1. **Zero overhead when off.**  The module-level :func:`trace` helper
   returns a shared no-op context manager when no tracer is active —
   one global load and one ``is None`` test per call, no allocation.
2. **Cheap when on.**  A span entry/exit is two ``perf_counter_ns``
   calls, one list push/pop and one dict upsert; no objects are
   retained per call, only per distinct path.
3. **Mergeable.**  Parallel drivers trace into private tracers and
   :meth:`Tracer.merge` them into one, mirroring how their counters
   merge.

Usage::

    tracer = Tracer()
    with tracer.span("fbf.filter"):
        ...
    with use_tracer(tracer):          # route module-level trace() calls
        with trace("verify"):
            ...
    tracer.spans                       # {"fbf.filter": SpanStat(...), ...}

Nested spans key under their full path with ``/`` separators, e.g.
``"join/fbf.filter"`` — span *names* keep their conventional dots.

**The percentile estimator.**  Each :class:`SpanStat` retains at most
:data:`SAMPLE_WINDOW` per-call durations and computes percentiles over
them by nearest rank.  The retained set is a **uniform reservoir**
(Vitter's Algorithm R): once the window is full, the *i*-th call
overall replaces a random slot with probability ``SAMPLE_WINDOW / i``,
so every call of the run — first minute or last — is equally likely to
be in the window.  A plain "most recent N" ring would make a long run's
p95/p99 describe only the tail of the run; the reservoir makes them an
unbiased estimate over the whole run (mean/total are always exact —
they are accumulated outside the window).  Replacement slots come from
a per-path ``random.Random`` seeded with ``crc32(path)``, so runs are
deterministic regardless of ``PYTHONHASHSEED``.  Merging two stats
(:meth:`Tracer.merge`) draws a calls-proportional stratified subsample:
each side contributes slots in proportion to the number of calls its
reservoir summarises, sampled without replacement — when the combined
windows fit the cap they are simply concatenated, which is exact.
For quantiles that must stay accurate over *unbounded* serving runs
with bounded error, prefer the fixed-bucket histograms in
:mod:`repro.obs.metrics`; the reservoir is the right tool for batch
runs where true per-call samples beat bucketed ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from math import ceil
from random import Random
from time import perf_counter_ns
from typing import Iterator
from zlib import crc32

__all__ = [
    "SpanStat",
    "Tracer",
    "NULL_SPAN",
    "trace",
    "use_tracer",
    "current_tracer",
    "SAMPLE_WINDOW",
]

#: per-path cap on retained per-call durations; percentiles are computed
#: over a uniform reservoir of this size covering *all* calls of the
#: run (mean/total stay exact — they are accumulated outside the window)
SAMPLE_WINDOW = 1024


@dataclass
class SpanStat:
    """Accumulated timing for one span path.

    ``calls`` and ``total_ns`` cover every call ever recorded;
    ``samples`` is a bounded uniform reservoir (Algorithm R, at most
    :data:`SAMPLE_WINDOW` entries) over every per-call duration of the
    run, from which the latency percentiles are estimated — see the
    module docstring for the estimator and its determinism guarantees.
    """

    path: str
    calls: int = 0
    total_ns: int = 0
    samples: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Seeded from the path (not hash(): deterministic under any
        # PYTHONHASHSEED), so identical runs keep identical windows.
        self._rng = Random(crc32(self.path.encode("utf-8")))

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0

    @property
    def mean_ms(self) -> float:
        return self.mean_ns / 1e6

    def record(self, elapsed_ns: int) -> None:
        """Fold one call's duration in (reservoir semantics)."""
        if len(self.samples) < SAMPLE_WINDOW:
            self.samples.append(elapsed_ns)
        else:
            slot = self._rng.randrange(self.calls + 1)
            if slot < SAMPLE_WINDOW:
                self.samples[slot] = elapsed_ns
        self.calls += 1
        self.total_ns += elapsed_ns

    def absorb(self, other: "SpanStat") -> None:
        """Fold another stat for the same path in (the merge path).

        Counts and totals add exactly.  The combined reservoir is a
        calls-proportional stratified subsample: if both windows fit
        the cap they concatenate (exact union when both are complete
        records); otherwise each side contributes
        ``round(cap * side_calls / total_calls)`` slots drawn without
        replacement from its window.
        """
        if other.calls == 0:
            return
        if self.calls == 0:
            self.samples = list(other.samples)
        elif len(self.samples) + len(other.samples) <= SAMPLE_WINDOW:
            self.samples = self.samples + list(other.samples)
        else:
            total = self.calls + other.calls
            take_mine = min(
                len(self.samples), round(SAMPLE_WINDOW * self.calls / total)
            )
            take_theirs = min(len(other.samples), SAMPLE_WINDOW - take_mine)
            take_mine = min(len(self.samples), SAMPLE_WINDOW - take_theirs)
            self.samples = self._rng.sample(
                self.samples, take_mine
            ) + self._rng.sample(list(other.samples), take_theirs)
        self.calls += other.calls
        self.total_ns += other.total_ns

    def percentile_ns(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in 0-100) over the sample window."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, ceil(q / 100.0 * len(ordered)))
        return float(ordered[min(rank, len(ordered)) - 1])

    @property
    def p50_ms(self) -> float:
        return self.percentile_ns(50) / 1e6

    @property
    def p95_ms(self) -> float:
        return self.percentile_ns(95) / 1e6

    @property
    def p99_ms(self) -> float:
        return self.percentile_ns(99) / 1e6

    def summary(self) -> dict[str, float]:
        """Latency summary: count / mean / p50 / p95 / p99 (ms)."""
        return {
            "count": self.calls,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
        }


class _Span:
    """One live ``with`` block; records into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_t0")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_Span":
        self._tracer._stack.append(self._name)
        self._t0 = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = perf_counter_ns() - self._t0
        tracer = self._tracer
        path = "/".join(tracer._stack)
        tracer._stack.pop()
        stat = tracer.spans.get(path)
        if stat is None:
            stat = tracer.spans[path] = SpanStat(path)
        stat.record(elapsed)
        return False


class _NullSpan:
    """Reusable do-nothing context manager (the inactive-tracer path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Accumulates :class:`SpanStat` per distinct nesting path."""

    def __init__(self) -> None:
        self.spans: dict[str, SpanStat] = {}
        self._stack: list[str] = []

    def span(self, name: str) -> _Span:
        """A context manager timing one named (possibly nested) span."""
        return _Span(self, name)

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's accumulated spans into this one."""
        for path, stat in other.spans.items():
            mine = self.spans.get(path)
            if mine is None:
                mine = self.spans[path] = SpanStat(path)
            mine.absorb(stat)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """JSON-ready view: path -> {calls, total_ms, latency summary}."""
        return {
            path: {
                "calls": s.calls,
                "total_ms": s.total_ms,
                "mean_ms": s.mean_ms,
                "p50_ms": s.p50_ms,
                "p95_ms": s.p95_ms,
                "p99_ms": s.p99_ms,
            }
            for path, s in self.spans.items()
        }


#: the tracer module-level :func:`trace` routes to (None = tracing off)
_active: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The tracer :func:`trace` currently records into, if any."""
    return _active


def trace(name: str):
    """Span against the active tracer; free no-op when none is active."""
    tracer = _active
    return tracer.span(name) if tracer is not None else NULL_SPAN


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the active target of :func:`trace` in this block."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
