"""Crash-resumable checkpoints for streamed joins.

After each completed chunk the driver writes a small JSON checkpoint
(atomically: temp file + ``os.replace``) recording

* a **config fingerprint** — source identity, roster digest, method,
  ``k``, resolved generator and chunk size, spill path/format — so a
  resume with different inputs is refused instead of silently
  producing a franken-result;
* the **stream position** — last completed chunk ordinal, the next
  chunk's source token, and the global row count processed so far;
* the **durable spill size** — the byte count the spill file held when
  this checkpoint was written, which the resume path truncates back to
  (rows past it belong to an unfinished chunk);
* the **merged funnel state** — pairs considered, per-stage
  tested/passed, survivor/verified/match counters — restored onto a
  fresh :class:`~repro.obs.stats.StatsCollector` so conservation holds
  across the kill/resume boundary exactly as it would for one
  uninterrupted run.

The checkpoint is only ever written *after* the spill flush for the
same chunk, so the invariant "spill file ⊇ checkpointed state" holds
at every instant; a crash between flush and checkpoint just replays
one chunk's rows into the truncated file.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.stats import StageStat, StatsCollector

__all__ = ["Checkpoint", "roster_digest", "load_checkpoint"]

#: bump when the on-disk layout changes incompatibly
_VERSION = 1


def roster_digest(strings: list[str]) -> str:
    """Cheap stable digest of the in-memory side.

    Hashes the length plus the first and last 64 strings — enough to
    catch "resumed against a different roster" without re-hashing 1e5
    strings on every checkpoint load.
    """
    h = hashlib.sha1()
    h.update(str(len(strings)).encode())
    for s in strings[:64]:
        h.update(s.encode("utf-8", "replace"))
    h.update(b"\x00")
    for s in strings[-64:]:
        h.update(s.encode("utf-8", "replace"))
    return h.hexdigest()


def _funnel_state(obs: StatsCollector) -> dict:
    return {
        "pairs_considered": obs.pairs_considered,
        "survivors": obs.survivors,
        "verified": obs.verified,
        "matched": obs.matched,
        "stages": {
            name: [st.tested, st.passed] for name, st in obs.stages.items()
        },
        "verifier_counters": dict(obs.verifier_counters),
        "counters": dict(obs.counters),
    }


def _restore_funnel(obs: StatsCollector, state: dict) -> None:
    obs.pairs_considered = int(state.get("pairs_considered", 0))
    obs.survivors = int(state.get("survivors", 0))
    obs.verified = int(state.get("verified", 0))
    obs.matched = int(state.get("matched", 0))
    for name, (tested, passed) in state.get("stages", {}).items():
        obs.stages[name] = StageStat(
            name=name, tested=int(tested), passed=int(passed)
        )
    for name, count in state.get("verifier_counters", {}).items():
        obs.verifier_counters[name] = int(count)
    for name, count in state.get("counters", {}).items():
        obs.counters[name] = int(count)


@dataclass
class Checkpoint:
    """One streamed-join run's resumable state."""

    path: Path
    fingerprint: dict
    #: last completed chunk ordinal (-1 before the first chunk lands)
    chunk: int = -1
    #: source token where the *next* chunk starts
    next_token: int = 0
    #: global rows consumed through ``chunk``
    rows: int = 0
    #: durable spill file size at checkpoint time
    spill_bytes: int = 0
    match_count: int = 0
    funnel: dict = field(default_factory=dict)

    def save(self, obs: StatsCollector) -> None:
        """Atomically persist (temp file + rename, fsynced)."""
        self.funnel = _funnel_state(obs)
        payload = {
            "version": _VERSION,
            "fingerprint": self.fingerprint,
            "chunk": self.chunk,
            "next_token": self.next_token,
            "rows": self.rows,
            "spill_bytes": self.spill_bytes,
            "match_count": self.match_count,
            "funnel": self.funnel,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def restore_funnel(self, obs: StatsCollector) -> None:
        """Write the checkpointed funnel back onto a fresh collector."""
        _restore_funnel(obs, self.funnel)

    def validate(self, fingerprint: dict) -> None:
        """Refuse to resume against different inputs or parameters."""
        mismatches = {
            key: (self.fingerprint.get(key), value)
            for key, value in fingerprint.items()
            if self.fingerprint.get(key) != value
        }
        if mismatches:
            detail = "; ".join(
                f"{key}: checkpoint={old!r} run={new!r}"
                for key, (old, new) in sorted(mismatches.items())
            )
            raise ValueError(
                f"{self.path}: checkpoint does not match this run "
                f"({detail}); delete the checkpoint to start over"
            )


def load_checkpoint(path: Path | str) -> Checkpoint | None:
    """Load a checkpoint, or ``None`` if the file doesn't exist."""
    path = Path(path)
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("version")
    if version != _VERSION:
        raise ValueError(
            f"{path}: checkpoint version {version} is not supported "
            f"(expected {_VERSION})"
        )
    return Checkpoint(
        path=path,
        fingerprint=payload["fingerprint"],
        chunk=int(payload["chunk"]),
        next_token=int(payload["next_token"]),
        rows=int(payload["rows"]),
        spill_bytes=int(payload["spill_bytes"]),
        match_count=int(payload["match_count"]),
        funnel=payload.get("funnel", {}),
    )
