"""The out-of-core join driver: broadcast the roster, stream the rest.

``join_stream`` joins a disk-resident dataset of arbitrary size against
an in-memory roster under a bounded footprint:

* the **roster** (the small side) is prepared once — FBF/PASS-JOIN/
  prefix index, vectorized right-side encodings, or a shared-memory
  publication for the hybrid pool — and broadcast to every chunk;
* the **big side** streams from disk through a :class:`~repro.stream.
  source.ChunkSource` in ``chunk_rows``-sized chunks (sized directly or
  derived from ``memory_budget_mb``), each chunk running through the
  planner's generator + backend stack exactly as an in-memory join
  would.  Chunks are processed one at a time — the worker pool's
  pending queue never holds more than one chunk's tasks, which *is* the
  backpressure bound — while a single prefetch thread overlaps the next
  chunk's disk read with the current chunk's verify;
* **matches spill** to disk incrementally through
  :class:`~repro.stream.spill.SpillWriter` (bounded buffer, flushed
  every chunk), so the match set never accumulates in RAM;
* a **checkpoint** is written after every chunk's spill flush; a killed
  run re-invoked with ``resume=True`` truncates the spill back to the
  checkpointed byte count, restores the merged funnel, seeks the source
  to the recorded offset and continues — the finished spill file is
  byte-identical to an uninterrupted run's and the funnel conservation
  invariant holds across the kill.

The per-chunk funnel contributions are additive, so one collector
accumulates the whole stream: ``pairs_considered`` ends at
``total_rows x len(roster)`` and conservation holds exactly as it does
for one in-memory join.

Interrupted-run hygiene: for the duration of the stream a SIGTERM
handler that raises :class:`SystemExit` is installed (when possible),
so ``kill <pid>`` unwinds the Python stack — shared-memory segments are
unlinked by their finalizers and the spill file is rolled back to the
last checkpoint instead of being left with a torn chunk.  SIGKILL can
not be caught; leaked segments are reclaimed by multiprocessing's
resource tracker, and the spill rollback happens on the *next* run's
``resume=True``.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.core.matchers import method_registry
from repro.core.plan import EDIT_BOUNDED, JoinPlanner
from repro.core.signatures import detect_kind, scheme_for
from repro.io import read_strings
from repro.obs.events import NULL_EVENTS
from repro.obs.metrics import NullMetricsRegistry
from repro.obs.stats import StatsCollector
from repro.parallel.chunked import VectorEngine
from repro.stream.checkpoint import Checkpoint, load_checkpoint, roster_digest
from repro.stream.source import ChunkSource, source_for
from repro.stream.spill import SpillWriter, truncate_to

__all__ = [
    "join_stream",
    "StreamResult",
    "resolve_chunk_rows",
    "DEFAULT_CHUNK_ROWS",
    "ROW_FOOTPRINT",
    "STREAM_GENERATORS",
]

DEFAULT_CHUNK_ROWS = 65536

#: budgeted resident bytes per streamed row: the string object, its
#: uint8 codes + signature rows across levels, and its share of the
#: candidate/verification block arrays while a chunk is in flight.
#: The candidate share scales with roster density — measured ~4.5 KB
#: peak per row against a 2e4-name roster and ~11 KB against 1e5 —
#: so the budget rate is set above the densest measured workload
ROW_FOOTPRINT = 16384

#: generators the streaming driver will route to (the planner's
#: lossless ones; key blocking is lossy and never auto-picked)
STREAM_GENERATORS = (
    "all-pairs",
    "length-bucket",
    "fbf-index",
    "pass-join",
    "prefix",
)

_STREAM_BACKENDS = ("scalar", "vectorized", "hybrid", "native")

#: test hook: sleep this many ms after each chunk (makes "SIGKILL lands
#: mid-run" deterministic for the kill-and-resume suite)
_SLEEP_ENV = "REPRO_STREAM_CHUNK_SLEEP_MS"


def resolve_chunk_rows(
    chunk_rows: int | None, memory_budget_mb: float | None
) -> int:
    """Rows per chunk: explicit wins, else derived from the budget.

    Half the budget is granted to resident chunk state at
    :data:`ROW_FOOTPRINT` bytes per row — the rest is headroom for the
    roster, its indexes and the interpreter itself.  Clamped to
    ``[1024, 2**22]`` so degenerate budgets stay functional.  The
    resolved value is recorded in the checkpoint, so a resumed run
    chunks identically even if the budget flag changes.
    """
    if chunk_rows is not None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        return int(chunk_rows)
    if memory_budget_mb is not None:
        if memory_budget_mb <= 0:
            raise ValueError(
                f"memory_budget_mb must be positive, got {memory_budget_mb}"
            )
        rows = int(memory_budget_mb * (1 << 20)) // (2 * ROW_FOOTPRINT)
        return max(1024, min(rows, 1 << 22))
    return DEFAULT_CHUNK_ROWS


@dataclass
class StreamResult:
    """Outcome of one streamed join (possibly a resumed continuation)."""

    method: str
    generator: str
    backend: str
    n_roster: int
    rows: int
    chunks: int
    match_count: int
    #: in-memory matches (global_row, roster_id); ``None`` when spilled
    matches: list[tuple[int, int]] | None
    spill: Path | None
    spill_bytes: int
    checkpoint: Path | None
    #: chunk ordinal the run resumed after, or ``None`` for a fresh run
    resumed_after: int | None
    #: False when ``max_chunks`` stopped the run before the source dried
    completed: bool
    wall_s: float
    collector: StatsCollector

    def as_dict(self) -> dict:
        return {
            "method": self.method,
            "generator": self.generator,
            "backend": self.backend,
            "n_roster": self.n_roster,
            "rows": self.rows,
            "chunks": self.chunks,
            "match_count": self.match_count,
            "spill": None if self.spill is None else str(self.spill),
            "spill_bytes": self.spill_bytes,
            "resumed_after": self.resumed_after,
            "completed": self.completed,
            "wall_s": self.wall_s,
        }


class _BroadcastDatasets:
    """Duck-typed ``SharedDatasets`` for the hybrid backend.

    The roster side is published through shared memory exactly once for
    the whole stream (``SharedSide``); each chunk rides as inline
    refs — small enough that publication would cost more than the
    pickle, exactly the serve layer's micro-batch trade.
    """

    self_join = False
    has_sdx = False

    def __init__(self, roster_side, chunk_arrays):
        self.scheme = roster_side.scheme
        self.left = chunk_arrays
        self.right = roster_side.arrays
        self._roster_side = roster_side

    @property
    def bytes_shared(self) -> int:
        return self._roster_side.bytes_shared

    @property
    def accounted(self) -> bool:
        return self._roster_side.accounted

    @accounted.setter
    def accounted(self, value: bool) -> None:
        self._roster_side.accounted = value

    def add_sdx(self, left, right) -> None:
        raise RuntimeError(
            "soundex-verified methods are not supported by the streaming "
            "hybrid path; use backend='vectorized'"
        )


class _ChunkRunner:
    """Shared prepared state + per-chunk planner assembly.

    A fresh :class:`JoinPlanner` is built per chunk (it is bound to its
    left side), but everything expensive — the roster's FBF/PASS-JOIN/
    prefix index, the vectorized right-side encodings, the shared-memory
    publication — is built once here and injected into each planner's
    cache slots, so per-chunk cost is the chunk's own encoding plus the
    probe/verify work.
    """

    def __init__(
        self,
        roster: list[str],
        *,
        method: str,
        k: int,
        theta: float,
        kind: str,
        levels: int,
        generator: str,
        backend: str,
        workers: int | None,
    ):
        self.roster = roster
        self.method = method
        self.k = k
        self.theta = theta
        self.kind = kind
        self.levels = levels
        self.scheme = scheme_for(kind, levels)
        self.generator = generator
        self.backend = backend
        self.workers = workers
        self._fbf = None
        self._passjoin = None
        self._prefix = None
        self._proto: VectorEngine | None = None
        self._roster_side = None

    # -- once-per-stream state ----------------------------------------

    def prepare(self) -> None:
        """Build the roster-side structures for the chosen plan."""
        if self.generator == "fbf-index" and self._fbf is None:
            from repro.core.index import FBFIndex

            self._fbf = FBFIndex(self.roster, scheme=self.scheme)
        elif self.generator == "pass-join" and self._passjoin is None:
            from repro.core.passjoin import PassJoinIndex

            self._passjoin = PassJoinIndex(self.roster, k=self.k)
        elif self.generator == "prefix" and self._prefix is None:
            from repro.core.prefix import PrefixQgramIndex

            self._prefix = PrefixQgramIndex(self.roster, k=self.k)
        if self.backend == "hybrid" and self._roster_side is None:
            from repro.parallel import shm

            self._roster_side = shm.SharedSide(self.roster, scheme=self.scheme)
            shm.shared_pool(self.workers).ensure()

    def close(self) -> None:
        """Unlink the roster's shared segments (idempotent)."""
        if self._roster_side is not None:
            self._roster_side.close()

    # -- per-chunk execution ------------------------------------------

    def _engine_for(self, strings: list[str]) -> VectorEngine:
        if self._proto is None:
            self._proto = VectorEngine(
                strings,
                self.roster,
                k=self.k,
                theta=self.theta,
                scheme_kind=self.scheme,
                levels=self.levels,
                record_matches=True,
            )
            return self._proto
        return VectorEngine(
            strings,
            self.roster,
            k=self.k,
            theta=self.theta,
            scheme_kind=self.scheme,
            levels=self.levels,
            record_matches=True,
            share_right=self._proto,
        )

    def run_chunk(self, strings: list[str], obs) -> "JoinResult":
        planner = JoinPlanner(
            strings,
            self.roster,
            k=self.k,
            theta=self.theta,
            scheme=self.kind,
            levels=self.levels,
            workers=self.workers,
            collapse="off",
            memo="off",
            self_join=False,
        )
        planner._scheme = self.scheme
        planner._index = self._fbf
        planner._passjoin = self._passjoin
        planner._prefix = self._prefix
        if self.backend in ("vectorized", "native"):
            # Same cached-engine reuse for both tiers; the native
            # backend flips the planner engine's kernel set per run.
            planner._engine = self._engine_for(planner.left)
        elif self.backend == "hybrid":
            from repro.parallel import shm

            planner._shm_datasets = _BroadcastDatasets(
                self._roster_side,
                shm.inline_side(planner.left, scheme=self.scheme),
            )
        return planner.run(
            self.method,
            generator=self.generator,
            backend=self.backend,
            collector=obs,
            record_matches=True,
        )


class _Prefetcher:
    """Overlap the next chunk's disk read with the current verify.

    A single daemon thread reads ahead into a bounded queue (depth 1 by
    default): exactly one decoded chunk is in flight beyond the one
    being verified, which bounds memory while hiding read latency.
    Iterator exceptions propagate to the consumer; :meth:`close` stops
    the reader even if the consumer bails early.
    """

    _DONE = object()

    def __init__(self, iterator, depth: int = 1):
        self._q: queue.Queue = queue.Queue(maxsize=max(1, depth))
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._fill, args=(iterator,), daemon=True
        )
        self._thread.start()

    def _put(self, item) -> bool:
        while not self._stop.is_set():
            try:
                self._q.put(item, timeout=0.1)
                return True
            except queue.Full:
                continue
        return False

    def _fill(self, iterator) -> None:
        try:
            for item in iterator:
                if not self._put(item):
                    return
            self._put(self._DONE)
        except BaseException as exc:  # noqa: BLE001 - relayed to consumer
            self._put(exc)

    def __iter__(self):
        while True:
            item = self._q.get()
            if item is self._DONE:
                return
            if isinstance(item, BaseException):
                raise item
            yield item

    def close(self) -> None:
        self._stop.set()
        try:
            while True:
                self._q.get_nowait()
        except queue.Empty:
            pass


class _TermGuard:
    """Raise ``SystemExit`` on SIGTERM for the duration of a stream.

    Default SIGTERM disposition kills the process without unwinding
    Python — shared-memory finalizers never run and segments leak in
    ``/dev/shm``.  Raising instead lets the driver's ``finally`` blocks
    unlink segments and roll the spill back to the last checkpoint.
    Only installed from the main thread over the *default* handler; an
    application's own handler is left alone.
    """

    def __init__(self):
        self._installed = False
        self._previous = None

    def __enter__(self) -> "_TermGuard":
        if threading.current_thread() is threading.main_thread():
            current = signal.getsignal(signal.SIGTERM)
            if current in (signal.SIG_DFL, None):
                signal.signal(signal.SIGTERM, self._raise)
                self._previous = current
                self._installed = True
        return self

    @staticmethod
    def _raise(signum, frame):
        raise SystemExit(128 + signum)

    def __exit__(self, *exc) -> None:
        if self._installed:
            signal.signal(signal.SIGTERM, self._previous or signal.SIG_DFL)
            self._installed = False


def _resolve_generator(
    generator: str,
    sample: list[str],
    roster: list[str],
    *,
    method: str,
    k: int,
    theta: float,
    kind: str,
) -> str:
    """Pick the stream's generator once (it is pinned in the checkpoint).

    ``"auto"`` scores the planner's cost model over (first chunk,
    roster) — the chunk sizes are uniform, so the first chunk's ranking
    holds for the rest of the stream.  An explicit index generator is
    validated against the method's verifier (the same safety rule the
    planner enforces).
    """
    spec = method_registry().get(method)
    if spec is None:
        raise ValueError(f"unknown method {method!r}")
    if generator != "auto":
        if generator not in STREAM_GENERATORS:
            raise ValueError(
                f"unknown stream generator {generator!r}; expected one of "
                f"{STREAM_GENERATORS} or 'auto'"
            )
        if generator not in ("all-pairs",) and spec.verifier not in EDIT_BOUNDED:
            gen_obj = JoinPlanner(
                sample or [""], roster, k=k, theta=theta, scheme=kind
            ).generator(generator)
            if gen_obj is not None and not gen_obj.is_safe_for(spec):
                raise ValueError(
                    f"generator {generator!r} is unsafe for method "
                    f"{method!r} (requires {gen_obj.requirement}); the "
                    "streamed match set would drop pairs"
                )
        return generator
    if not sample:
        return "all-pairs"
    planner = JoinPlanner(sample, roster, k=k, theta=theta, scheme=kind)
    best = next(
        c
        for c in planner.generator_costs(method)
        if c.safe and c.name in STREAM_GENERATORS
    )
    return best.name


def join_stream(
    source: ChunkSource | Path | str,
    roster: Sequence[str] | Path | str,
    method: str = "FPDL",
    *,
    k: int = 1,
    theta: float = 0.8,
    levels: int = 2,
    generator: str = "auto",
    backend: str = "auto",
    workers: int | None = None,
    chunk_rows: int | None = None,
    memory_budget_mb: float | None = None,
    fmt: str = "auto",
    column: str | int | None = None,
    spill: Path | str | None = None,
    spill_format: str = "jsonl",
    spill_limit: int = 8 << 20,
    spill_values: bool = False,
    checkpoint: Path | str | None = None,
    resume: bool = False,
    max_chunks: int | None = None,
    collector: StatsCollector | None = None,
    metrics=None,
    events=None,
) -> StreamResult:
    """Join a disk-resident dataset against an in-memory roster.

    Parameters mirror :func:`repro.core.plan.join` where they overlap;
    the streaming-specific ones:

    source:
        A :class:`ChunkSource`, or a path routed through
        :func:`source_for` (``fmt``/``column`` select the reader).
    roster:
        The small side — a string list, or a path loaded via
        :func:`repro.io.read_strings` (gzip-aware).
    chunk_rows / memory_budget_mb:
        Chunk sizing (see :func:`resolve_chunk_rows`).
    spill:
        Match output file; matches stream to it instead of
        accumulating in RAM.  Required when checkpointing.
    checkpoint / resume:
        Checkpoint file path; ``resume=True`` continues from it when it
        exists (a missing file just starts fresh).  On successful
        completion the checkpoint is removed.
    max_chunks:
        Stop (checkpoint intact) after this many chunks — operational
        pause/test hook; the result reports ``completed=False``.

    Returns a :class:`StreamResult`; the funnel lands on ``collector``
    (or a fresh one) and satisfies conservation across resumes.
    """
    t0 = time.perf_counter()
    obs = collector if collector is not None else StatsCollector("join-stream")
    metrics = metrics if metrics is not None else NullMetricsRegistry()
    events = events if events is not None else NULL_EVENTS
    if backend not in _STREAM_BACKENDS and backend != "auto":
        raise ValueError(
            f"unknown stream backend {backend!r}; expected one of "
            f"{_STREAM_BACKENDS} or 'auto'"
        )
    if not isinstance(source, ChunkSource):
        source = source_for(source, fmt=fmt, column=column)
    if isinstance(roster, (str, Path)):
        roster = read_strings(roster)
    else:
        roster = list(roster)
    if not roster:
        raise ValueError("join_stream needs a non-empty roster")
    if checkpoint is not None and spill is None:
        raise ValueError(
            "checkpointing requires a spill file: the checkpoint records "
            "the spill's durable byte count (in-memory matches cannot "
            "survive the crash being checkpointed against)"
        )
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    chunk_rows = resolve_chunk_rows(chunk_rows, memory_budget_mb)
    spill = Path(spill) if spill is not None else None
    checkpoint = Path(checkpoint) if checkpoint is not None else None

    # One small read of the stream head: scheme detection + cost-model
    # sample for generator="auto" (re-read from offset 0 afterwards).
    sample: list[str] = []
    for head in source.chunks(min(chunk_rows, 4096)):
        sample = head.strings
        break
    kind = detect_kind(sample[:128] + roster[:128])

    ckpt = load_checkpoint(checkpoint) if (resume and checkpoint) else None
    if ckpt is not None:
        gen_name = str(ckpt.fingerprint["generator"])
        chunk_rows = int(ckpt.fingerprint["chunk_rows"])
    else:
        gen_name = _resolve_generator(
            generator, sample, roster, method=method, k=k, theta=theta,
            kind=kind,
        )
    if backend == "auto":
        if (workers or 0) > 1:
            backend = "hybrid"
        else:
            from repro.native import available as _native_available

            backend = "native" if _native_available() else "vectorized"

    fingerprint = {
        "source": source.describe,
        "roster": roster_digest(roster),
        "method": method,
        "k": k,
        "theta": theta,
        "generator": gen_name,
        "chunk_rows": chunk_rows,
        "spill_format": spill_format,
        "spill_values": bool(spill_values),
    }
    resumed_after: int | None = None
    if ckpt is not None:
        ckpt.validate(fingerprint)
        if spill is None or not spill.exists():
            raise ValueError(
                f"{checkpoint}: cannot resume, spill file {spill} is gone"
            )
        truncate_to(spill, ckpt.spill_bytes)
        ckpt.restore_funnel(obs)
        resumed_after = ckpt.chunk
        events.emit(
            "stream_resume",
            chunk=ckpt.chunk,
            rows=ckpt.rows,
            spill_bytes=ckpt.spill_bytes,
        )
    else:
        ckpt = Checkpoint(
            path=checkpoint if checkpoint else Path(os.devnull),
            fingerprint=fingerprint,
        )

    runner = _ChunkRunner(
        roster,
        method=method,
        k=k,
        theta=theta,
        kind=kind,
        levels=levels,
        generator=gen_name,
        backend=backend,
        workers=workers,
    )

    g_chunk = metrics.gauge("stream_chunk", "last completed chunk ordinal")
    c_rows = metrics.counter("stream_rows_total", "big-side rows joined")
    c_src = metrics.counter(
        "stream_source_bytes_total",
        "source progress units consumed (bytes for text/csv)",
    )
    c_matches = metrics.counter("stream_matches_total", "matches produced")
    c_spill = metrics.counter("stream_spill_bytes_total", "durable spill bytes")
    c_ckpt = metrics.counter("stream_checkpoints_total", "checkpoints written")
    h_chunk = metrics.histogram("stream_chunk_seconds", "per-chunk wall time")

    sleep_ms = float(os.environ.get(_SLEEP_ENV, "0") or 0)
    writer: SpillWriter | None = None
    matches: list[tuple[int, int]] | None = None if spill else []
    match_count = ckpt.match_count
    rows = ckpt.rows
    chunks_done = 0
    completed = False
    prefetch: _Prefetcher | None = None

    events.emit(
        "stream_start",
        method=method,
        generator=gen_name,
        backend=backend,
        n_roster=len(roster),
        chunk_rows=chunk_rows,
        resumed=resumed_after is not None,
    )

    with _TermGuard():
        try:
            runner.prepare()
            if spill is not None:
                writer = SpillWriter(
                    spill,
                    fmt=spill_format,
                    data_limit=spill_limit,
                    values=spill_values,
                    resume=resumed_after is not None,
                )
            chunk_iter = source.chunks(
                chunk_rows,
                start_token=ckpt.next_token if resumed_after is not None else None,
                start_ordinal=ckpt.chunk + 1,
                start_row=ckpt.rows,
            )
            prefetch = _Prefetcher(chunk_iter)
            completed = True
            for chunk in prefetch:
                t_chunk = time.perf_counter()
                result = runner.run_chunk(chunk.strings, obs)
                base = chunk.row_start
                chunk_matches = result.matches or []
                if writer is not None:
                    for i, j in chunk_matches:
                        writer.write(
                            base + i,
                            j,
                            chunk.strings[i] if spill_values else None,
                            roster[j] if spill_values else None,
                        )
                else:
                    matches.extend((base + i, j) for i, j in chunk_matches)
                match_count += len(chunk_matches)
                rows += len(chunk)
                chunks_done += 1
                if writer is not None:
                    writer.flush()
                ckpt.chunk = chunk.ordinal
                ckpt.next_token = chunk.end_token
                ckpt.rows = rows
                ckpt.spill_bytes = writer.bytes if writer else 0
                ckpt.match_count = match_count
                if checkpoint is not None:
                    ckpt.save(obs)
                    c_ckpt.inc()
                    events.emit(
                        "stream_checkpoint",
                        chunk=chunk.ordinal,
                        rows=rows,
                        matches=match_count,
                        spill_bytes=ckpt.spill_bytes,
                    )
                g_chunk.set(chunk.ordinal)
                c_rows.inc(len(chunk))
                c_src.inc(max(0, chunk.end_token - chunk.token))
                c_matches.inc(len(chunk_matches))
                if writer is not None:
                    c_spill.set_total(writer.bytes)
                h_chunk.observe(time.perf_counter() - t_chunk)
                if sleep_ms:
                    time.sleep(sleep_ms / 1000.0)
                if max_chunks is not None and chunks_done >= max_chunks:
                    completed = False
                    break
            if writer is not None:
                writer.close()
            if completed and checkpoint is not None:
                checkpoint.unlink(missing_ok=True)
        except BaseException:
            # Roll the spill back to the last durable checkpoint so the
            # file never holds a torn chunk (no checkpoint -> no resume
            # contract -> remove the partial file outright).
            if writer is not None:
                writer.abort(
                    ckpt.spill_bytes
                    if checkpoint is not None and ckpt.chunk >= 0
                    else None
                )
            events.emit("stream_abort", chunk=ckpt.chunk, rows=rows)
            raise
        finally:
            if prefetch is not None:
                prefetch.close()
            runner.close()

    wall = time.perf_counter() - t0
    obs.meta["stream_chunks"] = chunks_done
    obs.meta["stream_rows"] = rows
    # The per-chunk runs leave the last chunk's dimensions here; report
    # the whole stream's instead.
    obs.meta["n_left"] = rows
    obs.meta["n_right"] = len(roster)
    events.emit(
        "stream_finish",
        chunks=chunks_done,
        rows=rows,
        matches=match_count,
        completed=completed,
        wall_s=round(wall, 3),
    )
    return StreamResult(
        method=method,
        generator=gen_name,
        backend=backend,
        n_roster=len(roster),
        rows=rows,
        chunks=chunks_done,
        match_count=match_count,
        matches=matches,
        spill=spill,
        spill_bytes=writer.bytes if writer is not None else 0,
        checkpoint=checkpoint,
        resumed_after=resumed_after,
        completed=completed,
        wall_s=wall,
        collector=obs,
    )
