"""Out-of-core streaming joins: datasets bigger than RAM.

The in-memory planner (:mod:`repro.core.plan`) assumes both sides are
lists; this package removes that assumption for the *big* side.  The
roster (small side) is prepared once — index, vectorized encodings, or
a shared-memory publication broadcast to the persistent worker pool —
and the big side streams from disk in bounded chunks, with matches
spilling to disk and a checkpoint making killed runs resumable.

Layers (each usable on its own):

* :mod:`repro.stream.source` — resumable chunk readers (text / CSV /
  parquet, gzip-aware) with byte-offset resume tokens;
* :mod:`repro.stream.spill` — the bounded-buffer match spill writer and
  its reader;
* :mod:`repro.stream.checkpoint` — atomic checkpoint files carrying
  stream position, spill size and the merged funnel;
* :mod:`repro.stream.driver` — :func:`join_stream`, the chunked-scan
  broadcast-join driver tying them together.
"""

from repro.stream.checkpoint import Checkpoint, load_checkpoint, roster_digest
from repro.stream.driver import (
    DEFAULT_CHUNK_ROWS,
    ROW_FOOTPRINT,
    STREAM_GENERATORS,
    StreamResult,
    join_stream,
    resolve_chunk_rows,
)
from repro.stream.source import (
    Chunk,
    ChunkSource,
    CsvChunkSource,
    ParquetChunkSource,
    TextChunkSource,
    source_for,
)
from repro.stream.spill import SPILL_FORMATS, SpillWriter, read_spill

__all__ = [
    "join_stream",
    "StreamResult",
    "resolve_chunk_rows",
    "DEFAULT_CHUNK_ROWS",
    "ROW_FOOTPRINT",
    "STREAM_GENERATORS",
    "Chunk",
    "ChunkSource",
    "TextChunkSource",
    "CsvChunkSource",
    "ParquetChunkSource",
    "source_for",
    "SpillWriter",
    "read_spill",
    "SPILL_FORMATS",
    "Checkpoint",
    "load_checkpoint",
    "roster_digest",
]
