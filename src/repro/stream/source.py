"""Chunked, resumable input sources for the out-of-core join driver.

A *chunk source* turns a big-side dataset on disk into a sequence of
:class:`Chunk` objects — bounded string batches carrying enough
position information to resume after a crash:

* ``ordinal`` — 0-based chunk index in the stream;
* ``row_start`` — global row index of the chunk's first string (what
  spilled matches are rebased against);
* ``token`` — the source-specific resume position of the chunk's
  *start* (a byte offset for line-oriented files, a batch index for
  parquet).  Re-opening the source with ``start_token=token`` replays
  the stream from exactly this chunk, which is how a checkpointed run
  continues where it left off with an identical chunk decomposition.

Three sources cover the formats the ROADMAP names:

* :class:`TextChunkSource` — newline-delimited strings, gzip-aware via
  :func:`repro.io.open_text` (offsets are in uncompressed coordinates,
  which both plain and gzip handles can seek to);
* :class:`CsvChunkSource` — one named (or positional) column of a CSV
  file.  Rows are framed by physical lines, so quoted embedded
  newlines are rejected up front — streaming resumability needs
  line-addressable rows;
* :class:`ParquetChunkSource` — one column of a parquet/arrow file via
  ``pyarrow`` (import-guarded: constructing it without pyarrow raises
  a clear error instead of the package failing to import).

All sources skip empty values (matching :func:`repro.io.read_strings`
semantics, so a streamed join equals its in-memory counterpart row for
row).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.io import open_text

__all__ = [
    "Chunk",
    "ChunkSource",
    "TextChunkSource",
    "CsvChunkSource",
    "ParquetChunkSource",
    "source_for",
]


@dataclass(frozen=True)
class Chunk:
    """One bounded batch of big-side strings with resume coordinates."""

    ordinal: int
    row_start: int
    #: source position of the chunk start (opaque; JSON-serialisable)
    token: int
    strings: list[str]
    #: source position just past the chunk (the next chunk's token)
    end_token: int

    def __len__(self) -> int:
        return len(self.strings)


class ChunkSource:
    """Protocol: replayable chunk iteration over one on-disk dataset."""

    #: stable identity string folded into the checkpoint fingerprint
    describe: str = ""

    def chunks(
        self,
        chunk_rows: int,
        *,
        start_token: int | None = None,
        start_ordinal: int = 0,
        start_row: int = 0,
    ) -> Iterator[Chunk]:
        """Yield :class:`Chunk` batches of at most ``chunk_rows`` rows.

        ``start_token``/``start_ordinal``/``start_row`` come from a
        checkpoint: iteration resumes at that source position with
        chunk ordinals and global row numbering continuing seamlessly.
        """
        raise NotImplementedError


class TextChunkSource(ChunkSource):
    """Newline-delimited strings (the ``match``/``dedupe`` file format)."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self.describe = f"text:{self.path}"

    def chunks(
        self,
        chunk_rows: int,
        *,
        start_token: int | None = None,
        start_ordinal: int = 0,
        start_row: int = 0,
    ) -> Iterator[Chunk]:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        with open_text(self.path) as fh:
            if start_token:
                fh.seek(start_token)
            ordinal, row = start_ordinal, start_row
            while True:
                token = fh.tell()
                strings: list[str] = []
                while len(strings) < chunk_rows:
                    line = fh.readline()
                    if not line:
                        break
                    line = line.strip()
                    if line:
                        strings.append(line)
                if not strings:
                    return
                yield Chunk(ordinal, row, token, strings, fh.tell())
                ordinal += 1
                row += len(strings)


class CsvChunkSource(ChunkSource):
    """One column of a CSV file, framed by physical lines.

    ``column`` is a header name (matched case-insensitively) or a
    0-based index when the file has no header (``header=False``).
    Quoted fields are parsed per line; a row whose quoting spans lines
    raises, since byte-offset resumability requires line-addressable
    rows.
    """

    def __init__(
        self,
        path: Path | str,
        column: str | int = 0,
        *,
        header: bool = True,
    ):
        self.path = Path(path)
        self.column = column
        self.header = bool(header)
        self.describe = f"csv:{self.path}:{column}"

    def _resolve_column(self, fh) -> tuple[int, int]:
        """(column index, data start offset) after the optional header."""
        if not self.header:
            if isinstance(self.column, str):
                raise ValueError(
                    "header=False requires a numeric column index, got "
                    f"{self.column!r}"
                )
            return int(self.column), 0
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{self.path}: empty file, expected a CSV header")
        names = next(csv.reader([header_line]))
        if isinstance(self.column, int):
            if not 0 <= self.column < len(names):
                raise ValueError(
                    f"{self.path}: column index {self.column} out of range "
                    f"for header {names}"
                )
            return self.column, fh.tell()
        wanted = self.column.strip().lower()
        for idx, name in enumerate(names):
            if name.strip().lower() == wanted:
                return idx, fh.tell()
        raise ValueError(
            f"{self.path}: no column {self.column!r} in header {names}"
        )

    @staticmethod
    def _parse(line: str, col: int, path: Path) -> str:
        # An odd number of quotes means the logical row continues on the
        # next physical line — unsupported in the streaming reader.
        if line.count('"') % 2:
            raise ValueError(
                f"{path}: quoted field spans lines near {line[:40]!r}; "
                "the streaming CSV reader needs line-addressable rows"
            )
        row = next(csv.reader([line]), None)
        if row is None or col >= len(row):
            return ""
        return row[col].strip()

    def chunks(
        self,
        chunk_rows: int,
        *,
        start_token: int | None = None,
        start_ordinal: int = 0,
        start_row: int = 0,
    ) -> Iterator[Chunk]:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        with open_text(self.path) as fh:
            col, data_start = self._resolve_column(fh)
            fh.seek(start_token if start_token else data_start)
            ordinal, row = start_ordinal, start_row
            while True:
                token = fh.tell()
                strings: list[str] = []
                while len(strings) < chunk_rows:
                    line = fh.readline()
                    if not line:
                        break
                    line = line.strip("\r\n")
                    if not line:
                        continue
                    value = self._parse(line, col, self.path)
                    if value:
                        strings.append(value)
                if not strings:
                    return
                yield Chunk(ordinal, row, token, strings, fh.tell())
                ordinal += 1
                row += len(strings)


class ParquetChunkSource(ChunkSource):
    """One column of a parquet file via pyarrow (import-guarded).

    The resume token is the 0-based *record batch* index: parquet has
    no byte-addressable rows, but ``iter_batches`` with a fixed
    ``batch_size`` is deterministic, so skipping ``token`` batches
    replays the stream exactly.
    """

    def __init__(self, path: Path | str, column: str):
        try:
            import pyarrow.parquet as pq  # noqa: F401
        except ImportError as exc:  # pragma: no cover - environment
            raise RuntimeError(
                "ParquetChunkSource requires pyarrow, which is not "
                "installed; convert the input to newline-delimited text "
                "or CSV, or install pyarrow"
            ) from exc
        self.path = Path(path)
        self.column = column
        self.describe = f"parquet:{self.path}:{column}"

    def chunks(
        self,
        chunk_rows: int,
        *,
        start_token: int | None = None,
        start_ordinal: int = 0,
        start_row: int = 0,
    ) -> Iterator[Chunk]:  # pragma: no cover - exercised only with pyarrow
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        import pyarrow.parquet as pq

        pf = pq.ParquetFile(self.path)
        ordinal, row = start_ordinal, start_row
        batch_index = 0
        skip = int(start_token or 0)
        for batch in pf.iter_batches(
            batch_size=chunk_rows, columns=[self.column]
        ):
            token, batch_index = batch_index, batch_index + 1
            if token < skip:
                continue
            strings = [
                s.strip()
                for s in batch.column(0).to_pylist()
                if s is not None and s.strip()
            ]
            if not strings:
                continue
            yield Chunk(ordinal, row, token, strings, batch_index)
            ordinal += 1
            row += len(strings)


def source_for(
    path: Path | str,
    *,
    fmt: str = "auto",
    column: str | int | None = None,
) -> ChunkSource:
    """Build the right :class:`ChunkSource` for ``path``.

    ``fmt="auto"`` routes on the (gzip-stripped) suffix: ``.csv`` to
    the CSV reader, ``.parquet``/``.arrow`` to pyarrow, anything else
    to newline-delimited text.  ``column`` selects the CSV/parquet
    column (CSV defaults to the first).
    """
    path = Path(path)
    if fmt == "auto":
        suffix = path.suffixes[-2] if path.suffix == ".gz" and len(
            path.suffixes
        ) > 1 else path.suffix
        if suffix == ".csv":
            fmt = "csv"
        elif suffix in (".parquet", ".arrow"):
            fmt = "parquet"
        else:
            fmt = "text"
    if fmt == "text":
        return TextChunkSource(path)
    if fmt == "csv":
        return CsvChunkSource(path, 0 if column is None else column)
    if fmt == "parquet":
        if column is None or isinstance(column, int):
            raise ValueError("parquet sources need a column name")
        return ParquetChunkSource(path, column)
    raise ValueError(
        f"unknown stream format {fmt!r}; expected text, csv or parquet"
    )
