"""Incremental match spill with a bounded in-memory buffer.

The out-of-core driver cannot keep 1e7-row joins' matches in RAM, so
matches stream to disk as they are produced.  :class:`SpillWriter`
follows py_stringsimjoin's ``data_limit`` idiom: rows accumulate in an
in-memory buffer and flush to the output file whenever the buffered
payload exceeds ``data_limit`` bytes (and at every chunk boundary, so
the file never lags a checkpoint).

Two formats:

* ``jsonl`` — one ``[left_row, right_row]`` (or ``[left_row,
  right_row, left_string, right_string]`` with ``values=True``) JSON
  array per line;
* ``csv`` — the same columns with a header row.

Crash-consistency contract: the driver checkpoints ``writer.bytes``
after flushing each chunk.  On resume, :meth:`SpillWriter.truncate_to`
cuts the file back to the last checkpointed byte count, erasing any
rows a dying run appended past its final checkpoint — the resumed
stream re-emits exactly those rows, so the finished file is
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

__all__ = ["SpillWriter", "read_spill", "truncate_to", "SPILL_FORMATS"]

SPILL_FORMATS = ("jsonl", "csv")

_CSV_HEADER = "left_row,right_row\n"
_CSV_HEADER_VALUES = "left_row,right_row,left,right\n"


class SpillWriter:
    """Append match rows to ``path``, flushing on a byte budget.

    Parameters
    ----------
    path:
        Output file.  Created (with its header, for CSV) on open;
        ``resume=True`` reopens an existing file for append instead.
    fmt:
        ``"jsonl"`` or ``"csv"``.
    data_limit:
        Flush the buffer once its encoded payload reaches this many
        bytes (default 8 MiB).  This bounds spill memory, not file
        size.
    values:
        Also record the matched strings, not just row numbers.
    """

    def __init__(
        self,
        path: Path | str,
        *,
        fmt: str = "jsonl",
        data_limit: int = 8 << 20,
        values: bool = False,
        resume: bool = False,
    ):
        if fmt not in SPILL_FORMATS:
            raise ValueError(
                f"unknown spill format {fmt!r}; expected one of {SPILL_FORMATS}"
            )
        if data_limit < 1:
            raise ValueError(f"data_limit must be positive, got {data_limit}")
        self.path = Path(path)
        self.fmt = fmt
        self.data_limit = int(data_limit)
        self.values = bool(values)
        self._buffer: list[str] = []
        self._buffered_bytes = 0
        self._final_bytes = 0
        self._closed = False
        if resume and self.path.exists():
            self._fh = self.path.open("a", encoding="utf-8")
        else:
            self._fh = self.path.open("w", encoding="utf-8")
            if fmt == "csv":
                self._fh.write(
                    _CSV_HEADER_VALUES if values else _CSV_HEADER
                )
                self._fh.flush()

    # -- writing -------------------------------------------------------

    def _encode(
        self, left_row: int, right_row: int, left: str | None, right: str | None
    ) -> str:
        if self.fmt == "jsonl":
            rec: list = [left_row, right_row]
            if self.values:
                rec += [left, right]
            return json.dumps(rec, ensure_ascii=False) + "\n"
        if self.values:
            lq = (left or "").replace('"', '""')
            rq = (right or "").replace('"', '""')
            return f'{left_row},{right_row},"{lq}","{rq}"\n'
        return f"{left_row},{right_row}\n"

    def write(
        self,
        left_row: int,
        right_row: int,
        left: str | None = None,
        right: str | None = None,
    ) -> None:
        """Buffer one match row; flushes when ``data_limit`` is hit."""
        line = self._encode(left_row, right_row, left, right)
        self._buffer.append(line)
        self._buffered_bytes += len(line.encode("utf-8"))
        if self._buffered_bytes >= self.data_limit:
            self.flush()

    def write_rows(self, rows, *, base: int = 0) -> int:
        """Buffer ``(left, right)`` pairs, offsetting left by ``base``."""
        n = 0
        for i, j in rows:
            self.write(int(i) + base, int(j))
            n += 1
        return n

    def flush(self) -> None:
        """Flush the buffer and fsync so a checkpoint can trust it."""
        if self._buffer:
            self._fh.write("".join(self._buffer))
            self._buffer.clear()
            self._buffered_bytes = 0
        self._fh.flush()
        os.fsync(self._fh.fileno())

    @property
    def bytes(self) -> int:
        """Durable file size (flushed bytes; excludes the buffer)."""
        if self._closed:
            return self._final_bytes
        return self._fh.tell()

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._final_bytes = self._fh.tell()
        self._fh.close()
        self._closed = True

    def abort(self, keep_bytes: int | None = None) -> None:
        """Drop buffered rows and roll the file back.

        ``keep_bytes`` is the last checkpointed size (the file is
        truncated to it); ``None`` means no checkpoint exists and the
        file is removed outright.
        """
        self._buffer.clear()
        self._buffered_bytes = 0
        if self._closed:
            return
        self._fh.close()
        self._closed = True
        self._final_bytes = keep_bytes or 0
        if keep_bytes is None:
            self.path.unlink(missing_ok=True)
        else:
            truncate_to(self.path, keep_bytes)

    def __enter__(self) -> "SpillWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def truncate_to(path: Path | str, size: int) -> None:
    """Truncate ``path`` to exactly ``size`` bytes (resume rollback)."""
    path = Path(path)
    if path.stat().st_size < size:
        raise ValueError(
            f"{path}: {path.stat().st_size} bytes on disk but the "
            f"checkpoint recorded {size}; refusing to resume from a "
            "spill file that lost data"
        )
    with path.open("r+b") as fh:
        fh.truncate(size)


def read_spill(
    path: Path | str, *, fmt: str = "jsonl"
) -> Iterator[tuple[int, int]]:
    """Yield ``(left_row, right_row)`` pairs back out of a spill file."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        if fmt == "csv":
            next(fh, None)  # header
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if fmt == "jsonl":
                rec = json.loads(line)
                yield int(rec[0]), int(rec[1])
            else:
                parts = line.split(",", 2)
                yield int(parts[0]), int(parts[1])
