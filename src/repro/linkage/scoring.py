"""Match scoring: deterministic point-and-threshold and Fellegi-Sunter.

The paper's RL experiment (Table 6) uses "a simple deterministic point
and threshold based algorithm": each agreeing field contributes its
configured points, and a record pair whose total reaches the threshold
is a match.  :class:`PointThresholdScorer` is that model.

:class:`FellegiSunterScorer` is the probabilistic standard the paper
cites as [2]: each field carries an *m*-probability (agreement given a
true match) and a *u*-probability (agreement given a non-match); field
agreement adds ``log2(m/u)`` and disagreement adds
``log2((1-m)/(1-u))``, with upper/lower thresholds splitting pairs into
match / possible / non-match.  It is included as the extension that a
production linkage system would run on top of the same comparators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

__all__ = ["Scorer", "PointThresholdScorer", "FellegiSunterScorer", "Decision"]


class Decision:
    """Classification outcomes (string constants, not an enum, so scorer
    output drops straight into result tables)."""

    MATCH = "match"
    POSSIBLE = "possible"
    NON_MATCH = "non_match"


class Scorer:
    """Base class: agreement vector -> decision."""

    #: fields this scorer consumes, in evaluation order
    fields: tuple[str, ...] = ()

    def score(self, agreements: Mapping[str, bool]) -> float:
        raise NotImplementedError

    def classify(self, agreements: Mapping[str, bool]) -> str:
        raise NotImplementedError


@dataclass
class PointThresholdScorer(Scorer):
    """Deterministic scorer: sum of per-field points vs a threshold.

    The default configuration mirrors the relative evidential value of
    the paper's fields: SSN is the strongest quasi-identifier, names and
    birthdate carry most of the remaining signal, gender is nearly
    worthless alone.
    """

    points: Mapping[str, float] = None  # type: ignore[assignment]
    threshold: float = 10.0

    def __post_init__(self) -> None:
        if self.points is None:
            self.points = dict(DEFAULT_POINTS)
        if not self.points:
            raise ValueError("points must configure at least one field")
        self.fields = tuple(self.points)

    def score(self, agreements: Mapping[str, bool]) -> float:
        return sum(p for f, p in self.points.items() if agreements.get(f))

    def classify(self, agreements: Mapping[str, bool]) -> str:
        return (
            Decision.MATCH
            if self.score(agreements) >= self.threshold
            else Decision.NON_MATCH
        )


#: Default per-field points: SSN is the strongest quasi-identifier,
#: names and birthdate carry most of the rest, gender is nearly
#: worthless alone.  Threshold 10 requires SSN plus substantial
#: corroboration, or most of the non-SSN fields agreeing.
DEFAULT_POINTS: Mapping[str, float] = {
    "first_name": 2.0,
    "last_name": 3.0,
    "address": 2.0,
    "phone": 2.0,
    "gender": 0.5,
    "ssn": 5.0,
    "birthdate": 3.0,
}


@dataclass
class FellegiSunterScorer(Scorer):
    """Probabilistic scorer with per-field m/u probabilities.

    ``upper`` and ``lower`` are the log2-weight thresholds: at or above
    ``upper`` is a match, below ``lower`` a non-match, in between a
    possible match for clerical review.
    """

    m_probs: Mapping[str, float] = None  # type: ignore[assignment]
    u_probs: Mapping[str, float] = None  # type: ignore[assignment]
    upper: float = 10.0
    lower: float = 0.0

    def __post_init__(self) -> None:
        if self.m_probs is None:
            self.m_probs = dict(DEFAULT_M_PROBS)
        if self.u_probs is None:
            self.u_probs = dict(DEFAULT_U_PROBS)
        if set(self.m_probs) != set(self.u_probs):
            raise ValueError("m_probs and u_probs must cover the same fields")
        if self.lower > self.upper:
            raise ValueError(f"lower ({self.lower}) exceeds upper ({self.upper})")
        for f in self.m_probs:
            m, u = self.m_probs[f], self.u_probs[f]
            if not (0.0 < m < 1.0 and 0.0 < u < 1.0):
                raise ValueError(f"field {f}: m and u must lie strictly in (0, 1)")
            if m <= u:
                raise ValueError(
                    f"field {f}: m ({m}) must exceed u ({u}) for agreement "
                    "to be evidence of a match"
                )
        self.fields = tuple(self.m_probs)
        self._agree_w = {
            f: math.log2(self.m_probs[f] / self.u_probs[f]) for f in self.fields
        }
        self._disagree_w = {
            f: math.log2((1 - self.m_probs[f]) / (1 - self.u_probs[f]))
            for f in self.fields
        }

    def score(self, agreements: Mapping[str, bool]) -> float:
        total = 0.0
        for f in self.fields:
            total += self._agree_w[f] if agreements.get(f) else self._disagree_w[f]
        return total

    def classify(self, agreements: Mapping[str, bool]) -> str:
        w = self.score(agreements)
        if w >= self.upper:
            return Decision.MATCH
        if w < self.lower:
            return Decision.NON_MATCH
        return Decision.POSSIBLE


# Plausible defaults for demographic data: high m everywhere (a true
# match rarely disagrees after single-edit-tolerant comparison); u set
# by field cardinality (gender agrees by chance half the time, SSN
# almost never).
DEFAULT_M_PROBS: Mapping[str, float] = {
    "first_name": 0.95,
    "last_name": 0.95,
    "address": 0.90,
    "phone": 0.90,
    "gender": 0.98,
    "ssn": 0.95,
    "birthdate": 0.95,
}
DEFAULT_U_PROBS: Mapping[str, float] = {
    "first_name": 0.005,
    "last_name": 0.002,
    "address": 0.001,
    "phone": 0.0001,
    "gender": 0.5,
    "ssn": 0.00005,
    "birthdate": 0.0002,
}
