"""Per-field record comparators.

A field comparator answers "do these two field values agree?" for one
schema field.  The linkage engine runs one comparator per configured
field and hands the agreement vector to the scorer.

Comparators follow the same prepared-dataset pattern as
:class:`repro.core.matchers.PreparedMatcher`: :meth:`prepare` receives
the two field-value columns once (so FBF signatures and lengths are
computed per value, not per pair), and :meth:`agrees` tests a pair by
index.  :class:`StringMatchComparator` accepts *any* method stack name
from :mod:`repro.core.matchers`, which is how the RL experiment swaps
DL / PDL / FDL / FPDL / FBF inside an otherwise identical pipeline
(Table 6's columns).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.filters import FBFFilter
from repro.core.matchers import PreparedMatcher, build_matcher
from repro.core.signatures import SignatureScheme
from repro.distance.soundex import soundex
from repro.distance.weighted import CostFn, weighted_osa

__all__ = [
    "FieldComparator",
    "ExactComparator",
    "StringMatchComparator",
    "SoundexComparator",
    "WeightedComparator",
]


class FieldComparator:
    """Base class: a named per-field agreement test."""

    def __init__(self, field: str):
        self.field = field

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        raise NotImplementedError

    def agrees(self, i: int, j: int) -> bool:
        raise NotImplementedError

    def observe(self, collector) -> None:
        """Attach a :class:`repro.obs.StatsCollector`.

        No-op by default — scalar comparators (exact, Soundex) have no
        internal funnel to report.  Must be called before
        :meth:`prepare`; the linkage engine does so.
        """


class ExactComparator(FieldComparator):
    """Byte-for-byte equality; empty values never agree.

    The paper's client system used exact matching for gender, address
    and phone.  Interning the column values lets the per-pair test be a
    pointer comparison in CPython.
    """

    def __init__(self, field: str, *, casefold: bool = False):
        super().__init__(field)
        self.casefold = casefold
        self._left: list[str] = []
        self._right: list[str] = []

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        import sys

        fold = (lambda s: s.casefold()) if self.casefold else (lambda s: s)
        self._left = [sys.intern(fold(v)) for v in left]
        self._right = [sys.intern(fold(v)) for v in right]

    def agrees(self, i: int, j: int) -> bool:
        v = self._left[i]
        return bool(v) and v is self._right[j]


class StringMatchComparator(FieldComparator):
    """Approximate agreement via any core method stack (DL, FPDL, ...).

    This is the integration point the paper proposes: drop FBF-wrapped
    edit distance into an existing record comparator without changing
    its decisions.
    """

    def __init__(
        self,
        field: str,
        method: str = "FPDL",
        k: int = 1,
        theta: float = 0.8,
        scheme: SignatureScheme | str | None = None,
    ):
        super().__init__(field)
        self.method = method
        self._k = k
        self._theta = theta
        self._scheme = scheme
        self._matcher: PreparedMatcher = build_matcher(
            method, k=k, theta=theta, scheme=scheme
        )
        self._left: Sequence[str] = ()
        self._right: Sequence[str] = ()

    def observe(self, collector) -> None:
        # Rebuild rather than assign `matcher.collector`: building with
        # the collector also wires the PDL verifier's internal tallies
        # (length_pruned / early_exit).  prepare() runs after this.
        collector.meta.setdefault("method", self.method)
        collector.meta.setdefault("k", self._k)
        self._matcher = build_matcher(
            self.method,
            k=self._k,
            theta=self._theta,
            scheme=self._scheme,
            collector=collector,
        )

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        self._left = left
        self._right = right
        self._matcher.prepare(left, right)

    def agrees(self, i: int, j: int) -> bool:
        # Empty fields carry no identity evidence (and PDL would reject
        # them anyway); keep the rule uniform across methods.
        if not self._left[i] or not self._right[j]:
            return False
        return self._matcher.matches(i, j)

    @property
    def verified_pairs(self) -> int:
        """Pairs that reached the stack's verifier (diagnostics)."""
        return self._matcher.verified_pairs


class WeightedComparator(FieldComparator):
    """Approximate agreement under weighted edit distance (extension).

    Agrees when ``weighted_osa(a, b) <= threshold``.  A pair within
    weighted threshold ``T`` can span up to ``ceil(T / min_cost)`` unit
    edits (cheap substitutions stretch the budget), so the safe FBF
    prefilter runs at that unit-edit ``k``; only survivors are priced.
    ``min_cost`` is read from the cost function's ``min_cost`` attribute
    (set by :func:`repro.distance.weighted.confusion_cost`) or passed
    explicitly.

    Example: tolerate one full edit *or* two cheap keyboard slips::

        WeightedComparator("last_name", threshold=1.0,
                           substitution_cost=keyboard_cost(0.5),
                           scheme="alpha")
    """

    def __init__(
        self,
        field: str,
        threshold: float = 1.0,
        substitution_cost: CostFn | None = None,
        scheme: SignatureScheme | str | None = None,
        min_cost: float | None = None,
    ):
        super().__init__(field)
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        self.substitution_cost = substitution_cost
        if min_cost is None:
            min_cost = getattr(substitution_cost, "min_cost", 1.0)
        if not 0.0 < min_cost <= 1.0:
            raise ValueError(f"min_cost must be in (0, 1], got {min_cost}")
        import math

        self._filter = FBFFilter(max(0, math.ceil(threshold / min_cost)), scheme)
        self._left: list[str] = []
        self._right: list[str] = []

    def prepare(self, left, right) -> None:
        self._left = list(left)
        self._right = list(right)
        self._filter.prepare(self._left, self._right)

    def agrees(self, i: int, j: int) -> bool:
        a, b = self._left[i], self._right[j]
        if not a or not b:
            return False
        if not self._filter.passes(i, j):
            return False
        return (
            weighted_osa(a, b, substitution_cost=self.substitution_cost)
            <= self.threshold
        )


class SoundexComparator(FieldComparator):
    """Phonetic agreement: equal Soundex codes.

    The method the paper's client used for names before DL; Tables 7-8
    quantify how much accuracy it costs.  Codes are computed once per
    value at prepare time.
    """

    def __init__(self, field: str):
        super().__init__(field)
        self._left_codes: list[str] = []
        self._right_codes: list[str] = []

    def prepare(self, left: Sequence[str], right: Sequence[str]) -> None:
        self._left_codes = [soundex(v) for v in left]
        self._right_codes = [soundex(v) for v in right]

    def agrees(self, i: int, j: int) -> bool:
        c = self._left_codes[i]
        return bool(c) and c == self._right_codes[j]
