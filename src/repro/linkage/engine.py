"""The end-to-end record-linkage engine.

Wires the pieces together the way the paper's department system does:

1. **candidate generation** — full product by default (the paper's RL
   experiment) or any :class:`repro.linkage.blocking.BlockingMethod`,
   wrapped in the plan layer's :class:`repro.core.plan.
   BlockingKeyGenerator` so blocking is just another candidate
   generator;
2. **field comparison** — one prepared comparator per configured field;
3. **scoring & classification** — a :class:`repro.linkage.scoring.Scorer`;
4. **accounting** — confusion counts against the positional ground truth
   (record ``i`` of the clean set is record ``i`` of the error set).

The Table 6 experiment is: build an engine whose name/address/phone/
SSN/birthdate comparators all use method *X* in
{DL, PDL, FDL, FPDL, FBF}, run it over 1000 clean vs 1000 corrupted
records, and compare wall time — the decisions are identical for every
DL-wrapped stack, which the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.linkage.blocking import BlockingMethod, FullProduct
from repro.linkage.comparators import (
    ExactComparator,
    FieldComparator,
    StringMatchComparator,
)
from repro.linkage.records import FIELDS, Record
from repro.linkage.scoring import Decision, PointThresholdScorer, Scorer
from repro.obs.log import get_logger
from repro.obs.stats import NULL_COLLECTOR

__all__ = ["LinkageEngine", "LinkageResult", "default_engine"]

_log = get_logger("linkage.engine")


@dataclass
class LinkageResult:
    """Confusion summary of one linkage run."""

    n_left: int
    n_right: int
    candidates: int = 0
    true_positives: int = 0
    false_positives: int = 0
    possibles: int = 0
    matches: list[tuple[int, int]] = field(default_factory=list)

    @property
    def false_negatives(self) -> int:
        """Ground-truth pairs not declared matches (diagonal misses)."""
        return min(self.n_left, self.n_right) - self.true_positives

    @property
    def true_negatives(self) -> int:
        total = self.n_left * self.n_right
        return total - self.true_positives - self.false_positives - self.false_negatives

    @property
    def precision(self) -> float:
        declared = self.true_positives + self.false_positives
        return self.true_positives / declared if declared else 0.0

    @property
    def recall(self) -> float:
        truth = min(self.n_left, self.n_right)
        return self.true_positives / truth if truth else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


class LinkageEngine:
    """Configured linkage pipeline over two record sets."""

    def __init__(
        self,
        comparators: Sequence[FieldComparator],
        scorer: Scorer | None = None,
        blocking: BlockingMethod | None = None,
        *,
        blocking_field: str = "last_name",
        record_matches: bool = False,
        collector=None,
    ):
        if not comparators:
            raise ValueError("at least one field comparator is required")
        fields = [c.field for c in comparators]
        if len(set(fields)) != len(fields):
            raise ValueError(f"duplicate comparator fields: {fields}")
        unknown = set(fields) - set(FIELDS)
        if unknown:
            raise ValueError(f"unknown fields: {sorted(unknown)}")
        self.comparators = list(comparators)
        self.scorer = scorer or PointThresholdScorer()
        self.blocking = blocking or FullProduct()
        self.blocking_field = blocking_field
        self.record_matches = record_matches
        self.collector = collector

    def link(
        self,
        left: Sequence[Record],
        right: Sequence[Record],
        *,
        pairs: Iterable[tuple[int, int]] | None = None,
        collector=None,
    ) -> LinkageResult:
        """Run the pipeline; ground truth is positional (``i == j``).

        ``collector`` (or one set on the engine) receives the run-level
        funnel — blocking reduction, candidates scored, declared
        matches — with one child collector per string-matched field
        holding that field's own filter-and-verify funnel.
        """
        obs = collector if collector else (
            self.collector if self.collector else NULL_COLLECTOR
        )
        if obs:
            obs.meta["n_left"] = len(left)
            obs.meta["n_right"] = len(right)
            obs.meta.setdefault("blocking", self.blocking.name)
            for c in self.comparators:
                c.observe(obs.child(f"field.{c.field}"))
        with obs.span("linkage.prepare"):
            columns_left = {
                c.field: [r[c.field] for r in left] for c in self.comparators
            }
            columns_right = {
                c.field: [r[c.field] for r in right] for c in self.comparators
            }
            for c in self.comparators:
                c.prepare(columns_left[c.field], columns_right[c.field])
        blocked = pairs is None
        if blocked:
            # Blocking is a plan-layer candidate generator; the wrapper
            # preserves each method's own pairs/pairs_observed semantics
            # (StandardBlocking's block-size profile included).
            from repro.core.plan import BlockingKeyGenerator

            generator = BlockingKeyGenerator(self.blocking)
            key_left = [r[self.blocking_field] for r in left]
            key_right = [r[self.blocking_field] for r in right]
            if obs:
                pairs = generator.key_pairs_observed(key_left, key_right, obs)
            else:
                pairs = generator.key_pairs(key_left, key_right)
        result = LinkageResult(len(left), len(right))
        classify = self.scorer.classify
        comparators = self.comparators
        with obs.span("linkage.pairs"):
            for i, j in pairs:
                result.candidates += 1
                agreements = {c.field: c.agrees(i, j) for c in comparators}
                decision = classify(agreements)
                if decision == Decision.MATCH:
                    if i == j:
                        result.true_positives += 1
                    else:
                        result.false_positives += 1
                    if self.record_matches:
                        result.matches.append((i, j))
                elif decision == Decision.POSSIBLE:
                    result.possibles += 1
        if obs:
            # Run-level funnel: blocking (recorded by pairs_observed as a
            # stage when it ran) narrows the product to the candidates,
            # every candidate is scored ("verified"), matches come out.
            obs.add_pairs(
                len(left) * len(right) if blocked else result.candidates
            )
            obs.add_survivors(result.candidates)
            obs.add_verified(result.candidates)
            obs.add_matched(result.true_positives + result.false_positives)
            obs.meta["possibles"] = result.possibles
        _log.debug(
            "linked %d x %d: %d candidates, %d matches (%d true)",
            len(left), len(right), result.candidates,
            result.true_positives + result.false_positives,
            result.true_positives,
        )
        return result


def default_engine(
    method: str = "FPDL",
    k: int = 1,
    *,
    scorer: Scorer | None = None,
    blocking: BlockingMethod | None = None,
    collector=None,
) -> LinkageEngine:
    """The paper's RL configuration with method ``X`` in the string slots.

    Exact match for gender; approximate string matching (method
    ``method``) for first/last name, address, phone, SSN and birthdate —
    the fields the paper replaced Soundex/exact comparisons with edit
    distance on.
    """
    comparators: list[FieldComparator] = [
        StringMatchComparator("first_name", method, k, scheme="alpha"),
        StringMatchComparator("last_name", method, k, scheme="alpha"),
        StringMatchComparator("address", method, k, scheme="alnum"),
        StringMatchComparator("phone", method, k, scheme="numeric"),
        ExactComparator("gender"),
        StringMatchComparator("ssn", method, k, scheme="numeric"),
        StringMatchComparator("birthdate", method, k, scheme="numeric"),
    ]
    return LinkageEngine(
        comparators, scorer=scorer, blocking=blocking, collector=collector
    )
