"""EM estimation of Fellegi-Sunter m/u parameters (extension).

The probabilistic scorer (paper ref [2]) needs per-field
m-probabilities (agreement given a true match) and u-probabilities
(agreement given a non-match).  In practice these are estimated from
unlabelled comparison data with the classic two-class EM of Winkler:

* E-step — for each observed agreement *pattern*, the posterior
  probability it came from the match class;
* M-step — re-estimate ``p`` (match prevalence) and each field's m/u
  from the pattern posteriors, assuming conditional independence of
  fields given the class.

Patterns are aggregated (there are at most 2^#fields of them), so one
iteration costs O(patterns * fields) regardless of how many record
pairs were sampled.

Typical use::

    patterns = collect_patterns(engine_comparators, left, right, pairs)
    est = estimate_fs_parameters(patterns)
    scorer = est.to_scorer(upper=..., lower=...)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.linkage.comparators import FieldComparator
from repro.linkage.scoring import FellegiSunterScorer

__all__ = ["EMEstimate", "estimate_fs_parameters", "collect_patterns"]

_EPS = 1e-6


@dataclass(frozen=True)
class EMEstimate:
    """Converged EM parameters."""

    fields: tuple[str, ...]
    m_probs: Mapping[str, float]
    u_probs: Mapping[str, float]
    #: estimated prior probability that a random pair is a match
    match_prevalence: float
    iterations: int
    log_likelihood: float

    def to_scorer(self, upper: float = 10.0, lower: float = 0.0) -> FellegiSunterScorer:
        """A scorer configured with the estimated parameters.

        Fields whose estimated m does not exceed u carry no evidence and
        are dropped (FellegiSunterScorer requires m > u).
        """
        keep = [f for f in self.fields if self.m_probs[f] > self.u_probs[f]]
        if not keep:
            raise ValueError("no field has m > u; estimation degenerated")
        return FellegiSunterScorer(
            m_probs={f: self.m_probs[f] for f in keep},
            u_probs={f: self.u_probs[f] for f in keep},
            upper=upper,
            lower=lower,
        )


def collect_patterns(
    comparators: Sequence[FieldComparator],
    left: Sequence[object],
    right: Sequence[object],
    pairs: Iterable[tuple[int, int]],
) -> Counter:
    """Aggregate agreement patterns over candidate pairs.

    ``left``/``right`` are records; each comparator is prepared on its
    field column and evaluated per pair.  Returns a Counter mapping
    agreement tuples (ordered like ``comparators``) to pair counts.
    """
    for c in comparators:
        c.prepare([r[c.field] for r in left], [r[c.field] for r in right])
    patterns: Counter = Counter()
    for i, j in pairs:
        patterns[tuple(c.agrees(i, j) for c in comparators)] += 1
    return patterns


def estimate_fs_parameters(
    patterns: Mapping[tuple[bool, ...], int],
    fields: Sequence[str] | None = None,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    initial_prevalence: float = 0.01,
    initial_m: float = 0.9,
    initial_u: float = 0.1,
) -> EMEstimate:
    """Two-class EM over aggregated agreement patterns.

    ``patterns`` maps each boolean agreement tuple to its observed
    count; ``fields`` names the tuple positions (defaults to
    ``f0..fN``).  Converges when the total log-likelihood improves by
    less than ``tolerance``.
    """
    if not patterns:
        raise ValueError("patterns must be non-empty")
    n_fields = len(next(iter(patterns)))
    if n_fields == 0:
        raise ValueError("patterns must cover at least one field")
    if any(len(p) != n_fields for p in patterns):
        raise ValueError("all patterns must have the same arity")
    field_names = tuple(fields) if fields else tuple(f"f{i}" for i in range(n_fields))
    if len(field_names) != n_fields:
        raise ValueError(
            f"{len(field_names)} field names for {n_fields}-ary patterns"
        )
    total = sum(patterns.values())
    import math

    p = min(max(initial_prevalence, _EPS), 1 - _EPS)
    m = [initial_m] * n_fields
    u = [initial_u] * n_fields
    prev_ll = -math.inf
    iterations = 0
    ll = prev_ll
    for iterations in range(1, max_iterations + 1):
        # E-step: posterior match probability per pattern.
        weights: dict[tuple[bool, ...], float] = {}
        ll = 0.0
        for pattern, count in patterns.items():
            pm = p
            pu = 1.0 - p
            for idx, agrees in enumerate(pattern):
                pm *= m[idx] if agrees else (1.0 - m[idx])
                pu *= u[idx] if agrees else (1.0 - u[idx])
            denom = pm + pu
            weights[pattern] = pm / denom if denom > 0 else 0.0
            ll += count * math.log(max(denom, 1e-300))
        # M-step.
        match_mass = sum(weights[pt] * c for pt, c in patterns.items())
        unmatch_mass = total - match_mass
        p = min(max(match_mass / total, _EPS), 1 - _EPS)
        for idx in range(n_fields):
            agree_m = sum(
                weights[pt] * c for pt, c in patterns.items() if pt[idx]
            )
            agree_u = sum(
                (1.0 - weights[pt]) * c for pt, c in patterns.items() if pt[idx]
            )
            m[idx] = min(max(agree_m / max(match_mass, _EPS), _EPS), 1 - _EPS)
            u[idx] = min(max(agree_u / max(unmatch_mass, _EPS), _EPS), 1 - _EPS)
        if abs(ll - prev_ll) < tolerance:
            break
        prev_ll = ll
    return EMEstimate(
        fields=field_names,
        m_probs=dict(zip(field_names, m)),
        u_probs=dict(zip(field_names, u)),
        match_prevalence=p,
        iterations=iterations,
        log_likelihood=ll,
    )
