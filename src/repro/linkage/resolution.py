"""Entity resolution: from pairwise matches to identity clusters.

The paper's conclusion states the project goal: "implement a distributed
in-memory data graph to process demographic data and resolve entities
within the data".  This module is that resolution layer: pairwise match
decisions (from the string join or the record-linkage engine) become an
undirected match graph whose connected components are the resolved
entities.

* :class:`UnionFind` — path-halving union-find with union by size.
* :func:`resolve` — one-shot clustering of a match-pair list.
* :class:`EntityResolver` — the *incremental* variant for the paper's
  nightly-update scenario: new records are matched only against the
  existing population (via an :class:`repro.core.index.FBFIndex` per
  field) and merged into the running clusters — no full re-join.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping, Sequence

from repro.core.index import FBFIndex
from repro.linkage.records import Record
from repro.linkage.scoring import Decision, PointThresholdScorer, Scorer

__all__ = ["UnionFind", "resolve", "EntityResolver", "resolve_sources"]


class UnionFind:
    """Disjoint sets over a growable range of integer ids."""

    def __init__(self, n: int = 0):
        self._parent = list(range(n))
        self._size = [1] * n

    def add(self) -> int:
        """Create a fresh singleton; returns its id."""
        sid = len(self._parent)
        self._parent.append(sid)
        self._size.append(1)
        return sid

    def find(self, x: int) -> int:
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def components(self) -> list[list[int]]:
        """All sets, each sorted, ordered by smallest member."""
        groups: dict[int, list[int]] = defaultdict(list)
        for x in range(len(self._parent)):
            groups[self.find(x)].append(x)
        return sorted(groups.values(), key=lambda g: g[0])

    def __len__(self) -> int:
        return len(self._parent)


def resolve(n: int, matches: Iterable[tuple[int, int]]) -> list[list[int]]:
    """Connected components of ``n`` items under the given match pairs.

    >>> resolve(4, [(0, 2), (2, 3)])
    [[0, 2, 3], [1]]
    """
    uf = UnionFind(n)
    for a, b in matches:
        uf.union(a, b)
    return uf.components()


class EntityResolver:
    """Incremental identity resolution over demographic records.

    Each configured field gets an FBF index; an incoming record is
    matched against *candidates* that share at least one field within
    ``k`` edits (the safe-filter analogue of multi-key blocking), the
    scorer decides true matches, and union-find maintains the entity
    clusters.  Adding a record is therefore sub-linear in the
    population instead of one full O(n) comparison pass — the property
    the paper's daily-update requirement needs.
    """

    #: fields indexed for candidate generation, with signature kinds
    DEFAULT_INDEX_FIELDS: Mapping[str, str] = {
        "last_name": "alpha",
        "ssn": "numeric",
        "phone": "numeric",
        "birthdate": "numeric",
    }

    def __init__(
        self,
        scorer: Scorer | None = None,
        *,
        k: int = 1,
        index_fields: Mapping[str, str] | None = None,
    ):
        self.scorer = scorer or PointThresholdScorer()
        self.k = k
        self.index_fields = dict(index_fields or self.DEFAULT_INDEX_FIELDS)
        self._records: list[Record] = []
        self._uf = UnionFind()
        self._indexes: dict[str, FBFIndex] = {
            field: FBFIndex(scheme=kind)
            for field, kind in self.index_fields.items()
        }

    def __len__(self) -> int:
        return len(self._records)

    def add(self, record: Record) -> int:
        """Ingest one record; returns its entity root after merging."""
        rid = len(self._records)
        candidates: set[int] = set()
        for field, index in self._indexes.items():
            value = record[field]
            if value:
                candidates.update(index.search(value, self.k))
        self._records.append(record)
        self._uf.add()
        for cid in candidates:
            if self._matches(record, self._records[cid]):
                self._uf.union(rid, cid)
        for field, index in self._indexes.items():
            index.add(record[field])
        return self._uf.find(rid)

    def add_all(self, records: Sequence[Record]) -> None:
        for r in records:
            self.add(r)

    def _matches(self, a: Record, b: Record) -> bool:
        from repro.distance.pruned import pdl

        agreements = {}
        for field in self.scorer.fields:
            va, vb = a[field], b[field]
            if not va or not vb:
                agreements[field] = False
            elif va == vb:
                agreements[field] = True
            else:
                agreements[field] = pdl(va, vb, self.k)
        return self.scorer.classify(agreements) == Decision.MATCH

    def entity_of(self, rid: int) -> int:
        """Current entity root of record ``rid``."""
        return self._uf.find(rid)

    def entities(self) -> list[list[int]]:
        """All entity clusters (record-id lists)."""
        return self._uf.components()

    def entity_count(self) -> int:
        return len(self.entities())


def resolve_sources(
    sources: Mapping[str, Sequence[Record]],
    *,
    resolver: EntityResolver | None = None,
) -> dict[int, list[tuple[str, int]]]:
    """Cross-database identity resolution — the paper's motivating task.

    The department "needs to match client records across 11 independent
    health and social sciences databases without a reliable unique
    identifier".  This helper streams every source through one
    incremental :class:`EntityResolver` and returns the global entity
    map: entity root -> list of ``(source_name, row_index)`` —
    the "which rows, in which databases, are the same person" answer.

    >>> # doctest-level sketch; see tests for real data
    >>> from repro.linkage.records import Record  # doctest: +SKIP
    """
    # Explicit None test: an empty EntityResolver is falsy (len 0), and
    # `resolver or ...` would silently discard a caller-provided one.
    if resolver is None:
        resolver = EntityResolver()
    provenance: list[tuple[str, int]] = []
    for name, records in sources.items():
        for row, record in enumerate(records):
            resolver.add(record)
            provenance.append((name, row))
    entities: dict[int, list[tuple[str, int]]] = {}
    for rid, origin in enumerate(provenance):
        root = resolver.entity_of(rid)
        entities.setdefault(root, []).append(origin)
    return entities
