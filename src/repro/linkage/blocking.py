"""Traditional blocking methods (paper Section 1's related work).

Blocking restricts the candidate pair space before comparison.  The
paper argues that key-based blocking is brittle — errors in the blocking
key silently drop true matches — and positions FBF as a *safe* per-pair
filter instead (or as a wrapper inside a blocked system).  To make that
comparison runnable, the four methods its introduction cites are
implemented here:

* :class:`StandardBlocking` — records sharing a blocking-key value form
  a block; only intra-block pairs are compared (paper ref [7]).
* :class:`SortedNeighbourhood` — records sorted by key; a sliding window
  of size ``w`` over the merged order generates candidates (ref [8]).
* :class:`BigramIndexing` — each record is indexed under the sorted
  bigrams of its key; records sharing any bigram (or a sub-list
  combination, per the Febrl manual, ref [9]) become candidates.
* :class:`CanopyClustering` — tf-idf cosine canopies over key bigrams
  with loose/tight thresholds (refs [10][11]).

Every method implements :meth:`BlockingMethod.pairs`, yielding candidate
``(i, j)`` index pairs that plug straight into
:func:`repro.core.join.match_strings` or the linkage engine.  The
benchmark suite measures their pair-reduction ratio and, crucially, their
*pairs completeness* (share of true matches retained) against the safe
FBF filter.
"""

from __future__ import annotations

import itertools
import math
from collections import Counter, defaultdict
from typing import Callable, Iterator, Sequence

__all__ = [
    "BlockingMethod",
    "FullProduct",
    "StandardBlocking",
    "SortedNeighbourhood",
    "BigramIndexing",
    "CanopyClustering",
]

KeyFn = Callable[[str], str]


def _identity(value: str) -> str:
    return value


class BlockingMethod:
    """Base class: candidate pair generation over two key columns."""

    name = "blocking"

    def pairs(
        self, left: Sequence[str], right: Sequence[str]
    ) -> Iterator[tuple[int, int]]:
        """Yield candidate ``(i, j)`` pairs (no duplicates)."""
        raise NotImplementedError

    def pairs_observed(
        self,
        left: Sequence[str],
        right: Sequence[str],
        collector,
        *,
        stage: str | None = None,
    ) -> Iterator[tuple[int, int]]:
        """:meth:`pairs`, recording the blocking funnel stage.

        The stage (named after the method by default) is recorded once
        the generator is exhausted: ``tested`` is the full product,
        ``passed`` the candidates actually emitted — the method's
        reduction ratio, live.
        """
        stage = stage or self.name
        count = 0
        for pair in self.pairs(left, right):
            count += 1
            yield pair
        collector.add_stage(stage, len(left) * len(right), count)
        collector.meta.setdefault("blocking", self.name)

    def reduction_ratio(
        self, left: Sequence[str], right: Sequence[str]
    ) -> float:
        """1 - candidates/total: how much comparison work is avoided."""
        total = len(left) * len(right)
        if total == 0:
            return 0.0
        count = sum(1 for _ in self.pairs(left, right))
        return 1.0 - count / total


class FullProduct(BlockingMethod):
    """No blocking: the full Cartesian product (the paper's default)."""

    name = "full"

    def pairs(self, left, right):
        return itertools.product(range(len(left)), range(len(right)))


class StandardBlocking(BlockingMethod):
    """Exact blocking-key equality.

    ``key`` maps a field value to its blocking key (e.g. Soundex, first
    3 characters); identity by default.  Empty keys are never blocked
    together — a missing blocking field should not create a mega-block.
    """

    name = "standard"

    def __init__(self, key: KeyFn = _identity):
        self.key = key

    def pairs(self, left, right):
        index: dict[str, list[int]] = defaultdict(list)
        for j, value in enumerate(right):
            kv = self.key(value)
            if kv:
                index[kv].append(j)
        for i, value in enumerate(left):
            kv = self.key(value)
            if not kv:
                continue
            for j in index.get(kv, ()):
                yield i, j

    def pairs_observed(self, left, right, collector, *, stage=None):
        yield from super().pairs_observed(left, right, collector, stage=stage)
        # Block-size profile: skew here is what makes key-based blocking
        # slow *and* brittle, so surface it alongside the pair counts.
        left_counts = Counter(kv for kv in map(self.key, left) if kv)
        right_counts = Counter(kv for kv in map(self.key, right) if kv)
        sizes = [
            n * right_counts[kv]
            for kv, n in left_counts.items()
            if kv in right_counts
        ]
        collector.meta["blocks"] = len(sizes)
        collector.meta["largest_block_pairs"] = max(sizes, default=0)


class SortedNeighbourhood(BlockingMethod):
    """Sliding window over the records merged in key order.

    Both datasets are sorted together by key; every left/right pair
    within ``window`` merged positions of each other is a candidate.
    ``window`` is the paper-cited method's ``w`` (must be >= 2 to pair
    anything).
    """

    name = "sorted-neighbourhood"

    def __init__(self, window: int = 5, key: KeyFn = _identity):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = window
        self.key = key

    def pairs(self, left, right):
        tagged = [(self.key(v), 0, i) for i, v in enumerate(left)]
        tagged += [(self.key(v), 1, j) for j, v in enumerate(right)]
        tagged.sort(key=lambda t: (t[0], t[1]))
        seen: set[tuple[int, int]] = set()
        for pos, (_, side, idx) in enumerate(tagged):
            hi = min(len(tagged), pos + self.window)
            for other_pos in range(pos + 1, hi):
                _, oside, oidx = tagged[other_pos]
                if side == oside:
                    continue
                pair = (idx, oidx) if side == 0 else (oidx, idx)
                if pair not in seen:
                    seen.add(pair)
                    yield pair


class BigramIndexing(BlockingMethod):
    """Febrl-style bigram indexing.

    Each key is decomposed into its sorted bigram list; with threshold
    ``t < 1``, all sub-lists of length ``ceil(t * n_bigrams)`` are also
    indexed, giving fuzzy blocking that tolerates key errors.  Records
    sharing any indexed bigram combination become candidates.
    """

    name = "bigram"

    def __init__(self, threshold: float = 1.0, key: KeyFn = _identity):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.key = key

    def _index_keys(self, value: str) -> set[tuple[str, ...]]:
        kv = self.key(value)
        bigrams = sorted({kv[i : i + 2] for i in range(len(kv) - 1)})
        if not bigrams:
            return set()
        take = max(1, math.ceil(self.threshold * len(bigrams)))
        if take >= len(bigrams):
            return {tuple(bigrams)}
        # All sub-lists of length `take` (Febrl's sub-list expansion).
        # Guard against combinatorial blow-up on very long keys.
        if math.comb(len(bigrams), take) > 512:
            return {tuple(bigrams[:take])}
        return set(itertools.combinations(bigrams, take))

    def pairs(self, left, right):
        index: dict[tuple[str, ...], list[int]] = defaultdict(list)
        for j, value in enumerate(right):
            for key in self._index_keys(value):
                index[key].append(j)
        emitted: set[tuple[int, int]] = set()
        for i, value in enumerate(left):
            for key in self._index_keys(value):
                for j in index.get(key, ()):
                    if (i, j) not in emitted:
                        emitted.add((i, j))
                        yield i, j


class CanopyClustering(BlockingMethod):
    """Canopy clustering with tf-idf cosine similarity over key bigrams.

    Canopies are grown greedily from random-order centre picks: every
    record within ``loose`` similarity of the centre joins the canopy,
    and records within ``tight`` are removed from the candidate-centre
    pool.  Candidates are left/right pairs sharing a canopy.
    """

    name = "canopy"

    def __init__(
        self,
        loose: float = 0.3,
        tight: float = 0.7,
        key: KeyFn = _identity,
    ):
        if not 0.0 <= loose <= tight <= 1.0:
            raise ValueError(
                f"need 0 <= loose <= tight <= 1, got loose={loose}, tight={tight}"
            )
        self.loose = loose
        self.tight = tight
        self.key = key

    @staticmethod
    def _bigrams(value: str) -> list[str]:
        return [value[i : i + 2] for i in range(len(value) - 1)]

    def _vectorize(self, keys: Sequence[str]) -> list[dict[str, float]]:
        docs = [self._bigrams(k) for k in keys]
        df: dict[str, int] = defaultdict(int)
        for doc in docs:
            for g in set(doc):
                df[g] += 1
        n = max(1, len(docs))
        vectors: list[dict[str, float]] = []
        for doc in docs:
            tf: dict[str, float] = defaultdict(float)
            for g in doc:
                tf[g] += 1.0
            # Smoothed idf (+1) keeps weights positive even when a
            # bigram appears in every document — otherwise two
            # identical keys would have zero vectors and similarity 0.
            vec = {g: tf[g] * (math.log((1 + n) / (1 + df[g])) + 1.0) for g in tf}
            norm = math.sqrt(sum(w * w for w in vec.values()))
            if norm > 0:
                vec = {g: w / norm for g, w in vec.items()}
            vectors.append(vec)
        return vectors

    @staticmethod
    def _cosine(a: dict[str, float], b: dict[str, float]) -> float:
        if len(b) < len(a):
            a, b = b, a
        return sum(w * b.get(g, 0.0) for g, w in a.items())

    def pairs(self, left, right):
        keys = [self.key(v) for v in left] + [self.key(v) for v in right]
        vectors = self._vectorize(keys)
        n_left = len(left)
        remaining = list(range(len(keys)))
        emitted: set[tuple[int, int]] = set()
        while remaining:
            centre = remaining[0]
            canopy = [
                idx
                for idx in remaining
                if self._cosine(vectors[centre], vectors[idx]) >= self.loose
            ]
            remaining = [
                idx
                for idx in remaining
                if idx == centre
                or self._cosine(vectors[centre], vectors[idx]) < self.tight
            ]
            remaining.remove(centre)
            lefts = [idx for idx in canopy if idx < n_left]
            rights = [idx - n_left for idx in canopy if idx >= n_left]
            for i in lefts:
                for j in rights:
                    if (i, j) not in emitted:
                        emitted.add((i, j))
                        yield i, j
