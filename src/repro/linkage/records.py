"""Demographic records: schema, generation, and corruption.

The paper's identity-resolution fields (Section 1): First Name, Last
Name, Address, Phone Number, Gender, Social Security Number and Birth
Date.  :func:`generate_records` builds synthetic client records over
those fields from the :mod:`repro.data` pools;
:class:`RecordCorruptor` produces the "error" twin of a record set the
way the paper's RL experiment (Table 6) does — single character edits —
and can additionally simulate the messier realities the introduction
reports (over 40% of SSNs missing, inconsistent values) for the
extension experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Iterator, Mapping, Sequence

from repro.data.addresses import build_address_pool
from repro.data.dates import random_birthdate
from repro.data.errors import ErrorInjector
from repro.data.names import build_first_name_pool, build_last_name_pool
from repro.data.phone import random_nanp_number
from repro.data.ssn import random_ssn

__all__ = ["FIELDS", "Record", "generate_records", "RecordCorruptor"]

#: The paper's seven demographic fields, in its order.
FIELDS: tuple[str, ...] = (
    "first_name",
    "last_name",
    "address",
    "phone",
    "gender",
    "ssn",
    "birthdate",
)

#: Fields eligible for character-level error injection (gender is a
#: single character; a "typo" there is modelled as a substitution too,
#: but it is excluded by default like the paper's exact-match fields).
DEFAULT_ERROR_FIELDS: tuple[str, ...] = (
    "first_name",
    "last_name",
    "address",
    "phone",
    "ssn",
    "birthdate",
)


@dataclass(frozen=True)
class Record:
    """One immutable client record.

    Missing values are empty strings — the convention the comparators
    expect (an empty field matches nothing, mirroring PDL's empty-string
    rejection).
    """

    first_name: str
    last_name: str
    address: str
    phone: str
    gender: str
    ssn: str
    birthdate: str

    def __getitem__(self, field_name: str) -> str:
        if field_name not in FIELDS:
            raise KeyError(field_name)
        return getattr(self, field_name)

    def replace(self, **updates: str) -> "Record":
        values = {f: getattr(self, f) for f in FIELDS}
        for key, val in updates.items():
            if key not in FIELDS:
                raise KeyError(key)
            values[key] = val
        return Record(**values)

    def items(self) -> Iterator[tuple[str, str]]:
        for f in FIELDS:
            yield f, getattr(self, f)


def generate_records(n: int, rng: random.Random) -> list[Record]:
    """``n`` synthetic client records.

    Names and addresses are sampled from pools (so realistic collisions
    occur — several clients may share a last name, as in any real
    population); phones, SSNs and birthdates are drawn per record.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    fn_pool = build_first_name_pool(max(64, min(n, 5163)), rng)
    ln_pool = build_last_name_pool(max(64, min(2 * n, 10_000)), rng)
    ad_pool = build_address_pool(max(64, n), rng)
    records = []
    for _ in range(n):
        records.append(
            Record(
                first_name=rng.choice(fn_pool),
                last_name=rng.choice(ln_pool),
                address=rng.choice(ad_pool),
                phone=random_nanp_number(rng),
                gender=rng.choice("MF"),
                ssn=random_ssn(rng),
                birthdate=random_birthdate(rng),
            )
        )
    return records


@dataclass
class RecordCorruptor:
    """Produces the error-injected twin of a record list.

    ``fields_per_record`` fields (sampled from ``error_fields``) receive
    one single-character edit each — the paper's Table 6 protocol is one
    edit per record.  ``missing_rates`` optionally blanks fields with
    the given probability *before* edit injection, simulating the
    missing-data rates the introduction reports (e.g. ``{"ssn": 0.4}``
    for "more than 40% of SSNs are missing from our data").
    """

    fields_per_record: int = 1
    error_fields: Sequence[str] = DEFAULT_ERROR_FIELDS
    missing_rates: Mapping[str, float] = dc_field(default_factory=dict)
    injector: ErrorInjector = dc_field(default_factory=ErrorInjector)

    def __post_init__(self) -> None:
        unknown = set(self.error_fields) - set(FIELDS)
        if unknown:
            raise ValueError(f"unknown error fields: {sorted(unknown)}")
        unknown = set(self.missing_rates) - set(FIELDS)
        if unknown:
            raise ValueError(f"unknown missing-rate fields: {sorted(unknown)}")
        if self.fields_per_record < 0:
            raise ValueError("fields_per_record must be >= 0")

    def corrupt(self, record: Record, rng: random.Random) -> Record:
        """One corrupted copy of ``record``."""
        updates: dict[str, str] = {}
        for f, rate in self.missing_rates.items():
            if rate > 0 and rng.random() < rate:
                updates[f] = ""
        current = record.replace(**updates) if updates else record
        editable = [f for f in self.error_fields if current[f]]
        n_edits = min(self.fields_per_record, len(editable))
        for f in rng.sample(editable, n_edits):
            updates[f] = self.injector.inject(current[f], rng)
        return record.replace(**updates) if updates else record

    def corrupt_many(
        self, records: Sequence[Record], rng: random.Random
    ) -> list[Record]:
        """Index-aligned corrupted copies."""
        return [self.corrupt(r, rng) for r in records]
