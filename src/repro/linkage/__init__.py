"""Record-linkage substrate.

The paper's motivating system is a health-department record linkage (RL)
pipeline: match client records across heterogeneous databases without a
reliable unique identifier (Section 1).  Table 6 evaluates FBF inside "a
simple deterministic point and threshold based algorithm" over records
with the paper's seven demographic fields.

This subpackage is that system, built from scratch:

* :mod:`repro.linkage.records` — the record schema (First Name, Last
  Name, Address, Phone, Gender, SSN, Birth Date), a demographic record
  generator, and record-level error injection (field edits, missing
  values, swapped fields).
* :mod:`repro.linkage.comparators` — per-field comparators: exact,
  DL/PDL thresholds and their FBF/length-filtered wrappings, Soundex,
  Jaro-Winkler.
* :mod:`repro.linkage.scoring` — the deterministic point-and-threshold
  scorer (the paper's client's method class) and a Fellegi-Sunter
  probabilistic scorer (the field's standard model, paper ref [2]) as an
  extension.
* :mod:`repro.linkage.blocking` — the four traditional blocking methods
  the paper's introduction discusses (standard blocking, sorted
  neighbourhood, bigram indexing, canopy clustering with tf-idf), so the
  "FBF as a wrapper inside a blocked system" configuration is testable.
* :mod:`repro.linkage.engine` — the end-to-end engine: candidate
  generation (full product or blocked), field comparison, scoring,
  classification, and confusion accounting against ground truth.
"""

from repro.linkage.blocking import (
    BigramIndexing,
    BlockingMethod,
    CanopyClustering,
    FullProduct,
    SortedNeighbourhood,
    StandardBlocking,
)
from repro.linkage.comparators import (
    ExactComparator,
    FieldComparator,
    SoundexComparator,
    StringMatchComparator,
    WeightedComparator,
)
from repro.linkage.em import EMEstimate, collect_patterns, estimate_fs_parameters
from repro.linkage.engine import LinkageEngine, LinkageResult, default_engine
from repro.linkage.resolution import EntityResolver, UnionFind, resolve
from repro.linkage.records import (
    FIELDS,
    Record,
    RecordCorruptor,
    generate_records,
)
from repro.linkage.scoring import (
    FellegiSunterScorer,
    PointThresholdScorer,
    Scorer,
)

__all__ = [
    "BigramIndexing",
    "BlockingMethod",
    "CanopyClustering",
    "EMEstimate",
    "EntityResolver",
    "ExactComparator",
    "FIELDS",
    "FellegiSunterScorer",
    "FieldComparator",
    "FullProduct",
    "LinkageEngine",
    "LinkageResult",
    "PointThresholdScorer",
    "Record",
    "RecordCorruptor",
    "Scorer",
    "SortedNeighbourhood",
    "SoundexComparator",
    "StandardBlocking",
    "StringMatchComparator",
    "UnionFind",
    "WeightedComparator",
    "collect_patterns",
    "default_engine",
    "estimate_fs_parameters",
    "generate_records",
    "resolve",
]
