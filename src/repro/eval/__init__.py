"""Experiment harness: the paper's evaluation, runnable.

* :mod:`repro.eval.metrics` — confusion accounting (the paper's Type 1 /
  Type 2 columns and Tables 7-8's TP/FN/FP/TN).
* :mod:`repro.eval.timing` — the paper's timing protocols (average of 5;
  or best-of-middle: 5 runs, drop fastest and slowest).
* :mod:`repro.eval.scale` — experiment sizing: reduced defaults that run
  in minutes, paper-scale via ``REPRO_PAPER_SCALE=1``.
* :mod:`repro.eval.experiments` — the string-comparison experiments
  (Tables 1-5, 12, 14, appendix), the Soundex experiments (Tables 7-8)
  and the record-linkage experiment (Table 6).
* :mod:`repro.eval.curves` — runtime-vs-n curves (Figures 7, 9),
  speedup-by-n (Table 10) and per-pair times (Figure 6).
* :mod:`repro.eval.polyfit` — quadratic fits of the curves (Tables 9, 11).
* :mod:`repro.eval.tables` — paper-style plain-text table rendering.
"""

from repro.eval.curves import CurveResult, per_pair_times, run_runtime_curve, speedup_by_n
from repro.eval.experiments import (
    MethodRow,
    RLExperimentResult,
    SoundexRow,
    StringExperimentResult,
    run_rl_experiment,
    run_soundex_experiment,
    run_string_experiment,
)
from repro.eval.figures import ascii_chart, render_curve_figure
from repro.eval.metrics import Confusion
from repro.eval.report import build_report
from repro.eval.polyfit import QuadraticFit, fit_quadratic
from repro.eval.scale import curve_sizes, paper_scale, scaled
from repro.eval.sweep import (
    SweepPoint,
    sweep_edit_threshold,
    sweep_similarity_threshold,
)
from repro.eval.tables import format_table
from repro.eval.timing import TimingProtocol, time_callable

__all__ = [
    "Confusion",
    "ascii_chart",
    "build_report",
    "render_curve_figure",
    "CurveResult",
    "MethodRow",
    "QuadraticFit",
    "RLExperimentResult",
    "SoundexRow",
    "StringExperimentResult",
    "SweepPoint",
    "TimingProtocol",
    "curve_sizes",
    "fit_quadratic",
    "format_table",
    "paper_scale",
    "per_pair_times",
    "run_rl_experiment",
    "run_runtime_curve",
    "run_soundex_experiment",
    "run_string_experiment",
    "scaled",
    "speedup_by_n",
    "sweep_edit_threshold",
    "sweep_similarity_threshold",
    "time_callable",
]
