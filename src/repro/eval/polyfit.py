"""Quadratic fits of the runtime curves (paper Tables 9 and 11).

The paper fits each method's runtime curve with Matlab's ``polyfit`` to
``a*n^2 + b*n + c`` and reads the growth-rate story off the ``a``
coefficients (FBF's is two orders of magnitude below DL's).  The same
fit here uses :func:`numpy.polyfit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.eval.curves import CurveResult

__all__ = ["QuadraticFit", "fit_quadratic", "fit_curves"]


@dataclass(frozen=True)
class QuadraticFit:
    """Coefficients of ``a*n^2 + b*n + c``."""

    a: float
    b: float
    c: float

    def predict(self, n: float) -> float:
        return self.a * n * n + self.b * n + self.c

    def asymptotic_speedup_over(self, other: "QuadraticFit") -> float:
        """``other.a / self.a``: the large-n speedup the paper projects
        (e.g. FPDL over DL at n = 500,000, Section 6)."""
        if self.a == 0:
            return float("inf")
        return other.a / self.a


def fit_quadratic(ns: Sequence[float], times_ms: Sequence[float]) -> QuadraticFit:
    """Least-squares quadratic through one runtime curve.

    Requires at least three points (the polynomial has three degrees of
    freedom).
    """
    if len(ns) != len(times_ms):
        raise ValueError(f"length mismatch: {len(ns)} ns vs {len(times_ms)} times")
    if len(ns) < 3:
        raise ValueError("a quadratic fit needs at least 3 points")
    a, b, c = np.polyfit(np.asarray(ns, dtype=float), np.asarray(times_ms, dtype=float), 2)
    return QuadraticFit(float(a), float(b), float(c))


def fit_curves(curve: CurveResult) -> dict[str, QuadraticFit]:
    """Tables 9/11: one fit per method in a curve result."""
    return {
        method: fit_quadratic(curve.ns, times)
        for method, times in curve.times_ms.items()
    }
