"""Runtime-vs-n curves (paper Figures 6, 7, 9; Table 10).

The paper's second and third experiment sets sweep the dataset size n
and record, per method, the join's wall time.  From the same sweep it
derives:

* Figure 7 / 9 — the runtime curves themselves,
* Table 9 / 11 — quadratic fits (see :mod:`repro.eval.polyfit`),
* Table 10 — the FPDL-over-DL speedup at every n,
* Figure 6 — the *average per-pair* time (runtime divided by n²),
  which the paper shows converging to a flat ~58 ns for FBF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.data.datasets import FAMILIES, dataset_for_family
from repro.eval.timing import TimingProtocol, time_callable
from repro.parallel.chunked import VectorEngine

__all__ = [
    "FIG7_METHODS",
    "FIG9_METHODS",
    "CurveResult",
    "run_runtime_curve",
    "speedup_by_n",
    "per_pair_times",
]

#: Figure 7's curve set (the paper labels the FBF-only curve "Fil").
FIG7_METHODS: tuple[str, ...] = (
    "DL",
    "PDL",
    "Jaro",
    "Wink",
    "Ham",
    "FDL",
    "FPDL",
    "FBF",
)

#: Figure 9's curve set (length-filter combinations; "Len"/"LFil" in the
#: paper are the LF and LFBF filter-only rows).
FIG9_METHODS: tuple[str, ...] = ("LDL", "LPDL", "LF", "LFDL", "LFPDL", "LFBF")


@dataclass
class CurveResult:
    """Per-method runtime samples over an n sweep."""

    family: str
    k: int
    ns: list[int]
    #: method -> time in ms, index-aligned with ``ns``
    times_ms: dict[str, list[float]] = field(default_factory=dict)

    def series(self, method: str) -> list[tuple[int, float]]:
        return list(zip(self.ns, self.times_ms[method]))


def run_runtime_curve(
    family: str = "LN",
    ns: Sequence[int] = (200, 400, 600, 800, 1000),
    *,
    methods: Sequence[str] = FIG7_METHODS,
    k: int = 1,
    theta: float = 0.8,
    seed: int = 0,
    protocol: TimingProtocol = TimingProtocol.QUICK,
    datasets_per_n: int = 1,
) -> CurveResult:
    """Time every method at every n.

    The paper drew 5 fresh clean datasets per n and applied the
    drop-extremes protocol per dataset; ``datasets_per_n`` and
    ``protocol`` control both axes (defaults keep it cheap).
    """
    if datasets_per_n < 1:
        raise ValueError("datasets_per_n must be >= 1")
    kind = FAMILIES[family].kind
    result = CurveResult(family=family, k=k, ns=list(ns))
    for m in methods:
        result.times_ms[m] = []
    for step, n in enumerate(ns):
        per_method: dict[str, list[float]] = {m: [] for m in methods}
        for rep in range(datasets_per_n):
            dp = dataset_for_family(family, n, seed=seed + 1000 * step + rep)
            join = VectorEngine(dp.clean, dp.error, k=k, theta=theta, scheme_kind=kind)
            for m in methods:
                timing, _ = time_callable(lambda m=m: join.run(m), protocol)
                per_method[m].append(timing.mean_ms)
        for m in methods:
            result.times_ms[m].append(sum(per_method[m]) / len(per_method[m]))
    return result


def speedup_by_n(
    curve: CurveResult, method: str = "FPDL", baseline: str = "DL"
) -> list[tuple[int, float]]:
    """Paper Table 10: ``baseline`` time over ``method`` time at every n."""
    if method not in curve.times_ms or baseline not in curve.times_ms:
        raise KeyError(f"curve lacks {method!r} or {baseline!r}")
    out: list[tuple[int, float]] = []
    for n, fast, slow in zip(
        curve.ns, curve.times_ms[method], curve.times_ms[baseline]
    ):
        out.append((n, slow / fast if fast > 0 else float("inf")))
    return out


def per_pair_times(
    curve: CurveResult, methods: Sequence[str] | None = None
) -> Mapping[str, list[tuple[int, float]]]:
    """Paper Figure 6: average nanoseconds per pair at every n.

    A method whose per-pair cost is flat across n (FBF's signature
    compare) shows a horizontal line; the DP methods drift with string
    mix but stay orders of magnitude higher.
    """
    methods = list(methods or curve.times_ms)
    out: dict[str, list[tuple[int, float]]] = {}
    for m in methods:
        series = []
        for n, ms in zip(curve.ns, curve.times_ms[m]):
            pairs = n * n
            series.append((pairs, ms * 1e6 / pairs))  # ms -> ns, per pair
        out[m] = series
    return out
