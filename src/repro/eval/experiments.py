"""The paper's table experiments, runnable by name.

Three runners cover every table:

* :func:`run_string_experiment` — the string-comparison protocol behind
  Tables 1-5, 12, 14 and the appendix: sample a clean/error pair from a
  data family, run each method stack over all pairs, record Type 1 /
  Type 2 / time / speedup plus the signature-generation ("Gen") row.
* :func:`run_soundex_experiment` — Tables 7-8: Soundex vs DL with the
  full TP/FN/FP/TN quadruple, on error-injected or clean (self-match)
  name data.
* :func:`run_rl_experiment` — Table 6: the deterministic
  point-and-threshold record-linkage pipeline with each method stack in
  the string-comparator slots.

Each runner drives the joins through :class:`repro.core.plan.
JoinPlanner`.  ``engine`` selects the execution backend over the full
pair product, for table fidelity: ``"vectorized"`` (the NumPy engine —
the default, and the one whose *relative* timings mirror the paper's C
implementation, see DESIGN.md) or ``"scalar"`` (the literal per-pair
reference implementation).  ``engine="planned"`` lets the planner's
cost model pick the candidate generator and backend instead — the
production path, not a paper table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.plan import JoinPlanner
from repro.core.signatures import scheme_for
from repro.core.vectorized import signatures_for_scheme
from repro.data.datasets import FAMILIES, DatasetPair, dataset_for_family
from repro.eval.metrics import Confusion
from repro.eval.timing import TimingProtocol, time_callable
from repro.linkage.engine import default_engine
from repro.linkage.records import RecordCorruptor, generate_records

__all__ = [
    "DEFAULT_TABLE_METHODS",
    "LENGTH_TABLE_METHODS",
    "MethodRow",
    "StringExperimentResult",
    "SoundexRow",
    "RLExperimentResult",
    "run_string_experiment",
    "run_soundex_experiment",
    "run_rl_experiment",
]

#: the method column of Tables 1-4 and the appendix tables
DEFAULT_TABLE_METHODS: tuple[str, ...] = (
    "DL",
    "PDL",
    "Jaro",
    "Wink",
    "Ham",
    "FDL",
    "FPDL",
    "FBF",
)

#: the method column of Tables 12 and 14 (length-filter experiments)
LENGTH_TABLE_METHODS: tuple[str, ...] = (
    "DL",
    "FPDL",
    "LDL",
    "LPDL",
    "LF",
    "LFDL",
    "LFPDL",
    "LFBF",
)


@dataclass
class MethodRow:
    """One table row: a method's accuracy and time."""

    method: str
    type1: int
    type2: int
    time_ms: float
    speedup: float | None = None
    match_count: int = 0
    verified_pairs: int = 0


@dataclass
class StringExperimentResult:
    """One full string experiment (one paper table)."""

    family: str
    n: int
    k: int
    theta: float
    engine: str
    seed: int
    rows: list[MethodRow] = field(default_factory=list)
    gen_time_ms: float = 0.0

    @property
    def gen_speedup(self) -> float | None:
        base = self.baseline_time_ms
        if base is None or self.gen_time_ms <= 0:
            return None
        return base / self.gen_time_ms

    @property
    def baseline_time_ms(self) -> float | None:
        for row in self.rows:
            if row.method == "DL":
                return row.time_ms
        return None

    def row(self, method: str) -> MethodRow:
        for r in self.rows:
            if r.method == method:
                return r
        raise KeyError(method)


def _default_theta(family: str) -> float:
    """Paper: Jaro/Wink threshold 0.8, but 0.75 for first names."""
    return 0.75 if family == "FN" else 0.8


def run_string_experiment(
    family: str,
    n: int,
    *,
    k: int = 1,
    theta: float | None = None,
    methods: Sequence[str] = DEFAULT_TABLE_METHODS,
    seed: int = 0,
    engine: str = "vectorized",
    protocol: TimingProtocol = TimingProtocol.QUICK,
    dataset: DatasetPair | None = None,
    levels: int = 2,
    collector=None,
) -> StringExperimentResult:
    """Run one of the paper's string-comparison tables.

    ``dataset`` overrides the sampled clean/error pair (used by tests
    and the curve runner); otherwise :func:`dataset_for_family` builds
    it from ``(family, n, seed)``.

    ``collector`` (a :class:`repro.obs.StatsCollector`) receives one
    child funnel per method.  The instrumented joins run *separately
    after* the timed ones, so observation never perturbs the timing
    rows.
    """
    theta = _default_theta(family) if theta is None else theta
    dp = dataset or dataset_for_family(family, n, seed)
    kind = FAMILIES[family].kind
    result = StringExperimentResult(
        family=family, n=dp.n, k=k, theta=theta, engine=engine, seed=seed
    )
    if collector:
        collector.meta.update(
            {"family": family, "n": dp.n, "k": k, "engine": engine}
        )
    result.gen_time_ms = _time_signature_generation(dp, kind, engine, protocol, levels)
    if engine not in {"vectorized", "scalar", "planned"}:
        raise ValueError(f"unknown engine {engine!r}")
    planner = JoinPlanner(
        dp.clean, dp.error, k=k, theta=theta, scheme=kind, levels=levels
    )
    # Table fidelity: the paper times every method over the full
    # product, so the generator is pinned to all-pairs unless the
    # caller asked for the planned (cost-model) path.  Cached engine
    # state is built eagerly, outside the clock, exactly as the
    # pre-planner harness constructed its join before timing.
    generator = None if engine == "planned" else "all-pairs"
    backend = None if engine == "planned" else engine
    if engine != "scalar":
        planner.prepare("vectorized")
    for m in methods:
        timing, res = time_callable(
            lambda m=m: planner.run(m, generator=generator, backend=backend),
            protocol,
        )
        result.rows.append(_row_from(m, res, dp, timing.mean_ms))
    if collector:
        for m in methods:
            planner.run(
                m,
                generator=generator,
                backend=backend,
                collector=collector.child(m),
            )
    base = result.baseline_time_ms
    if base is not None:
        for row in result.rows:
            row.speedup = base / row.time_ms if row.time_ms > 0 else None
    return result


def _row_from(method: str, res, dp: DatasetPair, time_ms: float) -> MethodRow:
    conf = Confusion(dp.n, dp.n, res.match_count, res.diagonal_matches)
    return MethodRow(
        method=method,
        type1=conf.type1,
        type2=conf.type2,
        time_ms=time_ms,
        match_count=res.match_count,
        verified_pairs=res.verified_pairs,
    )


def _time_signature_generation(
    dp: DatasetPair,
    kind: str,
    engine: str,
    protocol: TimingProtocol,
    levels: int,
) -> float:
    """The paper's "Gen" row: FBF signature generation for both lists."""
    scheme = scheme_for(kind, levels)
    if engine != "scalar":
        def gen():
            signatures_for_scheme(dp.clean, scheme)
            signatures_for_scheme(dp.error, scheme)
    else:
        def gen():
            scheme.signatures(dp.clean)
            scheme.signatures(dp.error)

    timing, _ = time_callable(gen, protocol)
    return timing.mean_ms


# ---------------------------------------------------------------------------
# Soundex experiments (Tables 7-8)
# ---------------------------------------------------------------------------


@dataclass
class SoundexRow:
    """One row of Tables 7-8: full confusion plus time."""

    label: str
    tp: int
    fn: int
    fp: int
    tn: int
    time_ms: float


def run_soundex_experiment(
    family: str = "FN",
    n: int = 500,
    *,
    mode: str = "error",
    k: int = 1,
    seed: int = 0,
    engine: str = "vectorized",
    protocol: TimingProtocol = TimingProtocol.QUICK,
) -> list[SoundexRow]:
    """Tables 7 (``mode="error"``) / 8 (``mode="clean"``): Soundex vs DL.

    In clean mode the clean list is matched against itself, so every
    diagonal pair is an exact duplicate — both methods find all true
    positives, and the comparison isolates false-positive behaviour.
    """
    if mode not in {"error", "clean"}:
        raise ValueError(f"mode must be 'error' or 'clean', got {mode!r}")
    if family not in {"FN", "LN"}:
        raise ValueError("the Soundex experiment is defined for names (FN/LN)")
    dp = dataset_for_family(family, n, seed)
    right = dp.error if mode == "error" else dp.clean
    rows: list[SoundexRow] = []
    planner = JoinPlanner(dp.clean, right, k=k, scheme="alpha")
    if engine == "vectorized":
        planner.prepare("vectorized")
    for method in ("DL", "SDX"):
        timing, res = time_callable(
            lambda method=method: planner.run(
                method, generator="all-pairs", backend=engine
            ),
            protocol,
        )
        conf = Confusion(dp.n, dp.n, res.match_count, res.diagonal_matches)
        rows.append(
            SoundexRow(
                label=f"{family}-{method}",
                tp=conf.true_positives,
                fn=conf.false_negatives,
                fp=conf.false_positives,
                tn=conf.true_negatives,
                time_ms=timing.mean_ms,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Record-linkage experiment (Table 6)
# ---------------------------------------------------------------------------


@dataclass
class RLExperimentResult:
    """Table 6: per-method wall time and speedup, plus accuracy checks."""

    n: int
    rows: list[MethodRow] = field(default_factory=list)
    gen_time_ms: float = 0.0

    @property
    def baseline_time_ms(self) -> float | None:
        for row in self.rows:
            if row.method == "DL":
                return row.time_ms
        return None

    def row(self, method: str) -> MethodRow:
        for r in self.rows:
            if r.method == method:
                return r
        raise KeyError(method)


def run_rl_experiment(
    n: int = 300,
    *,
    methods: Sequence[str] = ("DL", "PDL", "FDL", "FPDL", "FBF"),
    k: int = 1,
    seed: int = 0,
    protocol: TimingProtocol = TimingProtocol.QUICK,
    collector=None,
) -> RLExperimentResult:
    """The paper's RL experiment: ``n`` clean vs ``n`` corrupted records.

    One single-character edit per record (the Table 6 protocol), the
    deterministic point-and-threshold scorer, and the full record pair
    space.  The "Gen" time is the FBF comparators' prepare cost
    (signature generation for every field column).

    ``collector`` receives one child per method, each carrying the
    engine-level funnel plus per-field sub-funnels; as in the string
    experiment, instrumented runs happen after the timed ones.
    """
    import random

    rng = random.Random(seed)
    records = generate_records(n, rng)
    corrupted = RecordCorruptor().corrupt_many(records, rng)
    result = RLExperimentResult(n=n)
    # Gen: prepare-only cost of an FBF-filtered engine.
    gen_engine = default_engine("FBF", k)
    columns_l = {c.field: [r[c.field] for r in records] for c in gen_engine.comparators}
    columns_r = {c.field: [r[c.field] for r in corrupted] for c in gen_engine.comparators}

    def gen():
        for c in gen_engine.comparators:
            c.prepare(columns_l[c.field], columns_r[c.field])

    timing, _ = time_callable(gen, protocol)
    result.gen_time_ms = timing.mean_ms
    for m in methods:
        engine = default_engine(m, k)
        timing, link_result = time_callable(
            lambda e=engine: e.link(records, corrupted), protocol
        )
        result.rows.append(
            MethodRow(
                method=m,
                type1=link_result.false_positives,
                type2=link_result.false_negatives,
                time_ms=timing.mean_ms,
                match_count=link_result.true_positives + link_result.false_positives,
            )
        )
    if collector:
        collector.meta.update({"n": n, "k": k})
        for m in methods:
            default_engine(m, k, collector=collector.child(m)).link(
                records, corrupted
            )
    base = result.baseline_time_ms
    if base is not None:
        for row in result.rows:
            row.speedup = base / row.time_ms if row.time_ms > 0 else None
    return result
