"""Confusion accounting against the positional ground truth.

The experiments match a clean list against its error-injected twin;
``clean[i]`` truly matches ``error[i]`` and nothing else.  The paper
reports:

* **Type 1** errors — false positives: declared matches off the diagonal
  (including genuinely similar pool entries, e.g. SMITH/SMYTH; the paper
  counts those against every method equally).
* **Type 2** errors — false negatives: diagonal pairs a method failed to
  declare.

Tables 7-8 report the full TP/FN/FP/TN quadruple; :class:`Confusion`
carries both views.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Confusion"]


@dataclass(frozen=True)
class Confusion:
    """Counts over an ``n_left x n_right`` pair space with diagonal truth."""

    n_left: int
    n_right: int
    match_count: int
    diagonal_matches: int

    @property
    def true_positives(self) -> int:
        return self.diagonal_matches

    @property
    def false_positives(self) -> int:
        """The paper's Type 1 errors."""
        return self.match_count - self.diagonal_matches

    @property
    def false_negatives(self) -> int:
        """The paper's Type 2 errors."""
        return min(self.n_left, self.n_right) - self.diagonal_matches

    @property
    def true_negatives(self) -> int:
        return (
            self.n_left * self.n_right
            - self.true_positives
            - self.false_positives
            - self.false_negatives
        )

    # paper aliases
    @property
    def type1(self) -> int:
        return self.false_positives

    @property
    def type2(self) -> int:
        return self.false_negatives

    @property
    def precision(self) -> float:
        declared = self.true_positives + self.false_positives
        return self.true_positives / declared if declared else 0.0

    @property
    def recall(self) -> float:
        truth = min(self.n_left, self.n_right)
        return self.true_positives / truth if truth else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def __post_init__(self) -> None:
        if self.n_left < 0 or self.n_right < 0:
            raise ValueError("dataset sizes must be non-negative")
        if not 0 <= self.diagonal_matches <= self.match_count:
            raise ValueError(
                f"inconsistent counts: diagonal {self.diagonal_matches} "
                f"vs total {self.match_count}"
            )
        if self.diagonal_matches > min(self.n_left, self.n_right):
            raise ValueError("more diagonal matches than diagonal pairs")
