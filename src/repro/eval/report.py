"""Reproduction report assembly.

The benchmark harness saves every regenerated table under
``benchmarks/results/``.  :func:`build_report` stitches those files into
one markdown document (reproduced table next to the paper's published
one, in the paper's order) — the machine-written companion to the
hand-written analysis in EXPERIMENTS.md.

Usage::

    python -m repro.eval.report [results_dir] [output.md]
"""

from __future__ import annotations

import sys
from pathlib import Path

__all__ = ["build_report", "RESULT_ORDER"]

#: result-file stems in the paper's presentation order.
RESULT_ORDER: tuple[str, ...] = (
    "table01_ssn_k1",
    "table02_ssn_k2",
    "fig06_per_pair_time",
    "table03_lastnames",
    "table04_addresses",
    "table05_fpdl_speedup",
    "table06_record_linkage",
    "table07_soundex_error",
    "table08_soundex_clean",
    "fig07_runtime_curves",
    "table09_polyfit",
    "table10_speedup_by_n",
    "fig09_length_filter_curves",
    "table11_polyfit_length",
    "table12_ln_length_filter",
    "table13_length_histogram",
    "table14_ad_length_filter",
    "tableA1_firstnames",
    "tableA2_phones",
    "tableA3_birthdates",
)

_TITLES: dict[str, str] = {
    "table01_ssn_k1": "Table 1 — SSN, k=1",
    "table02_ssn_k2": "Table 2 — SSN, k=2",
    "fig06_per_pair_time": "Figure 6 — per-pair comparison time",
    "table03_lastnames": "Table 3 — Census last names",
    "table04_addresses": "Table 4 — street addresses",
    "table05_fpdl_speedup": "Table 5 — FPDL speedup across families",
    "table06_record_linkage": "Table 6 — record-linkage experiment",
    "table07_soundex_error": "Table 7 — Soundex vs DL (error-injected)",
    "table08_soundex_clean": "Table 8 — Soundex vs DL (clean)",
    "fig07_runtime_curves": "Figure 7 — runtime curves",
    "table09_polyfit": "Table 9 — quadratic fit coefficients",
    "table10_speedup_by_n": "Table 10 — FPDL/DL speedup by n",
    "fig09_length_filter_curves": "Figure 9 — length-filter runtime curves",
    "table11_polyfit_length": "Table 11 — length-filter fit coefficients",
    "table12_ln_length_filter": "Table 12 — LN with length filter",
    "table13_length_histogram": "Table 13 — last-name length histogram",
    "table14_ad_length_filter": "Table 14 — Ad with length filter",
    "tableA1_firstnames": "Appendix Table 9 — first names",
    "tableA2_phones": "Appendix Table 10 — phone numbers",
    "tableA3_birthdates": "Appendix Table 11 — birthdates",
}


def build_report(results_dir: Path | str) -> str:
    """Assemble the full reproduction report from saved result files.

    Experiments whose results are missing (benchmarks not run yet) are
    listed as pending rather than silently dropped, so a partial run
    still produces an honest document.
    """
    results_dir = Path(results_dir)
    sections: list[str] = [
        "# Reproduction report",
        "",
        "Generated from `benchmarks/results/` — run "
        "`pytest benchmarks/ --benchmark-only` to refresh. "
        "See EXPERIMENTS.md for analysis and DESIGN.md for the "
        "experiment-to-module index.",
    ]
    missing: list[str] = []
    for stem in RESULT_ORDER:
        path = results_dir / f"{stem}.txt"
        title = _TITLES.get(stem, stem)
        if not path.exists():
            missing.append(title)
            continue
        sections.append(f"\n## {title}\n")
        sections.append("```")
        sections.append(path.read_text().rstrip())
        sections.append("```")
    ablations = sorted(results_dir.glob("ablation_*.txt"))
    if ablations:
        sections.append("\n## Ablations\n")
        for path in ablations:
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```")
    if missing:
        sections.append("\n## Pending (benchmarks not yet run)\n")
        for title in missing:
            sections.append(f"* {title}")
    return "\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    results = Path(argv[0]) if argv else Path("benchmarks/results")
    report = build_report(results)
    if len(argv) > 1:
        Path(argv[1]).write_text(report)
        print(f"wrote {argv[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
