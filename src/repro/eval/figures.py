"""ASCII rendering of the paper's figures.

The evaluation has three figures (6, 7, 9) that are line charts.  With
no plotting stack assumed, this module renders multi-series charts as
monospace text — enough to *see* the curve shapes the paper shows (DL's
steep quadratic vs the near-flat FBF family) in a terminal, a test log,
or REPORT.md.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart", "render_curve_figure"]

#: glyphs assigned to series, in order
_GLYPHS = "*o+x#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series onto one character grid.

    Each series gets a glyph; the legend maps glyphs back to names.
    ``log_y`` plots a log10 y-axis — useful when DL and FBF live three
    orders of magnitude apart, exactly the paper's Figure 7 situation.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    if log_y:
        floor = min(y for y in ys if y > 0) if any(y > 0 for y in ys) else 1.0
        transform = lambda y: math.log10(max(y, floor))
    else:
        transform = lambda y: y
    ty = [transform(y) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, pts) in zip(_GLYPHS, series.items()):
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((transform(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph
    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{10 ** y_hi:,.0f}" if log_y else f"{y_hi:,.0f}"
    bot_label = f"{10 ** y_lo:,.0f}" if log_y else f"{y_lo:,.0f}"
    label_width = max(len(top_label), len(bot_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bot_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  {x_lo:,.0f}".ljust(width // 2)
        + f"{x_hi:,.0f}".rjust(width // 2)
    )
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(_GLYPHS, series)
    )
    unit = f"  [y: {y_label}{', log scale' if log_y else ''}]" if (y_label or log_y) else ""
    lines.append(f"legend: {legend}{unit}")
    return "\n".join(lines)


def render_curve_figure(
    curve,
    methods: Sequence[str] | None = None,
    *,
    title: str = "",
    log_y: bool = True,
) -> str:
    """Chart a :class:`repro.eval.curves.CurveResult` (Figures 7 / 9)."""
    methods = list(methods or curve.times_ms)
    series = {m: curve.series(m) for m in methods}
    return ascii_chart(
        series,
        title=title or f"runtime vs n ({curve.family}, k={curve.k})",
        log_y=log_y,
        y_label="ms",
    )
