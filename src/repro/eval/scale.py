"""Experiment sizing.

The paper's table experiments join two 5,000-string lists (25 million
pairs) and its curves sweep n from 1,000 to 18,000.  The benchmark suite
defaults to reduced sizes that preserve every qualitative result while
finishing in minutes; setting ``REPRO_PAPER_SCALE=1`` in the environment
restores the paper's sizes (budget on the order of an hour with the
vectorized engine).
"""

from __future__ import annotations

import os

__all__ = ["paper_scale", "scaled", "curve_sizes", "TABLE_N", "RL_N"]

_ENV_FLAG = "REPRO_PAPER_SCALE"

#: sample size per dataset in the table experiments
TABLE_N = {"default": 500, "paper": 5000}
#: record count in the RL experiment (Table 6)
RL_N = {"default": 300, "paper": 1000}


def paper_scale() -> bool:
    """Is paper-scale mode requested via ``REPRO_PAPER_SCALE``?"""
    return os.environ.get(_ENV_FLAG, "").strip() in {"1", "true", "yes", "on"}


def scaled(default: int, paper: int) -> int:
    """Pick a size by mode."""
    return paper if paper_scale() else default


def curve_sizes() -> list[int]:
    """The n sweep for the runtime-curve experiments (Figures 7/9).

    Paper: 1,000 to 18,000 step 1,000.  Default: 200 to 1,200 step 200 —
    six points, enough for a stable quadratic fit.
    """
    if paper_scale():
        return list(range(1000, 18001, 1000))
    return list(range(200, 1201, 200))
