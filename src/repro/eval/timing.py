"""The paper's timing protocols.

Section 5 describes two: the table experiments "were run 5 times and
their average was recorded", while the runtime-curve experiments "ran
each experiment 5 times, discarding the fastest and slowest times from
each and averaging the remaining times".  :class:`TimingProtocol`
captures both (and a quick single-run mode for tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimingProtocol", "TimingResult", "time_callable"]


@dataclass(frozen=True)
class TimingProtocol:
    """How many runs, and whether extremes are trimmed before averaging."""

    runs: int = 1
    drop_extremes: bool = False

    #: the paper's table protocol: mean of 5
    PAPER_TABLES: "TimingProtocol" = None  # type: ignore[assignment]
    #: the paper's curve protocol: 5 runs, drop min and max
    PAPER_CURVES: "TimingProtocol" = None  # type: ignore[assignment]
    #: test/CI protocol: one run
    QUICK: "TimingProtocol" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if self.drop_extremes and self.runs < 3:
            raise ValueError("dropping extremes requires at least 3 runs")


TimingProtocol.PAPER_TABLES = TimingProtocol(runs=5, drop_extremes=False)
TimingProtocol.PAPER_CURVES = TimingProtocol(runs=5, drop_extremes=True)
TimingProtocol.QUICK = TimingProtocol(runs=1, drop_extremes=False)


@dataclass(frozen=True)
class TimingResult:
    """All raw run times (ms) plus the protocol's summary."""

    times_ms: tuple[float, ...]
    mean_ms: float

    @property
    def best_ms(self) -> float:
        return min(self.times_ms)


def time_callable(
    fn: Callable[[], object],
    protocol: TimingProtocol = TimingProtocol.QUICK,
) -> tuple[TimingResult, object]:
    """Run ``fn`` under a protocol; returns the timing and the *last*
    run's return value (all runs must be deterministic, which every
    experiment here is by construction)."""
    times: list[float] = []
    value: object = None
    for _ in range(protocol.runs):
        start = time.perf_counter()
        value = fn()
        times.append((time.perf_counter() - start) * 1e3)
    summary = sorted(times)
    if protocol.drop_extremes:
        summary = summary[1:-1]
    mean = sum(summary) / len(summary)
    return TimingResult(tuple(times), mean), value
