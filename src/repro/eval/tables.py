"""Paper-style plain-text table rendering.

The benchmark harness prints each reproduced table in the paper's layout
so the two can be compared row by row.  Rendering is deliberately plain
monospace (no external dependencies) and returns strings, so the same
formatting serves tests, benchmarks and EXPERIMENTS.md generation.
"""

from __future__ import annotations

from typing import Sequence

from repro.eval.experiments import (
    RLExperimentResult,
    SoundexRow,
    StringExperimentResult,
)

__all__ = [
    "format_table",
    "format_string_experiment",
    "format_soundex_rows",
    "format_rl_experiment",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Align ``rows`` under ``headers`` (first column left, rest right)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[col]) for r in cells) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(cells):
        padded = [
            row[0].ljust(widths[0]),
            *(c.rjust(w) for c, w in zip(row[1:], widths[1:])),
        ]
        lines.append("  ".join(padded))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 0.01:
            return f"{value:.2e}"  # fit coefficients, etc.
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    if value is None:
        return "-"
    return str(value)


def format_string_experiment(result: StringExperimentResult, title: str = "") -> str:
    """Render in the layout of the paper's Tables 1-4/12/14 plus Gen."""
    headers = [result.family, "Type 1", "Type 2", "Time ms", "Speedup"]
    rows: list[list[object]] = [
        [r.method, r.type1, r.type2, r.time_ms, r.speedup] for r in result.rows
    ]
    rows.append(["Gen", "", "", result.gen_time_ms, result.gen_speedup])
    heading = title or (
        f"{result.family} experiment: n={result.n}, k={result.k}, "
        f"theta={result.theta:g}, engine={result.engine}"
    )
    return format_table(headers, rows, heading)


def format_soundex_rows(rows: Sequence[SoundexRow], title: str = "") -> str:
    """Render in the layout of the paper's Tables 7-8."""
    headers = ["", "TP", "FN", "FP", "TN", "Time ms"]
    body = [[r.label, r.tp, r.fn, r.fp, r.tn, r.time_ms] for r in rows]
    return format_table(headers, body, title)


def format_rl_experiment(result: RLExperimentResult, title: str = "") -> str:
    """Render in the layout of the paper's Table 6 (transposed)."""
    headers = ["RL", "Time ms", "Speedup", "FP", "FN"]
    rows: list[list[object]] = [
        [r.method, r.time_ms, r.speedup, r.type1, r.type2] for r in result.rows
    ]
    rows.append(["Gen", result.gen_time_ms, None, "", ""])
    heading = title or f"RL experiment: n={result.n}"
    return format_table(headers, rows, heading)
