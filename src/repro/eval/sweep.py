"""Threshold sweeps: the accuracy trade-off behind the paper's tables.

The paper fixes thresholds (k=1, theta=0.8) and reports one accuracy
point per method.  A sweep shows the whole curve: for each threshold,
Type 1 and Type 2 errors over a clean/error dataset pair — making
claims like "Jaro produces orders of magnitude more false positives *at
any recall-preserving threshold*" checkable rather than anecdotal.

:func:`sweep_edit_threshold` walks k for the edit-distance family;
:func:`sweep_similarity_threshold` walks theta for Jaro/Wink (computing
the score matrix once and thresholding it repeatedly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.datasets import DatasetPair
from repro.distance.codec import encode_raw
from repro.distance.vectorized import jaro_pairs, jaro_winkler_pairs
from repro.eval.metrics import Confusion
from repro.parallel.chunked import VectorEngine
from repro.parallel.partition import iter_pair_blocks

__all__ = ["SweepPoint", "sweep_edit_threshold", "sweep_similarity_threshold"]


@dataclass(frozen=True)
class SweepPoint:
    """Accuracy at one threshold setting."""

    threshold: float
    type1: int
    type2: int
    match_count: int

    @property
    def recall(self) -> float | None:
        total_true = self.match_count - self.type1 + self.type2
        return (
            (self.match_count - self.type1) / total_true if total_true else None
        )


def sweep_edit_threshold(
    dp: DatasetPair,
    method: str = "FPDL",
    ks: Sequence[int] = (0, 1, 2, 3),
    *,
    scheme_kind: str | None = None,
) -> list[SweepPoint]:
    """Type 1 / Type 2 at every edit threshold for one method stack."""
    points = []
    for k in ks:
        join = VectorEngine(dp.clean, dp.error, k=k, scheme_kind=scheme_kind)
        res = join.run(method)
        conf = Confusion(dp.n, dp.n, res.match_count, res.diagonal_matches)
        points.append(SweepPoint(float(k), conf.type1, conf.type2, res.match_count))
    return points


def sweep_similarity_threshold(
    dp: DatasetPair,
    method: str = "Jaro",
    thetas: Sequence[float] = tuple(t / 20 for t in range(10, 20)),
    *,
    variant: str = "paper",
    chunk: int = 1 << 13,
) -> list[SweepPoint]:
    """Type 1 / Type 2 at every similarity floor for Jaro or Wink.

    The pairwise score computation (the expensive part) runs once; each
    theta is then a vectorized comparison over the cached scores.
    """
    if method not in {"Jaro", "Wink"}:
        raise ValueError(f"method must be 'Jaro' or 'Wink', got {method!r}")
    ca, la = encode_raw(dp.clean)
    cb, lb = encode_raw(dp.error)
    fn = jaro_pairs if method == "Jaro" else jaro_winkler_pairs
    counts = {theta: [0, 0] for theta in thetas}  # [match_count, diagonal]
    for ii, jj in iter_pair_blocks(dp.n, dp.n, chunk):
        if method == "Jaro":
            scores = fn(ca, la, cb, lb, ii, jj, variant)
        else:
            scores = fn(ca, la, cb, lb, ii, jj, 0.1, variant)
        diag = ii == jj
        for theta in thetas:
            hits = scores >= theta
            counts[theta][0] += int(hits.sum())
            counts[theta][1] += int((hits & diag).sum())
    points = []
    for theta in thetas:
        match_count, diagonal = counts[theta]
        conf = Confusion(dp.n, dp.n, match_count, diagonal)
        points.append(SweepPoint(theta, conf.type1, conf.type2, match_count))
    return points
