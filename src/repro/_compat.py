"""Warn-once machinery for the deprecated pre-planner shims.

``match_strings``, ``parallel_match_strings`` and ``ChunkedJoin`` stay
importable for pre-planner callers, but a long-running job that calls a
shim millions of times should say so once, not once per call — Python's
own ``warnings`` default dedup is per call-site module state that
``simplefilter("always")`` (and pytest) resets, so the shims keep their
own registry here.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset_deprecation_warnings"]

_WARNED: set[str] = set()


def warn_once(
    key: str,
    message: str,
    *,
    category: type[Warning] = DeprecationWarning,
    stacklevel: int = 3,
) -> None:
    """Emit ``message`` at most once per process for ``key``.

    ``stacklevel`` defaults to 3: one frame for this helper, one for
    the shim, so the warning points at the shim's caller.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which deprecations already fired (test-isolation hook)."""
    _WARNED.clear()
