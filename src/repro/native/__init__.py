"""Compiled kernel tier: JIT'd hot kernels behind the backend protocol.

The paper's constant factors come from signatures living in machine
words — one XOR + POPCNT per pair — and from the verifier being a tight
band of word operations.  The NumPy tier restores those constants *per
batch* but still pays intermediate-array traffic on the candidate
matrix and per-pair Python dispatch in the bit-parallel verifier.  This
package closes that gap with three compiled kernels:

1. a fused XOR+popcount+threshold candidate scan (no
   ``(chunk, n_right, width)`` intermediates),
2. a batched bounded-OSA verifier (bit-parallel Hyyro recurrence for
   patterns up to 64 chars, mirroring ``distance/bitparallel.py``),
3. a banded-DP kernel for longer strings, mirroring
   ``distance/pruned.py::_banded_osa``.

Two interchangeable providers implement them:

* ``numba`` — ``@njit(parallel=True)`` twins, used when numba is
  importable (``pip install repro[native]``).
* ``cc`` — a C translation unit compiled on first use with the host's
  C compiler and loaded via ctypes (content-addressed on-disk cache).

Provider selection is automatic (numba first, then cc) and every
provider must pass a bit-exactness self-check against the scalar
references before it is offered; a provider that fails validation is
treated as absent.  When neither provider loads, callers fall back to
the NumPy tier — ``resolve_kernels("native")`` warns once (via
:func:`repro._compat.warn_once`) instead of raising, so
``backend="native"`` degrades gracefully on machines without numba or
a C toolchain.

Environment knobs:

* ``REPRO_NO_NATIVE=1`` — force the NumPy fallback deterministically
  (CI fallback legs, bug reports).
* ``REPRO_NATIVE=numba|cc`` — pin a specific provider.
* ``REPRO_NATIVE_CACHE=<dir>`` — where the cc provider caches builds.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro._compat import warn_once

__all__ = [
    "KernelSet",
    "MODE_DL",
    "MODE_PDL",
    "available",
    "kind",
    "load_kernels",
    "native_status",
    "require_native",
    "reset",
    "resolve_kernels",
]

#: verifier modes — DL compares empty strings by length, PDL applies the
#: paper's Step 1 (any empty side rejects)
MODE_DL = 0
MODE_PDL = 1

_PROVIDERS = ("numba", "cc")

_FILTER_CODES = {"length": 0, "fbf": 1}


def _sig2d(sigs: np.ndarray, dtype) -> np.ndarray:
    """Coerce signatures to a C-contiguous ``(n, width)`` matrix.

    Mirrors ``core/vectorized.py::_as_sig_matrix``: a 1-D input is a
    width-1 signature column.
    """
    arr = np.ascontiguousarray(sigs, dtype=dtype)
    if arr.ndim == 1:
        return arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"signatures must be 1-D or 2-D, got shape {arr.shape}")
    return arr


def _idx(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


class KernelSet:
    """The compiled kernels of one provider, at NumPy call level.

    Instances are cheap handles; the heavy state (jitted functions or
    the loaded shared library) lives in the provider module.  Methods
    coerce inputs to the layouts the kernels require and return plain
    NumPy arrays, bit-identical to the NumPy-tier equivalents.
    """

    __slots__ = ("kind", "_p")

    def __init__(self, kind: str, prims: dict[str, Callable]):
        self.kind = kind
        self._p = prims

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelSet(kind={self.kind!r})"

    # -- candidate generation ------------------------------------------

    def fbf_candidates(
        self, left_sigs: np.ndarray, right_sigs: np.ndarray, bound: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused scan over uint32 signature matrices; row-major order
        identical to ``core/vectorized.py::fbf_candidates``."""
        L = _sig2d(left_sigs, np.uint32)
        R = _sig2d(right_sigs, np.uint32)
        if L.shape[1] != R.shape[1]:
            raise ValueError(
                f"signature widths differ: {L.shape[1]} vs {R.shape[1]}"
            )
        return self._p["fbf_scan_u32"](L, R, int(bound))

    def fbf_candidates_u64(
        self, left_sigs: np.ndarray, right_sigs: np.ndarray, bound: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Same scan over packed uint64 signatures (the hybrid layout)."""
        L = _sig2d(left_sigs, np.uint64)
        R = _sig2d(right_sigs, np.uint64)
        return self._p["fbf_scan_u64"](L, R, int(bound))

    # -- gathered pair filters -----------------------------------------

    def sig_pair_mask(
        self, left_sigs, right_sigs, ii, jj, bound: int
    ) -> np.ndarray:
        L = _sig2d(left_sigs, np.uint32)
        R = _sig2d(right_sigs, np.uint32)
        out = self._p["pair_mask_u32"](L, R, _idx(ii), _idx(jj), int(bound))
        return out.view(bool)

    def sig_pair_mask_u64(
        self, left_sigs, right_sigs, ii, jj, bound: int
    ) -> np.ndarray:
        L = _sig2d(left_sigs, np.uint64)
        R = _sig2d(right_sigs, np.uint64)
        out = self._p["pair_mask_u64"](L, R, _idx(ii), _idx(jj), int(bound))
        return out.view(bool)

    # -- verification --------------------------------------------------

    def osa_decisions(
        self,
        codes_l: np.ndarray,
        len_l: np.ndarray,
        codes_r: np.ndarray,
        len_r: np.ndarray,
        ii: np.ndarray,
        jj: np.ndarray,
        k: int,
        *,
        mode: int,
    ) -> np.ndarray:
        """Boolean ``OSA(left[i], right[j]) <= k`` per candidate pair.

        ``mode`` is :data:`MODE_DL` or :data:`MODE_PDL`; they differ
        only on empty strings (the paper's Step 1).
        """
        cl = np.ascontiguousarray(codes_l, dtype=np.uint8)
        cr = np.ascontiguousarray(codes_r, dtype=np.uint8)
        if cl.ndim != 2 or cr.ndim != 2:
            raise ValueError("code matrices must be 2-D")
        out = self._p["osa_mask"](
            cl, _idx(len_l), cr, _idx(len_r), _idx(ii), _idx(jj),
            int(k), int(mode),
        )
        return out.view(bool)

    # -- hybrid dense sweep --------------------------------------------

    @staticmethod
    def supports_filters(filters) -> bool:
        """Whether :meth:`fused_rows_u64` covers this filter chain."""
        return all(f in _FILTER_CODES for f in filters)

    def fused_rows_u64(
        self,
        left_sigs: np.ndarray,
        right_sigs: np.ndarray,
        len_l: np.ndarray,
        len_r: np.ndarray,
        row0: int,
        row1: int,
        *,
        bound: int,
        k: int,
        filters,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Length+FBF filters fused with candidate emission over rows
        ``[row0, row1)``; returns ``(ii, jj, passed_per_filter)`` with
        the cumulative-AND survivor counts funnel accounting needs."""
        L = _sig2d(left_sigs, np.uint64)
        R = _sig2d(right_sigs, np.uint64)
        codes = np.array([_FILTER_CODES[f] for f in filters], dtype=np.int32)
        return self._p["fused_rows_u64"](
            L, R, _idx(len_l), _idx(len_r), int(row0), int(row1),
            int(bound), int(k), codes,
        )


# ---------------------------------------------------------------------------
# Provider resolution
# ---------------------------------------------------------------------------

#: provider name -> KernelSet (loaded + validated) or None (unavailable)
_CACHE: dict[str, KernelSet | None] = {}
#: provider name -> human-readable load outcome
_REASONS: dict[str, str] = {}


def _disabled() -> bool:
    return os.environ.get("REPRO_NO_NATIVE", "").strip() not in ("", "0")


def _provider_order() -> tuple[str, ...]:
    forced = os.environ.get("REPRO_NATIVE", "").strip().lower()
    if forced in _PROVIDERS:
        return (forced,)
    return _PROVIDERS


def _load_provider(name: str) -> KernelSet | None:
    if name in _CACHE:
        return _CACHE[name]
    ks: KernelSet | None = None
    try:
        if name == "numba":
            from repro.native import _nb

            ks = KernelSet("numba", _nb.load())
        else:
            from repro.native import _cc

            ks = KernelSet("cc", _cc.load())
    except Exception as exc:
        _REASONS[name] = f"unavailable ({exc})"
        ks = None
    if ks is not None:
        err = _self_check(ks)
        if err is None:
            _REASONS[name] = "loaded"
        else:
            _REASONS[name] = f"rejected by self-check ({err})"
            ks = None
    _CACHE[name] = ks
    return ks


def load_kernels() -> KernelSet | None:
    """The best available validated provider, or ``None``.

    Honors ``REPRO_NO_NATIVE`` and ``REPRO_NATIVE``; never raises and
    never warns — this is the quiet probe used by auto-selection.
    """
    if _disabled():
        return None
    for name in _provider_order():
        ks = _load_provider(name)
        if ks is not None:
            return ks
    return None


def resolve_kernels(
    request: str | None, *, warn_key: str = "backend"
) -> KernelSet | None:
    """Resolve a kernel request string to a :class:`KernelSet` or ``None``.

    ``request`` semantics:

    * ``None``/``"numpy"`` — never use compiled kernels.
    * ``"auto"`` — compiled kernels if available, silently otherwise.
    * ``"native"`` — compiled kernels expected: when unavailable (or
      disabled via ``REPRO_NO_NATIVE``), warn once and fall back.
    * ``"numba"``/``"cc"`` — pin one provider, same warn-once fallback.
    """
    if request is None or request == "numpy":
        return None
    if request not in ("auto", "native", *_PROVIDERS):
        raise ValueError(
            f"unknown kernels request {request!r}; expected 'numpy', "
            f"'auto', 'native', 'numba' or 'cc'"
        )
    if _disabled():
        if request != "auto":
            warn_once(
                f"native-disabled:{warn_key}",
                "compiled kernels disabled by REPRO_NO_NATIVE=1; "
                "falling back to the NumPy (vectorized) path",
                category=RuntimeWarning,
            )
        return None
    if request in _PROVIDERS:
        ks = _load_provider(request)
    else:
        ks = load_kernels()
    if ks is None and request != "auto":
        detail = "; ".join(
            f"{name}: {_REASONS.get(name, 'not probed')}"
            for name in _provider_order()
        )
        warn_once(
            f"native-unavailable:{warn_key}",
            "compiled kernels requested but no provider loaded "
            f"({detail}); falling back to the NumPy (vectorized) path "
            "— install the extra with `pip install repro[native]`",
            category=RuntimeWarning,
        )
    return ks


def available() -> bool:
    """True when a validated compiled provider can serve requests."""
    return load_kernels() is not None


def kind() -> str | None:
    """Name of the active provider (``"numba"``/``"cc"``) or ``None``."""
    ks = load_kernels()
    return ks.kind if ks is not None else None


def require_native() -> KernelSet:
    """The active provider, or a hard error explaining why there is none.

    CI smoke jobs use this to assert the compiled tier actually loaded
    instead of silently falling back.
    """
    ks = load_kernels()
    if ks is not None:
        return ks
    if _disabled():
        raise RuntimeError("compiled kernels disabled by REPRO_NO_NATIVE=1")
    for name in _provider_order():
        _load_provider(name)
    detail = "; ".join(
        f"{name}: {_REASONS.get(name, 'not probed')}"
        for name in _provider_order()
    )
    raise RuntimeError(f"no compiled kernel provider available ({detail})")


def native_status() -> dict:
    """Availability report for diagnostics and ``repro-fbf --plan``."""
    disabled = _disabled()
    if not disabled:
        for name in _provider_order():
            _load_provider(name)
    active = None if disabled else kind()
    return {
        "available": active is not None,
        "kind": active,
        "disabled": disabled,
        "providers": {
            name: _REASONS.get(
                name, "disabled" if disabled else "not probed"
            )
            for name in _PROVIDERS
        },
    }


def reset() -> None:
    """Forget cached provider probes (test-isolation hook).

    Needed after monkeypatching ``REPRO_NO_NATIVE``/``REPRO_NATIVE``:
    resolution caches per provider, not per environment.
    """
    _CACHE.clear()
    _REASONS.clear()


# ---------------------------------------------------------------------------
# Bit-exactness self-check
# ---------------------------------------------------------------------------


def _self_check(ks: KernelSet) -> str | None:
    """Validate a provider against the scalar/NumPy references.

    Returns ``None`` on success, else a short failure description.  The
    check covers every kernel, the 63/64/65 bit-parallel/banded
    boundary, empty strings, and both verifier modes — a provider that
    computes anything differently from the reference implementations is
    rejected rather than trusted.
    """
    try:
        from repro.core.popcount import popcount_batch_u32, popcount_batch_u64
        from repro.distance.codec import encode_raw
        from repro.distance.damerau import damerau_levenshtein
        from repro.distance.pruned import pdl

        rng = np.random.default_rng(0x5EED)

        # -- signature kernels ----------------------------------------
        L32 = rng.integers(0, 1 << 32, size=(13, 2), dtype=np.uint32)
        R32 = rng.integers(0, 1 << 32, size=(9, 2), dtype=np.uint32)
        L64 = rng.integers(0, 1 << 63, size=(11, 1), dtype=np.uint64)
        R64 = rng.integers(0, 1 << 63, size=(7, 1), dtype=np.uint64)
        for tag, L, R, pc, scan, mask_fn in (
            ("u32", L32, R32, popcount_batch_u32,
             ks.fbf_candidates, ks.sig_pair_mask),
            ("u64", L64, R64, popcount_batch_u64,
             ks.fbf_candidates_u64, ks.sig_pair_mask_u64),
        ):
            db = np.zeros((L.shape[0], R.shape[0]), dtype=np.int64)
            for w in range(L.shape[1]):
                db += pc(L[:, w][:, None] ^ R[:, w][None, :])
            for bound in (0, 20, 34):
                ri, rj = np.nonzero(db <= bound)
                gi, gj = scan(L, R, bound)
                if not (
                    np.array_equal(gi, ri.astype(np.int64))
                    and np.array_equal(gj, rj.astype(np.int64))
                ):
                    return f"fbf scan {tag} bound={bound} mismatch"
                pi = np.repeat(np.arange(L.shape[0]), R.shape[0])
                pj = np.tile(np.arange(R.shape[0]), L.shape[0])
                got = mask_fn(L, R, pi, pj, bound)
                if not np.array_equal(got, db.ravel() <= bound):
                    return f"pair mask {tag} bound={bound} mismatch"

        # -- verifier kernels -----------------------------------------
        alpha = "abAB \xe9"
        strings = ["", "a", "ab", "ba"]
        for length in (2, 5, 17, 63, 64, 65, 70):
            for _ in range(3):
                chars = rng.integers(0, len(alpha), size=length)
                strings.append("".join(alpha[c] for c in chars))
            # near-duplicates exercising substitutions + transpositions
            base = list(strings[-1])
            if length >= 2:
                base[0], base[1] = base[1], base[0]
            strings.append("".join(base))
        codes, lengths = encode_raw(strings)
        n = len(strings)
        ii = rng.integers(0, n, size=220).astype(np.int64)
        jj = rng.integers(0, n, size=220).astype(np.int64)
        # force same-length long pairs onto the banded path
        long_idx = [i for i, s in enumerate(strings) if len(s) > 64]
        for a in long_idx:
            for b in long_idx:
                ii = np.append(ii, a)
                jj = np.append(jj, b)
        for k in (0, 1, 2, 3):
            for mode in (MODE_DL, MODE_PDL):
                got = ks.osa_decisions(
                    codes, lengths, codes, lengths, ii, jj, k, mode=mode
                )
                for p in range(len(ii)):
                    s, t = strings[ii[p]], strings[jj[p]]
                    if mode == MODE_PDL:
                        want = pdl(s, t, k)
                    else:
                        want = damerau_levenshtein(s, t) <= k
                    if bool(got[p]) != want:
                        return (
                            f"osa mode={mode} k={k} mismatch on "
                            f"({len(s)},{len(t)})-char pair"
                        )

        # -- fused dense sweep ----------------------------------------
        sl = rng.integers(0, 1 << 63, size=(12, 2), dtype=np.uint64)
        sr = rng.integers(0, 1 << 63, size=(8, 2), dtype=np.uint64)
        ll = rng.integers(0, 9, size=12).astype(np.int64)
        lr = rng.integers(0, 9, size=8).astype(np.int64)
        dbits = np.zeros((12, 8), dtype=np.int64)
        for w in range(2):
            dbits += popcount_batch_u64(sl[:, w][:, None] ^ sr[:, w][None, :])
        for filters in (("length",), ("fbf",), ("length", "fbf")):
            k, bound = 2, 40
            lmask = np.abs(ll[:, None] - lr[None, :]) <= k
            fmask = dbits <= bound
            mask = np.ones((12, 8), dtype=bool)
            want_passed = []
            for f in filters:
                mask &= lmask if f == "length" else fmask
                want_passed.append(int(mask[3:11].sum()))
            wi, wj = np.nonzero(mask[3:11])
            gi, gj, passed = ks.fused_rows_u64(
                sl, sr, ll, lr, 3, 11, bound=bound, k=k, filters=filters
            )
            if not (
                np.array_equal(gi, wi.astype(np.int64) + 3)
                and np.array_equal(gj, wj.astype(np.int64))
                and list(passed) == want_passed
            ):
                return f"fused rows mismatch for filters={filters}"
    except Exception as exc:  # pragma: no cover - defensive
        return repr(exc)
    return None
