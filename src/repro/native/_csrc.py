"""C source and build driver for the compiled kernel provider.

The native tier prefers numba when it is importable, but a C toolchain is
far more common than numba in production containers, so the same three
kernels also ship as a single C translation unit compiled on first use
with whatever ``cc`` the host provides and loaded through :mod:`ctypes`.
The build is content-addressed: the shared object lands in a per-user
cache directory keyed by the SHA-256 of the source, so recompiles happen
only when the kernels change and concurrent processes (hybrid pool
workers) converge on one artifact via an atomic rename.

Kernels mirror the pure-Python/NumPy references bit for bit:

* ``fbf_scan_u32`` / ``fbf_scan_u64`` — fused XOR + POPCNT + threshold
  candidate emission over signature matrices, row-major order so the
  output matches ``np.nonzero`` exactly (no (rows x n_right x width)
  intermediates).
* ``pair_mask_u32`` / ``pair_mask_u64`` — the gathered-pair signature
  filter used by index-driven generators.
* ``osa_mask`` — batched bounded OSA (restricted Damerau-Levenshtein)
  decisions: Hyyro bit-parallel for patterns up to 64 chars
  (``distance/bitparallel.py``), banded rolling-row DP beyond that
  (``distance/pruned.py::_banded_osa``).
* ``fused_rows_u64`` — the hybrid worker's dense sweep: length + FBF
  filters and candidate emission in one pass, with per-filter survivor
  counts for funnel accounting.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["load_library", "build_error"]

C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define POP32(x) ((int64_t)__builtin_popcount((uint32_t)(x)))
#define POP64(x) ((int64_t)__builtin_popcountll((uint64_t)(x)))

/* ------------------------------------------------------------------ */
/* Fused XOR + popcount + threshold candidate scan.                    */
/* Emits (i, j) pairs with diff_bits <= bound for rows [row0, row1) of */
/* L against all of R, in row-major order (identical to np.nonzero).   */
/* Returns the number of pairs emitted, or -1 if cap would overflow.   */
/* ------------------------------------------------------------------ */

int64_t fbf_scan_u32(const uint32_t *L, const uint32_t *R,
                     int64_t row0, int64_t row1, int64_t nr, int64_t width,
                     int64_t bound, int64_t *out_i, int64_t *out_j,
                     int64_t cap) {
    int64_t count = 0;
    for (int64_t i = row0; i < row1; i++) {
        const uint32_t *li = L + i * width;
        for (int64_t j = 0; j < nr; j++) {
            const uint32_t *rj = R + j * width;
            int64_t db = 0;
            for (int64_t w = 0; w < width; w++)
                db += POP32(li[w] ^ rj[w]);
            if (db <= bound) {
                if (count >= cap) return -1;
                out_i[count] = i;
                out_j[count] = j;
                count++;
            }
        }
    }
    return count;
}

int64_t fbf_scan_u64(const uint64_t *L, const uint64_t *R,
                     int64_t row0, int64_t row1, int64_t nr, int64_t width,
                     int64_t bound, int64_t *out_i, int64_t *out_j,
                     int64_t cap) {
    int64_t count = 0;
    for (int64_t i = row0; i < row1; i++) {
        const uint64_t *li = L + i * width;
        for (int64_t j = 0; j < nr; j++) {
            const uint64_t *rj = R + j * width;
            int64_t db = 0;
            for (int64_t w = 0; w < width; w++)
                db += POP64(li[w] ^ rj[w]);
            if (db <= bound) {
                if (count >= cap) return -1;
                out_i[count] = i;
                out_j[count] = j;
                count++;
            }
        }
    }
    return count;
}

/* ------------------------------------------------------------------ */
/* Gathered-pair signature filter: out[p] = diff_bits(pair p) <= bound */
/* ------------------------------------------------------------------ */

void pair_mask_u32(const uint32_t *L, const uint32_t *R, int64_t width,
                   const int64_t *ii, const int64_t *jj, int64_t n,
                   int64_t bound, uint8_t *out) {
    for (int64_t p = 0; p < n; p++) {
        const uint32_t *li = L + ii[p] * width;
        const uint32_t *rj = R + jj[p] * width;
        int64_t db = 0;
        for (int64_t w = 0; w < width; w++)
            db += POP32(li[w] ^ rj[w]);
        out[p] = db <= bound;
    }
}

void pair_mask_u64(const uint64_t *L, const uint64_t *R, int64_t width,
                   const int64_t *ii, const int64_t *jj, int64_t n,
                   int64_t bound, uint8_t *out) {
    for (int64_t p = 0; p < n; p++) {
        const uint64_t *li = L + ii[p] * width;
        const uint64_t *rj = R + jj[p] * width;
        int64_t db = 0;
        for (int64_t w = 0; w < width; w++)
            db += POP64(li[w] ^ rj[w]);
        out[p] = db <= bound;
    }
}

/* ------------------------------------------------------------------ */
/* Bit-parallel OSA (Hyyro-style restricted Damerau-Levenshtein) for   */
/* patterns up to 64 chars.  Mirrors osa_bitparallel() exactly,        */
/* including the transposition fold: TR = (((~D0)&PM)<<1) & PM_prev.   */
/* ------------------------------------------------------------------ */

static int64_t osa_bp64(const uint8_t *s, int64_t m,
                        const uint8_t *t, int64_t n) {
    uint64_t peq[256];
    memset(peq, 0, sizeof(peq));
    for (int64_t i = 0; i < m; i++)
        peq[s[i]] |= (uint64_t)1 << i;
    uint64_t mask = (m == 64) ? ~(uint64_t)0 : (((uint64_t)1 << m) - 1);
    uint64_t high = (uint64_t)1 << (m - 1);
    uint64_t vp = mask, vn = 0, d0 = 0, pm_prev = 0;
    int64_t score = m;
    for (int64_t j = 0; j < n; j++) {
        uint64_t pm = peq[t[j]];
        uint64_t tr = ((((~d0) & pm) << 1) & pm_prev) & mask;
        d0 = ((((pm & vp) + vp) ^ vp) | pm | vn) & mask;
        d0 |= tr;
        uint64_t hp = (vn | (~(d0 | vp) & mask)) & mask;
        uint64_t hn = d0 & vp;
        if (hp & high) score++;
        else if (hn & high) score--;
        hp = ((hp << 1) | 1) & mask;
        hn = (hn << 1) & mask;
        vp = (hn | (~(d0 | hp) & mask)) & mask;
        vn = hp & d0;
        pm_prev = pm;
    }
    return score;
}

/* ------------------------------------------------------------------ */
/* Banded OSA DP, three rolling rows — a straight port of              */
/* distance/pruned.py::_banded_osa.  Preconditions: m, n >= 1,         */
/* |m - n| <= k, k >= 1.  Rows are caller-provided scratch of at       */
/* least n + 2 entries each.  Returns the distance if <= k, else -1.   */
/* ------------------------------------------------------------------ */

static int64_t banded_osa(const uint8_t *s, int64_t m,
                          const uint8_t *t, int64_t n, int64_t k,
                          int32_t *prev2, int32_t *prev, int32_t *cur) {
    int32_t INF = (int32_t)(k + 1);
    for (int64_t j = 0; j <= n; j++) {
        prev2[j] = INF;
        prev[j] = (j <= k) ? (int32_t)j : INF;
        cur[j] = INF;
    }
    for (int64_t i = 1; i <= m; i++) {
        int64_t lo = (i - k > 1) ? i - k : 1;
        int64_t hi = (i + k < n) ? i + k : n;
        cur[lo - 1] = (lo == 1 && i <= k) ? (int32_t)i : INF;
        int32_t row_min = cur[lo - 1];
        uint8_t si = s[i - 1];
        uint8_t si_prev = (i > 1) ? s[i - 2] : 0;
        for (int64_t j = lo; j <= hi; j++) {
            uint8_t tj = t[j - 1];
            int32_t d;
            if (si == tj) {
                d = prev[j - 1];
            } else {
                d = prev[j];
                if (cur[j - 1] < d) d = cur[j - 1];
                if (prev[j - 1] < d) d = prev[j - 1];
                d += 1;
                if (i > 1 && j > 1 && si == t[j - 2] && si_prev == tj) {
                    int32_t trans = prev2[j - 2] + 1;
                    if (trans < d) d = trans;
                }
            }
            cur[j] = (d <= k) ? d : INF;
            if (d < row_min) row_min = d;
        }
        if (hi < n) cur[hi + 1] = INF;
        if (row_min > (int32_t)k) return -1;
        int32_t *tmp = prev2;
        prev2 = prev;
        prev = cur;
        cur = tmp;
    }
    return (prev[n] <= k) ? (int64_t)prev[n] : -1;
}

/* ------------------------------------------------------------------ */
/* Batched bounded-OSA decisions over gathered candidate pairs.        */
/* mode 0 = DL (empty strings compare by length), mode 1 = PDL (the    */
/* paper's Step 1: any empty side is an automatic reject).             */
/* Returns 0 on success, -1 on allocation failure.                     */
/* ------------------------------------------------------------------ */

int32_t osa_mask(const uint8_t *codes_l, const int64_t *len_l, int64_t wl,
                 const uint8_t *codes_r, const int64_t *len_r, int64_t wr,
                 const int64_t *ii, const int64_t *jj, int64_t npairs,
                 int64_t k, int32_t mode, uint8_t *out) {
    int64_t rowlen = ((wl > wr) ? wl : wr) + 2;
    int32_t *rows = NULL;
    for (int64_t p = 0; p < npairs; p++) {
        int64_t i = ii[p], j = jj[p];
        int64_t la = len_l[i], lb = len_r[j];
        if (la == 0 || lb == 0) {
            if (mode == 1) { out[p] = 0; continue; }
            int64_t mx = (la > lb) ? la : lb;
            out[p] = mx <= k;
            continue;
        }
        int64_t dlen = la - lb;
        if (dlen < 0) dlen = -dlen;
        if (dlen > k) { out[p] = 0; continue; }
        /* OSA is symmetric: run the shorter side as the pattern so the
         * one-word fast path covers every pair with min(la, lb) <= 64. */
        const uint8_t *s = codes_l + i * wl;
        const uint8_t *t = codes_r + j * wr;
        int64_t m = la, n = lb;
        if (la > lb) {
            s = codes_r + j * wr;
            t = codes_l + i * wl;
            m = lb;
            n = la;
        }
        if (m <= 64) {
            out[p] = osa_bp64(s, m, t, n) <= k;
        } else if (k == 0) {
            out[p] = memcmp(s, t, (size_t)m) == 0;
        } else {
            if (rows == NULL) {
                rows = (int32_t *)malloc((size_t)(3 * rowlen) * sizeof(int32_t));
                if (rows == NULL) return -1;
            }
            out[p] = banded_osa(s, m, t, n, k, rows, rows + rowlen,
                                rows + 2 * rowlen) >= 0;
        }
    }
    free(rows);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Hybrid dense sweep: length + FBF filters fused with candidate       */
/* emission over packed uint64 signatures.  filters[] holds stage      */
/* codes in evaluation order (0 = length, 1 = fbf); passed[] receives  */
/* the cumulative-AND survivor count after each stage, matching the    */
/* NumPy mask chain's funnel accounting.  Returns emitted pair count,  */
/* or -1 if cap would overflow.                                        */
/* ------------------------------------------------------------------ */

int64_t fused_rows_u64(const uint64_t *L, const uint64_t *R, int64_t width,
                       const int64_t *len_l, const int64_t *len_r,
                       int64_t row0, int64_t row1, int64_t nr,
                       int64_t bound, int64_t k,
                       const int32_t *filters, int64_t nf,
                       int64_t *out_i, int64_t *out_j, int64_t cap,
                       int64_t *passed) {
    int64_t count = 0;
    for (int64_t f = 0; f < nf; f++) passed[f] = 0;
    for (int64_t i = row0; i < row1; i++) {
        const uint64_t *li = L + i * width;
        int64_t la = len_l[i];
        for (int64_t j = 0; j < nr; j++) {
            int ok = 1;
            for (int64_t f = 0; f < nf; f++) {
                if (filters[f] == 0) {
                    int64_t dlen = la - len_r[j];
                    if (dlen < 0) dlen = -dlen;
                    ok = dlen <= k;
                } else {
                    const uint64_t *rj = R + j * width;
                    int64_t db = 0;
                    for (int64_t w = 0; w < width; w++)
                        db += POP64(li[w] ^ rj[w]);
                    ok = db <= bound;
                }
                if (!ok) break;
                passed[f]++;
            }
            if (ok) {
                if (count >= cap) return -1;
                out_i[count] = i;
                out_j[count] = j;
                count++;
            }
        }
    }
    return count;
}
"""

#: populated with the failure reason when the build was attempted and failed
_BUILD_ERROR: str | None = None


def build_error() -> str | None:
    """The reason the last in-process build attempt failed, if any."""
    return _BUILD_ERROR


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return Path(env)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-native"


def _find_compiler() -> str | None:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for cand in ("cc", "gcc", "clang"):
        found = shutil.which(cand)
        if found:
            return found
    return None


def _compile(cc: str, src: Path, out: Path) -> None:
    """Compile ``src`` into ``out`` atomically (tmp + rename)."""
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(out.parent))
    os.close(fd)
    base = [cc, "-O3", "-shared", "-fPIC", "-o", tmp, str(src), "-lm"]
    attempts = (
        base[:1] + ["-march=native"] + base[1:],  # best codegen (POPCNT)
        base,  # portable fallback
    )
    last = None
    for cmd in attempts:
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.TimeoutExpired) as exc:  # pragma: no cover
            last = str(exc)
            continue
        if proc.returncode == 0:
            os.replace(tmp, out)
            return
        last = proc.stderr.strip() or f"exit code {proc.returncode}"
    try:
        os.unlink(tmp)
    except OSError:  # pragma: no cover
        pass
    raise RuntimeError(f"{cc} failed: {last}")


def _bind(lib: ctypes.CDLL) -> dict[str, ctypes._CFuncPtr]:
    """Declare argtypes/restypes and return the raw entry points."""
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    i32 = ctypes.c_int32

    lib.fbf_scan_u32.argtypes = [p, p, i64, i64, i64, i64, i64, p, p, i64]
    lib.fbf_scan_u32.restype = i64
    lib.fbf_scan_u64.argtypes = [p, p, i64, i64, i64, i64, i64, p, p, i64]
    lib.fbf_scan_u64.restype = i64
    lib.pair_mask_u32.argtypes = [p, p, i64, p, p, i64, i64, p]
    lib.pair_mask_u32.restype = None
    lib.pair_mask_u64.argtypes = [p, p, i64, p, p, i64, i64, p]
    lib.pair_mask_u64.restype = None
    lib.osa_mask.argtypes = [p, p, i64, p, p, i64, p, p, i64, i64, i32, p]
    lib.osa_mask.restype = i32
    lib.fused_rows_u64.argtypes = [
        p, p, i64, p, p, i64, i64, i64, i64, i64, p, i64, p, p, i64, p,
    ]
    lib.fused_rows_u64.restype = i64
    return {
        "fbf_scan_u32": lib.fbf_scan_u32,
        "fbf_scan_u64": lib.fbf_scan_u64,
        "pair_mask_u32": lib.pair_mask_u32,
        "pair_mask_u64": lib.pair_mask_u64,
        "osa_mask": lib.osa_mask,
        "fused_rows_u64": lib.fused_rows_u64,
    }


def load_library() -> dict[str, ctypes._CFuncPtr] | None:
    """Build (if needed) and load the kernel library.

    Returns the bound entry points, or ``None`` when no C compiler is
    available or the build failed (reason retrievable via
    :func:`build_error`).  Safe to call from multiple processes
    concurrently: the compile lands via an atomic rename, so racers
    either reuse the winner's artifact or harmlessly overwrite it with
    identical bytes.
    """
    global _BUILD_ERROR
    digest = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:16]
    tag = f"{platform.system()}-{platform.machine()}".lower()
    cache = _cache_dir()
    sofile = cache / f"repro_native_{digest}_{tag}.so"
    try:
        if not sofile.exists():
            cc = _find_compiler()
            if cc is None:
                _BUILD_ERROR = "no C compiler found (tried $CC, cc, gcc, clang)"
                return None
            cache.mkdir(parents=True, exist_ok=True)
            csrc = cache / f"repro_native_{digest}.c"
            if not csrc.exists():
                tmp = csrc.with_suffix(f".{os.getpid()}.tmp")
                tmp.write_text(C_SOURCE)
                os.replace(tmp, csrc)
            _compile(cc, csrc, sofile)
        return _bind(ctypes.CDLL(str(sofile)))
    except (OSError, RuntimeError) as exc:
        _BUILD_ERROR = str(exc)
        return None
