"""ctypes wrappers presenting the C kernels at NumPy level.

:func:`load` returns the provider primitive dict consumed by
:class:`repro.native.KernelSet`.  All wrappers assume the caller already
coerced inputs to C-contiguous arrays of the right dtype (the KernelSet
layer does this once); they only manage output buffers.

Candidate-emitting kernels use an adaptive capacity scheme: the scan is
chunked into row blocks of bounded pair count, each block starts from a
density-informed capacity guess, and a ``-1`` overflow return doubles
the buffer and re-runs the block.  Capacity never exceeds the block's
pair count, so the retry loop always terminates.
"""

from __future__ import annotations

import numpy as np

from repro.native import _csrc

__all__ = ["load"]

#: target pairs per kernel call — bounds both scan latency per call and
#: the worst-case output buffer a single retry can demand
_BLOCK_PAIRS = 1 << 24


def _scan(fn, L: np.ndarray, R: np.ndarray, bound: int):
    nl, width = L.shape
    nr = R.shape[0]
    empty = np.empty(0, dtype=np.int64)
    if nl == 0 or nr == 0:
        return empty, empty.copy()
    rows_per = max(1, min(nl, _BLOCK_PAIRS // max(nr, 1)))
    ii_parts: list[np.ndarray] = []
    jj_parts: list[np.ndarray] = []
    density = 0.05
    for r0 in range(0, nl, rows_per):
        r1 = min(nl, r0 + rows_per)
        pairs = (r1 - r0) * nr
        cap = min(pairs, max(1024, int(pairs * density) + 1024))
        while True:
            out_i = np.empty(cap, dtype=np.int64)
            out_j = np.empty(cap, dtype=np.int64)
            n = fn(
                L.ctypes.data, R.ctypes.data, r0, r1, nr, width, bound,
                out_i.ctypes.data, out_j.ctypes.data, cap,
            )
            if n >= 0:
                break
            cap = min(pairs, cap * 2)
        if n:
            ii_parts.append(out_i[:n].copy())
            jj_parts.append(out_j[:n].copy())
        density = max(density, n / pairs)
    if not ii_parts:
        return empty, empty.copy()
    return np.concatenate(ii_parts), np.concatenate(jj_parts)


def _pair_mask(fn, L, R, ii, jj, bound):
    n = ii.shape[0]
    out = np.empty(n, dtype=np.uint8)
    if n:
        fn(
            L.ctypes.data, R.ctypes.data, L.shape[1],
            ii.ctypes.data, jj.ctypes.data, n, bound, out.ctypes.data,
        )
    return out


def load():
    """Bind the compiled library, or raise with the build failure."""
    raw = _csrc.load_library()
    if raw is None:
        raise RuntimeError(_csrc.build_error() or "C kernel build failed")

    def fbf_scan_u32(L, R, bound):
        return _scan(raw["fbf_scan_u32"], L, R, bound)

    def fbf_scan_u64(L, R, bound):
        return _scan(raw["fbf_scan_u64"], L, R, bound)

    def pair_mask_u32(L, R, ii, jj, bound):
        return _pair_mask(raw["pair_mask_u32"], L, R, ii, jj, bound)

    def pair_mask_u64(L, R, ii, jj, bound):
        return _pair_mask(raw["pair_mask_u64"], L, R, ii, jj, bound)

    def osa_mask(codes_l, len_l, codes_r, len_r, ii, jj, k, mode):
        n = ii.shape[0]
        out = np.empty(n, dtype=np.uint8)
        if n:
            rc = raw["osa_mask"](
                codes_l.ctypes.data, len_l.ctypes.data, codes_l.shape[1],
                codes_r.ctypes.data, len_r.ctypes.data, codes_r.shape[1],
                ii.ctypes.data, jj.ctypes.data, n, k, mode, out.ctypes.data,
            )
            if rc != 0:  # pragma: no cover - malloc failure
                raise MemoryError("osa_mask scratch allocation failed")
        return out

    def fused_rows_u64(L, R, len_l, len_r, r0, r1, bound, k, filter_codes):
        nr = R.shape[0]
        width = L.shape[1]
        nf = filter_codes.shape[0]
        passed_total = np.zeros(nf, dtype=np.int64)
        passed_block = np.zeros(nf, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        if r1 <= r0 or nr == 0:
            return empty, empty.copy(), passed_total
        rows_per = max(1, min(r1 - r0, _BLOCK_PAIRS // max(nr, 1)))
        ii_parts: list[np.ndarray] = []
        jj_parts: list[np.ndarray] = []
        density = 0.05
        for b0 in range(r0, r1, rows_per):
            b1 = min(r1, b0 + rows_per)
            pairs = (b1 - b0) * nr
            cap = min(pairs, max(1024, int(pairs * density) + 1024))
            while True:
                out_i = np.empty(cap, dtype=np.int64)
                out_j = np.empty(cap, dtype=np.int64)
                n = raw["fused_rows_u64"](
                    L.ctypes.data, R.ctypes.data, width,
                    len_l.ctypes.data, len_r.ctypes.data,
                    b0, b1, nr, bound, k,
                    filter_codes.ctypes.data, nf,
                    out_i.ctypes.data, out_j.ctypes.data, cap,
                    passed_block.ctypes.data,
                )
                if n >= 0:
                    break
                cap = min(pairs, cap * 2)
            if n:
                ii_parts.append(out_i[:n].copy())
                jj_parts.append(out_j[:n].copy())
            passed_total += passed_block
            density = max(density, n / pairs)
        if not ii_parts:
            return empty, empty.copy(), passed_total
        return np.concatenate(ii_parts), np.concatenate(jj_parts), passed_total

    return {
        "fbf_scan_u32": fbf_scan_u32,
        "fbf_scan_u64": fbf_scan_u64,
        "pair_mask_u32": pair_mask_u32,
        "pair_mask_u64": pair_mask_u64,
        "osa_mask": osa_mask,
        "fused_rows_u64": fused_rows_u64,
    }
