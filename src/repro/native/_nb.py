"""numba-JIT twins of the compiled kernels (import-guarded).

Importing this module requires numba; :mod:`repro.native` guards the
import and falls back to the C provider (or NumPy) when it is absent.
The kernels are direct ports of the C translation unit in
:mod:`repro.native._csrc` — same traversal order, same transposition
fold, same banded recurrence — so either provider yields bit-identical
candidate lists and verifier decisions.  Outer loops use ``prange``;
candidate emission is two-pass (count, prefix-sum, fill) so every
thread writes a disjoint slice.

All jitted functions compile lazily with ``cache=True``: the first
native-tier call in a process pays the compile (or hits numba's on-disk
cache); pool workers inherit the cache through the filesystem.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

__all__ = ["load"]

_U = np.uint64


@njit(cache=True)
def _pc64(x):
    x = x - ((x >> _U(1)) & _U(0x5555555555555555))
    x = (x & _U(0x3333333333333333)) + ((x >> _U(2)) & _U(0x3333333333333333))
    x = (x + (x >> _U(4))) & _U(0x0F0F0F0F0F0F0F0F)
    return np.int64((x * _U(0x0101010101010101)) >> _U(56))


@njit(cache=True, parallel=True)
def _fbf_scan(L, R, bound):
    nl = L.shape[0]
    width = L.shape[1]
    nr = R.shape[0]
    counts = np.zeros(nl, np.int64)
    for i in prange(nl):
        c = 0
        for j in range(nr):
            db = np.int64(0)
            for w in range(width):
                db += _pc64(_U(L[i, w]) ^ _U(R[j, w]))
            if db <= bound:
                c += 1
        counts[i] = c
    offsets = np.zeros(nl + 1, np.int64)
    for i in range(nl):
        offsets[i + 1] = offsets[i] + counts[i]
    out_i = np.empty(offsets[nl], np.int64)
    out_j = np.empty(offsets[nl], np.int64)
    for i in prange(nl):
        pos = offsets[i]
        for j in range(nr):
            db = np.int64(0)
            for w in range(width):
                db += _pc64(_U(L[i, w]) ^ _U(R[j, w]))
            if db <= bound:
                out_i[pos] = i
                out_j[pos] = j
                pos += 1
    return out_i, out_j


@njit(cache=True, parallel=True)
def _pair_mask(L, R, ii, jj, bound):
    n = ii.shape[0]
    width = L.shape[1]
    out = np.empty(n, np.uint8)
    for p in prange(n):
        i = ii[p]
        j = jj[p]
        db = np.int64(0)
        for w in range(width):
            db += _pc64(_U(L[i, w]) ^ _U(R[j, w]))
        out[p] = 1 if db <= bound else 0
    return out


@njit(cache=True)
def _osa_bp64(s, m, t, n):
    # Match masks are built per column (O(m) bit-ors) instead of a
    # 256-entry peq table, avoiding a heap allocation per pair.
    one = _U(1)
    if m == 64:
        mask = _U(0xFFFFFFFFFFFFFFFF)
    else:
        mask = (one << _U(m)) - one
    high = one << _U(m - 1)
    vp = mask
    vn = _U(0)
    d0 = _U(0)
    pm_prev = _U(0)
    score = m
    for j in range(n):
        tj = t[j]
        pm = _U(0)
        for idx in range(m):
            if s[idx] == tj:
                pm |= one << _U(idx)
        tr = ((((~d0) & pm) << one) & pm_prev) & mask
        d0 = ((((pm & vp) + vp) ^ vp) | pm | vn) & mask
        d0 = d0 | tr
        hp = (vn | (~(d0 | vp) & mask)) & mask
        hn = d0 & vp
        if hp & high:
            score += 1
        elif hn & high:
            score -= 1
        hp = ((hp << one) | one) & mask
        hn = (hn << one) & mask
        vp = (hn | (~(d0 | hp) & mask)) & mask
        vn = hp & d0
        pm_prev = pm
    return score


@njit(cache=True)
def _banded_osa(s, m, t, n, k):
    INF = np.int64(k + 1)
    prev2 = np.empty(n + 1, np.int64)
    prev = np.empty(n + 1, np.int64)
    cur = np.empty(n + 1, np.int64)
    for j in range(n + 1):
        prev2[j] = INF
        prev[j] = j if j <= k else INF
        cur[j] = INF
    for i in range(1, m + 1):
        lo = i - k if i - k > 1 else 1
        hi = i + k if i + k < n else n
        cur[lo - 1] = i if (lo == 1 and i <= k) else INF
        row_min = cur[lo - 1]
        si = s[i - 1]
        si_prev = s[i - 2] if i > 1 else np.uint8(0)
        for j in range(lo, hi + 1):
            tj = t[j - 1]
            if si == tj:
                d = prev[j - 1]
            else:
                d = prev[j]
                if cur[j - 1] < d:
                    d = cur[j - 1]
                if prev[j - 1] < d:
                    d = prev[j - 1]
                d += 1
                if i > 1 and j > 1 and si == t[j - 2] and si_prev == tj:
                    trans = prev2[j - 2] + 1
                    if trans < d:
                        d = trans
            cur[j] = d if d <= k else INF
            if d < row_min:
                row_min = d
        if hi < n:
            cur[hi + 1] = INF
        if row_min > k:
            return np.int64(-1)
        tmp = prev2
        prev2 = prev
        prev = cur
        cur = tmp
    return prev[n] if prev[n] <= k else np.int64(-1)


@njit(cache=True, parallel=True)
def _osa_mask(codes_l, len_l, codes_r, len_r, ii, jj, k, mode):
    npairs = ii.shape[0]
    out = np.empty(npairs, np.uint8)
    for p in prange(npairs):
        i = ii[p]
        j = jj[p]
        la = len_l[i]
        lb = len_r[j]
        if la == 0 or lb == 0:
            if mode == 1:
                out[p] = 0
            else:
                mx = la if la > lb else lb
                out[p] = 1 if mx <= k else 0
            continue
        dlen = la - lb
        if dlen < 0:
            dlen = -dlen
        if dlen > k:
            out[p] = 0
            continue
        # OSA is symmetric: run the shorter side as the pattern so the
        # one-word fast path covers every pair with min(la, lb) <= 64.
        if la <= lb:
            s = codes_l[i, :la]
            t = codes_r[j, :lb]
        else:
            s = codes_r[j, :lb]
            t = codes_l[i, :la]
        m = s.shape[0]
        n = t.shape[0]
        if m <= 64:
            out[p] = 1 if _osa_bp64(s, m, t, n) <= k else 0
        elif k == 0:
            eq = 1
            for x in range(m):
                if s[x] != t[x]:
                    eq = 0
                    break
            out[p] = eq
        else:
            out[p] = 1 if _banded_osa(s, m, t, n, k) >= 0 else 0
    return out


@njit(cache=True, parallel=True)
def _fused_rows(L, R, len_l, len_r, r0, r1, bound, k, filters):
    nrows = r1 - r0
    nr = R.shape[0]
    width = L.shape[1]
    nf = filters.shape[0]
    counts = np.zeros(nrows, np.int64)
    passed_rows = np.zeros((nrows, nf), np.int64)
    for ri in prange(nrows):
        i = r0 + ri
        la = len_l[i]
        c = 0
        for j in range(nr):
            ok = True
            for f in range(nf):
                if filters[f] == 0:
                    dlen = la - len_r[j]
                    if dlen < 0:
                        dlen = -dlen
                    ok = dlen <= k
                else:
                    db = np.int64(0)
                    for w in range(width):
                        db += _pc64(L[i, w] ^ R[j, w])
                    ok = db <= bound
                if not ok:
                    break
                passed_rows[ri, f] += 1
            if ok:
                c += 1
        counts[ri] = c
    offsets = np.zeros(nrows + 1, np.int64)
    for ri in range(nrows):
        offsets[ri + 1] = offsets[ri] + counts[ri]
    out_i = np.empty(offsets[nrows], np.int64)
    out_j = np.empty(offsets[nrows], np.int64)
    for ri in prange(nrows):
        i = r0 + ri
        la = len_l[i]
        pos = offsets[ri]
        for j in range(nr):
            ok = True
            for f in range(nf):
                if filters[f] == 0:
                    dlen = la - len_r[j]
                    if dlen < 0:
                        dlen = -dlen
                    ok = dlen <= k
                else:
                    db = np.int64(0)
                    for w in range(width):
                        db += _pc64(L[i, w] ^ R[j, w])
                    ok = db <= bound
                if not ok:
                    break
            if ok:
                out_i[pos] = i
                out_j[pos] = j
                pos += 1
    passed = np.zeros(nf, np.int64)
    for ri in range(nrows):
        for f in range(nf):
            passed[f] += passed_rows[ri, f]
    return out_i, out_j, passed


def load():
    """Provider primitives backed by the jitted kernels."""

    def fbf_scan_u32(L, R, bound):
        return _fbf_scan(L, R, bound)

    def fbf_scan_u64(L, R, bound):
        return _fbf_scan(L, R, bound)

    def pair_mask_u32(L, R, ii, jj, bound):
        return _pair_mask(L, R, ii, jj, bound)

    def pair_mask_u64(L, R, ii, jj, bound):
        return _pair_mask(L, R, ii, jj, bound)

    def osa_mask(codes_l, len_l, codes_r, len_r, ii, jj, k, mode):
        return _osa_mask(codes_l, len_l, codes_r, len_r, ii, jj, k, mode)

    def fused_rows_u64(L, R, len_l, len_r, r0, r1, bound, k, filter_codes):
        return _fused_rows(L, R, len_l, len_r, r0, r1, bound, k, filter_codes)

    return {
        "fbf_scan_u32": fbf_scan_u32,
        "fbf_scan_u64": fbf_scan_u64,
        "pair_mask_u32": pair_mask_u32,
        "pair_mask_u64": pair_mask_u64,
        "osa_mask": osa_mask,
        "fused_rows_u64": fused_rows_u64,
    }
