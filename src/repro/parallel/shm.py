"""Zero-copy shared-memory hybrid backend.

The ``pool`` backend scales the *scalar* reference loop: every call
spawns a fresh executor, pickles both datasets into each worker, and
verifies pairs one Python call at a time.  The ``vectorized`` backend
runs NumPy chunk kernels but on one core.  This module combines the two
multipliers — workers × SIMD — with none of the per-call seeding cost:

* each side is encoded **once** in the parent (uint8 code matrix,
  lengths, FBF signatures packed into ``uint64`` words) and published
  through :mod:`multiprocessing.shared_memory`; workers attach to the
  segments zero-copy, so datasets cross the process boundary at most
  once per pool lifetime (and as bytes-in-a-segment, never as pickles);
* a persistent :class:`WorkerPool` (lazy spawn, reused across joins and
  serve batches, explicit ``close()``/context manager, automatic
  respawn of dead workers) executes :class:`~repro.parallel.chunked
  .VectorEngine`-equivalent chunk kernels inside each worker — the
  packed XOR+popcount filter sweep plus the vectorized banded-OSA
  verify — instead of scalar per-pair Python;
* scheduling is dynamic: work is cut into many more tasks than workers
  (sized by estimated cost — ``rows × n_right`` for dense filter
  sweeps, candidate count × DP band width for verify tasks) and fed
  through one queue, so a straggling block never serializes the join;
* every worker runs its tasks under a private
  :class:`~repro.obs.stats.StatsCollector` that is merged into the
  parent's, so the funnel conservation invariant holds for hybrid runs
  exactly as for the single-process backends.

The decisions are bit-identical to the scalar reference (asserted by
``tests/parallel/test_shm_equivalence.py``); only the wall time
changes.  Surfaced as ``backend="hybrid"`` in
:class:`repro.core.plan.JoinPlanner` / :func:`repro.join`, and used by
:meth:`repro.serve.service.MatchService.query_batch` to fan a batch out
across the per-generation roster segments.

Observability counters (free-form, under ``collector.counters``):

``shm_tasks_dispatched``
    tasks queued for this run.
``shm_tasks_stolen``
    tasks a worker executed beyond its even share — the dynamic-queue
    rebalancing that static row splits cannot do.
``shm_bytes_shared`` / ``shm_bytes_pickled``
    bytes published as shared segments (counted once per publication)
    vs. bytes pickled through the task queue (task metadata only once
    the datasets are shared).
``shm_pool_reuse_hits`` / ``shm_workers_respawned``
    warm-pool reuse and crash-recovery respawns.
``shm_worker_busy_ns`` / ``shm_run_wall_ns``
    summed in-worker kernel time vs. parent wall time; utilization is
    ``busy / (wall × workers)``.

Platform note: on Linux the pool forks, so workers inherit the module
state cheaply; on macOS/Windows the spawn start method is used and
workers re-import the package.  Segments are unlinked by the parent
(``close()`` or garbage collection) — see the user guide's
"Choosing a backend" section for the spawn lifetime caveats.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Iterable, Sequence

import numpy as np

from repro.core.join import JoinResult
from repro.core.matchers import method_registry
from repro.core.multiplicity import PairWeighter
from repro.core.popcount import popcount_batch_u64
from repro.core.vectorized import signatures_for_scheme, value_identity_codes
from repro.distance.codec import encode_raw
from repro.distance.soundex import soundex
from repro.distance.vectorized import (
    hamming_pairs,
    jaro_pairs,
    jaro_winkler_pairs,
    osa_pairs,
    osa_within_k_pairs,
)
from repro.native import MODE_DL, MODE_PDL, resolve_kernels
from repro.obs.log import get_logger
from repro.obs.stats import NULL_COLLECTOR, StatsCollector
from repro.parallel.partition import balanced_splits

__all__ = [
    "SideArrays",
    "SharedSide",
    "SharedDatasets",
    "WorkerPool",
    "shared_pool",
    "close_shared_pools",
    "publish_pool_metrics",
    "run_hybrid",
    "hybrid_join",
    "pack_signatures",
    "inline_side",
    "shard_query_call",
    "run_shard_scatter",
]

_log = get_logger("parallel.shm")

#: dense filter sweeps process this many pairs per chunk (matches the
#: VectorEngine's ``filter_chunk``)
_FILTER_CHUNK = 1 << 20
#: banded-OSA verify chunk (matches the VectorEngine's ``chunk``)
_VERIFY_CHUNK = 1 << 12
#: cut work into ~this many tasks per worker so the queue can rebalance
_TASKS_PER_WORKER = 4


# ---------------------------------------------------------------------------
# Array publication
# ---------------------------------------------------------------------------
#
# A *ref* is the picklable handle to one ndarray:
#   ("shm", name, shape, dtype_str)  — attach to a shared segment
#   ("inline", ndarray)              — small per-run data, shipped in the task


def pack_signatures(sigs: np.ndarray) -> np.ndarray:
    """Pack an ``(n, w)`` uint32 signature matrix into uint64 words.

    Halves the XOR+popcount sweeps per pair; odd widths are padded with
    a zero column (XOR of equal zeros contributes no diff bits, so the
    FBF distance is unchanged).
    """
    sigs = np.ascontiguousarray(sigs, dtype=np.uint32)
    if sigs.ndim == 1:
        sigs = sigs[:, None]
    n, w = sigs.shape
    if w == 0:
        return np.zeros((n, 1), dtype=np.uint64)
    if w % 2:
        padded = np.zeros((n, w + 1), dtype=np.uint32)
        padded[:, :w] = sigs
        sigs = padded
    return sigs.view(np.uint64)


@dataclass(frozen=True)
class SideArrays:
    """Picklable handles to one dataset's encoded arrays.

    ``codes``/``lengths`` feed the vectorized DP kernels, ``sigs`` is
    the packed-uint64 signature matrix for the FBF filter; ``sdx``
    (soundex code ids) and ``vid`` (value-identity codes for self-join
    diagonals) are published only when a method needs them.
    """

    n: int
    codes: tuple
    lengths: tuple
    sigs: tuple
    sdx: tuple | None = None
    vid: tuple | None = None


class _Segment:
    """One ndarray copied into a freshly created shared segment."""

    __slots__ = ("shm", "ref", "nbytes")

    def __init__(self, arr: np.ndarray):
        arr = np.ascontiguousarray(arr)
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes)
        )
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self.shm.buf)
        view[...] = arr
        self.ref = ("shm", self.shm.name, arr.shape, arr.dtype.str)
        self.nbytes = int(arr.nbytes)

    def close(self) -> None:
        try:
            self.shm.close()
        except Exception:
            pass
        try:
            self.shm.unlink()
        except Exception:
            pass  # already unlinked (or the platform beat us to it)


def _close_segments(segments: list[_Segment]) -> None:
    for seg in segments:
        seg.close()
    segments.clear()


class _SegmentOwner:
    """Owns published segments; unlinks them on close or collection."""

    def __init__(self):
        self._segments: list[_Segment] = []
        # The finalizer holds the list itself, so segments published
        # later (add_sdx) are still cleaned up.
        self._finalizer = weakref.finalize(
            self, _close_segments, self._segments
        )
        #: has a collector been credited with these bytes yet?
        self.accounted = False

    def _seg(self, arr: np.ndarray) -> tuple:
        seg = _Segment(arr)
        self._segments.append(seg)
        return seg.ref

    @property
    def bytes_shared(self) -> int:
        return sum(seg.nbytes for seg in self._segments)

    def close(self) -> None:
        """Unlink every published segment (idempotent)."""
        self._finalizer()


def _side_encodings(strings: Sequence[str], scheme) -> dict[str, np.ndarray]:
    strings = list(strings)
    codes, lengths = encode_raw(strings)
    return {
        "codes": codes,
        "lengths": lengths,
        "sigs": pack_signatures(signatures_for_scheme(strings, scheme)),
    }


def inline_side(strings: Sequence[str], *, scheme) -> SideArrays:
    """Encode one (small) side as inline refs — the serve layer's
    per-batch query side, where publication would cost more than the
    pickle."""
    enc = _side_encodings(strings, scheme)
    return SideArrays(
        n=len(strings),
        codes=("inline", enc["codes"]),
        lengths=("inline", enc["lengths"]),
        sigs=("inline", enc["sigs"]),
    )


class SharedSide(_SegmentOwner):
    """One dataset published through shared memory (the serve layer's
    per-generation roster)."""

    def __init__(self, strings: Sequence[str], *, scheme):
        super().__init__()
        self.scheme = scheme
        self.n = len(strings)
        enc = _side_encodings(strings, scheme)
        self.arrays = SideArrays(
            n=self.n,
            codes=self._seg(enc["codes"]),
            lengths=self._seg(enc["lengths"]),
            sigs=self._seg(enc["sigs"]),
        )


class SharedDatasets(_SegmentOwner):
    """Both sides of one join published once through shared memory.

    ``self_join=True`` additionally publishes value-identity codes so
    workers can count the value-identity diagonal without ever seeing
    the strings; ``need_sdx`` (or a later :meth:`add_sdx`) publishes
    soundex code ids for the SDX method.  When ``right is left`` the
    segments are shared between the sides.
    """

    def __init__(
        self,
        left: Sequence[str],
        right: Sequence[str],
        *,
        scheme,
        self_join: bool = False,
        need_sdx: bool = False,
    ):
        super().__init__()
        self.scheme = scheme
        self.self_join = bool(self_join)
        self.has_sdx = False
        same = right is left
        vid_l = vid_r = None
        if self.self_join:
            vid_l, vid_r = value_identity_codes(list(left), list(right))
        self.left = self._publish_side(left, vid_l)
        self.right = (
            self.left if same else self._publish_side(right, vid_r)
        )
        if need_sdx:
            self.add_sdx(left, right)

    def _publish_side(self, strings, vid) -> SideArrays:
        enc = _side_encodings(strings, self.scheme)
        return SideArrays(
            n=len(strings),
            codes=self._seg(enc["codes"]),
            lengths=self._seg(enc["lengths"]),
            sigs=self._seg(enc["sigs"]),
            vid=None if vid is None else self._seg(vid),
        )

    def add_sdx(self, left: Sequence[str], right: Sequence[str]) -> None:
        """Publish soundex code ids (idempotent; shared string table so
        cross-side codes compare by id, empty code id 0 never matches)."""
        if self.has_sdx:
            return
        table: dict[str, int] = {"": 0}

        def enc(values: Sequence[str]) -> np.ndarray:
            out = np.empty(len(values), dtype=np.int64)
            for idx, v in enumerate(values):
                out[idx] = table.setdefault(soundex(v), len(table))
            return out

        sl = enc(list(left))
        sr = sl if right is left else enc(list(right))
        shared_side = self.right is self.left
        self.left = replace(self.left, sdx=self._seg(sl))
        self.right = (
            self.left if shared_side else replace(self.right, sdx=self._seg(sr))
        )
        self.has_sdx = True


# ---------------------------------------------------------------------------
# Worker-side attachment
# ---------------------------------------------------------------------------

#: per-worker LRU of attached segments; joins reuse attachments across
#: tasks and runs, dropped segments age out
_SEG_CACHE: OrderedDict[str, tuple] = OrderedDict()
_SEG_CACHE_MAX = 64


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker.

    The parent owns the segment, so a worker must not register it: a
    spawn worker's tracker would unlink it on worker exit, and a fork
    worker (which shares the parent's tracker) would corrupt the
    parent's registration.  Python >= 3.13 has ``track=False`` for
    exactly this; earlier versions get the classic bpo-38119
    workaround — suppress ``register`` for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13 has no track= parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _resolve_ref(ref) -> np.ndarray | None:
    if ref is None:
        return None
    if ref[0] == "inline":
        return ref[1]
    _, name, shape, dtype = ref
    entry = _SEG_CACHE.get(name)
    if entry is None:
        seg = _attach(name)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        _SEG_CACHE[name] = entry = (seg, arr)
        while len(_SEG_CACHE) > _SEG_CACHE_MAX:
            _, (old, _arr) = _SEG_CACHE.popitem(last=False)
            try:
                old.close()
            except Exception:
                pass
    else:
        _SEG_CACHE.move_to_end(name)
    return entry[1]


class _Side:
    __slots__ = ("n", "codes", "lengths", "sigs", "sdx", "vid")


def _resolve_side(side: SideArrays) -> _Side:
    out = _Side()
    out.n = side.n
    out.codes = _resolve_ref(side.codes)
    out.lengths = _resolve_ref(side.lengths)
    out.sigs = _resolve_ref(side.sigs)
    out.sdx = _resolve_ref(side.sdx)
    out.vid = _resolve_ref(side.vid)
    return out


# ---------------------------------------------------------------------------
# The hybrid chunk kernels (worker side)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _HybridTask:
    """One unit of hybrid work: a dense row range or a candidate slice."""

    left: SideArrays
    right: SideArrays
    method: str
    k: int
    theta: float
    variant: str
    fbf_bound: int
    self_join: bool
    collect: bool
    record: bool
    #: ("rows", r0, r1) — dense sweep of left rows r0:r1 × all of right;
    #: ("pairs", ii_ref, jj_ref, start, stop) — candidate index slice
    work: tuple
    w_left: tuple | None = None
    w_right: tuple | None = None
    symmetric: bool = False
    #: kernel tier request resolved worker-side ("auto" probes quietly)
    kernels: str = "auto"


class _Kernels:
    """The VectorEngine chunk kernels over attached shared arrays.

    Accounting is deliberately identical to
    :class:`~repro.parallel.chunked.VectorEngine` — per-block sums merge
    to the single-process reference counters, which is what the funnel
    conservation tests pin.
    """

    def __init__(
        self,
        L: _Side,
        R: _Side,
        *,
        k: int,
        fbf_bound: int,
        theta: float = 0.8,
        variant: str = "paper",
        self_join: bool = False,
        record: bool = False,
        weighter: PairWeighter | None = None,
        kernels: str = "auto",
    ):
        self.L = L
        self.R = R
        self.k = k
        self.theta = theta
        self.variant = variant
        self.fbf_bound = fbf_bound
        self.self_join = self_join
        self.record = record
        self.weighter = weighter
        self._native = resolve_kernels(kernels, warn_key="hybrid")

    @classmethod
    def from_task(cls, task: _HybridTask) -> "_Kernels":
        weighter = None
        w_left = _resolve_ref(task.w_left)
        if w_left is not None:
            weighter = PairWeighter(
                w_left, _resolve_ref(task.w_right), symmetric=task.symmetric
            )
        return cls(
            _resolve_side(task.left),
            _resolve_side(task.right),
            k=task.k,
            fbf_bound=task.fbf_bound,
            theta=task.theta,
            variant=task.variant,
            self_join=task.self_join,
            record=task.record,
            weighter=weighter,
            kernels=task.kernels,
        )

    # -- pair predicates -----------------------------------------------------

    def _diag(self, ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
        if self.self_join:
            return self.L.vid[ii] == self.R.vid[jj]
        return ii == jj

    def _verifier(self, kind: str | None):
        L, R = self.L, self.R
        if kind is None:
            return None
        native = self._native
        if kind == "dl":
            if native is not None:
                return lambda ii, jj: native.osa_decisions(
                    L.codes, L.lengths, R.codes, R.lengths, ii, jj,
                    self.k, mode=MODE_DL,
                )
            return lambda ii, jj: (
                osa_pairs(L.codes, L.lengths, R.codes, R.lengths, ii, jj)
                <= self.k
            )
        if kind == "pdl":
            if native is not None:
                return lambda ii, jj: native.osa_decisions(
                    L.codes, L.lengths, R.codes, R.lengths, ii, jj,
                    self.k, mode=MODE_PDL,
                )
            return lambda ii, jj: osa_within_k_pairs(
                L.codes, L.lengths, R.codes, R.lengths, ii, jj, self.k
            )
        if kind == "ham":
            return lambda ii, jj: (
                hamming_pairs(L.codes, L.lengths, R.codes, R.lengths, ii, jj)
                <= self.k
            )
        if kind == "jaro":
            return lambda ii, jj: (
                jaro_pairs(
                    L.codes, L.lengths, R.codes, R.lengths, ii, jj,
                    self.variant,
                )
                >= self.theta
            )
        if kind == "wink":
            return lambda ii, jj: (
                jaro_winkler_pairs(
                    L.codes, L.lengths, R.codes, R.lengths, ii, jj,
                    0.1, self.variant,
                )
                >= self.theta
            )
        if kind == "sdx":
            sl, sr = L.sdx, R.sdx
            if sl is None or sr is None:
                raise RuntimeError(
                    "soundex codes were not published for this join"
                )
            return lambda ii, jj: (sl[ii] == sr[jj]) & (sl[ii] != 0)
        raise ValueError(f"unknown verifier kind {kind!r}")

    def _verify_chunk(self, kind: str | None) -> int:
        if kind in ("jaro", "wink"):
            return _VERIFY_CHUNK * 2
        if kind in ("ham", "sdx"):  # a couple of bytes of per-pair state
            return _FILTER_CHUNK
        return _VERIFY_CHUNK

    # -- dense filters -------------------------------------------------------

    def _dense_length(self, c0: int, c1: int) -> np.ndarray:
        return (
            np.abs(self.L.lengths[c0:c1, None] - self.R.lengths[None, :])
            <= self.k
        )

    def _dense_fbf(self, c0: int, c1: int) -> np.ndarray:
        pl, pr = self.L.sigs, self.R.sigs
        words = pl.shape[1]
        acc = None
        for w in range(words):
            pc = popcount_batch_u64(pl[c0:c1, w][:, None] ^ pr[:, w][None, :])
            if words == 1:
                return pc <= self.fbf_bound
            if acc is None:
                acc = pc.astype(np.uint16)
            else:
                acc += pc
        return acc <= self.fbf_bound

    def _pair_filter(
        self, name: str, ii: np.ndarray, jj: np.ndarray
    ) -> np.ndarray:
        if name == "length":
            return np.abs(self.L.lengths[ii] - self.R.lengths[jj]) <= self.k
        if name == "fbf":
            pl, pr = self.L.sigs, self.R.sigs
            if self._native is not None:
                return self._native.sig_pair_mask_u64(
                    pl, pr, ii, jj, self.fbf_bound
                )
            db = np.zeros(len(ii), dtype=np.uint16)
            for w in range(pl.shape[1]):
                db += popcount_batch_u64(pl[ii, w] ^ pr[jj, w])
            return db <= self.fbf_bound
        raise ValueError(f"unknown filter {name!r}")

    # -- execution paths -----------------------------------------------------

    @staticmethod
    def _fresh() -> dict:
        return {
            "match_count": 0,
            "diagonal": 0,
            "verified": 0,
            "compared": 0,
            "mi": [],
            "mj": [],
        }

    def _tally(self, res, ii, jj, verifier, vchunk, obs) -> None:
        """Survivor → verify → match tail shared by the dense paths."""
        obs.add_survivors(len(ii))
        if len(ii) == 0:
            return
        if verifier is None:
            res["match_count"] += len(ii)
            res["diagonal"] += int(self._diag(ii, jj).sum())
            if self.record:
                res["mi"].append(ii)
                res["mj"].append(jj)
            obs.add_matched(len(ii))
            return
        res["verified"] += len(ii)
        obs.add_verified(len(ii))
        for v0 in range(0, len(ii), vchunk):
            bi = ii[v0 : v0 + vchunk]
            bj = jj[v0 : v0 + vchunk]
            hits = verifier(bi, bj)
            n_hits = int(hits.sum())
            res["match_count"] += n_hits
            res["diagonal"] += int((hits & self._diag(bi, bj)).sum())
            if self.record and n_hits:
                res["mi"].append(bi[hits])
                res["mj"].append(bj[hits])
            obs.add_matched(n_hits)

    def run_rows(self, spec, r0: int, r1: int, obs) -> dict:
        """Dense sweep of left rows ``r0:r1`` against all of right.

        Global row indices throughout, so the positional diagonal and
        recorded matches need no rebasing in the parent.
        """
        res = self._fresh()
        nr = self.R.n
        if nr == 0 or r1 <= r0:
            return res
        verifier = self._verifier(spec.verifier)
        vchunk = self._verify_chunk(spec.verifier)
        if (
            self._native is not None
            and spec.filters
            and self._native.supports_filters(spec.filters)
            and self.L.sigs is not None
            and self.R.sigs is not None
        ):
            # Fused sweep: filters + candidate emission in one compiled
            # pass, no dense boolean intermediates.  Stage counters are
            # cumulative-AND survivor counts, so the merged funnel is
            # identical to the chunked mask-chain below.
            block = (r1 - r0) * nr
            res["compared"] = block
            obs.add_pairs(block)
            ii, jj, passed = self._native.fused_rows_u64(
                self.L.sigs, self.R.sigs, self.L.lengths, self.R.lengths,
                r0, r1,
                bound=self.fbf_bound, k=self.k, filters=spec.filters,
            )
            tested = block
            for fname, npass in zip(spec.filters, passed):
                obs.add_stage(fname, tested, int(npass))
                tested = int(npass)
            self._tally(res, ii, jj, verifier, vchunk, obs)
            return res
        rows_per = max(1, _FILTER_CHUNK // nr)
        for c0 in range(r0, r1, rows_per):
            c1 = min(r1, c0 + rows_per)
            block = (c1 - c0) * nr
            res["compared"] += block
            obs.add_pairs(block)
            mask = None
            tested = block
            for fname in spec.filters:
                fm = (
                    self._dense_length(c0, c1)
                    if fname == "length"
                    else self._dense_fbf(c0, c1)
                )
                mask = fm if mask is None else (mask & fm)
                passed = int(np.count_nonzero(mask))
                obs.add_stage(fname, tested, passed)
                tested = passed
            if mask is None:
                ii = np.repeat(np.arange(c0, c1, dtype=np.int64), nr)
                jj = np.tile(np.arange(nr, dtype=np.int64), c1 - c0)
            else:
                # flatnonzero over the raveled *bool* mask is ~10x a 2-D
                # nonzero — the survivor extraction is the sweep's
                # second-biggest cost after the popcount itself.
                idx = np.flatnonzero(mask.ravel())
                ii = idx // nr + c0
                jj = idx % nr
            self._tally(res, ii, jj, verifier, vchunk, obs)
        return res

    def run_pairs(self, spec, ii: np.ndarray, jj: np.ndarray, obs) -> dict:
        """One candidate slice — mirrors ``VectorEngine.run_candidates``
        including the weighted (original-pair-units) accounting."""
        res = self._fresh()
        ii = np.asarray(ii, dtype=np.int64)
        jj = np.asarray(jj, dtype=np.int64)
        res["compared"] = len(ii)
        ww = None if self.weighter is None else self.weighter.block(ii, jj)
        obs.add_pairs(len(ii) if ww is None else int(ww.sum()))
        for fname in spec.filters:
            tested = len(ii) if ww is None else int(ww.sum())
            mask = self._pair_filter(fname, ii, jj)
            ii, jj = ii[mask], jj[mask]
            if ww is not None:
                ww = ww[mask]
            obs.add_stage(
                fname, tested, len(ii) if ww is None else int(ww.sum())
            )
        surviving = len(ii) if ww is None else int(ww.sum())
        obs.add_survivors(surviving)
        if len(ii) == 0:
            return res
        verifier = self._verifier(spec.verifier)
        if verifier is None:
            dm = self._diag(ii, jj)
            res["match_count"] += surviving
            res["diagonal"] += (
                int(dm.sum()) if ww is None else int(ww[dm].sum())
            )
            if self.record:
                res["mi"].append(ii)
                res["mj"].append(jj)
            obs.add_matched(surviving)
            return res
        res["verified"] += len(ii)
        obs.add_verified(surviving)
        vchunk = self._verify_chunk(spec.verifier)
        for c0 in range(0, len(ii), vchunk):
            bi = ii[c0 : c0 + vchunk]
            bj = jj[c0 : c0 + vchunk]
            bw = None if ww is None else ww[c0 : c0 + vchunk]
            hits = verifier(bi, bj)
            dm = self._diag(bi, bj)
            if bw is None:
                n_hits = int(hits.sum())
                res["diagonal"] += int((hits & dm).sum())
            else:
                n_hits = int(bw[hits].sum())
                res["diagonal"] += int(bw[hits & dm].sum())
            res["match_count"] += n_hits
            if self.record:
                res["mi"].append(bi[hits])
                res["mj"].append(bj[hits])
            obs.add_matched(n_hits)
        return res


def _exec_hybrid(task: _HybridTask) -> dict:
    """Worker entry point for one hybrid task."""
    spec = method_registry()[task.method]
    kernels = _Kernels.from_task(task)
    wc = StatsCollector("shm-worker") if task.collect else None
    obs = wc if wc is not None else NULL_COLLECTOR
    if task.work[0] == "rows":
        out = kernels.run_rows(spec, task.work[1], task.work[2], obs)
    else:
        _, ii_ref, jj_ref, start, stop = task.work
        ii = _resolve_ref(ii_ref)[start:stop]
        jj = _resolve_ref(jj_ref)[start:stop]
        out = kernels.run_pairs(spec, ii, jj, obs)
    out["wc"] = wc
    return out


# ---------------------------------------------------------------------------
# Sharded serving: worker-held roster state + the scatter driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ShardQueryTask:
    """One shard's slice of a scattered serve batch.

    ``roster`` names the shard's published segments for ``generation``;
    the owning worker resolves them once and keeps the resolved side in
    :data:`_SHARD_STATE` until a handoff task for a newer generation
    arrives — the worker *holds* the shard, it does not re-attach per
    batch.  ``queries`` is the (small) inline-encoded query side.
    """

    shard: int
    generation: int
    roster: SideArrays
    queries: SideArrays
    method: str
    k: int
    fbf_bound: int
    collect: bool
    kernels: str = "auto"


#: worker-side shard ownership: shard id -> (generation, resolved side)
_SHARD_STATE: dict[int, tuple[int, _Side]] = {}


def _exec_shard_query(task: _ShardQueryTask) -> dict:
    """Worker entry point: dense sweep of a query batch over one owned
    shard roster.

    The resolved roster side is cached per (shard, generation) — the
    snapshot-based handoff protocol: a task carrying a newer generation
    atomically swaps the worker's held state to the newly published
    segments (the parent unlinks the old ones only after publishing the
    new, so there is no window where the shard is unservable).
    """
    spec = method_registry()[task.method]
    held = _SHARD_STATE.get(task.shard)
    adopted = False
    if held is None or held[0] != task.generation:
        held = (task.generation, _resolve_side(task.roster))
        _SHARD_STATE[task.shard] = held
        adopted = True
    queries = _resolve_side(task.queries)
    kernels = _Kernels(
        queries,
        held[1],
        k=task.k,
        fbf_bound=task.fbf_bound,
        record=True,
        kernels=task.kernels,
    )
    wc = StatsCollector("shm-shard") if task.collect else None
    obs = wc if wc is not None else NULL_COLLECTOR
    out = kernels.run_rows(spec, 0, queries.n, obs)
    out["wc"] = wc
    out["shard"] = task.shard
    out["adopted"] = adopted
    return out


def shard_query_call(
    shard: int,
    generation: int,
    roster: SideArrays,
    queries: SideArrays,
    *,
    scheme,
    k: int,
    method: str = "FPDL",
    collect: bool = False,
    kernels: str = "auto",
) -> tuple:
    """Build one ``(fn, payload)`` pool call for a shard query slice."""
    return (
        _exec_shard_query,
        _ShardQueryTask(
            shard=shard,
            generation=generation,
            roster=roster,
            queries=queries,
            method=method,
            k=k,
            fbf_bound=scheme.safe_threshold(k),
            collect=collect,
            kernels=kernels,
        ),
    )


def run_shard_scatter(
    pool: WorkerPool,
    calls: Sequence[tuple],
    *,
    slots: Sequence[int] | None = None,
    collector=None,
) -> list[dict]:
    """Dispatch shard query calls (pinned to their owning slots) and
    merge the per-worker funnel collectors; returns the raw per-shard
    result dicts in call order.

    The ``shm_*`` counter accounting mirrors :func:`run_hybrid`, so
    pooled sharded serving feeds the same per-worker load counters the
    rebalancer reads.
    """
    if not calls:
        return []
    before_pickled = pool.bytes_pickled
    before_busy = pool.busy_ns
    before_respawns = pool.respawns
    t0 = time.perf_counter_ns()
    outs = pool.run_tasks(calls, slots=slots)
    wall = time.perf_counter_ns() - t0
    if collector:
        for out in outs:
            wc = out.get("wc")
            if wc is not None:
                collector.merge(wc)
        collector.add_counter("shm_tasks_dispatched", len(calls))
        collector.add_counter(
            "shm_bytes_pickled", pool.bytes_pickled - before_pickled
        )
        collector.add_counter(
            "shm_workers_respawned", pool.respawns - before_respawns
        )
        collector.add_counter("shm_pool_reuse_hits", pool.consume_reuse_hits())
        collector.add_counter("shm_worker_busy_ns", pool.busy_ns - before_busy)
        collector.add_counter("shm_run_wall_ns", wall)
    return outs


# ---------------------------------------------------------------------------
# The persistent worker pool
# ---------------------------------------------------------------------------


def _worker_main(task_q, result_q) -> None:
    """Worker loop: pull ``(run_id, task_id, blob)``, push
    ``(run_id, task_id, pid, busy_ns, error, result)``.  ``None`` is the
    shutdown sentinel."""
    pid = os.getpid()
    while True:
        item = task_q.get()
        if item is None:
            break
        run_id, task_id, blob = item
        try:
            fn, payload = pickle.loads(blob)
            t0 = time.perf_counter_ns()
            out = fn(payload)
            busy = time.perf_counter_ns() - t0
            result_q.put((run_id, task_id, pid, busy, None, out))
        except Exception as exc:
            import traceback

            err = f"{exc!r}\n{traceback.format_exc()}"
            try:
                result_q.put((run_id, task_id, pid, 0, err, None))
            except Exception:
                os._exit(1)


def _default_context():
    # fork is both the cheap option and the one that keeps the imported
    # package state; spawn is the portable fallback (macOS/Windows).
    methods = get_all_start_methods()
    return get_context("fork" if "fork" in methods else "spawn")


class WorkerPool:
    """A persistent multiprocessing pool with one shared task queue.

    Unlike ``ProcessPoolExecutor`` as the legacy driver used it, the
    pool is *reused*: workers are spawned lazily on the first
    :meth:`run_tasks` and then serve every subsequent join or serve
    batch, so repeated runs pay neither process startup nor dataset
    reseeding.  Tasks are pre-pickled in the parent (which is also what
    makes the ``bytes_pickled`` accounting exact), results are deduped
    by task id, and workers that die mid-run are respawned with their
    incomplete tasks re-enqueued — a crashed worker costs its in-flight
    task's work, never the join.

    ``affinity=True`` switches the pool to one task queue *per worker
    slot*: :meth:`run_tasks` then routes each call to the slot named by
    ``slots`` (modulo the worker count), so a task family — a serve
    shard's queries, say — always lands on the same worker, whose
    process-local caches (attached segments, resolved shard state)
    stay hot.  A respawned worker inherits its dead predecessor's slot
    queue, so affinity survives crashes; the shared-queue mode keeps
    its work-stealing dynamic scheduling.

    Use as a context manager or call :meth:`close`; module-level warm
    pools (:func:`shared_pool`) are closed at interpreter exit.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        context=None,
        timeout: float | None = None,
        affinity: bool = False,
    ):
        self.workers = max(1, int(workers or os.cpu_count() or 1))
        self.timeout = timeout
        self.affinity = bool(affinity)
        self._ctx = context or _default_context()
        #: affinity mode keeps this slot-indexed (a respawn replaces in
        #: place); shared mode just appends replacements
        self._procs: list = []
        self._task_q = None
        #: per-slot queues (affinity mode only)
        self._task_qs: list | None = None
        self._result_q = None
        self._closed = False
        self._owner_pid = os.getpid()
        self._run_seq = 0
        self.tasks_dispatched = 0
        self.tasks_completed = 0
        self.tasks_stolen = 0
        self.bytes_pickled = 0
        self.respawns = 0
        self.reuse_hits = 0
        self._unreported_reuse = 0
        self.busy_ns = 0
        #: per-pid lifetime tallies: {"tasks", "busy_ns", "last_seen"}
        #: (``last_seen`` is wall-clock of the pid's latest result — the
        #: heartbeat the serve layer surfaces as per-worker gauges).
        #: Entries are created at spawn and *dropped at death*, so the
        #: heartbeat never reports a corpse as a live series.
        self.worker_stats: dict[int, dict[str, float]] = {}
        #: pids whose process died (their series must leave the scrape)
        self.retired_pids: set[int] = set()
        #: wall-clock of the first spawn (busy-ratio denominator)
        self.started_at: float | None = None
        #: respawns already reported through publish_pool_metrics
        self._respawns_published = 0
        #: pids whose pool_worker_* series the last publish rendered
        self._published_pids: set[int] = set()

    # -- lifecycle -----------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._result_q is not None

    @property
    def closed(self) -> bool:
        return self._closed

    def alive_workers(self) -> int:
        return sum(
            1 for p in self._procs if p is not None and p.is_alive()
        )

    def slot_pids(self) -> list[int | None]:
        """Current pid per worker slot (``None`` for an unspawned slot).

        Only meaningful ordering in affinity mode, where the slot is
        the routing key; shared mode reports spawn order.
        """
        return [
            p.pid if p is not None and p.is_alive() else None
            for p in self._procs
        ]

    def _spawn(self, task_q):
        p = self._ctx.Process(
            target=_worker_main,
            args=(task_q, self._result_q),
            daemon=True,
        )
        p.start()
        # Register the pid's series at spawn, not first answer, so a
        # respawned worker is visible in the very next scrape.
        self.worker_stats.setdefault(
            p.pid, {"tasks": 0, "busy_ns": 0, "last_seen": time.time()}
        )
        return p

    def _retire(self, proc) -> None:
        """Forget a dead pid's per-worker series (lifetime totals keep
        its contribution; only the labelled heartbeat rows go away)."""
        if proc is None or proc.pid is None:
            return
        self.worker_stats.pop(proc.pid, None)
        self.retired_pids.add(proc.pid)

    def ensure(self) -> None:
        """Spawn (or respawn) workers up to the configured count."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._result_q is None:
            self._result_q = self._ctx.Queue()
            if self.affinity:
                self._task_qs = [
                    self._ctx.Queue() for _ in range(self.workers)
                ]
            else:
                self._task_q = self._ctx.Queue()
        if self.started_at is None:
            self.started_at = time.time()
        died = 0
        if self.affinity:
            if len(self._procs) < self.workers:
                self._procs.extend(
                    [None] * (self.workers - len(self._procs))
                )
            for slot in range(self.workers):
                p = self._procs[slot]
                if p is not None and p.is_alive():
                    continue
                if p is not None:
                    died += 1
                    self._retire(p)
                self._procs[slot] = self._spawn(self._task_qs[slot])
        else:
            alive = [p for p in self._procs if p.is_alive()]
            for p in self._procs:
                if not p.is_alive():
                    died += 1
                    self._retire(p)
            self._procs = alive
            while len(self._procs) < self.workers:
                self._procs.append(self._spawn(self._task_q))
        if died:
            self.respawns += died
            _log.warning("respawning %d dead worker(s)", died)

    def _all_task_queues(self) -> list:
        if self.affinity:
            return list(self._task_qs or [])
        return [] if self._task_q is None else [self._task_q]

    def close(self) -> None:
        """Shut the workers down and drop the queues (idempotent).

        A forked child that inherited this object must never tear it
        down — only the creating process owns the workers.
        """
        if self._closed or os.getpid() != self._owner_pid:
            self._closed = True
            return
        self._closed = True
        if self.started:
            if self.affinity:
                for q in self._task_qs or []:
                    try:
                        q.put(None)
                    except Exception:
                        break
            else:
                for _ in self._procs:
                    try:
                        self._task_q.put(None)
                    except Exception:
                        break
            for p in self._procs:
                if p is None:
                    continue
                p.join(timeout=2)
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=1)
            for q in (*self._all_task_queues(), self._result_q):
                try:
                    q.cancel_join_thread()
                    q.close()
                except Exception:
                    pass
        self._procs = []
        self._task_q = self._task_qs = self._result_q = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def consume_reuse_hits(self) -> int:
        """Warm-pool acquisitions since the last report (run-delta
        counter feed)."""
        n = self._unreported_reuse
        self._unreported_reuse = 0
        return n

    # -- execution -----------------------------------------------------------

    def _queue_for(self, task_id: int, slots) -> object:
        if not self.affinity:
            return self._task_q
        if slots is None:
            return self._task_qs[task_id % self.workers]
        return self._task_qs[int(slots[task_id]) % self.workers]

    def run_tasks(
        self,
        calls: Sequence[tuple],
        *,
        timeout: float | None = None,
        slots: Sequence[int] | None = None,
    ) -> list:
        """Execute ``(fn, payload)`` pairs; results in submission order.

        Tasks drain from one shared queue, so a fast worker picks up a
        slow worker's share (dynamic scheduling).  A worker crash
        triggers respawn + re-enqueue of incomplete tasks (results are
        deduped by task id, so double execution is harmless); a task
        that *raises* re-raises here with the worker traceback, leaving
        the pool reusable.

        ``slots`` (affinity pools only) names the worker slot for each
        call, taken modulo the worker count; without it affinity pools
        route round-robin by task id.  Re-enqueues after a crash go
        back to the *same* slot — its respawned worker picks them up —
        so placement survives worker death.
        """
        if not calls:
            return []
        if slots is not None and len(slots) != len(calls):
            raise ValueError(
                f"slots ({len(slots)}) must match calls ({len(calls)})"
            )
        self.ensure()
        timeout = self.timeout if timeout is None else timeout
        self._run_seq += 1
        run_id = self._run_seq
        blobs = [
            pickle.dumps(call, protocol=pickle.HIGHEST_PROTOCOL)
            for call in calls
        ]
        for task_id, blob in enumerate(blobs):
            self._queue_for(task_id, slots).put((run_id, task_id, blob))
            self.bytes_pickled += len(blob)
        self.tasks_dispatched += len(blobs)
        results: dict[int, object] = {}
        executed_by: dict[int, int] = {}
        deadline = None if timeout is None else time.monotonic() + timeout
        respawn_budget = 3 * self.workers
        while len(results) < len(blobs):
            try:
                rid, task_id, pid, busy, err, out = self._result_q.get(
                    timeout=0.1
                )
            except queue.Empty:
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"pool run timed out after {timeout}s with "
                        f"{len(blobs) - len(results)} task(s) outstanding"
                    )
                if self.alive_workers() < self.workers:
                    if respawn_budget <= 0:
                        raise RuntimeError(
                            "workers keep dying faster than the respawn "
                            "budget; giving up on this run"
                        )
                    respawn_budget -= self.workers - self.alive_workers()
                    self.ensure()
                    # Re-enqueue everything not yet answered; completed
                    # duplicates are discarded by the task-id dedup.
                    for task_id, blob in enumerate(blobs):
                        if task_id not in results:
                            self._queue_for(task_id, slots).put(
                                (run_id, task_id, blob)
                            )
                continue
            if rid != run_id or task_id in results:
                continue  # stale result from a past run or a re-enqueue
            if err is not None:
                raise RuntimeError(f"worker task failed:\n{err}")
            results[task_id] = out
            executed_by[pid] = executed_by.get(pid, 0) + 1
            self.busy_ns += busy
            self.tasks_completed += 1
            ws = self.worker_stats.get(pid)
            if ws is None:
                ws = self.worker_stats[pid] = {
                    "tasks": 0, "busy_ns": 0, "last_seen": 0.0,
                }
            ws["tasks"] += 1
            ws["busy_ns"] += busy
            ws["last_seen"] = time.time()
        # "Stolen" = executed beyond the even per-worker share; with a
        # static split this is zero by construction.
        fair = -(-len(blobs) // max(1, len(executed_by)))
        self.tasks_stolen += sum(
            max(0, n - fair) for n in executed_by.values()
        )
        return [results[task_id] for task_id in range(len(blobs))]

    # -- telemetry -----------------------------------------------------------

    def heartbeat(self) -> dict[str, object]:
        """JSON-ready live view of the pool: lifetime totals plus one
        entry per worker pid that has ever answered.

        ``busy_ratio`` is the pid's summed in-kernel time over the
        pool's wall lifetime — the per-shard load signal the ROADMAP's
        sharded-serving item rebalances on.  ``age_s`` is seconds since
        the pid's last completed task (its heartbeat staleness).
        """
        now = time.time()
        uptime = (now - self.started_at) if self.started_at else 0.0
        alive_pids = {p.pid for p in self._procs if p.is_alive()}
        return {
            "workers": self.workers,
            "alive": len(alive_pids),
            "uptime_s": uptime,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_completed": self.tasks_completed,
            "tasks_stolen": self.tasks_stolen,
            "bytes_pickled": self.bytes_pickled,
            "respawns": self.respawns,
            "busy_ns": self.busy_ns,
            "per_worker": {
                pid: {
                    "tasks": ws["tasks"],
                    "busy_ns": ws["busy_ns"],
                    "busy_ratio": (
                        ws["busy_ns"] / (uptime * 1e9) if uptime else 0.0
                    ),
                    "age_s": max(0.0, now - ws["last_seen"]),
                    "alive": pid in alive_pids,
                }
                for pid, ws in self.worker_stats.items()
            },
        }


def publish_pool_metrics(
    pool: "WorkerPool", metrics, events=None
) -> dict[str, object]:
    """Surface a pool's heartbeat as registry gauges/counters.

    Pool-level lifetime totals land in ``pool_*_total`` counters (via
    ``set_total`` — the pool already keeps the monotone running sums
    that back the ``shm_*`` collector counters), live state in
    ``pool_*`` gauges, and each worker pid gets labelled
    ``pool_worker_*`` gauges (tasks, busy ratio, heartbeat age,
    liveness).  Respawns since the previous publish are emitted as
    ``worker_respawn`` events.  Returns the heartbeat dict.
    """
    hb = pool.heartbeat()
    metrics.gauge("pool_workers", "configured worker count").set(
        hb["workers"]
    )
    metrics.gauge("pool_workers_alive", "workers currently alive").set(
        hb["alive"]
    )
    metrics.gauge("pool_uptime_seconds", "seconds since first spawn").set(
        hb["uptime_s"]
    )
    for key, help_ in (
        ("tasks_dispatched", "tasks queued over the pool lifetime"),
        ("tasks_completed", "tasks answered over the pool lifetime"),
        ("tasks_stolen", "tasks executed beyond the even share"),
        ("bytes_pickled", "bytes shipped through the task queue"),
        ("respawns", "workers respawned after dying"),
    ):
        metrics.counter(f"pool_{key}_total", help_).set_total(hb[key])
    metrics.counter(
        "pool_busy_seconds_total", "summed in-worker kernel time"
    ).set_total(hb["busy_ns"] / 1e9)
    for pid, ws in hb["per_worker"].items():
        labels = {"pid": str(pid)}
        metrics.gauge(
            "pool_worker_tasks", "tasks answered by this pid", labels
        ).set(ws["tasks"])
        metrics.gauge(
            "pool_worker_busy_ratio",
            "pid busy time over pool wall lifetime",
            labels,
        ).set(ws["busy_ratio"])
        metrics.gauge(
            "pool_worker_heartbeat_age_seconds",
            "seconds since this pid last answered",
            labels,
        ).set(ws["age_s"])
        metrics.gauge(
            "pool_worker_alive", "1 if the pid is alive", labels
        ).set(1.0 if ws["alive"] else 0.0)
    # A crash-respawn replaced some pids: retire the dead pids' series
    # so scrapes stop reporting ghosts, instead of a stale gauge row
    # lingering forever next to the respawned worker's fresh one.
    current_pids = {str(pid) for pid in hb["per_worker"]}
    for stale in pool._published_pids - current_pids:
        for name in (
            "pool_worker_tasks",
            "pool_worker_busy_ratio",
            "pool_worker_heartbeat_age_seconds",
            "pool_worker_alive",
        ):
            metrics.remove_series(name, {"pid": stale})
    pool._published_pids = current_pids
    if events:
        new_respawns = pool.respawns - pool._respawns_published
        if new_respawns > 0:
            events.emit(
                "worker_respawn",
                count=new_respawns,
                total=pool.respawns,
                alive=hb["alive"],
            )
    pool._respawns_published = pool.respawns
    return hb


#: process-wide warm pools, keyed by (worker count, affinity)
_SHARED_POOLS: dict[tuple[int, bool], WorkerPool] = {}
_ATEXIT_REGISTERED = False


def shared_pool(
    workers: int | None = None, *, affinity: bool = False
) -> WorkerPool:
    """The process-wide warm :class:`WorkerPool` for ``workers``.

    Created on first use, reused (and counted as a reuse hit) after;
    closed automatically at interpreter exit.  Affinity pools (per-slot
    queues, see :class:`WorkerPool`) are kept separately from the
    shared-queue ones — the two scheduling modes must not mix on one
    queue topology.
    """
    global _ATEXIT_REGISTERED
    n = max(1, int(workers or os.cpu_count() or 1))
    key = (n, bool(affinity))
    pool = _SHARED_POOLS.get(key)
    if pool is not None and not pool.closed and pool._owner_pid == os.getpid():
        pool.reuse_hits += 1
        pool._unreported_reuse += 1
        return pool
    pool = WorkerPool(n, affinity=affinity)
    _SHARED_POOLS[key] = pool
    if not _ATEXIT_REGISTERED:
        atexit.register(close_shared_pools)
        _ATEXIT_REGISTERED = True
    return pool


def close_shared_pools() -> None:
    """Close every warm pool (atexit hook; also handy in tests)."""
    for pool in list(_SHARED_POOLS.values()):
        pool.close()
    _SHARED_POOLS.clear()


# ---------------------------------------------------------------------------
# The parent-side driver
# ---------------------------------------------------------------------------


def _task_span(total_cost: int, workers: int, lo: int, hi: int) -> int:
    per_task = total_cost // max(1, workers * _TASKS_PER_WORKER)
    return int(min(hi, max(lo, per_task)))


def run_hybrid(
    pool: WorkerPool,
    left: SideArrays,
    right: SideArrays,
    method: str,
    blocks: Iterable[tuple[np.ndarray, np.ndarray]] | None = None,
    *,
    scheme,
    k: int = 1,
    theta: float = 0.8,
    variant: str = "paper",
    self_join: bool = False,
    collector=None,
    record_matches: bool = False,
    weighter: PairWeighter | None = None,
    shared_source=None,
    task_pairs: int | None = None,
    kernels: str = "auto",
) -> JoinResult:
    """One hybrid join over already-published sides.

    ``blocks=None`` runs the dense full product (row-range tasks);
    otherwise the candidate stream is drained, published as two index
    segments and cut into verify tasks.  ``shared_source`` (a
    :class:`SharedDatasets`/:class:`SharedSide`) credits its published
    bytes to the collector exactly once over its lifetime — which is the
    "datasets cross the boundary at most once" evidence.  ``weighter``
    requires an explicit candidate stream, as in
    :func:`repro.parallel.pool.multiprocess_join`.  ``kernels`` picks
    the worker-side kernel tier: ``"auto"`` (default) uses compiled
    kernels when a provider loads, ``"numpy"`` pins pure NumPy, and
    ``"native"`` warns once per worker if no provider is available.
    """
    spec = method_registry().get(method)
    if spec is None:
        raise ValueError(f"unknown method {method!r}")
    if weighter is not None and blocks is None:
        raise ValueError(
            "run_hybrid with a weighter requires an explicit candidate "
            "stream (dense row tasks cannot reproduce symmetric weights)"
        )
    obs = collector if collector else NULL_COLLECTOR
    n_left, n_right = left.n, right.n
    if obs:
        obs.meta.setdefault("method", method)
        obs.meta.setdefault("k", k)
        obs.meta["n_left"] = n_left
        obs.meta["n_right"] = n_right
    w_left_ref = w_right_ref = None
    symmetric = False
    if weighter is not None:
        w_left_ref = ("inline", np.asarray(weighter.w_left, dtype=np.int64))
        w_right_ref = ("inline", np.asarray(weighter.w_right, dtype=np.int64))
        symmetric = weighter.symmetric
    run_segments: list[_Segment] = []
    works: list[tuple] = []
    if blocks is None:
        # Dense-path task cost is the filter sweep itself: rows x n_right.
        if n_right:
            target = task_pairs or _task_span(
                n_left * n_right, pool.workers, 1 << 16, 1 << 24
            )
            rows = max(1, target // n_right)
            for r0 in range(0, n_left, rows):
                works.append(("rows", r0, min(n_left, r0 + rows)))
    else:
        parts_i: list[np.ndarray] = []
        parts_j: list[np.ndarray] = []
        for bi, bj in blocks:  # drained fully (generator accounting)
            if len(bi):
                parts_i.append(np.asarray(bi, dtype=np.int64))
                parts_j.append(np.asarray(bj, dtype=np.int64))
        total = sum(len(p) for p in parts_i)
        if total:
            ii = parts_i[0] if len(parts_i) == 1 else np.concatenate(parts_i)
            jj = parts_j[0] if len(parts_j) == 1 else np.concatenate(parts_j)
            # Candidate tasks are verify-bound: estimated cost is the
            # candidate count x the banded-DP width (2k+1), so they are
            # cut ~an order of magnitude finer than dense sweeps.
            band = 2 * k + 1
            target = task_pairs or max(
                1,
                _task_span(total * band, pool.workers, 1 << 14, 1 << 22)
                // band,
            )
            seg_i, seg_j = _Segment(ii), _Segment(jj)
            run_segments = [seg_i, seg_j]
            n_tasks = max(1, -(-total // target))
            for start, stop in balanced_splits(total, n_tasks):
                works.append(("pairs", seg_i.ref, seg_j.ref, start, stop))
    calls = [
        (
            _exec_hybrid,
            _HybridTask(
                left=left,
                right=right,
                method=method,
                k=k,
                theta=theta,
                variant=variant,
                fbf_bound=scheme.safe_threshold(k),
                self_join=self_join,
                collect=bool(collector),
                record=record_matches,
                work=work,
                w_left=w_left_ref,
                w_right=w_right_ref,
                symmetric=symmetric,
                kernels=kernels,
            ),
        )
        for work in works
    ]
    before_pickled = pool.bytes_pickled
    before_stolen = pool.tasks_stolen
    before_respawns = pool.respawns
    before_busy = pool.busy_ns
    t0 = time.perf_counter_ns()
    try:
        with obs.span(f"run.{method}.hybrid"):
            outs = pool.run_tasks(calls)
    finally:
        for seg in run_segments:
            seg.close()
    wall = time.perf_counter_ns() - t0
    result = JoinResult(method, n_left, n_right, backend="hybrid")
    mi_parts: list[np.ndarray] = []
    mj_parts: list[np.ndarray] = []
    for out in outs:
        result.match_count += out["match_count"]
        result.diagonal_matches += out["diagonal"]
        result.verified_pairs += out["verified"]
        result.pairs_compared += out["compared"]
        mi_parts.extend(out["mi"])
        mj_parts.extend(out["mj"])
        wc = out.get("wc")
        if collector and wc is not None:
            collector.merge(wc)
    if record_matches and mi_parts:
        mi = np.concatenate(mi_parts)
        mj = np.concatenate(mj_parts)
        result.matches = sorted(zip(mi.tolist(), mj.tolist()))
    if collector:
        collector.add_counter("shm_tasks_dispatched", len(calls))
        collector.add_counter(
            "shm_tasks_stolen", pool.tasks_stolen - before_stolen
        )
        collector.add_counter(
            "shm_bytes_pickled", pool.bytes_pickled - before_pickled
        )
        shared_bytes = sum(seg.nbytes for seg in run_segments)
        if shared_source is not None and not shared_source.accounted:
            shared_bytes += shared_source.bytes_shared
            shared_source.accounted = True
        collector.add_counter("shm_bytes_shared", shared_bytes)
        collector.add_counter(
            "shm_workers_respawned", pool.respawns - before_respawns
        )
        collector.add_counter(
            "shm_pool_reuse_hits", pool.consume_reuse_hits()
        )
        collector.add_counter(
            "shm_worker_busy_ns", pool.busy_ns - before_busy
        )
        collector.add_counter("shm_run_wall_ns", wall)
    return result


def hybrid_join(
    left: Sequence[str],
    right: Sequence[str],
    method: str,
    *,
    k: int = 1,
    theta: float = 0.8,
    scheme=None,
    workers: int | None = None,
    record_matches: bool = False,
    collector=None,
    kernels: str = "auto",
) -> JoinResult:
    """Convenience one-shot: publish, run on the warm pool, unlink.

    For repeated joins hold a :class:`SharedDatasets` (or use the
    planner, which caches one) so publication happens once.
    """
    from repro.core.signatures import detect_kind, scheme_for

    if scheme is None or isinstance(scheme, str):
        kind = scheme or detect_kind(list(left[:128]) + list(right[:128]))
        scheme = scheme_for(kind, 2)
    spec = method_registry().get(method)
    if spec is None:
        raise ValueError(f"unknown method {method!r}")
    self_join = right is left or (
        len(left) == len(right) and list(left) == list(right)
    )
    datasets = SharedDatasets(
        left,
        right,
        scheme=scheme,
        self_join=self_join,
        need_sdx=spec.verifier == "sdx",
    )
    try:
        return run_hybrid(
            shared_pool(workers),
            datasets.left,
            datasets.right,
            method,
            scheme=scheme,
            k=k,
            theta=theta,
            self_join=self_join,
            collector=collector,
            record_matches=record_matches,
            shared_source=datasets,
            kernels=kernels,
        )
    finally:
        datasets.close()
