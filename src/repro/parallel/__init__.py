"""Scaled join drivers (the HPC layer).

The paper's experiments are quadratic joins — 25 million pairs per table
at paper scale — so the harness needs engines faster than one Python
call per pair:

* :mod:`repro.parallel.partition` — pair-space partitioning: rectangular
  blocking of the ``n_left x n_right`` product into cache-sized chunks,
  and balanced work splits for multi-process runs.
* :mod:`repro.parallel.chunked` — the vectorized join
  (:class:`VectorEngine`): every method stack of the evaluation
  implemented over NumPy pair chunks (:mod:`repro.distance.vectorized`
  + :mod:`repro.core.vectorized`).  One process, no per-pair Python;
  the plan layer's ``vectorized`` backend.
* :mod:`repro.parallel.pool` — a multiprocessing driver
  (:func:`multiprocess_join`) that partitions the pair space across
  worker processes, for the scalar matchers (reference engine at
  scale) and as the distributed-RL skeleton the paper's conclusion
  sketches; the plan layer's ``multiprocess`` backend.
* :mod:`repro.parallel.shm` — the zero-copy hybrid: encodings are
  published once through ``multiprocessing.shared_memory`` and a
  persistent :class:`WorkerPool` (reused across joins and serve
  batches) runs the vectorized chunk kernels inside each worker; the
  plan layer's ``hybrid`` backend.

All are composed with candidate generators by
:class:`repro.core.plan.JoinPlanner`; ``ChunkedJoin`` and
``parallel_match_strings`` remain as deprecated aliases.
"""

from repro.parallel.chunked import ChunkedJoin, VectorEngine, VJoinResult
from repro.parallel.partition import balanced_splits, iter_pair_blocks, row_blocks
from repro.parallel.pool import multiprocess_join, parallel_match_strings
from repro.parallel.shm import (
    SharedDatasets,
    SharedSide,
    SideArrays,
    WorkerPool,
    close_shared_pools,
    hybrid_join,
    inline_side,
    pack_signatures,
    run_hybrid,
    shared_pool,
)

__all__ = [
    "ChunkedJoin",
    "SharedDatasets",
    "SharedSide",
    "SideArrays",
    "VJoinResult",
    "VectorEngine",
    "WorkerPool",
    "balanced_splits",
    "close_shared_pools",
    "hybrid_join",
    "inline_side",
    "iter_pair_blocks",
    "multiprocess_join",
    "pack_signatures",
    "parallel_match_strings",
    "row_blocks",
    "run_hybrid",
    "shared_pool",
]
