"""Scaled join drivers (the HPC layer).

The paper's experiments are quadratic joins — 25 million pairs per table
at paper scale — so the harness needs engines faster than one Python
call per pair:

* :mod:`repro.parallel.partition` — pair-space partitioning: rectangular
  blocking of the ``n_left x n_right`` product into cache-sized chunks,
  and balanced work splits for multi-process runs.
* :mod:`repro.parallel.chunked` — the vectorized join: every method
  stack of the evaluation implemented over NumPy pair chunks
  (:mod:`repro.distance.vectorized` + :mod:`repro.core.vectorized`).
  One process, no per-pair Python.
* :mod:`repro.parallel.pool` — a multiprocessing driver that partitions
  the pair space across worker processes, for the scalar matchers
  (reference engine at scale) and as the distributed-RL skeleton the
  paper's conclusion sketches.
"""

from repro.parallel.chunked import ChunkedJoin, VJoinResult
from repro.parallel.partition import balanced_splits, iter_pair_blocks, row_blocks
from repro.parallel.pool import parallel_match_strings

__all__ = [
    "ChunkedJoin",
    "VJoinResult",
    "balanced_splits",
    "iter_pair_blocks",
    "parallel_match_strings",
    "row_blocks",
]
