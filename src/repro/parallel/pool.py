"""Multiprocessing execution backend.

Partitions the pair space across worker processes, each of which runs
the scalar (reference) method stack over its share.  This serves two
purposes:

* it scales the *reference* engine — useful for cross-checking the
  vectorized engine on products too large for single-process Python, and
* it is the skeleton of the distributed record-linkage deployment the
  paper's conclusion sketches ("a distributed in-memory data graph to
  process demographic data"), with the pair space as the unit of
  distribution.

:func:`multiprocess_join` is the planner-facing entry point: full
products are split by left rows, explicit candidate-pair streams by pair
ranges.  Workers are seeded with the full datasets (strings pickle
cheaply at these sizes) and a method *description* rather than a live
matcher — prepared matchers hold per-dataset state and are rebuilt per
worker, so nothing unpicklable crosses the process boundary.  When the
parent passes a :class:`repro.obs.StatsCollector`, each worker runs its
slice under a private collector which comes back with the counters and
is merged into the parent's, so the funnel-conservation invariant holds
for the multiprocess path exactly as for the single-process ones.

:func:`parallel_match_strings` remains as a deprecated shim over the
planner.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.core.join import JoinResult, _scalar_join
from repro.core.matchers import build_matcher
from repro.obs.stats import StatsCollector
from repro.parallel.partition import balanced_splits

__all__ = ["multiprocess_join", "parallel_match_strings"]


@dataclass(frozen=True)
class _WorkerTask:
    """Everything one worker needs to join its share of the pair space."""

    left: tuple[str, ...]
    right: tuple[str, ...]
    row_start: int
    row_stop: int
    method: str
    k: int
    theta: float
    scheme_kind: str | None
    record_matches: bool
    #: build a private StatsCollector and ship it back with the counters
    collect: bool = False
    #: explicit candidate pairs (global indices); row range unused then
    pairs: tuple[tuple[int, int], ...] | None = None


def _run_slice(
    task: _WorkerTask,
) -> tuple[int, int, int, list[tuple[int, int]], StatsCollector | None]:
    """Worker body: join one row slice (or explicit pair slice) and
    return the counters in global indices."""
    wc = StatsCollector("worker") if task.collect else None
    matcher = build_matcher(
        task.method, k=task.k, theta=task.theta, scheme=task.scheme_kind,
        collector=wc,
    )
    if task.pairs is not None:
        # Explicit-pairs mode: indices are already global, so matches
        # and the i == j diagonal need no rebasing.
        result = _scalar_join(
            list(task.left),
            list(task.right),
            matcher,
            record_matches=task.record_matches,
            pairs=task.pairs,
            collector=wc,
        )
        return (
            result.match_count,
            result.diagonal_matches,
            result.verified_pairs,
            result.matches,
            wc,
        )
    left_slice = list(task.left[task.row_start : task.row_stop])
    result = _scalar_join(
        left_slice,
        list(task.right),
        matcher,
        record_matches=task.record_matches,
        pairs=None,
        collector=wc,
    )
    # Re-base matches to global row indices.  The slice-local join
    # counted its own i == j diagonal, which is meaningless here, so the
    # true-ground-truth diagonal (global i == j) is recomputed; capture
    # verified_pairs first and detach the collector so the extra matcher
    # calls inflate neither the count nor the funnel.
    matches = [(i + task.row_start, j) for i, j in result.matches]
    verified = result.verified_pairs
    matcher.collector = None
    diagonal = sum(
        1
        for i in range(task.row_start, task.row_stop)
        if i < len(task.right) and matcher.matches(i - task.row_start, i)
    )
    return result.match_count, diagonal, verified, matches, wc


def multiprocess_join(
    left: Sequence[str],
    right: Sequence[str],
    method: str,
    *,
    k: int = 1,
    theta: float = 0.8,
    scheme_kind: str | None = None,
    workers: int | None = None,
    record_matches: bool = False,
    collector=None,
    pairs: Sequence[tuple[int, int]] | None = None,
) -> JoinResult:
    """Scalar-engine join distributed over ``workers`` processes.

    Decisions are identical to building the matcher and running the
    scalar reference loop (asserted by the equivalence tests); only the
    wall time changes.  ``workers`` defaults to the CPU count;
    ``workers=1`` (or an input too small to split) short-circuits to the
    sequential path so small joins don't pay process startup.

    ``pairs`` restricts the join to an explicit candidate list in
    *global* indices — this is how the plan layer feeds non-all-pairs
    candidate streams to the multiprocess backend; the pair list is then
    the unit of partitioning instead of left rows.

    With a ``collector``, per-worker collectors are merged in, so the
    parent funnel satisfies the conservation invariant and its counters
    equal the single-process reference run's.
    """
    workers = workers or os.cpu_count() or 1
    if pairs is not None:
        pairs = [(int(i), int(j)) for i, j in pairs]
    n_units = len(pairs) if pairs is not None else len(left)
    if workers == 1 or n_units < 2 * workers:
        matcher = build_matcher(
            method, k=k, theta=theta, scheme=scheme_kind, collector=collector
        )
        result = _scalar_join(
            list(left),
            list(right),
            matcher,
            record_matches=record_matches,
            pairs=pairs,
            collector=collector,
        )
        result.backend = "multiprocess"
        return result
    result = JoinResult(method, len(left), len(right), backend="multiprocess")
    if collector:
        collector.meta.setdefault("method", method)
        collector.meta["n_left"] = len(left)
        collector.meta["n_right"] = len(right)
    if pairs is not None:
        tasks = [
            _WorkerTask(
                tuple(left),
                tuple(right),
                0,
                0,
                method,
                k,
                theta,
                scheme_kind,
                record_matches,
                collect=bool(collector),
                pairs=tuple(pairs[start:stop]),
            )
            for start, stop in balanced_splits(len(pairs), workers)
        ]
        result.pairs_compared = len(pairs)
    else:
        tasks = [
            _WorkerTask(
                tuple(left),
                tuple(right),
                start,
                stop,
                method,
                k,
                theta,
                scheme_kind,
                record_matches,
                collect=bool(collector),
            )
            for start, stop in balanced_splits(len(left), workers)
        ]
        # Every slice joins its rows against all of `right`, so the
        # iterated pair counts sum to the full product.
        result.pairs_compared = len(left) * len(right)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for count, diagonal, verified, matches, wc in pool.map(_run_slice, tasks):
            result.match_count += count
            result.diagonal_matches += diagonal
            result.verified_pairs += verified
            if record_matches:
                result.matches.extend(matches)
            if collector and wc is not None:
                collector.merge(wc)
    if record_matches:
        result.matches.sort()
    return result


def parallel_match_strings(
    left: Sequence[str],
    right: Sequence[str],
    method: str,
    *,
    k: int = 1,
    theta: float = 0.8,
    scheme_kind: str | None = None,
    workers: int | None = None,
    record_matches: bool = False,
) -> JoinResult:
    """Deprecated alias: the all-pairs multiprocess plan.

    Delegates to :class:`repro.core.plan.JoinPlanner` with the all-pairs
    candidate generator and the multiprocess backend; prefer
    :func:`repro.join`, which can also pick an index-backed plan.
    """
    warnings.warn(
        "parallel_match_strings() is deprecated; use repro.join(left, right, "
        "method, backend='multiprocess') or repro.core.plan.JoinPlanner",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.plan import JoinPlanner

    return JoinPlanner(
        list(left),
        list(right),
        k=k,
        theta=theta,
        scheme=scheme_kind,
        workers=workers,
        record_matches=record_matches,
    ).run(method, generator="all-pairs", backend="multiprocess")
