"""Multiprocessing execution backend.

Partitions the pair space across worker processes, each of which runs
the scalar (reference) method stack over its share.  This serves two
purposes:

* it scales the *reference* engine — useful for cross-checking the
  vectorized engine on products too large for single-process Python, and
* it is the skeleton of the distributed record-linkage deployment the
  paper's conclusion sketches ("a distributed in-memory data graph to
  process demographic data"), with the pair space as the unit of
  distribution.

:func:`multiprocess_join` is the planner-facing entry point: full
products are split by left rows, explicit candidate-pair streams by pair
ranges.  Workers are seeded with the full datasets (strings pickle
cheaply at these sizes) and a method *description* rather than a live
matcher — prepared matchers hold per-dataset state and are rebuilt per
worker, so nothing unpicklable crosses the process boundary.  When the
parent passes a :class:`repro.obs.StatsCollector`, each worker runs its
slice under a private collector which comes back with the counters and
is merged into the parent's, so the funnel-conservation invariant holds
for the multiprocess path exactly as for the single-process ones.

Slices run on the process-wide persistent
:func:`repro.parallel.shm.shared_pool` rather than a throwaway
``ProcessPoolExecutor``, so back-to-back joins reuse warm workers (the
pool is cleaned up at interpreter exit).

:func:`parallel_match_strings` remains as a deprecated shim over the
planner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro._compat import warn_once
from repro.core.join import JoinResult, _scalar_join
from repro.core.matchers import build_matcher
from repro.core.multiplicity import PairWeighter, VerificationMemo
from repro.obs.stats import StatsCollector
from repro.parallel.partition import balanced_splits
from repro.parallel.shm import shared_pool

__all__ = ["multiprocess_join", "parallel_match_strings"]


@dataclass(frozen=True)
class _WorkerTask:
    """Everything one worker needs to join its share of the pair space."""

    left: tuple[str, ...]
    right: tuple[str, ...]
    row_start: int
    row_stop: int
    method: str
    k: int
    theta: float
    scheme_kind: str | None
    record_matches: bool
    #: build a private StatsCollector and ship it back with the counters
    collect: bool = False
    #: explicit candidate pairs (global indices); row range unused then
    pairs: tuple[tuple[int, int], ...] | None = None
    #: multiplicity weights per index (plan layer); workers rebuild a
    #: PairWeighter from these — tuples, since ndarrays don't belong in
    #: a frozen task that crosses the pickle boundary
    w_left: tuple[int, ...] | None = None
    w_right: tuple[int, ...] | None = None
    symmetric: bool = False
    #: value-identity diagonal semantics (resolved by the parent once)
    self_join: bool = False
    #: rebuild a per-worker VerificationMemo of this capacity (0 = none)
    memo_capacity: int = 0


def _run_slice(
    task: _WorkerTask,
) -> tuple[int, int, int, list[tuple[int, int]], StatsCollector | None]:
    """Worker body: join one row slice (or explicit pair slice) and
    return the counters in global indices."""
    wc = StatsCollector("worker") if task.collect else None
    matcher = build_matcher(
        task.method, k=task.k, theta=task.theta, scheme=task.scheme_kind,
        collector=wc,
    )
    if task.memo_capacity:
        matcher.memo = VerificationMemo(task.memo_capacity)
    weighter = None
    if task.w_left is not None:
        weighter = PairWeighter(
            task.w_left, task.w_right, symmetric=task.symmetric
        )
    if task.pairs is not None:
        # Explicit-pairs mode: indices are already global, so matches
        # and the diagonal need no rebasing.
        result = _scalar_join(
            list(task.left),
            list(task.right),
            matcher,
            record_matches=task.record_matches,
            pairs=task.pairs,
            collector=wc,
            weighter=weighter,
            self_join=task.self_join,
        )
        return (
            result.match_count,
            result.diagonal_matches,
            result.verified_pairs,
            result.matches,
            wc,
        )
    left_slice = list(task.left[task.row_start : task.row_stop])
    result = _scalar_join(
        left_slice,
        list(task.right),
        matcher,
        record_matches=task.record_matches,
        pairs=None,
        collector=wc,
        self_join=task.self_join,
    )
    # Re-base matches to global row indices.
    matches = [(i + task.row_start, j) for i, j in result.matches]
    verified = result.verified_pairs
    if task.self_join:
        # The value-identity diagonal compares strings, not positions,
        # so the slice-local count is already globally correct.
        return result.match_count, result.diagonal_matches, verified, matches, wc
    # The slice-local join counted its own i == j diagonal, which is
    # meaningless here, so the true-ground-truth diagonal (global
    # i == j) is recomputed; verified_pairs was captured above and the
    # collector is detached so the extra matcher calls inflate neither
    # the count nor the funnel.
    matcher.collector = None
    diagonal = sum(
        1
        for i in range(task.row_start, task.row_stop)
        if i < len(task.right) and matcher.matches(i - task.row_start, i)
    )
    return result.match_count, diagonal, verified, matches, wc


def multiprocess_join(
    left: Sequence[str],
    right: Sequence[str],
    method: str,
    *,
    k: int = 1,
    theta: float = 0.8,
    scheme_kind: str | None = None,
    workers: int | None = None,
    record_matches: bool = False,
    collector=None,
    pairs: Sequence[tuple[int, int]] | None = None,
    weighter: PairWeighter | None = None,
    memo_capacity: int = 0,
    self_join: bool | None = None,
) -> JoinResult:
    """Scalar-engine join distributed over ``workers`` processes.

    Decisions are identical to building the matcher and running the
    scalar reference loop (asserted by the equivalence tests); only the
    wall time changes.  ``workers`` defaults to the CPU count;
    ``workers=1`` (or an input too small to split) short-circuits to the
    sequential path so small joins don't pay process startup.

    ``pairs`` restricts the join to an explicit candidate list in
    *global* indices — this is how the plan layer feeds non-all-pairs
    candidate streams to the multiprocess backend; the pair list is then
    the unit of partitioning instead of left rows.

    The multiplicity layer's knobs: a ``weighter`` puts counters in
    original-pair units (requires ``pairs`` — row-slice workers see
    slice-local left indices, which a symmetric weighter would
    mis-double); ``memo_capacity`` > 0 gives each worker a private
    :class:`VerificationMemo`; ``self_join`` forces value-identity
    diagonal semantics (``None`` auto-detects content equality once,
    here in the parent, so workers never compare slices to wholes).

    With a ``collector``, per-worker collectors are merged in, so the
    parent funnel satisfies the conservation invariant and its counters
    equal the single-process reference run's.
    """
    workers = workers or os.cpu_count() or 1
    if pairs is not None:
        pairs = [(int(i), int(j)) for i, j in pairs]
    elif weighter is not None:
        raise ValueError(
            "multiprocess_join with a weighter requires an explicit pairs "
            "stream (row-slice partitioning breaks symmetric weighting)"
        )
    if self_join is None:
        self_join = right is left or (
            len(left) == len(right) and list(left) == list(right)
        )
    n_units = len(pairs) if pairs is not None else len(left)
    if workers == 1 or n_units < 2 * workers:
        matcher = build_matcher(
            method, k=k, theta=theta, scheme=scheme_kind, collector=collector
        )
        if memo_capacity:
            matcher.memo = VerificationMemo(memo_capacity)
        result = _scalar_join(
            list(left),
            list(right),
            matcher,
            record_matches=record_matches,
            pairs=pairs,
            collector=collector,
            weighter=weighter,
            self_join=self_join,
        )
        result.backend = "multiprocess"
        return result
    result = JoinResult(method, len(left), len(right), backend="multiprocess")
    if collector:
        collector.meta.setdefault("method", method)
        collector.meta["n_left"] = len(left)
        collector.meta["n_right"] = len(right)
    if pairs is not None:
        w_left = w_right = None
        symmetric = False
        if weighter is not None:
            w_left = tuple(int(w) for w in weighter.w_left)
            w_right = tuple(int(w) for w in weighter.w_right)
            symmetric = weighter.symmetric
        tasks = [
            _WorkerTask(
                tuple(left),
                tuple(right),
                0,
                0,
                method,
                k,
                theta,
                scheme_kind,
                record_matches,
                collect=bool(collector),
                pairs=tuple(pairs[start:stop]),
                w_left=w_left,
                w_right=w_right,
                symmetric=symmetric,
                self_join=self_join,
                memo_capacity=memo_capacity,
            )
            for start, stop in balanced_splits(len(pairs), workers)
        ]
        result.pairs_compared = len(pairs)
    else:
        tasks = [
            _WorkerTask(
                tuple(left),
                tuple(right),
                start,
                stop,
                method,
                k,
                theta,
                scheme_kind,
                record_matches,
                collect=bool(collector),
                self_join=self_join,
                memo_capacity=memo_capacity,
            )
            for start, stop in balanced_splits(len(left), workers)
        ]
        # Every slice joins its rows against all of `right`, so the
        # iterated pair counts sum to the full product.
        result.pairs_compared = len(left) * len(right)
    # One warm pool per process (atexit-cleaned): repeated joins reuse
    # the workers instead of paying executor spawn + reseed every call.
    # Batch slices have no placement state, so the shared (non-affinity)
    # queue — any worker may take any slice — balances best.
    pool = shared_pool(workers, affinity=False)
    for count, diagonal, verified, matches, wc in pool.run_tasks(
        [(_run_slice, task) for task in tasks]
    ):
        result.match_count += count
        result.diagonal_matches += diagonal
        result.verified_pairs += verified
        if record_matches:
            result.matches.extend(matches)
        if collector and wc is not None:
            collector.merge(wc)
    if record_matches:
        result.matches.sort()
    return result


def parallel_match_strings(
    left: Sequence[str],
    right: Sequence[str],
    method: str,
    *,
    k: int = 1,
    theta: float = 0.8,
    scheme_kind: str | None = None,
    workers: int | None = None,
    record_matches: bool = False,
) -> JoinResult:
    """Deprecated alias: the all-pairs multiprocess plan.

    Delegates to :class:`repro.core.plan.JoinPlanner` with the all-pairs
    candidate generator and the multiprocess backend; prefer
    :func:`repro.join`, which can also pick an index-backed plan.
    """
    warn_once(
        "parallel.pool.parallel_match_strings",
        "parallel_match_strings() is deprecated; use repro.join(left, right, "
        "method, backend='multiprocess') or repro.core.plan.JoinPlanner",
    )
    from repro.core.plan import JoinPlanner

    return JoinPlanner(
        list(left),
        list(right),
        k=k,
        theta=theta,
        scheme=scheme_kind,
        workers=workers,
        record_matches=record_matches,
    ).run(method, generator="all-pairs", backend="multiprocess")
