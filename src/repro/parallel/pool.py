"""Multiprocessing join driver.

Partitions the left dataset's rows across worker processes, each of which
runs the scalar (reference) method stack over its slice of the pair
space.  This serves two purposes:

* it scales the *reference* engine — useful for cross-checking the
  vectorized engine on products too large for single-process Python, and
* it is the skeleton of the distributed record-linkage deployment the
  paper's conclusion sketches ("a distributed in-memory data graph to
  process demographic data"), with the pair space as the unit of
  distribution.

Workers are seeded with the full datasets (strings pickle cheaply at
these sizes) and a method *description* rather than a live matcher —
prepared matchers hold per-dataset state and are rebuilt per worker, so
nothing unpicklable crosses the process boundary.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.core.join import JoinResult, match_strings
from repro.core.matchers import build_matcher
from repro.parallel.partition import balanced_splits

__all__ = ["parallel_match_strings"]


@dataclass(frozen=True)
class _WorkerTask:
    """Everything one worker needs to join its row slice."""

    left: tuple[str, ...]
    right: tuple[str, ...]
    row_start: int
    row_stop: int
    method: str
    k: int
    theta: float
    scheme_kind: str | None
    record_matches: bool


def _run_slice(task: _WorkerTask) -> tuple[int, int, int, list[tuple[int, int]]]:
    """Worker body: join rows ``[row_start, row_stop)`` against all of
    ``right`` and return the counters (global indices)."""
    matcher = build_matcher(
        task.method, k=task.k, theta=task.theta, scheme=task.scheme_kind
    )
    left_slice = list(task.left[task.row_start : task.row_stop])
    result = match_strings(
        left_slice,
        list(task.right),
        matcher,
        record_matches=task.record_matches,
        pairs=None,
    )
    # Re-base matches to global row indices.  The slice-local join
    # counted its own i == j diagonal, which is meaningless here, so the
    # true-ground-truth diagonal (global i == j) is recomputed; capture
    # verified_pairs first since the extra matcher calls would inflate it.
    matches = [(i + task.row_start, j) for i, j in result.matches]
    verified = result.verified_pairs
    diagonal = sum(
        1
        for i in range(task.row_start, task.row_stop)
        if i < len(task.right) and matcher.matches(i - task.row_start, i)
    )
    return result.match_count, diagonal, verified, matches


def parallel_match_strings(
    left: Sequence[str],
    right: Sequence[str],
    method: str,
    *,
    k: int = 1,
    theta: float = 0.8,
    scheme_kind: str | None = None,
    workers: int | None = None,
    record_matches: bool = False,
) -> JoinResult:
    """Scalar-engine join distributed over ``workers`` processes.

    Semantics are identical to building the matcher and calling
    :func:`repro.core.join.match_strings` (asserted by the equivalence
    tests); only the wall time changes.  ``workers`` defaults to the CPU
    count; ``workers=1`` short-circuits to the sequential path so small
    joins don't pay process startup.
    """
    workers = workers or os.cpu_count() or 1
    if workers == 1 or len(left) < 2 * workers:
        matcher = build_matcher(method, k=k, theta=theta, scheme=scheme_kind)
        return match_strings(
            list(left), list(right), matcher, record_matches=record_matches
        )
    tasks = [
        _WorkerTask(
            tuple(left),
            tuple(right),
            start,
            stop,
            method,
            k,
            theta,
            scheme_kind,
            record_matches,
        )
        for start, stop in balanced_splits(len(left), workers)
    ]
    result = JoinResult(method, len(left), len(right))
    # Every slice joins its rows against all of `right`, so the iterated
    # pair counts sum to the full product.
    result.pairs_compared = len(left) * len(right)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for count, diagonal, verified, matches in pool.map(_run_slice, tasks):
            result.match_count += count
            result.diagonal_matches += diagonal
            result.verified_pairs += verified
            if record_matches:
                result.matches.extend(matches)
    if record_matches:
        result.matches.sort()
    return result
