"""Pair-space partitioning.

A similarity join over ``n_left x n_right`` is an embarrassingly
parallel rectangle.  These helpers slice it two ways:

* :func:`iter_pair_blocks` — flat chunks of at most ``block`` pairs, as
  ``(ii, jj)`` index arrays, for the vectorized single-process engine
  (bounds every temporary's size, per the cache-effects guidance).
* :func:`row_blocks` / :func:`balanced_splits` — contiguous row ranges
  for multi-process distribution, where each worker re-encodes only its
  slice of the left dataset.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["iter_pair_blocks", "row_blocks", "balanced_splits"]


def iter_pair_blocks(
    n_left: int, n_right: int, block: int = 1 << 16
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(ii, jj)`` index arrays covering the full product.

    Every block has at most ``block`` pairs; pairs are emitted in
    row-major order, so left-side gathers stay cache-friendly.

    >>> blocks = list(iter_pair_blocks(3, 2, block=4))
    >>> sum(len(ii) for ii, _ in blocks)
    6
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    if n_left <= 0 or n_right <= 0:
        return
    # Whole rows per block when a row fits; otherwise split rows.
    if n_right <= block:
        rows_per_block = max(1, block // n_right)
        for r0 in range(0, n_left, rows_per_block):
            r1 = min(n_left, r0 + rows_per_block)
            ii = np.repeat(np.arange(r0, r1, dtype=np.int64), n_right)
            jj = np.tile(np.arange(n_right, dtype=np.int64), r1 - r0)
            yield ii, jj
    else:
        for i in range(n_left):
            for c0 in range(0, n_right, block):
                c1 = min(n_right, c0 + block)
                jj = np.arange(c0, c1, dtype=np.int64)
                ii = np.full(c1 - c0, i, dtype=np.int64)
                yield ii, jj


def balanced_splits(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-equal ranges.

    Returns ``[(start, stop), ...]``; empty ranges are omitted, so the
    result may be shorter than ``parts`` when ``n < parts``.

    >>> balanced_splits(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    base, extra = divmod(n, parts)
    out: list[tuple[int, int]] = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        if size == 0:
            continue
        out.append((start, start + size))
        start += size
    return out


def row_blocks(
    n_left: int, n_right: int, target_pairs: int = 1 << 20
) -> list[tuple[int, int]]:
    """Contiguous left-row ranges of roughly ``target_pairs`` pairs each."""
    if n_left <= 0:
        return []
    rows = max(1, target_pairs // max(1, n_right))
    return [(r0, min(n_left, r0 + rows)) for r0 in range(0, n_left, rows)]
