"""The vectorized similarity join: every method stack over NumPy chunks.

:class:`VectorEngine` is the scaled twin of the scalar reference join:
same methods, same decisions (pinned by the equivalence tests), but the
pair loop runs as NumPy operations over bounded chunks instead of
per-pair Python.  This is the engine the runtime-curve experiments
(paper Figures 7 and 9) use, since their products reach hundreds of
millions of pairs.

Since the planner refactor the engine serves as the *vectorized
execution backend* of :mod:`repro.core.plan`: :meth:`VectorEngine.run`
covers full-product plans and :meth:`VectorEngine.run_candidates`
verifies an explicit candidate stream from any candidate generator
(length buckets, the FBF signature index, key blocking).
:class:`ChunkedJoin` remains as a deprecated alias.

Timing fidelity note (DESIGN.md): *all* methods run in the same
vectorized paradigm here, so relative timings — the paper's speedup
columns — compare like with like, exactly as the paper's all-C
implementations did.

Observability: pass a :class:`repro.obs.StatsCollector` (constructor or
per-:meth:`ChunkedJoin.run` call) and the engine reports the same
funnel the scalar driver does — stage sweeps record their tested/passed
totals, verification merges per-chunk aggregates into the one
collector, and signature generation / filtering / verification each get
a wall-time span.  With no collector every hook routes to the falsy
shared no-op and the hot loops are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro._compat import warn_once
from repro.core.join import JoinResult
from repro.core.matchers import method_registry
from repro.core.popcount import popcount_batch_u32
from repro.core.signatures import SignatureScheme, detect_kind, scheme_for
from repro.core.vectorized import (
    fbf_candidates,
    signatures_for_scheme,
    value_identity_codes,
)
from repro.distance.codec import encode_raw
from repro.distance.soundex import soundex
from repro.native import MODE_DL, MODE_PDL, resolve_kernels
from repro.distance.vectorized import (
    hamming_pairs,
    jaro_pairs,
    jaro_winkler_pairs,
    osa_pairs,
    osa_within_k_pairs,
)
from repro.obs.log import get_logger
from repro.obs.stats import NULL_COLLECTOR
from repro.parallel.partition import iter_pair_blocks

__all__ = ["VectorEngine", "ChunkedJoin", "VJoinResult"]

_log = get_logger("parallel.chunked")


def _group_by_value(values: np.ndarray) -> dict[int, np.ndarray]:
    """Map each distinct value to the (sorted) indices holding it."""
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    groups: dict[int, np.ndarray] = {}
    if len(order) == 0:
        return groups
    boundaries = np.nonzero(np.diff(sorted_vals))[0] + 1
    for part in np.split(order, boundaries):
        groups[int(values[part[0]])] = part
    return groups


@dataclass
class VJoinResult:
    """Outcome of one vectorized join (mirrors
    :class:`repro.core.join.JoinResult`)."""

    method: str
    n_left: int
    n_right: int
    match_count: int = 0
    diagonal_matches: int = 0
    #: pairs that reached the verifier (0 for unfiltered/filter-only)
    verified_pairs: int = 0
    matches: list[tuple[int, int]] = field(default_factory=list)

    @property
    def pairs_compared(self) -> int:
        return self.n_left * self.n_right

    @property
    def off_diagonal_matches(self) -> int:
        return self.match_count - self.diagonal_matches


class VectorEngine:
    """A prepared vectorized join over two string datasets.

    Encoding, lengths, FBF signatures and Soundex codes are computed
    once at construction (the paper's "Gen" cost); :meth:`run` then
    executes any method stack by name over the full product, and
    :meth:`run_candidates` over an explicit candidate pair stream.

    Parameters
    ----------
    left, right:
        The datasets.
    k, theta:
        Edit threshold and Jaro/Wink similarity floor.
    scheme_kind:
        FBF signature kind (``"numeric"`` / ``"alpha"`` / ``"alnum"``),
        auto-detected when omitted.  Alpha/alnum default to the paper's
        2-occurrence configuration.
    chunk:
        Maximum pairs per NumPy chunk for the dynamic programs, whose
        per-pair state is hundreds of bytes (three rolling DP rows);
        the default keeps the working set cache-resident — the
        chunk-size ablation shows a 2-2.5x DL penalty for chunks that
        spill to memory.
    filter_chunk:
        Maximum pairs per chunk for the cheap sweeps (signature
        XOR+popcount, length masks, Hamming, Soundex), whose per-pair
        state is a few bytes; large chunks amortize the per-chunk
        Python overhead these are dominated by.
    collector:
        A :class:`repro.obs.StatsCollector` receiving signature-"Gen"
        spans at construction and the funnel counters of every
        :meth:`run` (unless the run supplies its own).
    share_right:
        Another engine over the *same* ``right`` dataset whose prepared
        right-side state (codes, lengths, signatures, scheme) this one
        reuses instead of recomputing — construction then costs only the
        left-side "Gen" work.  This is the serve layer's micro-batching
        hook: one prepared engine per index generation, one cheap
        per-batch engine over the queries.
    kernels:
        Inner-kernel selection: ``"numpy"`` (default) keeps the pure
        NumPy tier; ``"native"`` uses the compiled kernels of
        :mod:`repro.native` (warn-once NumPy fallback when no provider
        loads); ``"auto"`` uses them silently when available.  Every
        kernel choice produces bit-identical decisions — only the
        constant factors change.
    """

    def __init__(
        self,
        left: list[str],
        right: list[str],
        *,
        k: int = 1,
        theta: float = 0.8,
        scheme_kind: SignatureScheme | str | None = None,
        levels: int = 2,
        chunk: int = 1 << 12,
        filter_chunk: int = 1 << 20,
        variant: str = "paper",
        record_matches: bool = False,
        collector=None,
        share_right: "VectorEngine | None" = None,
        kernels: str | None = "numpy",
    ):
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if share_right is not None and share_right.right is not right:
            raise ValueError(
                "share_right must wrap the identical right dataset object"
            )
        self.left = left
        self.right = right
        self.k = k
        self.theta = theta
        self.chunk = chunk
        self.filter_chunk = max(chunk, filter_chunk)
        self.variant = variant
        self.record_matches = record_matches
        self.collector = collector
        self.kernels = kernels or "numpy"
        self._native = resolve_kernels(self.kernels, warn_key="engine")
        obs = collector if collector else NULL_COLLECTOR
        self._obs = NULL_COLLECTOR  # run-scoped; set by run()
        with obs.span("gen.encode"):
            self.codes_l, self.len_l = encode_raw(left)
            if share_right is not None:
                self.codes_r, self.len_r = share_right.codes_r, share_right.len_r
            else:
                self.codes_r, self.len_r = encode_raw(right)
        if share_right is not None:
            self.scheme = share_right.scheme
        elif isinstance(scheme_kind, SignatureScheme):
            self.scheme = scheme_kind
        else:
            kind = scheme_kind or detect_kind(
                list(left[:128]) + list(right[:128])
            )
            self.scheme = scheme_for(kind, levels)
        with obs.span("gen.signatures"):
            self.sigs_l = signatures_for_scheme(left, self.scheme)
            self.sigs_r = (
                share_right.sigs_r
                if share_right is not None
                else signatures_for_scheme(right, self.scheme)
            )
        if self.sigs_l.ndim == 1:
            self.sigs_l = self.sigs_l[:, None]
        if self.sigs_r.ndim == 1:
            self.sigs_r = self.sigs_r[:, None]
        self.fbf_bound = self.scheme.safe_threshold(k)
        self._sdx_l: np.ndarray | None = None
        self._sdx_r: np.ndarray | None = None
        self._len_groups_l: dict[int, np.ndarray] | None = None
        self._len_groups_r: dict[int, np.ndarray] | None = None
        #: self-joins count the diagonal by value identity (see
        #: JoinResult's diagonal-semantics note), detected once here.
        self.self_join = right is left or (
            len(left) == len(right) and list(left) == list(right)
        )
        self._vid_l: np.ndarray | None = None
        self._vid_r: np.ndarray | None = None

    # -- method dispatch ---------------------------------------------------

    def run(self, method: str, collector=None) -> VJoinResult:
        """Execute one method stack by its paper name.

        ``collector`` overrides the instance collector for this run —
        the experiment harness uses that to give each method its own
        child collector over one prepared join.
        """
        handler = getattr(self, f"_run_{method.lower()}", None)
        if handler is None:
            raise ValueError(f"unknown method {method!r}")
        obs = collector if collector else (
            self.collector if self.collector else NULL_COLLECTOR
        )
        if obs:
            obs.meta["method"] = method
            obs.meta["k"] = self.k
            obs.meta["n_left"] = len(self.left)
            obs.meta["n_right"] = len(self.right)
        _log.debug(
            "run %s over %d x %d pairs", method, len(self.left), len(self.right)
        )
        self._obs = obs
        try:
            with obs.span(f"run.{method}"):
                return handler()
        finally:
            self._obs = NULL_COLLECTOR

    # -- verifiers ----------------------------------------------------------

    def _verify_dl(self, ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
        if self._native is not None:
            return self._native.osa_decisions(
                self.codes_l, self.len_l, self.codes_r, self.len_r,
                ii, jj, self.k, mode=MODE_DL,
            )
        return (
            osa_pairs(self.codes_l, self.len_l, self.codes_r, self.len_r, ii, jj)
            <= self.k
        )

    def _verify_pdl(self, ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
        if self._native is not None:
            return self._native.osa_decisions(
                self.codes_l, self.len_l, self.codes_r, self.len_r,
                ii, jj, self.k, mode=MODE_PDL,
            )
        return osa_within_k_pairs(
            self.codes_l, self.len_l, self.codes_r, self.len_r, ii, jj, self.k
        )

    # -- diagonal ------------------------------------------------------------

    def _diag_mask(self, ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
        """Diagonal membership for a candidate block.

        Positional (``i == j``) for two different datasets; value
        identity (``left[i] == right[j]``) for self-joins, matching the
        scalar driver's semantics.
        """
        if not self.self_join:
            return ii == jj
        if self._vid_l is None:
            self._vid_l, self._vid_r = value_identity_codes(self.left, self.right)
        return self._vid_l[ii] == self._vid_r[jj]

    # -- full-product predicate runner ---------------------------------------

    def _full_product(
        self,
        method: str,
        predicate: Callable[[np.ndarray, np.ndarray], np.ndarray],
        *,
        chunk: int | None = None,
    ) -> VJoinResult:
        obs = self._obs
        result = VJoinResult(method, len(self.left), len(self.right))
        chunk = chunk or self.chunk
        for ii, jj in iter_pair_blocks(len(self.left), len(self.right), chunk):
            hits = predicate(ii, jj)
            n_hits = int(hits.sum())
            result.match_count += n_hits
            result.diagonal_matches += int((hits & self._diag_mask(ii, jj)).sum())
            if self.record_matches:
                result.matches.extend(
                    zip(ii[hits].tolist(), jj[hits].tolist())
                )
            # Per-chunk aggregates; no filter stage, so every pair flows
            # straight to the decision predicate.
            obs.add_pairs(len(ii))
            obs.add_survivors(len(ii))
            obs.add_verified(len(ii))
            obs.add_matched(n_hits)
        return result

    # -- filtered runner ------------------------------------------------------

    def _filtered(
        self,
        method: str,
        candidates: tuple[np.ndarray, np.ndarray],
        verifier: Callable[[np.ndarray, np.ndarray], np.ndarray] | None,
    ) -> VJoinResult:
        obs = self._obs
        ii, jj = candidates
        result = VJoinResult(method, len(self.left), len(self.right))
        obs.add_pairs(len(self.left) * len(self.right))
        obs.add_survivors(len(ii))
        if verifier is None:
            result.match_count = len(ii)
            result.diagonal_matches = int(self._diag_mask(ii, jj).sum())
            if self.record_matches:
                result.matches.extend(zip(ii.tolist(), jj.tolist()))
            obs.add_matched(result.match_count)
            return result
        result.verified_pairs = len(ii)
        obs.add_verified(len(ii))
        with obs.span("verify"):
            for c0 in range(0, len(ii), self.chunk):
                bi = ii[c0 : c0 + self.chunk]
                bj = jj[c0 : c0 + self.chunk]
                hits = verifier(bi, bj)
                n_hits = int(hits.sum())
                result.match_count += n_hits
                result.diagonal_matches += int((hits & self._diag_mask(bi, bj)).sum())
                if self.record_matches:
                    result.matches.extend(zip(bi[hits].tolist(), bj[hits].tolist()))
                obs.add_matched(n_hits)  # per-chunk aggregate merge
        return result

    # -- candidate generators --------------------------------------------------

    def _fbf_scan(
        self, sigs_l: np.ndarray, sigs_r: np.ndarray, n_right: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """One XOR+popcount+threshold sweep, native kernel when armed.

        Both paths emit candidates in identical row-major order, so
        downstream match lists are bit-identical either way.
        """
        if self._native is not None:
            return self._native.fbf_candidates(sigs_l, sigs_r, self.fbf_bound)
        chunk_rows = max(1, self.filter_chunk // max(1, n_right))
        return fbf_candidates(
            sigs_l, sigs_r, self.fbf_bound, chunk_rows=chunk_rows
        )

    def _fbf_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        obs = self._obs
        with obs.span("fbf.filter"):
            ii, jj = self._fbf_scan(self.sigs_l, self.sigs_r, len(self.right))
        obs.add_stage("fbf", len(self.left) * len(self.right), len(ii))
        return ii, jj

    def _length_group_blocks(self):
        """Yield ``(left_idx, right_idx)`` index blocks covering exactly
        the length-filter-passing pairs.

        This is the vectorized analogue of the paper's length-first
        short-circuit: per-pair branching does not vectorize, but
        grouping each side by string length lets whole incompatible
        group products be *skipped* before any dense work.  Demographic
        strings have at most a few dozen distinct lengths, so the block
        count stays tiny.
        """
        if self._len_groups_l is None:
            self._len_groups_l = _group_by_value(self.len_l)
            self._len_groups_r = _group_by_value(self.len_r)
        for lv, left_idx in self._len_groups_l.items():
            right_parts = [
                idx
                for rv, idx in self._len_groups_r.items()
                if abs(lv - rv) <= self.k
            ]
            if right_parts:
                yield left_idx, np.concatenate(right_parts)

    def _length_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        obs = self._obs
        parts_i: list[np.ndarray] = []
        parts_j: list[np.ndarray] = []
        with obs.span("length.filter"):
            for left_idx, right_idx in self._length_group_blocks():
                ii = np.repeat(left_idx, len(right_idx))
                jj = np.tile(right_idx, len(left_idx))
                parts_i.append(ii)
                parts_j.append(jj)
        if not parts_i:
            obs.add_stage("length", len(self.left) * len(self.right), 0)
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        ii, jj = np.concatenate(parts_i), np.concatenate(parts_j)
        obs.add_stage("length", len(self.left) * len(self.right), len(ii))
        return ii, jj

    def _length_then_fbf_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """FBF restricted to length-compatible group blocks.

        The dense XOR+popcount sweep runs only over the surviving
        blocks (~half the product for census-name length distributions),
        which is where the paper's Section 6 "combination beats FBF
        alone" result comes from.
        """
        obs = self._obs
        product = len(self.left) * len(self.right)
        length_passed = 0
        keep_i: list[np.ndarray] = []
        keep_j: list[np.ndarray] = []
        with obs.span("fbf.filter"):
            for left_idx, right_idx in self._length_group_blocks():
                length_passed += len(left_idx) * len(right_idx)
                bi, bj = self._fbf_scan(
                    self.sigs_l[left_idx],
                    self.sigs_r[right_idx],
                    len(right_idx),
                )
                keep_i.append(left_idx[bi])
                keep_j.append(right_idx[bj])
        obs.add_stage("length", product, length_passed)
        if not keep_i:
            obs.add_stage("fbf", length_passed, 0)
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        ii, jj = np.concatenate(keep_i), np.concatenate(keep_j)
        obs.add_stage("fbf", length_passed, len(ii))
        return ii, jj

    def length_blocks(self):
        """Public view of the length-compatible group blocks.

        Yields ``(left_idx, right_idx)`` index arrays whose products
        cover exactly the length-filter-passing pairs; the plan layer's
        length-bucket candidate generator is built on this.
        """
        return self._length_group_blocks()

    # -- candidate-stream execution (plan-layer backend) -----------------------

    def _pair_filter_mask(
        self, name: str, ii: np.ndarray, jj: np.ndarray
    ) -> np.ndarray:
        """Per-pair boolean mask of one named filter over candidate arrays."""
        if name == "length":
            return np.abs(self.len_l[ii] - self.len_r[jj]) <= self.k
        if name == "fbf":
            if self._native is not None:
                return self._native.sig_pair_mask(
                    self.sigs_l, self.sigs_r, ii, jj, self.fbf_bound
                )
            db = np.zeros(len(ii), dtype=np.uint16)
            sigs_l, sigs_r = self.sigs_l, self.sigs_r
            for w in range(sigs_l.shape[1]):
                db += popcount_batch_u32(sigs_l[ii, w] ^ sigs_r[jj, w])
            return db <= self.fbf_bound
        raise ValueError(f"unknown filter {name!r}")

    def _pair_verifier(
        self, kind: str | None
    ) -> Callable[[np.ndarray, np.ndarray], np.ndarray] | None:
        """The per-pair decision predicate for one verifier kind."""
        if kind is None:
            return None
        if kind == "dl":
            return self._verify_dl
        if kind == "pdl":
            return self._verify_pdl
        if kind == "ham":
            return lambda ii, jj: (
                hamming_pairs(
                    self.codes_l, self.len_l, self.codes_r, self.len_r, ii, jj
                )
                <= self.k
            )
        if kind == "jaro":
            return lambda ii, jj: (
                jaro_pairs(
                    self.codes_l, self.len_l, self.codes_r, self.len_r,
                    ii, jj, self.variant,
                )
                >= self.theta
            )
        if kind == "wink":
            return lambda ii, jj: (
                jaro_winkler_pairs(
                    self.codes_l, self.len_l, self.codes_r, self.len_r,
                    ii, jj, 0.1, self.variant,
                )
                >= self.theta
            )
        if kind == "sdx":
            sl, sr = self._sdx_codes()
            return lambda ii, jj: (sl[ii] == sr[jj]) & (sl[ii] != 0)
        raise ValueError(f"unknown verifier kind {kind!r}")

    def run_candidates(
        self,
        method: str,
        blocks: Iterable[tuple[np.ndarray, np.ndarray]],
        *,
        collector=None,
        weighter=None,
    ) -> JoinResult:
        """Execute one method stack over an explicit candidate stream.

        ``blocks`` yields ``(ii, jj)`` index-pair arrays (a candidate
        generator's output).  The method's own filters still run over
        every candidate — redundant when the generator already implies
        them, but it keeps decisions independent of who generated the
        candidates (plan equivalence) and the funnel stages uniform.

        Funnel accounting covers exactly the candidates seen here; the
        planner accounts for the pairs the generator never emitted.
        Returns the unified :class:`repro.core.join.JoinResult` with
        ``pairs_compared`` equal to the candidate count.

        ``weighter`` (a :class:`repro.core.multiplicity.PairWeighter`)
        puts the funnel counters and match counts in original-pair units
        when the candidates live in unique-value space; ``verified_pairs``
        and ``pairs_compared`` keep counting the actual (unique-space)
        work performed.
        """
        spec = method_registry().get(method)
        if spec is None:
            raise ValueError(f"unknown method {method!r}")
        obs = collector if collector else (
            self.collector if self.collector else NULL_COLLECTOR
        )
        if obs:
            obs.meta.setdefault("method", method)
            obs.meta.setdefault("k", self.k)
            obs.meta["n_left"] = len(self.left)
            obs.meta["n_right"] = len(self.right)
        verifier = self._pair_verifier(spec.verifier)
        result = JoinResult(
            method, len(self.left), len(self.right), backend="vectorized"
        )
        compared = 0
        with obs.span(f"run.{method}.candidates"):
            for ii, jj in blocks:
                ii = np.asarray(ii, dtype=np.int64)
                jj = np.asarray(jj, dtype=np.int64)
                compared += len(ii)
                ww = None if weighter is None else weighter.block(ii, jj)
                obs.add_pairs(len(ii) if ww is None else int(ww.sum()))
                for fname in spec.filters:
                    tested = len(ii) if ww is None else int(ww.sum())
                    mask = self._pair_filter_mask(fname, ii, jj)
                    ii, jj = ii[mask], jj[mask]
                    if ww is not None:
                        ww = ww[mask]
                    obs.add_stage(
                        fname, tested, len(ii) if ww is None else int(ww.sum())
                    )
                surviving = len(ii) if ww is None else int(ww.sum())
                obs.add_survivors(surviving)
                if len(ii) == 0:
                    continue
                if verifier is None:
                    dm = self._diag_mask(ii, jj)
                    result.match_count += surviving
                    result.diagonal_matches += (
                        int(dm.sum()) if ww is None else int(ww[dm].sum())
                    )
                    if self.record_matches:
                        result.matches.extend(zip(ii.tolist(), jj.tolist()))
                    obs.add_matched(surviving)
                    continue
                result.verified_pairs += len(ii)
                obs.add_verified(surviving)
                for c0 in range(0, len(ii), self.chunk):
                    bi = ii[c0 : c0 + self.chunk]
                    bj = jj[c0 : c0 + self.chunk]
                    bw = None if ww is None else ww[c0 : c0 + self.chunk]
                    hits = verifier(bi, bj)
                    dm = self._diag_mask(bi, bj)
                    if bw is None:
                        n_hits = int(hits.sum())
                        result.diagonal_matches += int((hits & dm).sum())
                    else:
                        n_hits = int(bw[hits].sum())
                        result.diagonal_matches += int(bw[hits & dm].sum())
                    result.match_count += n_hits
                    if self.record_matches:
                        result.matches.extend(
                            zip(bi[hits].tolist(), bj[hits].tolist())
                        )
                    obs.add_matched(n_hits)
        result.pairs_compared = compared
        return result

    # -- soundex -----------------------------------------------------------------

    def _sdx_codes(self) -> tuple[np.ndarray, np.ndarray]:
        if self._sdx_l is None:
            table: dict[str, int] = {"": 0}  # empty code: id 0, never matches

            def encode(values: list[str]) -> np.ndarray:
                out = np.empty(len(values), dtype=np.int64)
                for idx, v in enumerate(values):
                    code = soundex(v)
                    out[idx] = table.setdefault(code, len(table))
                return out

            self._sdx_l = encode(self.left)
            self._sdx_r = encode(self.right)
        return self._sdx_l, self._sdx_r

    # -- the 15 methods -------------------------------------------------------------

    def _run_dl(self) -> VJoinResult:
        return self._full_product("DL", self._verify_dl)

    def _run_pdl(self) -> VJoinResult:
        return self._full_product("PDL", self._verify_pdl)

    def _run_ham(self) -> VJoinResult:
        # Per-pair state is a couple of bytes: the big filter chunk wins.
        return self._full_product(
            "Ham",
            lambda ii, jj: hamming_pairs(
                self.codes_l, self.len_l, self.codes_r, self.len_r, ii, jj
            )
            <= self.k,
            chunk=self.filter_chunk,
        )

    def _run_jaro(self) -> VJoinResult:
        # Jaro's per-pair state (match flags + rank buffers) sits
        # between the DP rows and the byte sweeps; 2x the DP chunk is
        # its measured sweet spot.
        return self._full_product(
            "Jaro",
            lambda ii, jj: jaro_pairs(
                self.codes_l, self.len_l, self.codes_r, self.len_r, ii, jj,
                self.variant,
            )
            >= self.theta,
            chunk=self.chunk * 2,
        )

    def _run_wink(self) -> VJoinResult:
        return self._full_product(
            "Wink",
            lambda ii, jj: jaro_winkler_pairs(
                self.codes_l, self.len_l, self.codes_r, self.len_r, ii, jj,
                0.1, self.variant,
            )
            >= self.theta,
            chunk=self.chunk * 2,
        )

    def _run_sdx(self) -> VJoinResult:
        sl, sr = self._sdx_codes()
        return self._full_product(
            "SDX",
            lambda ii, jj: (sl[ii] == sr[jj]) & (sl[ii] != 0),
            chunk=self.filter_chunk,
        )

    def _run_fbf(self) -> VJoinResult:
        return self._filtered("FBF", self._fbf_pairs(), None)

    def _run_fdl(self) -> VJoinResult:
        return self._filtered("FDL", self._fbf_pairs(), self._verify_dl)

    def _run_fpdl(self) -> VJoinResult:
        return self._filtered("FPDL", self._fbf_pairs(), self._verify_pdl)

    def _run_lf(self) -> VJoinResult:
        return self._filtered("LF", self._length_pairs(), None)

    def _run_ldl(self) -> VJoinResult:
        return self._filtered("LDL", self._length_pairs(), self._verify_dl)

    def _run_lpdl(self) -> VJoinResult:
        return self._filtered("LPDL", self._length_pairs(), self._verify_pdl)

    def _run_lfbf(self) -> VJoinResult:
        return self._filtered("LFBF", self._length_then_fbf_pairs(), None)

    def _run_lfdl(self) -> VJoinResult:
        return self._filtered("LFDL", self._length_then_fbf_pairs(), self._verify_dl)

    def _run_lfpdl(self) -> VJoinResult:
        return self._filtered(
            "LFPDL", self._length_then_fbf_pairs(), self._verify_pdl
        )


class ChunkedJoin(VectorEngine):
    """Deprecated alias for :class:`VectorEngine`.

    Kept so pre-planner code importing ``ChunkedJoin`` keeps working;
    new code should go through :func:`repro.join` or
    :class:`repro.core.plan.JoinPlanner` with ``backend="vectorized"``.
    """

    def __init__(self, *args, **kwargs):
        warn_once(
            "parallel.chunked.ChunkedJoin",
            "ChunkedJoin is deprecated; use repro.join(left, right, method, "
            "backend='vectorized') or repro.core.plan.JoinPlanner (the class "
            "itself now lives on as repro.parallel.chunked.VectorEngine)",
        )
        super().__init__(*args, **kwargs)
