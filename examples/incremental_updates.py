"""Nightly updates without the nightly re-join.

The paper's department re-links its whole population every night (8
hours; 40 with plain DL).  The batch join is quadratic, but a *daily
delta* only needs each new record matched against the existing
population — exactly what the serve layer keeps resident.

This example drives a :class:`repro.serve.MatchService` through a few
days of clinic traffic: each day's arrivals are micro-batched through
``query_batch`` (one vectorized sweep instead of per-record scalar
search), returning clients hit the result cache on re-keys, departures
are ``remove``-d (tombstones, compacting automatically), and the day
ends with a snapshot a warm restart can load without the O(n) rebuild.

Run:  python examples/incremental_updates.py [population] [days]
"""

import random
import sys
import tempfile
import time
from pathlib import Path

from repro.data.errors import inject_error
from repro.data.names import build_last_name_pool
from repro.obs import StatsCollector
from repro.serve import MatchService


def main() -> None:
    population_n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    rng = random.Random(23)

    pool = build_last_name_pool(population_n * 2, rng)
    population, reserve = pool[:population_n], pool[population_n:]

    obs = StatsCollector("serve")
    print(f"building initial population of {population_n} clients ...")
    start = time.perf_counter()
    service = MatchService(
        population, k=1, scheme="alpha", collector=obs, compact_ratio=0.2
    )
    print(
        f"initial load: {(time.perf_counter() - start) * 1e3:.1f} ms, "
        f"{len(service)} entries\n"
    )

    reserve_cursor = 0
    returns_expected = 0
    returns_matched = 0
    batch_size = max(10, population_n // 10)
    for day in range(1, days + 1):
        # The day's arrivals: half returning clients re-keyed with a
        # typo, half genuinely new people.
        arrivals = []
        truth = []
        for _ in range(batch_size):
            if rng.random() < 0.5 and len(service):
                sid = rng.choice([i for i, _ in service.items()])
                arrivals.append(inject_error(service.get(sid), rng))
                truth.append(sid)
            else:
                arrivals.append(reserve[reserve_cursor % len(reserve)])
                reserve_cursor += 1
                truth.append(None)

        start = time.perf_counter()
        results = service.query_batch(arrivals)
        elapsed = time.perf_counter() - start
        new_clients = 0
        for res, sid in zip(results, truth):
            if sid is not None:
                returns_expected += 1
                if sid in res.ids:
                    returns_matched += 1
            if not res.ids:  # nobody close enough: register as new
                service.add(res.value)
                new_clients += 1

        # A few clients move away; removal tombstones their rows and
        # compaction kicks in once 20% of the index is dead.
        for _ in range(batch_size // 8):
            sid = rng.choice([i for i, _ in service.items()])
            service.remove(sid)

        print(
            f"day {day}: {len(arrivals)} arrivals in {elapsed * 1e3:6.1f} ms "
            f"({elapsed / len(arrivals) * 1e3:.2f} ms/record), "
            f"{new_clients} new, {len(service)} live entries"
        )

    print(
        f"\nreturning clients matched to their record: "
        f"{returns_matched}/{returns_expected}"
    )
    cache = service.cache.stats()
    print(
        f"cache: {cache['hits']} hits / {cache['misses']} misses, "
        f"compactions: {service.index.compactions}"
    )

    # End of week: snapshot, then prove a warm restart skips the rebuild.
    with tempfile.TemporaryDirectory() as tmp:
        path = service.save(Path(tmp) / "population.npz")
        start = time.perf_counter()
        warm = MatchService.load(path)
        load_ms = (time.perf_counter() - start) * 1e3
        probe = next(s for _, s in warm.items())
        assert warm.query(probe).ids == service.query(probe).ids
        print(
            f"snapshot -> warm restart of {len(warm)} entries in "
            f"{load_ms:.1f} ms (no re-indexing)"
        )


if __name__ == "__main__":
    main()
