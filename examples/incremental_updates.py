"""Nightly updates without the nightly re-join.

The paper's department re-links its whole population every night (8
hours; 40 with plain DL).  The batch join is quadratic, but a *daily
delta* only needs each new record matched against the existing
population — a one-to-many problem the FBF signature index answers in
sub-linear time per record.

This example builds a population, then streams daily batches of new
records (some genuinely new people, some updated/typo-ed returns of
existing clients) through an incremental
:class:`repro.linkage.resolution.EntityResolver`, and reports per-batch
latency and resolution quality.

Run:  python examples/incremental_updates.py [population] [days]
"""

import random
import sys
import time

from repro.core.index import FBFIndex
from repro.data.ssn import build_ssn_pool
from repro.linkage.records import RecordCorruptor, generate_records
from repro.linkage.resolution import EntityResolver


def index_demo(n: int, rng: random.Random) -> None:
    """One-to-many search latency on a string index."""
    pool = build_ssn_pool(n, rng)
    index = FBFIndex(pool, scheme="numeric", verifier="osa-bitparallel")
    index.search(pool[0], 1)  # pack
    start = time.perf_counter()
    queries = pool[:500]
    for q in queries:
        index.search(q, 1)
    per_query = (time.perf_counter() - start) / len(queries) * 1e3
    print(
        f"FBF index over {n:,} SSNs: {per_query:.3f} ms/query "
        f"(vs ~{n/1000:.0f}k pairwise comparisons for a scan)"
    )


def main() -> None:
    population_n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    rng = random.Random(23)

    index_demo(max(2000, population_n * 4), rng)
    print()

    print(f"building initial population of {population_n} clients ...")
    population = generate_records(population_n, rng)
    resolver = EntityResolver()
    start = time.perf_counter()
    resolver.add_all(population)
    print(
        f"initial load: {time.perf_counter() - start:.2f}s, "
        f"{resolver.entity_count()} entities\n"
    )

    corruptor = RecordCorruptor()
    new_people = generate_records(days * 20, rng)
    new_cursor = 0
    returns_expected = 0
    returns_merged = 0
    for day in range(1, days + 1):
        batch = []
        truth = []
        for _ in range(40):
            if rng.random() < 0.5:
                # A returning client, re-keyed with a typo.
                rid = rng.randrange(population_n)
                batch.append(corruptor.corrupt(population[rid], rng))
                truth.append(rid)
            else:
                batch.append(new_people[new_cursor])
                new_cursor += 1
                truth.append(None)
        start = time.perf_counter()
        for record, rid in zip(batch, truth):
            new_id = len(resolver)
            resolver.add(record)
            if rid is not None:
                returns_expected += 1
                if resolver.entity_of(new_id) == resolver.entity_of(rid):
                    returns_merged += 1
        elapsed = time.perf_counter() - start
        print(
            f"day {day}: {len(batch)} records in {elapsed*1e3:6.1f} ms "
            f"({elapsed/len(batch)*1e3:.2f} ms/record), "
            f"{resolver.entity_count()} entities"
        )
    print(
        f"\nreturning clients correctly merged: "
        f"{returns_merged}/{returns_expected}"
    )


if __name__ == "__main__":
    main()
