"""Deduplicate a Zipfian roster: the multiplicity layer's home turf.

Scenario: a census-style last-name column where a handful of common
names cover most rows (names drawn with replacement under a 1/rank
weight).  The same FPDL self-join runs three ways — the full-product
baseline, the triangular self-join, and the planner's auto pick
(unique-string collapse + triangle) — and must return the identical
weighted match count while verifying orders of magnitude fewer pairs.

Run:  python examples/dedup_zipfian.py [n]
"""

import random
import sys
import time

from repro import JoinPlanner
from repro.data.names import sample_zipfian_roster


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    rng = random.Random(11)
    roster = sample_zipfian_roster(n, rng)
    n_unique = len(set(roster))
    print(f"roster: {n} entries, {n_unique} distinct names "
          f"(top name covers {roster.count(max(set(roster), key=roster.count))} rows)\n")

    cells = [
        ("full product", dict(collapse="off", self_join=False)),
        ("triangle only", dict(collapse="off", self_join=True)),
        ("auto (collapse + triangle)", dict()),
    ]
    for label, opts in cells:
        planner = JoinPlanner(roster, roster, k=1, scheme="alpha", **opts)
        start = time.perf_counter()
        result = planner.run("FPDL")
        elapsed = time.perf_counter() - start
        uniq = "" if result.unique_left is None else (
            f"  unique={result.unique_left}"
        )
        print(f"[{label:>27}] {elapsed*1e3:8.1f} ms  "
              f"verified={result.pairs_compared:>9,}  "
              f"matches={result.match_count:,}  "
              f"exact-dupes={result.diagonal_matches:,}{uniq}")

    print(
        "\nEvery cell agrees on the weighted match count; the collapsed\n"
        "run did the work once per distinct pair and multiplied by the\n"
        "pair's multiplicity.  diagonal_matches counts value-identity\n"
        "pairs — the exact-duplicate mass a dedup caller wants."
    )


if __name__ == "__main__":
    main()
