"""Mini scaling study: regenerate the paper's Figure 7 / Table 9 story.

Sweeps the dataset size, times every method family, fits the quadratic
growth model, and prints an ASCII runtime chart plus the projected
large-n speedup (the paper projects FPDL ~28.3x over DL at n=500,000).

Run:  python examples/scaling_study.py [max_n]
"""

import sys

from repro.eval.curves import run_runtime_curve, speedup_by_n
from repro.eval.polyfit import fit_curves
from repro.eval.timing import TimingProtocol

METHODS = ("DL", "PDL", "Ham", "FDL", "FPDL", "LFPDL")


def ascii_chart(curve, width: int = 60) -> str:
    """One row of blocks per method, scaled to the slowest at max n."""
    peak = max(t[-1] for t in curve.times_ms.values())
    lines = []
    for method in METHODS:
        t = curve.times_ms[method][-1]
        bar = "#" * max(1, round(width * t / peak))
        lines.append(f"{method:6s} {bar} {t:,.0f} ms")
    return "\n".join(lines)


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    step = max(100, max_n // 5)
    ns = list(range(step, max_n + 1, step))
    print(f"sweeping n = {ns} on census-like last names, k=1 ...\n")
    # Three runs per point: single-run curves are too noisy for a
    # credible quadratic fit (the paper used 5 runs, dropping extremes).
    curve = run_runtime_curve(
        "LN", ns=ns, methods=METHODS, k=1, seed=42,
        protocol=TimingProtocol(runs=3),
    )

    print(f"runtime at n={ns[-1]}:")
    print(ascii_chart(curve))

    print("\nFPDL speedup over DL by n (paper Table 10: flat ~28x):")
    for n, s in speedup_by_n(curve, "FPDL", "DL"):
        print(f"  n={n:6d}  {s:5.1f}x")

    fits = fit_curves(curve)
    print("\nquadratic growth coefficients (paper Table 9):")
    for method in METHODS:
        print(f"  {method:6s} a = {fits[method].a:.3e}")
    proj = fits["FPDL"].asymptotic_speedup_over(fits["DL"])
    print(f"\nprojected large-n FPDL speedup over DL: {proj:.1f}x")
    days_dl = fits["DL"].predict(500_000) / 86_400_000
    days_f = fits["FPDL"].predict(500_000) / 86_400_000
    print(
        f"projected 500k x 500k merge: DL {days_dl:.2f} days, "
        f"FPDL {days_f:.2f} days (paper: 3.8 vs 0.13 on 2012 hardware)"
    )


if __name__ == "__main__":
    main()
