"""Deduplicate a messy name roster with FBF-filtered edit distance.

Scenario: a registration system has collected the same people multiple
times with typos (the paper's data-entry error model: one substitution,
deletion, insertion or adjacent transposition).  We find duplicate
clusters with an FPDL self-join and compare against the Soundex approach
the paper's client originally used.

Run:  python examples/deduplicate_names.py [n]
"""

import random
import sys
import time
from collections import defaultdict

from repro import VectorEngine
from repro.data.errors import ErrorInjector
from repro.data.names import build_last_name_pool


def build_messy_roster(n_people: int, rng: random.Random) -> tuple[list[str], list[int]]:
    """A roster where ~30% of people appear twice with a typo.

    Returns the roster and the ground-truth person id per entry.
    """
    people = build_last_name_pool(n_people, rng)
    injector = ErrorInjector()
    roster: list[str] = []
    owner: list[int] = []
    for pid, name in enumerate(people):
        roster.append(name)
        owner.append(pid)
        if rng.random() < 0.3:
            roster.append(injector.inject(name, rng))
            owner.append(pid)
    order = list(range(len(roster)))
    rng.shuffle(order)
    return [roster[i] for i in order], [owner[i] for i in order]


def cluster(matches: list[tuple[int, int]], n: int) -> list[set[int]]:
    """Union-find over declared duplicate pairs."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, j in matches:
        if i != j:
            parent[find(i)] = find(j)
    groups: dict[int, set[int]] = defaultdict(set)
    for i in range(n):
        groups[find(i)].add(i)
    return [g for g in groups.values() if len(g) > 1]


def main() -> None:
    n_people = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    rng = random.Random(7)
    roster, owner = build_messy_roster(n_people, rng)
    print(f"roster: {len(roster)} entries covering {n_people} people\n")

    for method in ("FPDL", "SDX"):
        join = VectorEngine(roster, roster, k=1, scheme_kind="alpha",
                           record_matches=True)
        start = time.perf_counter()
        result = join.run(method)
        elapsed = time.perf_counter() - start
        pairs = [(i, j) for i, j in result.matches if i < j]
        clusters = cluster(pairs, len(roster))
        # Score against ground truth: a declared duplicate pair is right
        # iff both entries belong to the same person.
        right = sum(1 for i, j in pairs if owner[i] == owner[j])
        true_dupes = sum(1 for i in range(len(roster)) for j in range(i + 1, len(roster))
                         if owner[i] == owner[j])
        print(f"[{method}] {elapsed*1e3:7.1f} ms  "
              f"declared={len(pairs)}  correct={right}/{true_dupes}  "
              f"clusters={len(clusters)}")

    print(
        "\nFPDL recovers every injected duplicate with few false pairs;\n"
        "Soundex misses typo-ed twins whose code changed and over-merges\n"
        "phonetically similar strangers (the paper's Tables 7-8)."
    )


if __name__ == "__main__":
    main()
