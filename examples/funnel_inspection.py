"""Watch the filter funnel: where the paper's speedups actually come from.

Runs the Table 1 method set (SSN data, k=1) with a stats collector
attached and prints each method's funnel side by side — pairs
considered, rejected per filter stage, verified, matched — plus the
full per-stage report for the combined length+FBF stack.  The
filtration column is the paper's whole argument in one number: FBF
discards ~98% of pairs before any dynamic program runs, and loses no
matches doing it (compare the matched column against DL's).

Run:  python examples/funnel_inspection.py [n]
"""

import sys

from repro.eval.experiments import DEFAULT_TABLE_METHODS
from repro.obs import StatsCollector, render_funnel
from repro.parallel.chunked import VectorEngine
from repro.data.datasets import dataset_for_family

METHODS = DEFAULT_TABLE_METHODS + ("LFPDL",)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    dp = dataset_for_family("SSN", n, seed=7)
    print(f"SSN experiment, n={dp.n}, k=1: one funnel per method\n")
    join = VectorEngine(dp.clean, dp.error, k=1, scheme_kind="numeric")
    root = StatsCollector("funnel-inspection")

    rows = []
    for method in METHODS:
        c = root.child(method)
        join.run(method, collector=c)
        filtered = c.total_rejected
        rows.append(
            (
                method,
                c.pairs_considered,
                filtered,
                c.verified,
                c.matched,
                100.0 * filtered / c.pairs_considered,
                "yes" if c.conserved else "NO",
            )
        )

    header = (
        f"{'method':7s} {'considered':>11s} {'filtered':>10s} "
        f"{'verified':>10s} {'matched':>8s} {'filtration':>11s} {'ok':>3s}"
    )
    print(header)
    print("-" * len(header))
    for method, considered, filtered, verified, matched, pct, ok in rows:
        print(
            f"{method:7s} {considered:11,d} {filtered:10,d} "
            f"{verified:10,d} {matched:8,d} {pct:10.2f}% {ok:>3s}"
        )

    baseline = root.child("DL").matched
    for method in ("FDL", "FPDL"):
        assert root.child(method).matched == baseline, (
            f"{method} lost matches — the FBF safety guarantee is broken"
        )
    print(
        f"\nFBF-filtered stacks matched exactly the DL baseline "
        f"({baseline} pairs): the filter is safe, not approximate."
    )

    print("\nfull report for the combined stack:\n")
    print(render_funnel(root.child("LFPDL")))


if __name__ == "__main__":
    main()
