"""The paper's motivating scenario: nightly health-department record linkage.

Two client databases must be linked without a reliable unique id: over
40% of SSNs are missing (the paper's reported rate) and every record
carries a data-entry error.  We run the deterministic point-and-threshold
pipeline with each comparator stack and show what the switch from DL to
FBF-filtered DL buys — the paper's "40-hour update becomes an hour or
two" story at demo scale.

Run:  python examples/health_department_linkage.py [n]
"""

import random
import sys
import time

from repro.linkage import RecordCorruptor, default_engine, generate_records


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 250
    rng = random.Random(11)

    print(f"generating {n} client records ...")
    db_a = generate_records(n, rng)
    corruptor = RecordCorruptor(
        fields_per_record=1,
        missing_rates={"ssn": 0.40},  # the paper: >40% of SSNs missing
    )
    db_b = corruptor.corrupt_many(db_a, rng)
    print("database B: one field edited per record, 40% of SSNs blanked\n")

    print(f"{'method':8s} {'time':>10s} {'speedup':>8s} {'recall':>7s} "
          f"{'precision':>9s}")
    baseline = None
    for method in ("DL", "PDL", "FDL", "FPDL"):
        engine = default_engine(method, k=1)
        start = time.perf_counter()
        result = engine.link(db_a, db_b)
        elapsed = time.perf_counter() - start
        baseline = baseline or elapsed
        print(
            f"{method:8s} {elapsed*1e3:8.1f}ms {baseline/elapsed:7.1f}x "
            f"{result.recall:7.3f} {result.precision:9.3f}"
        )

    print(
        "\nAll stacks make identical linkage decisions; the FBF filter\n"
        "only removes comparisons that provably cannot match.  At the\n"
        "paper's production scale (1.5M clients / 50M records) the same\n"
        "ratio turns a 40-hour DL update into about an hour."
    )


if __name__ == "__main__":
    main()
