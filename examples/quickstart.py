"""Quickstart: the FBF filter-and-verify API in five minutes.

Run:  python examples/quickstart.py
"""

from repro import (
    alpha_signature,
    damerau_levenshtein,
    diff_bits,
    join,
    num_signature,
    pdl,
)


def main() -> None:
    # -- 1. Edit distance and its thresholded verifier -----------------
    print("== edit distance ==")
    print("DL('Saturday', 'Sunday') =", damerau_levenshtein("Saturday", "Sunday"))
    print("DL('SMITH', 'SMIHT')     =", damerau_levenshtein("SMITH", "SMIHT"))
    print("PDL('SMITH', 'SMIHT', k=1) =", pdl("SMITH", "SMIHT", 1))

    # -- 2. FBF signatures: strings compressed to machine words --------
    print("\n== FBF signatures ==")
    sig = alpha_signature("SMITH")[0]
    print(f"alpha signature of 'SMITH' = {sig:#034b}")
    a = (num_signature("213-333-3333"),)
    b = (num_signature("213-333-4444"),)
    print("diff_bits(213-333-3333, 213-333-4444) =", diff_bits(a, b))
    print("-> a pair with diff_bits > 2k can never match within k edits")

    # -- 3. A filtered similarity join ----------------------------------
    print("\n== filter-and-verify join ==")
    clean = ["123456789", "555443333", "987001234"]
    dirty = ["123456780", "555443333", "987001243"]  # 1 edit, 0 edits, 1 swap
    result = join(clean, dirty, "FPDL", k=1, record_matches=True)
    print("matches:", result.matches)
    print(
        f"verified pairs: {result.verified_pairs} of {result.pairs_compared} "
        "(the rest were discarded by the filter, guaranteed-safe)"
    )

    # -- 4. The same line at scale: the planner switches strategy --------
    print("\n== planned join at scale ==")
    import random

    from repro.data.errors import ErrorInjector
    from repro.data.ssn import build_ssn_pool

    rng = random.Random(0)
    big_clean = build_ssn_pool(2000, rng)
    big_dirty = ErrorInjector().inject_many(big_clean, rng)
    res = join(big_clean, big_dirty, "FPDL", k=1)
    print(
        f"2000 x 2000 SSN pairs -> {res.match_count} matches "
        f"({res.diagonal_matches} true); the planned join verified only "
        f"{res.pairs_compared:,} of {len(big_clean) * len(big_dirty):,} "
        "possible pairs"
    )
    print(f"plan chosen: {res.generator} -> {res.backend}")


if __name__ == "__main__":
    main()
