"""Blocking vs safe filtering: the paper's Section 1 argument, measured.

Traditional blocking prunes the pair space by *key* — and silently drops
true matches when the key itself carries the typo.  FBF prunes by a
*per-pair guarantee* and never drops a match.  This example measures
both on error-injected last names:

* pairs completeness — share of true matches still in the candidate set,
* reduction ratio — share of the pair space avoided.

Run:  python examples/blocking_vs_filtering.py [n]
"""

import random
import sys

from repro.core.vectorized import alpha_signatures_batch, fbf_candidates
from repro.data.datasets import dataset_for_family
from repro.distance.soundex import soundex
from repro.linkage.blocking import (
    BigramIndexing,
    CanopyClustering,
    SortedNeighbourhood,
    StandardBlocking,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    dp = dataset_for_family("LN", n, seed=5)
    total_pairs = n * n
    print(f"{n} clean last names vs {n} single-edit twins "
          f"({total_pairs:,} pairs)\n")
    print(f"{'method':28s} {'candidates':>11s} {'reduction':>9s} "
          f"{'completeness':>12s}")

    methods = [
        ("standard blocking (exact)", StandardBlocking()),
        ("standard blocking (soundex)", StandardBlocking(key=soundex)),
        ("sorted neighbourhood w=7", SortedNeighbourhood(7)),
        ("bigram indexing t=0.8", BigramIndexing(0.8)),
        ("canopy tf-idf 0.2/0.8", CanopyClustering(0.2, 0.8)),
    ]
    for label, blocker in methods:
        pairs = set(blocker.pairs(dp.clean, dp.error))
        retained = sum(1 for i, j in pairs if i == j)
        print(f"{label:28s} {len(pairs):11,} "
              f"{1 - len(pairs)/total_pairs:9.1%} {retained/n:12.1%}")

    # The FBF filter, same accounting.
    sigs_c = alpha_signatures_batch(dp.clean, 2)
    sigs_e = alpha_signatures_batch(dp.error, 2)
    ii, jj = fbf_candidates(sigs_c, sigs_e, bound=2)  # 2k for k=1
    retained = int((ii == jj).sum())
    print(f"{'FBF filter (safe, k=1)':28s} {len(ii):11,} "
          f"{1 - len(ii)/total_pairs:9.1%} {retained/n:12.1%}")

    print(
        "\nEvery blocking method trades matches for speed; the FBF\n"
        "filter reaches comparable reduction at 100.0% completeness —\n"
        "and can additionally run *inside* each surviving block."
    )


if __name__ == "__main__":
    main()
