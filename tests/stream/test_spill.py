"""Spill writer: formats, buffering, truncation, abort semantics."""

import json

import pytest

from repro.stream.spill import SpillWriter, read_spill, truncate_to


class TestSpillWriter:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SpillWriter(path) as w:
            w.write(5, 7)
            w.write(1000000, 3)
        assert list(read_spill(path)) == [(5, 7), (1000000, 3)]

    def test_csv_roundtrip_with_header(self, tmp_path):
        path = tmp_path / "m.csv"
        with SpillWriter(path, fmt="csv") as w:
            w.write(5, 7)
        assert path.read_text().splitlines()[0] == "left_row,right_row"
        assert list(read_spill(path, fmt="csv")) == [(5, 7)]

    def test_values_recorded_when_requested(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SpillWriter(path, values=True) as w:
            w.write(0, 1, "SMITH", "SMYTH")
        rec = json.loads(path.read_text())
        assert rec == [0, 1, "SMITH", "SMYTH"]

    def test_data_limit_bounds_the_buffer(self, tmp_path):
        path = tmp_path / "m.jsonl"
        w = SpillWriter(path, data_limit=64)
        for i in range(20):
            w.write(i, i)
        # With a 64-byte limit most rows must already be on disk.
        assert path.stat().st_size > 0
        assert w._buffered_bytes < 64
        w.close()
        assert len(list(read_spill(path))) == 20

    def test_bytes_survives_close(self, tmp_path):
        path = tmp_path / "m.jsonl"
        w = SpillWriter(path)
        w.write(1, 2)
        w.flush()
        size = w.bytes
        w.close()
        assert w.bytes == size == path.stat().st_size

    def test_write_rows_rebases_left(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SpillWriter(path) as w:
            n = w.write_rows([(0, 9), (1, 8)], base=100)
        assert n == 2
        assert list(read_spill(path)) == [(100, 9), (101, 8)]

    def test_abort_without_checkpoint_removes_file(self, tmp_path):
        path = tmp_path / "m.jsonl"
        w = SpillWriter(path)
        w.write(1, 2)
        w.abort(None)
        assert not path.exists()

    def test_abort_truncates_to_checkpoint(self, tmp_path):
        path = tmp_path / "m.jsonl"
        w = SpillWriter(path)
        w.write(1, 2)
        w.flush()
        kept = w.bytes
        w.write(3, 4)
        w.flush()
        w.abort(kept)
        assert path.stat().st_size == kept
        assert list(read_spill(path)) == [(1, 2)]

    def test_resume_appends(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with SpillWriter(path) as w:
            w.write(1, 2)
        with SpillWriter(path, resume=True) as w:
            w.write(3, 4)
        assert list(read_spill(path)) == [(1, 2), (3, 4)]

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="spill format"):
            SpillWriter(tmp_path / "m.bin", fmt="bin")


class TestTruncateTo:
    def test_refuses_shrunken_file(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="lost data"):
            truncate_to(path, 1000)

    def test_truncates_exactly(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("[1, 2]\n[3, 4]\n")
        truncate_to(path, 7)
        assert path.read_text() == "[1, 2]\n"
