"""Checkpoint files: atomicity, fingerprint validation, funnel restore."""

import json

import pytest

from repro.obs.stats import StatsCollector
from repro.stream.checkpoint import Checkpoint, load_checkpoint, roster_digest


def _collector_with_state() -> StatsCollector:
    obs = StatsCollector("t")
    obs.add_pairs(1000)
    obs.stage("pass-join")
    obs.add_stage("pass-join", 1000, 100)
    obs.add_stage("fbf", 100, 40)
    obs.add_survivors(40)
    obs.add_verified(40)
    obs.add_matched(25)
    obs.verifier_counters["early_exit"] += 7
    obs.add_counter("shm_tasks_dispatched", 3)
    return obs


class TestCheckpointRoundtrip:
    def test_save_load_restore(self, tmp_path):
        obs = _collector_with_state()
        ck = Checkpoint(
            path=tmp_path / "ck.json",
            fingerprint={"method": "FPDL", "k": 1},
            chunk=4,
            next_token=12345,
            rows=5000,
            spill_bytes=777,
            match_count=25,
        )
        ck.save(obs)
        loaded = load_checkpoint(tmp_path / "ck.json")
        assert loaded.chunk == 4
        assert loaded.next_token == 12345
        assert loaded.rows == 5000
        assert loaded.spill_bytes == 777
        assert loaded.match_count == 25

        fresh = StatsCollector("resumed")
        loaded.restore_funnel(fresh)
        assert fresh.pairs_considered == obs.pairs_considered
        assert fresh.survivors == obs.survivors
        assert fresh.matched == obs.matched
        assert {
            n: (s.tested, s.passed) for n, s in fresh.stages.items()
        } == {n: (s.tested, s.passed) for n, s in obs.stages.items()}
        assert fresh.verifier_counters["early_exit"] == 7
        assert fresh.counters["shm_tasks_dispatched"] == 3
        assert fresh.conserved == obs.conserved

    def test_restored_funnel_keeps_accumulating_conserved(self, tmp_path):
        obs = _collector_with_state()
        assert obs.conserved
        ck = Checkpoint(path=tmp_path / "ck.json", fingerprint={})
        ck.save(obs)
        fresh = StatsCollector("resumed")
        load_checkpoint(tmp_path / "ck.json").restore_funnel(fresh)
        # Another chunk's worth of additive updates stays conserved.
        fresh.add_pairs(500)
        fresh.add_stage("pass-join", 500, 50)
        fresh.add_stage("fbf", 50, 10)
        fresh.add_survivors(10)
        assert fresh.conserved

    def test_missing_file_loads_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.json") is None

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        ck = Checkpoint(path=tmp_path / "ck.json", fingerprint={})
        ck.save(StatsCollector("t"))
        assert [p.name for p in tmp_path.iterdir()] == ["ck.json"]

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "fingerprint": {}}))
        with pytest.raises(ValueError, match="version 99"):
            load_checkpoint(path)


class TestFingerprint:
    def test_mismatch_names_the_offending_keys(self, tmp_path):
        ck = Checkpoint(
            path=tmp_path / "ck.json",
            fingerprint={"method": "FPDL", "k": 1},
        )
        with pytest.raises(ValueError, match="k: checkpoint=1 run=2"):
            ck.validate({"method": "FPDL", "k": 2})

    def test_match_passes(self, tmp_path):
        ck = Checkpoint(
            path=tmp_path / "ck.json", fingerprint={"method": "FPDL"}
        )
        ck.validate({"method": "FPDL"})

    def test_roster_digest_sensitive_to_edits(self):
        roster = [f"NAME{i}" for i in range(200)]
        base = roster_digest(roster)
        assert roster_digest(list(roster)) == base
        assert roster_digest(roster[:-1]) != base
        changed = list(roster)
        changed[0] = "OTHER"
        assert roster_digest(changed) != base
