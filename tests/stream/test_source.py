"""Chunk sources: chunking, resume tokens, formats, gzip."""

import csv
import gzip

import pytest

from repro.stream.source import (
    CsvChunkSource,
    TextChunkSource,
    source_for,
)

NAMES = ["SMITH", "JOHNSON", "WILLIAMS", "BROWN", "JONES", "GARCIA", "MILLER"]


def _write_text(path, strings):
    path.write_text("".join(f"{s}\n" for s in strings))


class TestTextChunkSource:
    def test_chunks_cover_all_rows_in_order(self, tmp_path):
        path = tmp_path / "s.txt"
        _write_text(path, NAMES)
        chunks = list(TextChunkSource(path).chunks(3))
        assert [c.ordinal for c in chunks] == [0, 1, 2]
        assert [c.row_start for c in chunks] == [0, 3, 6]
        assert [s for c in chunks for s in c.strings] == NAMES

    def test_blank_lines_skipped_like_read_strings(self, tmp_path):
        path = tmp_path / "s.txt"
        path.write_text("A\n\n  \nB\nC\n")
        (chunk,) = TextChunkSource(path).chunks(10)
        assert chunk.strings == ["A", "B", "C"]

    def test_resume_token_replays_identically(self, tmp_path):
        path = tmp_path / "s.txt"
        _write_text(path, NAMES)
        src = TextChunkSource(path)
        full = list(src.chunks(2))
        mid = full[1]
        resumed = list(
            src.chunks(
                2,
                start_token=mid.token,
                start_ordinal=mid.ordinal,
                start_row=mid.row_start,
            )
        )
        assert [(c.ordinal, c.row_start, c.strings) for c in resumed] == [
            (c.ordinal, c.row_start, c.strings) for c in full[1:]
        ]

    def test_gzip_source_has_usable_tokens(self, tmp_path):
        path = tmp_path / "s.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("".join(f"{s}\n" for s in NAMES))
        src = TextChunkSource(path)
        full = list(src.chunks(2))
        assert [s for c in full for s in c.strings] == NAMES
        mid = full[2]
        resumed = list(src.chunks(2, start_token=mid.token))
        assert resumed[0].strings == mid.strings

    def test_chunk_rows_validated(self, tmp_path):
        path = tmp_path / "s.txt"
        _write_text(path, NAMES)
        with pytest.raises(ValueError, match="chunk_rows"):
            list(TextChunkSource(path).chunks(0))


class TestCsvChunkSource:
    def _write_csv(self, path, rows, header=("id", "name")):
        with path.open("w", newline="") as fh:
            w = csv.writer(fh)
            if header:
                w.writerow(header)
            w.writerows(rows)

    def test_named_column_case_insensitive(self, tmp_path):
        path = tmp_path / "d.csv"
        self._write_csv(path, [(i, s) for i, s in enumerate(NAMES)])
        (chunk,) = CsvChunkSource(path, "NAME").chunks(100)
        assert chunk.strings == NAMES

    def test_headerless_positional_column(self, tmp_path):
        path = tmp_path / "d.csv"
        self._write_csv(path, [(s, i) for i, s in enumerate(NAMES)], header=None)
        (chunk,) = CsvChunkSource(path, 0, header=False).chunks(100)
        assert chunk.strings == NAMES

    def test_quoted_fields_and_empty_values_skipped(self, tmp_path):
        path = tmp_path / "d.csv"
        self._write_csv(
            path, [(0, 'O"BRIEN'), (1, ""), (2, "SMITH, JR")]
        )
        (chunk,) = CsvChunkSource(path, "name").chunks(100)
        assert chunk.strings == ['O"BRIEN', "SMITH, JR"]

    def test_resume_token_replays(self, tmp_path):
        path = tmp_path / "d.csv"
        self._write_csv(path, [(i, s) for i, s in enumerate(NAMES)])
        src = CsvChunkSource(path, "name")
        full = list(src.chunks(2))
        mid = full[1]
        resumed = list(src.chunks(2, start_token=mid.token))
        assert resumed[0].strings == mid.strings

    def test_unknown_column_raises(self, tmp_path):
        path = tmp_path / "d.csv"
        self._write_csv(path, [(0, "A")])
        with pytest.raises(ValueError, match="no column"):
            list(CsvChunkSource(path, "nope").chunks(10))

    def test_multiline_quoted_row_rejected(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text('id,name\n0,"A\nB"\n')
        with pytest.raises(ValueError, match="spans lines"):
            list(CsvChunkSource(path, "name").chunks(10))


class TestSourceFor:
    def test_routing_by_suffix(self, tmp_path):
        text = tmp_path / "a.txt"
        _write_text(text, NAMES)
        assert isinstance(source_for(text), TextChunkSource)
        csvp = tmp_path / "a.csv"
        csvp.write_text("name\nA\n")
        assert isinstance(source_for(csvp), CsvChunkSource)
        gz = tmp_path / "a.csv.gz"
        with gzip.open(gz, "wt") as fh:
            fh.write("name\nA\n")
        assert isinstance(source_for(gz), CsvChunkSource)

    def test_parquet_without_pyarrow_raises_clearly(self, tmp_path):
        try:
            import pyarrow  # noqa: F401

            pytest.skip("pyarrow installed; the guard is not reachable")
        except ImportError:
            pass
        with pytest.raises(RuntimeError, match="pyarrow"):
            source_for(tmp_path / "a.parquet", column="name")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown stream format"):
            source_for(tmp_path / "a.txt", fmt="xml")
