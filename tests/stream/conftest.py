"""Shared fixtures for the streaming-join suite."""

import random

import pytest

from repro.data.errors import inject_error
from repro.data.names import build_last_name_pool


@pytest.fixture(scope="session")
def stream_data():
    """(roster, big-side strings) with a realistic hit/miss/typo mix."""
    rng = random.Random(20120816)
    roster = build_last_name_pool(400, rng)
    big = []
    for _ in range(2500):
        s = rng.choice(roster)
        if rng.random() < 0.35:
            s = inject_error(s, rng)
        big.append(s)
    return roster, big


@pytest.fixture
def big_file(stream_data, tmp_path):
    roster, big = stream_data
    path = tmp_path / "big.txt"
    path.write_text("".join(f"{s}\n" for s in big))
    return path
