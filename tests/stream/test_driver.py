"""join_stream: equivalence with in-memory joins, spill, checkpoint/resume."""

import csv
import gzip

import pytest

from repro.core.plan import join as mem_join
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import StatsCollector
from repro.stream import (
    join_stream,
    read_spill,
    resolve_chunk_rows,
)


@pytest.fixture(scope="module")
def reference(stream_data):
    """The in-memory planner's match set — ground truth for the stream."""
    roster, big = stream_data
    result = mem_join(big, roster, "FPDL", k=1, record_matches=True)
    return sorted(result.matches)


class TestEquivalence:
    def test_stream_equals_in_memory_join(
        self, stream_data, big_file, reference
    ):
        roster, big = stream_data
        obs = StatsCollector("s")
        res = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600, collector=obs
        )
        assert sorted(res.matches) == reference
        assert res.rows == len(big)
        assert res.chunks == -(-len(big) // 600)
        assert res.completed

    def test_funnel_conserved_and_complete(self, stream_data, big_file):
        roster, big = stream_data
        obs = StatsCollector("s")
        join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600, collector=obs
        )
        assert obs.conserved
        assert obs.pairs_considered == len(big) * len(roster)

    @pytest.mark.parametrize("generator", ["all-pairs", "fbf-index", "prefix"])
    def test_every_generator_agrees(
        self, stream_data, big_file, reference, generator
    ):
        roster, _ = stream_data
        res = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=900,
            generator=generator,
        )
        assert sorted(res.matches) == reference

    def test_scalar_backend_agrees(self, stream_data, big_file, reference):
        roster, _ = stream_data
        res = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=1300,
            backend="scalar", generator="pass-join",
        )
        assert sorted(res.matches) == reference

    def test_hybrid_backend_agrees(self, stream_data, big_file, reference):
        roster, _ = stream_data
        obs = StatsCollector("h")
        res = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=900,
            backend="hybrid", workers=2, collector=obs,
        )
        assert sorted(res.matches) == reference
        assert obs.conserved
        # The roster's segments cross the boundary once for the stream.
        assert obs.counters.get("shm_bytes_shared", 0) > 0

    def test_csv_gzip_source_agrees(self, stream_data, tmp_path, reference):
        roster, big = stream_data
        path = tmp_path / "big.csv.gz"
        with gzip.open(path, "wt", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["id", "name"])
            w.writerows((i, s) for i, s in enumerate(big))
        res = join_stream(
            path, roster, "FPDL", k=1, chunk_rows=700, column="name"
        )
        assert sorted(res.matches) == reference

    def test_unsafe_generator_for_method_rejected(self, stream_data, big_file):
        roster, _ = stream_data
        with pytest.raises(ValueError, match="unsafe"):
            join_stream(
                big_file, roster, "Jaro", k=1, chunk_rows=600,
                generator="pass-join",
            )


class TestSpillAndCheckpoint:
    def test_spill_holds_the_full_match_set(
        self, stream_data, big_file, tmp_path, reference
    ):
        roster, _ = stream_data
        res = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600,
            spill=tmp_path / "m.jsonl",
        )
        assert res.matches is None
        assert sorted(read_spill(tmp_path / "m.jsonl")) == reference
        assert res.spill_bytes == (tmp_path / "m.jsonl").stat().st_size

    def test_checkpoint_requires_spill(self, stream_data, big_file, tmp_path):
        roster, _ = stream_data
        with pytest.raises(ValueError, match="requires a spill"):
            join_stream(
                big_file, roster, "FPDL", checkpoint=tmp_path / "ck.json"
            )

    def test_completed_run_removes_checkpoint(
        self, stream_data, big_file, tmp_path
    ):
        roster, _ = stream_data
        join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600,
            spill=tmp_path / "m.jsonl", checkpoint=tmp_path / "ck.json",
        )
        assert not (tmp_path / "ck.json").exists()

    def test_pause_resume_is_byte_identical(
        self, stream_data, big_file, tmp_path
    ):
        roster, _ = stream_data
        join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600,
            spill=tmp_path / "full.jsonl",
        )
        partial = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600,
            spill=tmp_path / "part.jsonl",
            checkpoint=tmp_path / "ck.json", max_chunks=2,
        )
        assert not partial.completed
        assert (tmp_path / "ck.json").exists()
        obs = StatsCollector("resumed")
        resumed = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600,
            spill=tmp_path / "part.jsonl",
            checkpoint=tmp_path / "ck.json", resume=True, collector=obs,
        )
        assert resumed.resumed_after == 1
        assert resumed.completed
        assert (
            (tmp_path / "part.jsonl").read_bytes()
            == (tmp_path / "full.jsonl").read_bytes()
        )
        # Funnel conservation holds across the pause/resume boundary.
        assert obs.conserved
        assert obs.pairs_considered == resumed.rows * len(roster)

    def test_resume_with_changed_parameters_refused(
        self, stream_data, big_file, tmp_path
    ):
        roster, _ = stream_data
        join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600,
            spill=tmp_path / "m.jsonl",
            checkpoint=tmp_path / "ck.json", max_chunks=1,
        )
        with pytest.raises(ValueError, match="does not match"):
            join_stream(
                big_file, roster, "FPDL", k=2, chunk_rows=600,
                spill=tmp_path / "m.jsonl",
                checkpoint=tmp_path / "ck.json", resume=True,
            )

    def test_resume_without_checkpoint_file_starts_fresh(
        self, stream_data, big_file, tmp_path, reference
    ):
        roster, _ = stream_data
        res = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600,
            spill=tmp_path / "m.jsonl",
            checkpoint=tmp_path / "ck.json", resume=True,
        )
        assert res.resumed_after is None
        assert sorted(read_spill(tmp_path / "m.jsonl")) == reference


class TestSizingAndTelemetry:
    def test_memory_budget_derives_chunk_rows(self):
        assert resolve_chunk_rows(4096, None) == 4096
        assert resolve_chunk_rows(4096, 64) == 4096  # explicit wins
        assert resolve_chunk_rows(None, 64) == (64 << 20) // (2 * 16384)
        assert resolve_chunk_rows(None, 0.001) == 1024  # clamped low
        with pytest.raises(ValueError):
            resolve_chunk_rows(0, None)
        with pytest.raises(ValueError):
            resolve_chunk_rows(None, -1)

    def test_metrics_and_events_wired(self, stream_data, big_file, tmp_path):
        roster, big = stream_data
        registry = MetricsRegistry()
        events = EventLog()
        join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=600,
            spill=tmp_path / "m.jsonl", checkpoint=tmp_path / "ck.json",
            metrics=registry, events=events,
        )
        snap = {
            name: instrument.value if hasattr(instrument, "value") else None
            for name, labels, instrument in registry.series()
        }
        n_chunks = -(-len(big) // 600)
        assert snap["stream_rows_total"] == len(big)
        assert snap["stream_checkpoints_total"] == n_chunks
        assert snap["stream_spill_bytes_total"] > 0
        kinds = [e["kind"] for e in events.tail(100)]
        assert kinds[0] == "stream_start"
        assert kinds[-1] == "stream_finish"
        assert kinds.count("stream_checkpoint") == n_chunks

    def test_empty_roster_rejected(self, big_file):
        with pytest.raises(ValueError, match="non-empty roster"):
            join_stream(big_file, [], "FPDL")
