"""Crash resilience: SIGKILL + resume equivalence, shm/spill cleanup.

These tests drive ``join_stream`` in a subprocess (the only way to
really kill it) with ``REPRO_STREAM_CHUNK_SLEEP_MS`` widening the
window between chunks so the signal reliably lands mid-run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs.stats import StatsCollector
from repro.stream import join_stream

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

DRIVER_SCRIPT = """\
import sys
from repro.io import read_strings
from repro.stream import join_stream

src, roster, spill, ck, backend = sys.argv[1:6]
join_stream(
    src,
    read_strings(roster),
    "FPDL",
    k=1,
    chunk_rows=250,
    spill=spill,
    checkpoint=ck if ck != "-" else None,
    backend=backend,
    workers=2 if backend == "hybrid" else None,
)
print("COMPLETED")
"""


def _spawn(tmp_path, big_file, roster_file, spill, ck, backend, sleep_ms):
    script = tmp_path / "driver.py"
    script.write_text(DRIVER_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_STREAM_CHUNK_SLEEP_MS"] = str(sleep_ms)
    return subprocess.Popen(
        [
            sys.executable,
            str(script),
            str(big_file),
            str(roster_file),
            str(spill),
            str(ck) if ck else "-",
            backend,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _shm_entries():
    root = Path("/dev/shm")
    if not root.exists():
        return None
    return {p.name for p in root.iterdir()}


@pytest.fixture
def roster_file(stream_data, tmp_path):
    roster, _ = stream_data
    path = tmp_path / "roster.txt"
    path.write_text("".join(f"{s}\n" for s in roster))
    return path


class TestKillAndResume:
    def test_sigkill_then_resume_matches_uninterrupted(
        self, stream_data, big_file, roster_file, tmp_path
    ):
        roster, _ = stream_data
        # Ground truth: one uninterrupted streamed run.
        join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=250,
            spill=tmp_path / "full.jsonl",
        )

        spill = tmp_path / "killed.jsonl"
        ck = tmp_path / "ck.json"
        proc = _spawn(
            tmp_path, big_file, roster_file, spill, ck, "vectorized", 200
        )
        try:
            # Wait until at least one checkpoint is durable, then kill
            # hard mid-stream (SIGKILL: no cleanup code runs at all).
            assert _wait_for(ck.exists), "driver never wrote a checkpoint"
            proc.kill()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.kill()
        assert proc.returncode not in (0, None)
        assert ck.exists()

        obs = StatsCollector("resumed")
        resumed = join_stream(
            big_file, roster, "FPDL", k=1, chunk_rows=250,
            spill=spill, checkpoint=ck, resume=True, collector=obs,
        )
        assert resumed.completed
        assert resumed.resumed_after is not None
        assert spill.read_bytes() == (tmp_path / "full.jsonl").read_bytes()
        assert obs.conserved
        assert obs.pairs_considered == resumed.rows * len(roster)
        assert not ck.exists()


class TestInterruptCleanup:
    def test_sigterm_unlinks_shared_segments_and_partial_spill(
        self, big_file, roster_file, tmp_path
    ):
        baseline = _shm_entries()
        if baseline is None:
            pytest.skip("/dev/shm not available on this platform")
        spill = tmp_path / "partial.jsonl"
        proc = _spawn(
            tmp_path, big_file, roster_file, spill, None, "hybrid", 300
        )
        try:
            # Wait for the roster publication (new /dev/shm entries) and
            # the first spilled chunk, so the TERM lands mid-stream.
            assert _wait_for(
                lambda: (_shm_entries() - baseline) and spill.exists()
            ), "driver never published segments"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.kill()
                proc.communicate()
        assert b"COMPLETED" not in out
        # The TERM handler raises SystemExit: finalizers unlink every
        # segment this run published...
        assert _wait_for(
            lambda: not (_shm_entries() - baseline), timeout=30
        ), f"leaked shm segments: {_shm_entries() - baseline}"
        # ...and with no checkpoint to resume from, the torn spill file
        # is removed rather than left half-written.
        assert not spill.exists()

    def test_sigterm_with_checkpoint_rolls_spill_back(
        self, big_file, roster_file, tmp_path
    ):
        spill = tmp_path / "partial.jsonl"
        ck = tmp_path / "ck.json"
        proc = _spawn(
            tmp_path, big_file, roster_file, spill, ck, "vectorized", 300
        )
        try:
            assert _wait_for(ck.exists), "driver never wrote a checkpoint"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - safety net
                proc.kill()
                proc.communicate()
        assert b"COMPLETED" not in out
        assert ck.exists()
        # The spill holds exactly the checkpointed bytes: no torn chunk.
        import json

        recorded = json.loads(ck.read_text())["spill_bytes"]
        assert spill.stat().st_size == recorded
