"""Tests for the repro.* logger hierarchy."""

import io
import logging

from repro.obs import ROOT_LOGGER_NAME, configure_logging, get_logger
from repro.obs.log import level_for


class TestGetLogger:
    def test_normalizes_into_hierarchy(self):
        assert get_logger("parallel.chunked").name == "repro.parallel.chunked"
        assert get_logger("repro.parallel.chunked").name == "repro.parallel.chunked"
        assert get_logger().name == ROOT_LOGGER_NAME

    def test_children_propagate_to_repro_root(self):
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        get_logger("core.join").info("hello funnel")
        assert "INFO repro.core.join: hello funnel" in stream.getvalue()


class TestVerbosityMapping:
    def test_levels(self):
        assert level_for(-1) == logging.ERROR
        assert level_for(0) == logging.WARNING
        assert level_for(1) == logging.INFO
        assert level_for(2) == logging.DEBUG
        assert level_for(5) == logging.DEBUG


class TestConfigureLogging:
    def test_idempotent(self):
        configure_logging(0)
        configure_logging(0)
        root = logging.getLogger(ROOT_LOGGER_NAME)
        marked = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_installed", False)
        ]
        assert len(marked) == 1

    def test_quiet_suppresses_warnings(self):
        stream = io.StringIO()
        configure_logging(-1, stream=stream)
        get_logger("cli").warning("should not appear")
        get_logger("cli").error("should appear")
        out = stream.getvalue()
        assert "should not appear" not in out
        assert "should appear" in out
