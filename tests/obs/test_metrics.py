"""Unit tests for the live-telemetry metrics registry."""

import json
import math

import pytest

from repro.obs import StatsCollector
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    registry_from_collector,
)


class TestLogBuckets:
    def test_spans_range_log_spaced(self):
        bounds = log_buckets(1e-3, 1.0)
        assert bounds[0] == 1e-3
        assert bounds[-1] >= 1.0
        ratios = [b2 / b1 for b1, b2 in zip(bounds, bounds[1:])]
        # 4/decade -> ratio ~1.778, rounded to 3 sig figs
        assert all(1.5 < r < 2.1 for r in ratios)

    def test_strictly_increasing(self):
        bounds = log_buckets(1.0, 1e6, per_decade=2)
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, per_decade=0)

    def test_default_latency_buckets_cover_us_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 1e-5
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_never_rewinds(self):
        c = Counter()
        c.set_total(10)
        assert c.value == 10
        c.set_total(7)  # stale reading
        assert c.value == 10
        c.set_total(12)
        assert c.value == 12

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.value == 5


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4

    def test_merge_last_write_wins(self):
        a, b = Gauge(), Gauge()
        a.set(1)
        b.set(9)
        a.merge(b)
        assert a.value == 9


class TestHistogram:
    def test_observe_is_bucketed_not_retained(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]  # last is the +Inf bucket
        assert h.count == 4
        assert h.sum == 555.5
        assert h.mean == pytest.approx(138.875)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_quantiles_empty_and_single(self):
        h = Histogram(bounds=(1.0, 10.0))
        assert h.quantile(0.99) == 0.0
        h.observe(5.0)
        # One sample in (1, 10]: every quantile lands in that bucket.
        assert 1.0 <= h.quantile(0.5) <= 10.0

    def test_quantile_error_bounded_by_bucket_ratio(self):
        h = Histogram()
        true = [0.001 * (i + 1) for i in range(1000)]  # 1ms..1s uniform
        for v in true:
            h.observe(v)
        for q in (0.5, 0.95, 0.99):
            exact = true[math.ceil(q * len(true)) - 1]
            estimate = h.quantile(q)
            assert exact / 1.9 <= estimate <= exact * 1.9

    def test_overflow_quantile_reports_top_bound(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == 2.0

    def test_quantile_validates_q(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_merge_requires_same_bounds(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_adds_everything(self):
        a = Histogram(bounds=(1.0, 10.0))
        b = Histogram(bounds=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.sum == 55.5

    def test_summary_keys(self):
        s = Histogram().summary()
        assert set(s) == {"count", "mean", "p50", "p95", "p99"}


class TestMetricsRegistry:
    def test_get_or_create_caches_instruments(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert reg.gauge("g", labels={"x": "1"}) is not reg.gauge(
            "g", labels={"x": "2"}
        )
        assert len(reg) == 3

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", labels={"x": "1", "y": "2"})
        b = reg.gauge("g", labels={"y": "2", "x": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ValueError):
            reg.gauge("n")

    def test_remove_series_drops_one_labelset(self):
        reg = MetricsRegistry()
        reg.gauge("g", labels={"pid": "1"}).set(1)
        reg.gauge("g", labels={"pid": "2"}).set(2)
        assert reg.remove_series("g", {"pid": "1"}) is True
        assert reg.remove_series("g", {"pid": "1"}) is False  # idempotent
        snap = reg.snapshot()["metrics"]
        assert 'g{pid="1"}' not in snap
        assert snap['g{pid="2"}']["value"] == 2.0

    def test_remove_last_series_drops_the_family(self):
        reg = MetricsRegistry()
        reg.gauge("solo", labels={"x": "1"})
        assert reg.remove_series("solo", {"x": "1"}) is True
        assert "solo" not in reg.render_prometheus()
        # The name is free again for a different kind.
        reg.counter("solo")

    def test_merge_folds_workers(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.counter("req_total").inc(5)
        worker.counter("req_total").inc(3)
        worker.gauge("depth").set(7)
        worker.histogram("lat_seconds").observe(0.01)
        main.merge(worker)
        assert main.counter("req_total").value == 8
        assert main.gauge("depth").value == 7
        assert main.histogram("lat_seconds").count == 1

    def test_snapshot_and_delta(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total")
        g = reg.gauge("depth")
        h = reg.histogram("lat_seconds")
        c.inc(5)
        g.set(2)
        h.observe(0.01)
        first = reg.snapshot()
        c.inc(3)
        g.set(9)
        h.observe(0.02)
        second = reg.snapshot()
        assert second["seq"] == first["seq"] + 1
        d = MetricsRegistry.delta(second, first)
        assert d["since_seq"] == first["seq"]
        assert d["metrics"]["req_total"]["value"] == 3  # per-interval
        assert d["metrics"]["depth"]["value"] == 9  # gauges absolute
        assert d["metrics"]["lat_seconds"]["count"] == 1

    def test_delta_without_previous_passes_through(self):
        reg = MetricsRegistry()
        reg.counter("req_total").inc(5)
        snap = reg.snapshot()
        d = MetricsRegistry.delta(snap, None)
        assert d["metrics"]["req_total"]["value"] == 5
        assert d["since_seq"] is None

    def test_write_json_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests").inc(2)
        path = tmp_path / "m.json"
        reg.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["metrics"]["req_total"]["value"] == 2


class TestPrometheusExposition:
    def test_families_and_series(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests served").inc(5)
        reg.gauge("depth", "queue depth", labels={"op": "query"}).set(2)
        text = reg.render_prometheus()
        assert "# HELP req_total requests served" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 5" in text
        assert 'depth{op="query"} 2' in text
        assert text.endswith("\n")

    def test_histogram_expands_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="10"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 55.5" in text
        assert "lat_seconds_count 3" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.gauge("g", labels={"p": 'a"b\\c'}).set(1)
        assert 'g{p="a\\"b\\\\c"} 1' in reg.render_prometheus()

    def test_parses_as_prometheus_text(self):
        """Structural check of the 0.0.4 text format: every non-comment
        line is `name{labels} value`, TYPE precedes its samples, and
        histogram bucket counts are monotone in le-order."""
        reg = MetricsRegistry()
        reg.counter("req_total", "requests").inc(3)
        reg.histogram("lat_seconds", "latency").observe(0.01)
        reg.gauge("depth", labels={"op": "query"}).set(1)
        typed: dict[str, str] = {}
        for line in reg.render_prometheus().splitlines():
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(maxsplit=3)
                typed[name] = kind
                continue
            if line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            float(value)  # must parse
            base = name_part.split("{", 1)[0]
            family = base
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base[: -len(suffix)] in typed:
                    family = base[: -len(suffix)]
            assert family in typed, line
        assert typed == {
            "req_total": "counter",
            "lat_seconds": "histogram",
            "depth": "gauge",
        }


class TestNullMetrics:
    def test_falsy_and_inert(self):
        assert not NULL_METRICS
        c = NULL_METRICS.counter("x")
        c.inc(5)
        assert c.value == 0.0
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.render_prometheus() == ""
        assert NULL_METRICS.snapshot()["metrics"] == {}
        assert len(NULL_METRICS) == 0

    def test_same_instrument_for_everything(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.gauge("b")


class TestRegistryFromCollector:
    def test_bridges_funnel_and_spans(self):
        collector = StatsCollector("join")
        collector.pairs_considered += 100
        collector.survivors += 10
        collector.verified += 10
        collector.matched += 4
        stage = collector.stage("fbf")
        stage.tested += 100
        stage.passed += 10
        collector.add_counter("collapse_savings", 5)
        with collector.span("verify"):
            pass
        reg = registry_from_collector(collector)
        text = reg.render_prometheus()
        assert "repro_join_pairs_considered_total 100" in text
        assert (
            'repro_join_stage_pairs_total{outcome="rejected",stage="fbf"} 90'
            in text
        )
        assert "repro_join_collapse_savings_total 5" in text
        hist = reg.histogram(
            "repro_join_span_seconds", labels={"path": "verify"}
        )
        assert hist.count == 1

    def test_scales_reservoir_to_true_call_count(self):
        collector = StatsCollector("join")
        for _ in range(3):
            with collector.span("verify"):
                pass
        reg = registry_from_collector(collector)
        hist = reg.histogram(
            "repro_join_span_seconds", labels={"path": "verify"}
        )
        assert hist.count == 3
        assert sum(hist.counts) == 3

    def test_children_fold_in(self):
        parent = StatsCollector("join")
        child = parent.child("worker0")
        child.pairs_considered += 7
        reg = registry_from_collector(parent)
        assert reg.counter("repro_join_pairs_considered_total").value == 7
