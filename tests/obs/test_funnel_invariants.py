"""Funnel invariants: conservation, safety-as-counters, no-op parity.

Three families of guarantees tie the observability layer to the paper:

* **Conservation** — every pair the join considered is accounted for:
  ``pairs_considered == sum(stage.rejected) + survivors`` on both the
  scalar and the vectorized engines, for every method stack.
* **FBF safety, restated on counters** — the FBF filter rejects pairs
  but never true matches, so a filtered stack's ``matched`` equals the
  unfiltered baseline's while its ``fbf`` stage shows real rejections.
* **No-op parity** — attaching a collector must not change a single
  decision: results with and without one are identical.
"""

import pytest

from repro.core.join import match_strings
from repro.core.matchers import METHOD_NAMES, build_matcher, method_registry
from repro.data.datasets import dataset_for_family
from repro.obs import StatsCollector
from repro.parallel.chunked import ChunkedJoin

K = 1
REGISTRY = method_registry()


@pytest.fixture(scope="module")
def ssn_pair():
    return dataset_for_family("SSN", 48, seed=11)


@pytest.fixture(scope="module")
def chunked(ssn_pair):
    return ChunkedJoin(ssn_pair.clean, ssn_pair.error, k=K, scheme_kind="numeric")


class TestConservationScalar:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_counters_conserve(self, ssn_pair, method):
        c = StatsCollector(method)
        matcher = build_matcher(method, k=K, scheme="numeric", collector=c)
        result = match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        n_pairs = ssn_pair.n * ssn_pair.n
        assert c.pairs_considered == n_pairs == result.pairs_compared
        assert c.conserved, (
            f"{method}: {c.pairs_considered} considered != "
            f"{c.total_rejected} rejected + {c.survivors} survivors"
        )
        assert c.matched == result.match_count

    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_verified_matches_stack_shape(self, ssn_pair, method):
        c = StatsCollector(method)
        matcher = build_matcher(method, k=K, scheme="numeric", collector=c)
        match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        if REGISTRY[method].verifier is None:
            # Filter-only stacks (FBF/LF/LFBF): nothing reaches a verifier
            # and every survivor is declared a match.
            assert c.verified == 0
            assert c.matched == c.survivors
        else:
            assert c.verified == c.survivors

    def test_stage_flow_is_monotone(self, ssn_pair):
        c = StatsCollector("LFPDL")
        matcher = build_matcher("LFPDL", k=K, scheme="numeric", collector=c)
        match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        stages = list(c.stages.values())
        assert [s.name for s in stages] == ["length", "fbf"]
        # Each stage tests exactly what the previous one passed.
        assert stages[0].tested == c.pairs_considered
        assert stages[1].tested == stages[0].passed
        assert stages[1].passed == c.survivors


class TestConservationVectorized:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_counters_conserve(self, ssn_pair, chunked, method):
        c = StatsCollector(method)
        result = chunked.run(method, collector=c)
        assert c.pairs_considered == ssn_pair.n * ssn_pair.n
        assert c.conserved
        assert c.matched == result.match_count

    def test_agrees_with_scalar_funnel(self, ssn_pair, chunked):
        """Both engines walk the same funnel, so the counters coincide."""
        cv = StatsCollector()
        chunked.run("FPDL", collector=cv)
        cs = StatsCollector()
        matcher = build_matcher("FPDL", k=K, scheme="numeric", collector=cs)
        match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        assert cv.pairs_considered == cs.pairs_considered
        assert cv.survivors == cs.survivors
        assert cv.verified == cs.verified
        assert cv.matched == cs.matched
        fbf_v, fbf_s = cv.stages["fbf"], cs.stages["fbf"]
        assert (fbf_v.tested, fbf_v.passed) == (fbf_s.tested, fbf_s.passed)


class TestFBFSafetyAsCounters:
    """The zero-false-negative guarantee, restated as a counter identity."""

    @pytest.mark.parametrize("filtered", ["FDL", "FPDL"])
    def test_filtered_stack_loses_no_matches(self, ssn_pair, chunked, filtered):
        baseline = chunked.run("DL")
        c = StatsCollector(filtered)
        result = chunked.run(filtered, collector=c)
        assert result.match_count == baseline.match_count
        assert c.matched == baseline.match_count
        # The filter did real work — it rejected pairs — yet no match
        # was among them.
        assert c.stages["fbf"].rejected > 0
        assert c.verified < c.pairs_considered


class TestNoOpParity:
    """A collector observes; it must never change a decision."""

    @pytest.mark.parametrize("method", ["DL", "FPDL", "LFBF", "Jaro"])
    def test_scalar_results_identical(self, ssn_pair, method):
        plain = match_strings(
            ssn_pair.clean,
            ssn_pair.error,
            build_matcher(method, k=K, scheme="numeric"),
            record_matches=True,
        )
        observed = match_strings(
            ssn_pair.clean,
            ssn_pair.error,
            build_matcher(
                method, k=K, scheme="numeric", collector=StatsCollector()
            ),
            record_matches=True,
        )
        assert plain.match_count == observed.match_count
        assert plain.diagonal_matches == observed.diagonal_matches
        assert plain.verified_pairs == observed.verified_pairs
        assert plain.matches == observed.matches

    @pytest.mark.parametrize("method", ["DL", "FPDL", "LFBF"])
    def test_chunked_results_identical(self, ssn_pair, method):
        plain_join = ChunkedJoin(
            ssn_pair.clean,
            ssn_pair.error,
            k=K,
            scheme_kind="numeric",
            record_matches=True,
        )
        observed_join = ChunkedJoin(
            ssn_pair.clean,
            ssn_pair.error,
            k=K,
            scheme_kind="numeric",
            record_matches=True,
            collector=StatsCollector(),
        )
        plain = plain_join.run(method)
        observed = observed_join.run(method)
        assert plain.match_count == observed.match_count
        assert plain.diagonal_matches == observed.diagonal_matches
        assert sorted(plain.matches) == sorted(observed.matches)


class TestVerifierCounters:
    def test_pdl_tallies_wire_through_build_matcher(self, ssn_pair):
        c = StatsCollector()
        matcher = build_matcher("PDL", k=K, scheme="numeric", collector=c)
        match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        # Equal-length SSNs: nothing length-prunes, but almost every
        # non-diagonal pair terminates its band early.
        assert c.verifier_counters["early_exit"] > 0

    def test_length_pruned_fires_on_mixed_lengths(self):
        c = StatsCollector()
        matcher = build_matcher("PDL", k=1, collector=c)
        match_strings(["ab", "abcdef"], ["ab", "abcdefgh"], matcher)
        assert c.verifier_counters["length_pruned"] > 0


class TestConservationMultiprocess:
    """The pool backend merges per-worker collectors into the parent;
    the merged funnel must be indistinguishable from a one-process run."""

    def test_counters_conserve_across_workers(self, ssn_pair):
        from repro.parallel.pool import multiprocess_join

        c = StatsCollector("pool")
        result = multiprocess_join(
            ssn_pair.clean, ssn_pair.error, "FPDL", k=K,
            scheme_kind="numeric", workers=2, collector=c,
        )
        n_pairs = ssn_pair.n * ssn_pair.n
        assert c.pairs_considered == n_pairs == result.pairs_compared
        assert c.conserved
        assert c.matched == result.match_count

    @pytest.mark.parametrize("method", ["DL", "FPDL", "LFBF"])
    def test_merged_funnel_equals_scalar(self, ssn_pair, method):
        from repro.parallel.pool import multiprocess_join

        cp = StatsCollector("pool")
        multiprocess_join(
            ssn_pair.clean, ssn_pair.error, method, k=K,
            scheme_kind="numeric", workers=2, collector=cp,
        )
        cs = StatsCollector("scalar")
        matcher = build_matcher(method, k=K, scheme="numeric", collector=cs)
        match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        assert cp.pairs_considered == cs.pairs_considered
        assert cp.survivors == cs.survivors
        assert cp.verified == cs.verified
        assert cp.matched == cs.matched
        for name, stage in cs.stages.items():
            merged = cp.stages[name]
            assert (merged.tested, merged.passed) == (stage.tested, stage.passed)

    def test_verifier_counters_survive_merge(self, ssn_pair):
        from repro.parallel.pool import multiprocess_join

        cp = StatsCollector("pool")
        multiprocess_join(
            ssn_pair.clean, ssn_pair.error, "PDL", k=K,
            scheme_kind="numeric", workers=2, collector=cp,
        )
        cs = StatsCollector("scalar")
        matcher = build_matcher("PDL", k=K, scheme="numeric", collector=cs)
        match_strings(ssn_pair.clean, ssn_pair.error, matcher)
        assert cp.verifier_counters == cs.verifier_counters
