"""Unit tests for the lifecycle event log."""

import io
import json

import pytest

from repro.obs.events import NULL_EVENTS, EventLog, NullEventLog


class TestEventLog:
    def test_emit_stamps_and_stores(self):
        log = EventLog(clock=lambda: 42.0)
        event = log.emit("compaction", reclaimed=7)
        assert event == {"ts": 42.0, "kind": "compaction", "reclaimed": 7}
        assert len(log) == 1
        assert log.total == 1
        assert log.tail() == [event]

    def test_ring_is_bounded_but_total_is_lifetime(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 3
        assert log.total == 10
        assert [e["i"] for e in log.tail()] == [7, 8, 9]  # oldest first

    def test_tail_n_limits_from_the_end(self):
        log = EventLog()
        for i in range(5):
            log.emit("tick", i=i)
        assert [e["i"] for e in log.tail(2)] == [3, 4]
        assert log.tail(0) == []
        assert len(log.tail(99)) == 5

    def test_tail_returns_copies(self):
        log = EventLog()
        log.emit("tick")
        log.tail()[0]["kind"] = "mutated"
        assert log.tail()[0]["kind"] == "tick"

    def test_tail_filters_by_kind_before_the_bound(self):
        log = EventLog()
        for i in range(6):
            log.emit("shard_handoff" if i % 2 else "tick", i=i)
        handoffs = log.tail(kind="shard_handoff")
        assert [e["i"] for e in handoffs] == [1, 3, 5]
        # n bounds the *filtered* view, not the raw ring.
        assert [e["i"] for e in log.tail(2, kind="shard_handoff")] == [3, 5]
        assert log.tail(kind="shard_rebalance") == []

    def test_sink_receives_json_lines(self):
        sink = io.StringIO()
        log = EventLog(sink=sink, clock=lambda: 1.0)
        log.emit("snapshot_save", path="warm.npz")
        log.emit("compaction", reclaimed=2)
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [e["kind"] for e in lines] == ["snapshot_save", "compaction"]
        assert lines[0]["path"] == "warm.npz"

    def test_torn_down_sink_never_raises(self):
        sink = io.StringIO()
        log = EventLog(sink=sink)
        sink.close()
        log.emit("tick")  # must not raise
        log.emit("tock")
        assert log.total == 2
        assert [e["kind"] for e in log.tail()] == ["tick", "tock"]

    def test_non_json_fields_coerced_via_default_str(self):
        sink = io.StringIO()
        log = EventLog(sink=sink)
        log.emit("snapshot_save", path=object())
        assert json.loads(sink.getvalue())  # still one valid JSON line

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_clear(self):
        log = EventLog()
        log.emit("tick")
        log.clear()
        assert len(log) == 0
        assert log.total == 1  # lifetime count survives


class TestNullEventLog:
    def test_falsy_and_inert(self):
        assert not NULL_EVENTS
        assert isinstance(NULL_EVENTS, NullEventLog)
        assert NULL_EVENTS.emit("tick", x=1) == {}
        assert NULL_EVENTS.tail() == []
        assert NULL_EVENTS.total == 0
        assert len(NULL_EVENTS) == 0
