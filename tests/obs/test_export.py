"""Tests for the funnel exporters (text table and JSON)."""

import json

from repro.obs import StatsCollector, render_funnel, stats_dict, write_stats_json


def _populated() -> StatsCollector:
    c = StatsCollector("join")
    c.meta.update({"method": "FPDL", "k": 1, "n_left": 10, "n_right": 10})
    c.add_pairs(100)
    c.add_stage("fbf", 100, 8)
    c.add_survivors(8)
    c.add_verified(8)
    c.add_matched(5)
    c.verifier_counters["early_exit"] += 2
    c.add_counter("cache_hits", 3)
    c.add_counter("cache_misses", 7)
    with c.span("fbf.filter"):
        pass
    return c


class TestRenderFunnel:
    def test_contains_the_funnel_rows(self):
        text = render_funnel(_populated())
        assert "funnel: FPDL | k=1 | 10 x 10" in text
        assert "considered" in text and "100" in text
        assert "fbf" in text and "92.00%" in text
        assert "verify" in text
        assert "matched" in text
        assert "conserved: yes" in text
        assert "early_exit 2" in text

    def test_flags_counter_leak(self):
        c = _populated()
        c.add_survivors(1)  # break conservation
        assert "counter leak" in render_funnel(c)

    def test_spans_optional(self):
        c = _populated()
        assert "fbf.filter" in render_funnel(c)
        assert "fbf.filter" not in render_funnel(c, include_spans=False)

    def test_span_table_has_latency_columns(self):
        text = render_funnel(_populated())
        for col in ("mean ms", "p50 ms", "p95 ms", "p99 ms"):
            assert col in text

    def test_counters_rendered(self):
        text = render_funnel(_populated())
        assert "counters: cache_hits 3, cache_misses 7" in text

    def test_children_rendered_indented(self):
        c = StatsCollector("experiment")
        child = c.child("FPDL")
        child.add_pairs(4)
        child.add_survivors(4)
        text = render_funnel(c)
        assert "\n  funnel: FPDL" in text

    def test_empty_collector_renders(self):
        text = render_funnel(StatsCollector())
        assert "considered" in text and "filtration: -" in text


class TestJsonExport:
    def test_roundtrip(self, tmp_path):
        c = _populated()
        path = tmp_path / "stats.json"
        write_stats_json(path, c)
        d = json.loads(path.read_text())
        assert d == json.loads(json.dumps(stats_dict(c), default=str))
        assert d["pairs_considered"] == 100
        assert d["conserved"] is True
        assert d["stages"][0]["name"] == "fbf"
        assert d["verifier"]["early_exit"] == 2
        assert d["counters"] == {"cache_hits": 3, "cache_misses": 7}
        assert "fbf.filter" in d["spans"]
        span = d["spans"]["fbf.filter"]
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert key in span
