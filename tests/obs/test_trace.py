"""Unit tests for the nested-span tracer."""

from repro.obs import NULL_SPAN, Tracer, current_tracer, trace, use_tracer
from repro.obs.trace import SAMPLE_WINDOW, SpanStat


class TestTracer:
    def test_span_accumulates(self):
        t = Tracer()
        for _ in range(3):
            with t.span("fbf.filter"):
                pass
        stat = t.spans["fbf.filter"]
        assert stat.calls == 3
        assert stat.total_ns >= 0
        assert stat.mean_ns == stat.total_ns / 3

    def test_nested_paths_join_with_slash(self):
        t = Tracer()
        with t.span("run.FPDL"):
            with t.span("fbf.filter"):
                pass
            with t.span("verify"):
                pass
        assert set(t.spans) == {
            "run.FPDL", "run.FPDL/fbf.filter", "run.FPDL/verify",
        }

    def test_stack_unwinds_on_exception(self):
        t = Tracer()
        try:
            with t.span("outer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with t.span("after"):
            pass
        assert "after" in t.spans  # not "outer/after"

    def test_merge(self):
        a, b = Tracer(), Tracer()
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        with b.span("y"):
            pass
        a.merge(b)
        assert a.spans["x"].calls == 2
        assert a.spans["y"].calls == 1

    def test_as_dict(self):
        t = Tracer()
        with t.span("x"):
            pass
        d = t.as_dict()
        assert d["x"]["calls"] == 1
        assert d["x"]["total_ms"] >= 0.0
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert d["x"][key] >= 0.0


class TestLatencySummaries:
    def test_percentiles_over_known_samples(self):
        stat = SpanStat("q")
        for ns in [1_000_000 * v for v in range(1, 101)]:  # 1..100 ms
            stat.record(ns)
        assert stat.calls == 100
        assert stat.p50_ms == 50.0
        assert stat.p95_ms == 95.0
        assert stat.p99_ms == 99.0
        assert stat.mean_ms == 50.5
        summary = stat.summary()
        assert summary["count"] == 100
        assert summary["p95_ms"] == 95.0

    def test_empty_stat_reports_zeroes(self):
        stat = SpanStat("q")
        assert stat.summary() == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0,
        }

    def test_sample_window_is_bounded_reservoir(self):
        stat = SpanStat("q")
        for ns in range(4 * SAMPLE_WINDOW):
            stat.record(ns)
        assert len(stat.samples) == SAMPLE_WINDOW
        assert stat.calls == 4 * SAMPLE_WINDOW
        # Uniform reservoir, not a recency ring: the window spans the
        # whole run, so early calls survive...
        assert min(stat.samples) < SAMPLE_WINDOW
        # ...and totals stay exact regardless of what was evicted.
        assert stat.total_ns == sum(range(4 * SAMPLE_WINDOW))

    def test_reservoir_is_deterministic_across_runs(self):
        def run():
            stat = SpanStat("fbf.filter")
            for ns in range(3 * SAMPLE_WINDOW):
                stat.record(ns)
            return stat

        a, b = run(), run()
        # Seeded from crc32(path), not hash(): identical runs keep
        # identical windows under any PYTHONHASHSEED.
        assert a.samples == b.samples
        assert a.percentile_ns(95) == b.percentile_ns(95)

    def test_reservoir_seed_depends_on_path(self):
        def run(path):
            stat = SpanStat(path)
            for ns in range(3 * SAMPLE_WINDOW):
                stat.record(ns)
            return stat.samples

        assert run("fbf.filter") != run("verify")

    def test_merge_combines_samples_bounded(self):
        a, b = Tracer(), Tracer()
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        a.merge(b)
        stat = a.spans["x"]
        assert stat.calls == 2
        assert len(stat.samples) == 2
        assert stat.total_ns == sum(stat.samples)


class TestMerge:
    def test_merge_nested_span_paths(self):
        a, b = Tracer(), Tracer()
        with a.span("join"):
            with a.span("fbf.filter"):
                pass
        with b.span("join"):
            with b.span("fbf.filter"):
                pass
            with b.span("verify"):
                pass
        a.merge(b)
        assert a.spans["join"].calls == 2
        assert a.spans["join/fbf.filter"].calls == 2
        assert a.spans["join/verify"].calls == 1
        # Nested paths stay distinct from same-named top-level spans.
        assert "fbf.filter" not in a.spans

    def test_merge_empty_window_into_empty(self):
        mine, theirs = SpanStat("q"), SpanStat("q")
        mine.absorb(theirs)
        assert mine.calls == 0
        assert mine.samples == []
        assert mine.summary()["p99_ms"] == 0.0

    def test_merge_single_sample_each_side(self):
        mine, theirs = SpanStat("q"), SpanStat("q")
        mine.record(10)
        theirs.record(30)
        mine.absorb(theirs)
        assert mine.calls == 2
        assert sorted(mine.samples) == [10, 30]
        assert mine.total_ns == 40
        assert mine.mean_ns == 20.0

    def test_merge_into_empty_copies_other_window(self):
        mine, theirs = SpanStat("q"), SpanStat("q")
        for ns in (5, 7, 9):
            theirs.record(ns)
        mine.absorb(theirs)
        assert mine.calls == 3
        assert mine.samples == [5, 7, 9]
        # A copy, not an alias: later records must not leak back.
        mine.record(1)
        assert theirs.samples == [5, 7, 9]

    def test_merge_windows_exceeding_cap_is_proportional(self):
        mine, theirs = SpanStat("q"), SpanStat("q")
        for ns in range(3 * SAMPLE_WINDOW):
            mine.record(ns)          # low values, 3x the calls
        for ns in range(SAMPLE_WINDOW):
            theirs.record(10**6 + ns)  # high values, 1x the calls
        mine.absorb(theirs)
        assert mine.calls == 4 * SAMPLE_WINDOW
        assert len(mine.samples) == SAMPLE_WINDOW
        low = sum(1 for s in mine.samples if s < 10**6)
        high = len(mine.samples) - low
        # Calls-proportional strata: 3/4 low, 1/4 high, exactly.
        assert low == round(SAMPLE_WINDOW * 3 / 4)
        assert high == SAMPLE_WINDOW - low
        # Totals add exactly even though the window subsampled.
        assert mine.total_ns == (
            sum(range(3 * SAMPLE_WINDOW))
            + sum(10**6 + ns for ns in range(SAMPLE_WINDOW))
        )

    def test_merge_keeps_percentiles_in_range(self):
        mine, theirs = SpanStat("q"), SpanStat("q")
        for ns in range(2 * SAMPLE_WINDOW):
            mine.record(ns)
        for ns in range(2 * SAMPLE_WINDOW):
            theirs.record(ns)
        mine.absorb(theirs)
        assert 0 <= mine.percentile_ns(50) < 2 * SAMPLE_WINDOW
        assert mine.percentile_ns(95) >= mine.percentile_ns(50)
        assert mine.percentile_ns(99) >= mine.percentile_ns(95)


class TestModuleLevelTrace:
    def test_inactive_returns_shared_null_span(self):
        assert current_tracer() is None
        assert trace("anything") is NULL_SPAN

    def test_use_tracer_routes_and_restores(self):
        t = Tracer()
        with use_tracer(t) as active:
            assert active is t and current_tracer() is t
            with trace("fbf.filter"):
                pass
        assert current_tracer() is None
        assert t.spans["fbf.filter"].calls == 1
