"""Unit tests for the nested-span tracer."""

from repro.obs import NULL_SPAN, Tracer, current_tracer, trace, use_tracer


class TestTracer:
    def test_span_accumulates(self):
        t = Tracer()
        for _ in range(3):
            with t.span("fbf.filter"):
                pass
        stat = t.spans["fbf.filter"]
        assert stat.calls == 3
        assert stat.total_ns >= 0
        assert stat.mean_ns == stat.total_ns / 3

    def test_nested_paths_join_with_slash(self):
        t = Tracer()
        with t.span("run.FPDL"):
            with t.span("fbf.filter"):
                pass
            with t.span("verify"):
                pass
        assert set(t.spans) == {
            "run.FPDL", "run.FPDL/fbf.filter", "run.FPDL/verify",
        }

    def test_stack_unwinds_on_exception(self):
        t = Tracer()
        try:
            with t.span("outer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with t.span("after"):
            pass
        assert "after" in t.spans  # not "outer/after"

    def test_merge(self):
        a, b = Tracer(), Tracer()
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        with b.span("y"):
            pass
        a.merge(b)
        assert a.spans["x"].calls == 2
        assert a.spans["y"].calls == 1

    def test_as_dict(self):
        t = Tracer()
        with t.span("x"):
            pass
        d = t.as_dict()
        assert d["x"]["calls"] == 1
        assert d["x"]["total_ms"] >= 0.0


class TestModuleLevelTrace:
    def test_inactive_returns_shared_null_span(self):
        assert current_tracer() is None
        assert trace("anything") is NULL_SPAN

    def test_use_tracer_routes_and_restores(self):
        t = Tracer()
        with use_tracer(t) as active:
            assert active is t and current_tracer() is t
            with trace("fbf.filter"):
                pass
        assert current_tracer() is None
        assert t.spans["fbf.filter"].calls == 1
