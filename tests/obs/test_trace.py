"""Unit tests for the nested-span tracer."""

from repro.obs import NULL_SPAN, Tracer, current_tracer, trace, use_tracer
from repro.obs.trace import SAMPLE_WINDOW, SpanStat


class TestTracer:
    def test_span_accumulates(self):
        t = Tracer()
        for _ in range(3):
            with t.span("fbf.filter"):
                pass
        stat = t.spans["fbf.filter"]
        assert stat.calls == 3
        assert stat.total_ns >= 0
        assert stat.mean_ns == stat.total_ns / 3

    def test_nested_paths_join_with_slash(self):
        t = Tracer()
        with t.span("run.FPDL"):
            with t.span("fbf.filter"):
                pass
            with t.span("verify"):
                pass
        assert set(t.spans) == {
            "run.FPDL", "run.FPDL/fbf.filter", "run.FPDL/verify",
        }

    def test_stack_unwinds_on_exception(self):
        t = Tracer()
        try:
            with t.span("outer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with t.span("after"):
            pass
        assert "after" in t.spans  # not "outer/after"

    def test_merge(self):
        a, b = Tracer(), Tracer()
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        with b.span("y"):
            pass
        a.merge(b)
        assert a.spans["x"].calls == 2
        assert a.spans["y"].calls == 1

    def test_as_dict(self):
        t = Tracer()
        with t.span("x"):
            pass
        d = t.as_dict()
        assert d["x"]["calls"] == 1
        assert d["x"]["total_ms"] >= 0.0
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert d["x"][key] >= 0.0


class TestLatencySummaries:
    def test_percentiles_over_known_samples(self):
        stat = SpanStat("q")
        for ns in [1_000_000 * v for v in range(1, 101)]:  # 1..100 ms
            stat.record(ns)
        assert stat.calls == 100
        assert stat.p50_ms == 50.0
        assert stat.p95_ms == 95.0
        assert stat.p99_ms == 99.0
        assert stat.mean_ms == 50.5
        summary = stat.summary()
        assert summary["count"] == 100
        assert summary["p95_ms"] == 95.0

    def test_empty_stat_reports_zeroes(self):
        stat = SpanStat("q")
        assert stat.summary() == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0,
        }

    def test_sample_window_is_bounded_and_recent(self):
        stat = SpanStat("q")
        for ns in range(2 * SAMPLE_WINDOW):
            stat.record(ns)
        assert len(stat.samples) == SAMPLE_WINDOW
        assert stat.calls == 2 * SAMPLE_WINDOW
        # Only the most recent window remains: minimum sample is from it.
        assert min(stat.samples) >= SAMPLE_WINDOW

    def test_merge_combines_samples_bounded(self):
        a, b = Tracer(), Tracer()
        with a.span("x"):
            pass
        with b.span("x"):
            pass
        a.merge(b)
        stat = a.spans["x"]
        assert stat.calls == 2
        assert len(stat.samples) == 2
        assert stat.total_ns == sum(stat.samples)


class TestModuleLevelTrace:
    def test_inactive_returns_shared_null_span(self):
        assert current_tracer() is None
        assert trace("anything") is NULL_SPAN

    def test_use_tracer_routes_and_restores(self):
        t = Tracer()
        with use_tracer(t) as active:
            assert active is t and current_tracer() is t
            with trace("fbf.filter"):
                pass
        assert current_tracer() is None
        assert t.spans["fbf.filter"].calls == 1
