"""Unit tests for the StatsCollector / NullStatsCollector pair."""

import pytest

from repro.obs import NULL_COLLECTOR, NullStatsCollector, StatsCollector


class TestStageStat:
    def test_derived_quantities(self):
        c = StatsCollector()
        c.add_stage("fbf", 100, 25)
        s = c.stages["fbf"]
        assert s.rejected == 75
        assert s.pass_rate == pytest.approx(0.25)
        assert s.filtration_ratio == pytest.approx(0.75)

    def test_empty_stage_rates(self):
        c = StatsCollector()
        s = c.stage("fbf")
        assert s.pass_rate == 0.0 and s.filtration_ratio == 0.0


class TestStatsCollector:
    def test_truthy(self):
        assert StatsCollector()

    def test_stage_is_cached(self):
        c = StatsCollector()
        assert c.stage("fbf") is c.stage("fbf")

    def test_stages_preserve_first_recorded_order(self):
        c = StatsCollector()
        c.add_stage("length", 10, 5)
        c.add_stage("fbf", 5, 2)
        c.add_stage("length", 10, 5)
        assert list(c.stages) == ["length", "fbf"]

    def test_conservation_holds(self):
        c = StatsCollector()
        c.add_pairs(100)
        c.add_stage("length", 100, 40)
        c.add_stage("fbf", 40, 10)
        c.add_survivors(10)
        assert c.total_rejected == 90
        assert c.conserved

    def test_conservation_detects_leak(self):
        c = StatsCollector()
        c.add_pairs(100)
        c.add_stage("fbf", 100, 10)
        c.add_survivors(9)  # one pair vanished
        assert not c.conserved

    def test_merge_folds_everything(self):
        a, b = StatsCollector("a"), StatsCollector("b")
        for c in (a, b):
            c.add_pairs(10)
            c.add_stage("fbf", 10, 4)
            c.add_survivors(4)
            c.add_verified(4)
            c.add_matched(2)
            c.verifier_counters["early_exit"] += 3
            c.add_counter("cache_hits", 2)
        b.meta["method"] = "FPDL"
        b.child("inner").add_matched(1)
        a.merge(b)
        assert a.pairs_considered == 20
        assert a.stages["fbf"].tested == 20 and a.stages["fbf"].passed == 8
        assert a.survivors == a.verified == 8
        assert a.matched == 4
        assert a.verifier_counters["early_exit"] == 6
        assert a.counters["cache_hits"] == 4
        assert a.meta["method"] == "FPDL"
        assert a.child("inner").matched == 1
        assert a.conserved

    def test_child_is_cached_and_in_dict(self):
        c = StatsCollector()
        child = c.child("field.ssn")
        assert c.child("field.ssn") is child
        child.add_matched(1)
        assert c.as_dict()["children"]["field.ssn"]["matched"] == 1

    def test_as_dict_shape(self):
        c = StatsCollector("join")
        c.add_pairs(5)
        c.add_stage("fbf", 5, 2)
        c.add_survivors(2)
        d = c.as_dict()
        assert d["name"] == "join"
        assert d["pairs_considered"] == 5
        assert d["stages"][0] == {
            "name": "fbf", "tested": 5, "passed": 2, "rejected": 3,
        }
        assert d["conserved"] is True
        assert set(d) >= {"spans", "meta", "children", "verifier"}


class TestNullCollector:
    def test_falsy_singleton(self):
        assert not NULL_COLLECTOR
        assert not NullStatsCollector()

    def test_api_parity_with_real_collector(self):
        """Every public method/attr of StatsCollector the producers use
        must exist on the null twin, so unconditional call sites work."""
        for name in (
            "stage", "add_pairs", "add_stage", "add_survivors",
            "add_verified", "add_matched", "add_counter", "span", "child",
            "merge", "meta", "verifier_counters", "counters", "enabled",
        ):
            assert hasattr(NULL_COLLECTOR, name), name

    def test_all_recording_is_discarded(self):
        n = NullStatsCollector()
        n.add_pairs(5)
        n.add_stage("fbf", 5, 2)
        n.add_counter("cache_hits")
        n.meta["method"] = "FPDL"
        assert n.meta == {}
        assert n.counters == {}
        assert n.child("x") is n
        with n.span("anything"):
            pass

    def test_hot_loop_branch_pattern(self):
        hits = []
        for collector in (NULL_COLLECTOR, StatsCollector()):
            if collector:
                hits.append(collector)
        assert len(hits) == 1 and isinstance(hits[0], StatsCollector)
