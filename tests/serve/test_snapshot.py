"""Unit tests for the snapshot format: save, load, validation."""

import json

import numpy as np
import pytest

from repro.core.signatures import SignatureScheme, num_signature
from repro.serve.mutable import MutableIndex
from repro.serve.snapshot import (
    FORMAT,
    FORMAT_VERSION,
    load_index,
    read_header,
    save_index,
)

NAMES = ["SMITH", "SMYTH", "JONES", "JONSE", "BROWN"]


class TestSaveLoad:
    def test_roundtrip_preserves_answers(self, tmp_path):
        idx = MutableIndex(NAMES, compact_ratio=None)
        idx.add("SMITT")
        idx.remove(2)
        path = save_index(idx, tmp_path / "snap.npz")
        loaded, header = load_index(path)
        assert len(loaded) == len(idx)
        assert list(loaded.items()) == list(idx.items())
        for q in ("SMITH", "JONES", "BROWN", ""):
            assert loaded.search(q, 1) == idx.search(q, 1), q
        assert header["n_live"] == len(idx)

    def test_roundtrip_preserves_counters_and_ids(self, tmp_path):
        idx = MutableIndex(NAMES, compact_ratio=0.3)
        idx.remove(0)
        idx.remove(1)  # triggers compaction
        path = save_index(idx, tmp_path / "snap.npz")
        loaded, _ = load_index(path)
        assert loaded.generation == idx.generation
        assert loaded.compactions == idx.compactions
        assert loaded.compact_ratio == idx.compact_ratio
        # New ids continue after the saved high-water mark.
        assert loaded.add("TAYLOR") == idx.add("TAYLOR")

    def test_loaded_index_is_packed(self, tmp_path):
        idx = MutableIndex(NAMES)
        path = save_index(idx, tmp_path / "snap.npz")
        loaded, _ = load_index(path)
        assert loaded.index.dirty is False

    def test_empty_index_roundtrip(self, tmp_path):
        path = save_index(MutableIndex(), tmp_path / "snap.npz")
        loaded, _ = load_index(path)
        assert len(loaded) == 0
        assert loaded.search("SMITH") == []
        assert loaded.add("SMITH") == 0

    def test_meta_roundtrip(self, tmp_path):
        idx = MutableIndex(NAMES)
        path = save_index(idx, tmp_path / "snap.npz", meta={"k": 2})
        header = read_header(path)
        assert header["meta"] == {"k": 2}
        assert header["format"] == FORMAT


class TestValidation:
    def test_rejects_custom_scheme(self, tmp_path):
        custom = SignatureScheme(
            name="bespoke", generate=num_signature, width=1, slack=0
        )
        idx = MutableIndex(["123"], scheme=custom)
        with pytest.raises(ValueError, match="not a stock scheme"):
            save_index(idx, tmp_path / "snap.npz")

    def test_rejects_non_snapshot_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises(ValueError, match="missing header"):
            read_header(path)

    def test_rejects_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(
            path, __header__=np.asarray(json.dumps({"format": "nope"}))
        )
        with pytest.raises(ValueError, match="format"):
            read_header(path)

    def test_rejects_newer_version(self, tmp_path):
        path = tmp_path / "future.npz"
        header = {"format": FORMAT, "version": FORMAT_VERSION + 1}
        np.savez(path, __header__=np.asarray(json.dumps(header)))
        with pytest.raises(ValueError, match="newer"):
            read_header(path)
