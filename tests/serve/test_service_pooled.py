"""The pooled batched-query path answers exactly like the in-process one.

`MatchService(workers=N)` fans `query_batch` out to the shared-memory
worker pool; these tests pin identical answers, identical funnel
counters, and the once-per-generation roster publication.
"""

import pytest

from repro.data.datasets import dataset_for_family
from repro.obs import StatsCollector
from repro.parallel.shm import close_shared_pools
from repro.serve.service import MatchService


@pytest.fixture(scope="module")
def ln_pair():
    return dataset_for_family("LN", 400, seed=11)


def _batched(svc, queries):
    return [(r.value, r.ids) for r in svc.query_batch(queries)]


class TestPooledEquivalence:
    def test_answers_and_funnel_match_inprocess(self, ln_pair):
        queries = ln_pair.error[:60]
        c_ref, c_pool = StatsCollector("ref"), StatsCollector("pooled")
        ref = MatchService(ln_pair.clean, k=1, collector=c_ref)
        pooled = MatchService(ln_pair.clean, k=1, collector=c_pool, workers=2)

        assert _batched(pooled, queries) == _batched(ref, queries)
        assert c_pool.pairs_considered == c_ref.pairs_considered
        assert c_pool.conserved and c_ref.conserved
        for name, stage in c_ref.stages.items():
            other = c_pool.stages[name]
            assert (other.tested, other.passed) == (stage.tested, stage.passed)

    def test_roster_republished_per_generation(self, ln_pair):
        c = StatsCollector("pooled")
        svc = MatchService(ln_pair.clean, k=1, collector=c, workers=2)
        queries = ln_pair.error[:20]

        svc.query_batch(queries)
        svc.query_batch(ln_pair.error[20:40])
        assert c.counters["shm_roster_publishes"] == 1

        svc.add("BRANDNEWNAME")
        svc.query_batch(queries)
        assert c.counters["shm_roster_publishes"] == 2

    def test_mutations_visible_through_pool(self, ln_pair):
        ref = MatchService(ln_pair.clean, k=1)
        pooled = MatchService(ln_pair.clean, k=1, workers=2)
        for svc in (ref, pooled):
            svc.add("ZZYZX")
            svc.remove(0)
        probe = ["ZZYZX", ln_pair.clean[0], *ln_pair.error[:10]]
        assert _batched(pooled, probe) == _batched(ref, probe)

    def test_single_worker_stays_inprocess(self, ln_pair):
        c = StatsCollector("one")
        svc = MatchService(ln_pair.clean, k=1, collector=c, workers=1)
        svc.query_batch(ln_pair.error[:10])
        assert "shm_roster_publishes" not in c.counters


def teardown_module(module):
    close_shared_pools()
