"""Unit tests for :class:`ShardedIndex` mechanics: placement/routing,
id-space coherence, handoff validation and telemetry."""

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.serve.mutable import MutableIndex
from repro.serve.shard import ShardedIndex

WORDS = ["a", "ab", "abc", "abcd", "abcde", "b", "bc", "bcd"]


class TestPlacement:
    def test_placement_is_by_length_mod_shards(self):
        idx = ShardedIndex(WORDS, n_shards=3, scheme="alpha")
        for sid, s in idx.items():
            assert idx.shard_of(s) == len(s) % 3
            assert idx._locate[sid] == idx.shard_of(s)

    def test_route_covers_the_length_window(self):
        idx = ShardedIndex(n_shards=4, scheme="alpha")
        assert idx.route(5, 0) == (1,)
        assert set(idx.route(5, 1)) == {0, 1, 2}
        # 2k+1 >= n_shards: every shard is routed.
        assert idx.route(5, 2) == (0, 1, 2, 3)

    def test_route_never_misses_a_match(self):
        idx = ShardedIndex(WORDS, n_shards=3, scheme="alpha")
        for query in ("abc", "x", "abcdef", ""):
            for k in (0, 1, 2):
                routed = idx.route(len(query), k)
                for si, shard in enumerate(idx.shards):
                    if si not in routed:
                        assert shard.search(query, k) == []

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedIndex(n_shards=0)


class TestIdSpace:
    def test_global_ids_match_single_index_assignment(self):
        sharded = ShardedIndex(scheme="alpha", n_shards=3)
        single = MutableIndex(scheme="alpha")
        for s in WORDS:
            assert sharded.add(s) == single.add(s)

    def test_explicit_id_below_high_water_mark_rejected(self):
        idx = MutableIndex(["x", "y"], scheme="alpha")
        with pytest.raises(ValueError, match="high-water"):
            idx.add("z", sid=1)

    def test_ids_survive_shard_compaction(self):
        idx = ShardedIndex(WORDS, n_shards=2, scheme="alpha",
                           compact_ratio=None)
        idx.remove(0)
        idx.remove(5)
        idx.compact()
        assert sorted(dict(idx.items())) == [1, 2, 3, 4, 6, 7]
        assert idx.add("zz") == len(WORDS)  # counter never reused


class TestHandoff:
    def test_export_adopt_roundtrip_preserves_answers(self):
        idx = ShardedIndex(WORDS, n_shards=3, scheme="alpha")
        before = {q: idx.search(q, 1) for q in WORDS}
        for si in range(3):
            idx.adopt_shard(si, idx.export_shard(si))
        assert {q: idx.search(q, 1) for q in WORDS} == before

    def test_adopt_bumps_generation_monotonically(self):
        idx = ShardedIndex(WORDS, n_shards=2, scheme="alpha")
        blob = idx.export_shard(0)
        g0 = idx.generation
        idx.adopt_shard(0, blob)
        assert idx.generation > g0

    def test_adopt_rejects_foreign_ids(self):
        idx = ShardedIndex(WORDS, n_shards=2, scheme="alpha")
        blob = idx.export_shard(0)
        with pytest.raises(ValueError, match="owned by shard"):
            idx.adopt_shard(1, blob)

    def test_adopt_restores_lost_state(self):
        idx = ShardedIndex(WORDS, n_shards=2, scheme="alpha")
        blob = idx.export_shard(0)
        victims = [sid for sid, si in idx._locate.items() if si == 0]
        for sid in victims:
            idx.remove(sid)
        idx.adopt_shard(0, blob)  # crash-recovery: ids were unknown
        assert sorted(sid for sid, si in idx._locate.items() if si == 0) \
            == sorted(victims)


class TestTelemetry:
    def test_per_shard_gauges_and_aggregates(self):
        metrics = MetricsRegistry()
        events = EventLog()
        idx = ShardedIndex(WORDS, n_shards=2, scheme="alpha",
                           compact_ratio=None)
        idx.instrument(metrics, events)
        snap = metrics.snapshot()["metrics"]
        assert snap["index_size"]["value"] == len(WORDS)
        shard_sizes = [
            v["value"]
            for name, v in snap.items()
            if name.startswith("shard_size{")
        ]
        assert len(shard_sizes) == 2
        assert sum(shard_sizes) == len(WORDS)

    def test_shard_compaction_event_carries_shard_id(self):
        metrics = MetricsRegistry()
        events = EventLog()
        idx = ShardedIndex(WORDS, n_shards=2, scheme="alpha",
                           compact_ratio=None)
        idx.instrument(metrics, events)
        idx.remove(0)
        idx.compact()
        kinds = [e for e in events.tail() if e["kind"] == "compaction"]
        assert kinds and "shard" in kinds[0]

    def test_generation_is_sum_of_shard_generations(self):
        idx = ShardedIndex(WORDS, n_shards=3, scheme="alpha")
        assert idx.generation == sum(
            s.generation for s in idx.shards
        )
        idx.remove(0)
        assert idx.generation == sum(
            s.generation for s in idx.shards
        )
