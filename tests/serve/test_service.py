"""Unit tests for MatchService: caching, batching, counters, funnel."""

import pytest

from repro.data.datasets import dataset_for_family
from repro.obs.stats import StatsCollector
from repro.serve.service import MatchService

NAMES = ["SMITH", "SMYTH", "JONES", "JONSE", "BROWN", "BROWNE"]


@pytest.fixture(scope="module")
def ln_pair():
    return dataset_for_family("LN", 120, seed=11)


class TestQuery:
    def test_matches_index_search(self):
        svc = MatchService(NAMES, k=1)
        res = svc.query("SMITH")
        assert res.ids == (0, 1)
        assert res.matches == ("SMITH", "SMYTH")
        assert res.cached is False

    def test_repeat_query_is_cached(self):
        svc = MatchService(NAMES, k=1)
        first = svc.query("SMITH")
        second = svc.query("SMITH")
        assert second.cached is True
        assert second.ids == first.ids

    def test_k_and_method_overrides(self):
        svc = MatchService(["ABCDE", "ABDCE"], k=0)
        assert svc.query("ABCDE").ids == (0,)
        assert svc.query("ABCDE", k=1).ids == (0, 1)  # transposition
        assert svc.query("ABCDE", k=1, method="myers").ids == (0,)

    def test_rejects_bad_arguments(self):
        svc = MatchService(NAMES)
        with pytest.raises(ValueError, match="method"):
            svc.query("SMITH", method="levenshtein")
        with pytest.raises(ValueError, match="k"):
            svc.query("SMITH", k=-1)

    def test_mutation_invalidates_cached_answers(self):
        svc = MatchService(NAMES, k=1)
        assert svc.query("SMITH").ids == (0, 1)
        sid = svc.add("SMITT")
        assert svc.query("SMITH").ids == (0, 1, sid)
        svc.remove(sid)
        assert svc.query("SMITH").ids == (0, 1)

    def test_cache_disabled(self):
        svc = MatchService(NAMES, cache_size=0)
        svc.query("SMITH")
        assert svc.query("SMITH").cached is False


class TestQueryBatch:
    def test_one_result_per_input_in_order(self):
        svc = MatchService(NAMES, k=1)
        values = ["JONES", "SMITH", "JONES", "NOPE"]
        results = svc.query_batch(values)
        assert [r.value for r in results] == values
        assert results[0].ids == results[2].ids == (2, 3)
        assert results[3].ids == ()

    def test_batched_equals_scalar(self, ln_pair):
        population = list(ln_pair.clean)
        queries = list(ln_pair.error)[:60]
        svc = MatchService(population, k=1, cache_size=0)
        for res in svc.query_batch(queries):
            assert res.ids == tuple(svc.index.search(res.value, 1)), res.value

    def test_batched_respects_tombstones(self):
        svc = MatchService(NAMES, k=1, compact_ratio=None, cache_size=0)
        svc.remove(1)
        assert svc.query_batch(["SMITH"])[0].ids == (0,)

    def test_myers_fallback_equals_scalar(self, ln_pair):
        population = list(ln_pair.clean)
        queries = list(ln_pair.error)[:30]
        svc = MatchService(population, k=1, cache_size=0)
        for res in svc.query_batch(queries, method="myers"):
            want = tuple(svc.index.search(res.value, 1, verifier="myers"))
            assert res.ids == want, res.value

    def test_empty_query_never_matches(self):
        # PDL semantics: empty strings match nothing, on both paths.
        svc = MatchService(NAMES, k=1, cache_size=0)
        assert svc.query_batch([""])[0].ids == ()
        assert svc.query("").ids == ()

    def test_empty_index(self):
        svc = MatchService()
        assert svc.query_batch(["SMITH"])[0].ids == ()

    def test_duplicates_resolved_once_per_batch(self):
        obs = StatsCollector()
        svc = MatchService(NAMES, k=1, collector=obs)
        svc.query_batch(["SMITH"] * 10 + ["JONES"] * 5)
        # One cache lookup (miss) per distinct value, not per input.
        assert obs.counters["cache_misses"] == 2
        assert "cache_hits" not in obs.counters

    def test_cached_values_skip_the_index(self):
        obs = StatsCollector()
        svc = MatchService(NAMES, k=1, collector=obs)
        svc.query_batch(["SMITH", "JONES"])
        before = obs.pairs_considered
        results = svc.query_batch(["SMITH", "JONES"])
        assert all(r.cached for r in results)
        assert obs.pairs_considered == before


class TestCandidateModes:
    """The candidates knob is execution strategy, never semantics."""

    def test_passjoin_equals_fbf(self, ln_pair):
        population = list(ln_pair.clean)
        queries = list(ln_pair.error)[:60]
        pj = MatchService(
            population, k=1, cache_size=0, candidates="pass-join"
        )
        fbf = MatchService(population, k=1, cache_size=0, candidates="fbf")
        for a, b in zip(pj.query_batch(queries), fbf.query_batch(queries)):
            assert a.ids == b.ids, a.value

    def test_passjoin_respects_tombstones(self):
        svc = MatchService(
            NAMES, k=1, compact_ratio=None, cache_size=0,
            candidates="pass-join",
        )
        svc.remove(1)
        assert svc.query_batch(["SMITH"])[0].ids == (0,)

    def test_passjoin_index_rebuilds_on_generation_bump(self):
        svc = MatchService(NAMES, k=1, cache_size=0, candidates="pass-join")
        assert svc.query_batch(["SMITH"])[0].ids == (0, 1)
        first = svc._pj_indexes[("base", 1)]
        svc.add("SMITG")
        assert svc.query_batch(["SMITH"])[0].ids == (0, 1, 6)
        second = svc._pj_indexes[("base", 1)]
        assert second[0] != first[0]
        assert second[1] is not first[1]

    def test_passjoin_funnel_stage_name(self):
        obs = StatsCollector()
        svc = MatchService(
            NAMES, k=1, collector=obs, candidates="pass-join"
        )
        svc.query_batch(["SMITH", "JONES"])
        assert "pass-join" in obs.stages
        assert obs.conserved

    def test_auto_stays_on_fbf_below_threshold(self):
        obs = StatsCollector()
        svc = MatchService(NAMES, k=1, collector=obs, candidates="auto")
        svc.query_batch(["SMITH"])
        assert "fbf-index" in obs.stages
        assert not svc._pj_indexes

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="candidates mode"):
            MatchService(NAMES, candidates="bogus")


class TestObservability:
    def test_cache_counters(self):
        obs = StatsCollector()
        svc = MatchService(NAMES, collector=obs)
        svc.query("SMITH")
        svc.query("SMITH")
        svc.query_batch(["SMITH", "JONES"])
        assert obs.counters["cache_hits"] == 2
        assert obs.counters["cache_misses"] == 2

    def test_compaction_counter(self):
        obs = StatsCollector()
        svc = MatchService(NAMES, compact_ratio=0.3, collector=obs)
        svc.remove(0)
        svc.remove(1)  # 2/6 >= 0.3 is false; 2/6 = 0.33 >= 0.3 triggers
        assert obs.counters["compactions"] == svc.index.compactions == 1

    def test_funnel_conserved_across_mixed_traffic(self, ln_pair):
        obs = StatsCollector()
        svc = MatchService(list(ln_pair.clean), k=1, collector=obs)
        queries = list(ln_pair.error)[:40]
        svc.query_batch(queries)
        for q in queries[:5]:
            svc.query(q)
        svc.add("ZZTOP")
        svc.query_batch(queries[:10] + ["ZZTOP"])
        assert obs.conserved
        assert obs.pairs_considered > 0

    def test_latency_spans_recorded(self):
        obs = StatsCollector()
        svc = MatchService(NAMES, collector=obs)
        svc.query("SMITH")
        svc.query_batch(["JONES"])
        spans = obs.as_dict()["spans"]
        assert any(path.endswith("serve.query") for path in spans)
        assert any(path.endswith("serve.query_batch") for path in spans)


class TestEngineReuse:
    def test_base_engine_reused_within_generation(self):
        obs = StatsCollector()
        svc = MatchService(NAMES, collector=obs, cache_size=0)
        svc.query_batch(["SMITH"])
        svc.query_batch(["JONES"])
        assert obs.counters["engine_rebuilds"] == 1
        svc.add("TAYLOR")
        svc.query_batch(["SMITH"])
        assert obs.counters["engine_rebuilds"] == 2


class TestStats:
    def test_stats_snapshot(self):
        svc = MatchService(NAMES, k=1)
        svc.query("SMITH")
        stats = svc.stats()
        assert stats["size"] == len(NAMES)
        assert stats["generation"] == 0
        assert stats["verifier"] == "osa"
        assert stats["cache"]["misses"] == 1


class TestSnapshotRoundtrip:
    def test_warm_service_answers_identically(self, tmp_path):
        svc = MatchService(NAMES, k=1, compact_ratio=None, cache_size=7)
        svc.add("SMITT")
        svc.remove(3)
        path = svc.save(tmp_path / "svc.npz")
        warm = MatchService.load(path)
        assert warm.k == 1
        assert warm.cache.maxsize == 7
        assert len(warm) == len(svc)
        for q in ("SMITH", "JONES", "BROWN"):
            assert warm.query(q).ids == svc.query(q).ids, q

    def test_cache_size_override(self, tmp_path):
        svc = MatchService(NAMES)
        path = svc.save(tmp_path / "svc.npz")
        warm = MatchService.load(path, cache_size=0)
        assert warm.cache.maxsize == 0
