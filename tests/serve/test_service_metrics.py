"""Telemetry wiring through MatchService: histograms, counters,
gauges, events, snapshot/delta, and the metrics on/off/shared modes."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.service import MatchService

NAMES = ["SMITH", "SMYTH", "JONES", "JONSE", "BROWN"]


@pytest.fixture
def svc():
    return MatchService(NAMES, k=1)


class TestRequestInstruments:
    def test_query_observes_latency_and_counts(self, svc):
        svc.query("SMITH")
        svc.query("SMITH")  # cache hit
        assert svc._c_queries.value == 2
        assert svc._h_query.count == 2
        assert svc._c_cache_hits.value == 1
        assert svc._c_cache_misses.value == 1
        assert svc._h_query.sum > 0.0

    def test_batch_observes_size_and_per_query_count(self, svc):
        svc.query_batch(["SMITH", "JONES", "NOPE"])
        assert svc._c_queries.value == 3
        assert svc._h_batch.count == 1
        assert svc._h_batch_size.count == 1
        assert svc._h_batch_size.sum == 3.0
        assert svc._h_query.count == 0  # separate op label

    def test_queue_depth_resets_after_batch(self, svc):
        svc.query_batch(["SMITH", "JONES"])
        assert svc._g_queue_depth.value == 0

    def test_engine_rebuild_counted_and_logged(self, svc):
        svc.query_batch(["SMITH"])
        assert svc._c_engine_rebuilds.value == 1
        svc.query_batch(["JONES"])  # same generation: no rebuild
        assert svc._c_engine_rebuilds.value == 1
        svc.add("NEW")
        svc.query_batch(["SMITH"])
        assert svc._c_engine_rebuilds.value == 2
        kinds = [e["kind"] for e in svc.events.tail()]
        assert kinds.count("engine_rebuild") == 2

    def test_stats_latency_from_histograms(self, svc):
        svc.query("SMITH")
        stats = svc.stats()
        lat = stats["latency"]["query"]
        assert lat["count"] == 1
        assert lat["p95_ms"] >= 0.0
        assert stats["events"] == svc.events.total


class TestIndexGauges:
    def test_mutations_keep_gauges_current(self, svc):
        reg = svc.metrics
        svc.add("EXTRA")
        assert reg.gauge("index_size").value == 6
        svc.index.compact_ratio = None
        svc.remove(0)
        assert reg.gauge("index_size").value == 5
        assert reg.gauge("index_tombstone_ratio").value > 0.0
        svc.compact()
        assert reg.gauge("index_tombstone_ratio").value == 0.0
        assert reg.counter("index_compactions_total").value == 1
        assert any(e["kind"] == "compaction" for e in svc.events.tail())

    def test_refresh_metrics_updates_cache_gauge(self, svc):
        svc.query("SMITH")
        svc.refresh_metrics()
        assert svc.metrics.gauge("serve_cache_entries").value == 1


class TestSnapshotDelta:
    def test_delta_is_stateful_per_service(self, svc):
        svc.query("SMITH")
        first = svc.metrics_delta()  # no previous: absolute
        assert first["metrics"]["serve_queries_total"]["value"] == 1
        svc.query("JONES")
        second = svc.metrics_delta()
        assert second["metrics"]["serve_queries_total"]["value"] == 1
        assert second["since_seq"] == first["seq"]

    def test_snapshot_includes_index_gauges(self, svc):
        snap = svc.metrics_snapshot()
        assert snap["metrics"]["index_size"]["value"] == len(NAMES)


class TestTelemetryModes:
    def test_metrics_off_is_null_everywhere(self):
        svc = MatchService(NAMES, k=1, metrics=False)
        svc.query("SMITH")
        svc.query_batch(["JONES"])
        svc.note_request_error("bad_json")
        assert not svc.metrics
        assert not svc.events
        assert svc.metrics_snapshot()["metrics"] == {}
        assert "latency" not in svc.stats()

    def test_shared_registry_adopted(self):
        shared = MetricsRegistry()
        svc = MatchService(NAMES, k=1, metrics=shared)
        svc.query("SMITH")
        assert shared.counter("serve_queries_total").value == 1

    def test_load_wires_telemetry_and_logs_event(self, svc, tmp_path):
        path = svc.save(tmp_path / "snap.npz")
        assert any(e["kind"] == "snapshot_save" for e in svc.events.tail())
        warm = MatchService.load(path)
        assert any(e["kind"] == "snapshot_load" for e in warm.events.tail())
        warm.query("SMITH")
        assert warm.metrics.counter("serve_queries_total").value == 1
        cold = MatchService.load(path, metrics=False)
        assert not cold.metrics
        cold.query("SMITH")  # still answers


class TestPooledHeartbeats:
    def test_pooled_batch_publishes_worker_gauges(self):
        from repro.parallel.shm import close_shared_pools

        svc = MatchService(NAMES * 40, k=1, workers=2)
        try:
            svc.query_batch([f"Q{i}" for i in range(32)] + ["SMITH"])
            names = {name for name, _, _ in svc.metrics.series()}
            assert "pool_workers" in names
            assert "pool_worker_busy_ratio" in names
            assert svc.metrics.gauge("pool_workers").value == 2
            # refresh_metrics re-polls the shared pool without traffic
            svc.refresh_metrics()
            assert (
                svc.metrics.counter("pool_tasks_completed_total").value > 0
            )
        finally:
            close_shared_pools()
