"""Tests for the background HTTP /metrics listener."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve.httpd import start_metrics_server
from repro.serve.service import MatchService

NAMES = ["SMITH", "SMYTH", "JONES", "JONSE", "BROWN"]


@pytest.fixture
def svc():
    return MatchService(NAMES, k=1)


@pytest.fixture
def server(svc):
    server = start_metrics_server(svc, 0)
    yield server
    server.close()


def _get(server, route):
    with urllib.request.urlopen(server.url + route, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


class TestRoutes:
    def test_metrics_prometheus_text(self, svc, server):
        svc.query("SMITH")
        status, ctype, body = _get(server, "/metrics")
        assert status == 200
        assert ctype.startswith("text/plain")
        text = body.decode()
        assert "# TYPE serve_queries_total counter" in text
        assert "serve_queries_total 1" in text
        # Scrape-time gauge refresh: index state present without any
        # explicit refresh call.
        assert "index_size 5" in text

    def test_metrics_json(self, svc, server):
        svc.query("SMITH")
        status, ctype, body = _get(server, "/metrics.json")
        assert status == 200
        assert ctype.startswith("application/json")
        snap = json.loads(body)
        assert snap["metrics"]["serve_queries_total"]["value"] == 1

    def test_events_json_with_bound(self, svc, server):
        svc.index.compact_ratio = None
        svc.remove(0)
        svc.compact()
        _, _, body = _get(server, "/events.json?n=1")
        events = json.loads(body)["events"]
        assert len(events) == 1
        assert events[0]["kind"] == "compaction"

    def test_events_json_bad_n(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, "/events.json?n=potato")
        assert exc.value.code == 400

    def test_healthz(self, server):
        status, _, body = _get(server, "/healthz")
        assert status == 200 and body == b"ok\n"

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            _get(server, "/nope")
        assert exc.value.code == 404
        assert "no route" in json.loads(exc.value.read())["error"]


class TestLifecycle:
    def test_ephemeral_port_bound_and_reported(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_close_stops_serving(self, svc):
        server = start_metrics_server(svc, 0)
        url = server.url
        server.close()
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(url + "/healthz", timeout=1)

    def test_close_idempotent(self, svc):
        server = start_metrics_server(svc, 0)
        server.close()
        server.close()

    def test_context_manager(self, svc):
        from repro.serve.httpd import MetricsServer

        with MetricsServer(svc) as server:
            status, _, _ = _get(server, "/healthz")
            assert status == 200

    def test_taken_port_fails_fast(self, svc, server):
        with pytest.raises(OSError):
            start_metrics_server(svc, server.port)

    def test_concurrent_scrapes(self, svc, server):
        import threading

        svc.query("SMITH")
        errors = []

        def scrape():
            try:
                status, _, _ = _get(server, "/metrics")
                assert status == 200
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=scrape) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
