"""Stateful property tests pinning :class:`ShardedIndex` to the
single-index contract.

Two machines per shard count (1, 2 and 4 — the degenerate case is kept
on purpose so the sharded wrapper itself is pinned against
:class:`MutableIndex`):

* the *index* machine interleaves adds, removes, whole-index
  compactions, snapshot round-trips and export/adopt shard handoffs,
  asserting after every query that the sharded answer equals both a
  lock-step single :class:`MutableIndex` and an index rebuilt from
  scratch over the live entries;
* the *service* machine (the query-during-compaction suite) drives
  :meth:`MatchService.query_batch` between removes and compactions and
  checks every batched answer against the rebuilt oracle while the
  funnel stays conserved.
"""

import shutil
import tempfile

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.index import FBFIndex
from repro.obs.stats import StatsCollector
from repro.serve.mutable import MutableIndex
from repro.serve.service import MatchService
from repro.serve.shard import ShardedIndex
from repro.serve.snapshot import load_index, save_index

WORDS = st.text(alphabet="ABC", min_size=0, max_size=5)

MACHINE_SETTINGS = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)


def oracle_answer(model: dict[int, str], query: str, k: int) -> list[int]:
    """Query ids from an index rebuilt from scratch over the model."""
    live = sorted(model)
    fresh = FBFIndex([model[sid] for sid in live], scheme="alpha")
    return [live[pos] for pos in fresh.search(query, k)]


def _sharded_index_machine(n_shards: int):
    class ShardedIndexMachine(RuleBasedStateMachine):
        def __init__(self):
            super().__init__()
            self.index = ShardedIndex(
                n_shards=n_shards, scheme="alpha", compact_ratio=0.4
            )
            # Lock-step single index: same mutations, same id space.
            self.single = MutableIndex(scheme="alpha", compact_ratio=0.4)
            self.model: dict[int, str] = {}
            self.tmpdir = tempfile.mkdtemp(prefix="serve-shard-eq-")

        def teardown(self):
            shutil.rmtree(self.tmpdir, ignore_errors=True)

        @rule(s=WORDS)
        def add(self, s):
            sid = self.index.add(s)
            assert self.single.add(s) == sid  # one monotone id space
            self.model[sid] = s

        @precondition(lambda self: self.model)
        @rule(data=st.data())
        def remove(self, data):
            sid = data.draw(st.sampled_from(sorted(self.model)))
            self.index.remove(sid)
            self.single.remove(sid)
            del self.model[sid]

        @rule()
        def compact(self):
            self.index.compact()
            assert self.index.tombstones == 0

        @rule()
        def snapshot_roundtrip(self):
            path = save_index(self.index, f"{self.tmpdir}/snap.npz")
            loaded, header = load_index(path)
            assert isinstance(loaded, ShardedIndex)
            assert loaded.n_shards == n_shards
            assert loaded.generation == self.index.generation
            self.index = loaded

        @rule(data=st.data())
        def handoff_roundtrip(self, data):
            si = data.draw(st.integers(0, n_shards - 1))
            blob = self.index.export_shard(si)
            before = self.index.generation
            self.index.adopt_shard(si, blob)
            # Adoption bumps the generation so caches invalidate.
            assert self.index.generation > before

        @rule(query=WORDS, k=st.integers(0, 2))
        def query_matches_single_and_rebuilt(self, query, k):
            want = oracle_answer(self.model, query, k)
            assert self.index.search(query, k) == want, (query, k)
            assert self.single.search(query, k) == want, (query, k)

        @invariant()
        def contents_match_model(self):
            assert len(self.index) == len(self.model)
            assert dict(self.index.items()) == self.model

        @invariant()
        def shards_partition_the_ids(self):
            seen: dict[int, int] = {}
            for si, shard in enumerate(self.index.shards):
                for sid, _ in shard.items():
                    assert sid not in seen, "id owned by two shards"
                    seen[sid] = si
                    assert self.index._locate[sid] == si
            assert set(seen) == set(self.model)

    return ShardedIndexMachine


def _sharded_service_machine(n_shards: int):
    class ShardedServiceMachine(RuleBasedStateMachine):
        """query_batch interleaved with remove/compaction (satellite:
        a query landing mid-tombstone or right after a shard
        compaction must still answer like a fresh rebuild)."""

        def __init__(self):
            super().__init__()
            self.obs = StatsCollector("sharded-eq")
            self.svc = MatchService(
                scheme="alpha",
                k=1,
                cache_size=16,
                compact_ratio=0.4,
                shards=n_shards,
                collector=self.obs,
            )
            self.model: dict[int, str] = {}

        @rule(s=WORDS)
        def add(self, s):
            self.model[self.svc.add(s)] = s

        @precondition(lambda self: self.model)
        @rule(data=st.data())
        def remove(self, data):
            sid = data.draw(st.sampled_from(sorted(self.model)))
            self.svc.remove(sid)
            del self.model[sid]

        @rule()
        def compact(self):
            self.svc.compact()

        @rule(
            queries=st.lists(WORDS, min_size=1, max_size=5),
            k=st.integers(0, 2),
        )
        def query_batch_matches_rebuilt(self, queries, k):
            for res in self.svc.query_batch(queries, k):
                want = oracle_answer(self.model, res.value, k)
                assert list(res.ids) == want, (res.value, k)

        @invariant()
        def funnel_conserved(self):
            assert self.obs.conserved

        @invariant()
        def size_gauges_agree(self):
            assert len(self.svc) == len(self.model)

    return ShardedServiceMachine


TestShardedIndexEquivalence1 = _sharded_index_machine(1).TestCase
TestShardedIndexEquivalence1.settings = MACHINE_SETTINGS
TestShardedIndexEquivalence2 = _sharded_index_machine(2).TestCase
TestShardedIndexEquivalence2.settings = MACHINE_SETTINGS
TestShardedIndexEquivalence4 = _sharded_index_machine(4).TestCase
TestShardedIndexEquivalence4.settings = MACHINE_SETTINGS

TestShardedServiceEquivalence1 = _sharded_service_machine(1).TestCase
TestShardedServiceEquivalence1.settings = MACHINE_SETTINGS
TestShardedServiceEquivalence4 = _sharded_service_machine(4).TestCase
TestShardedServiceEquivalence4.settings = MACHINE_SETTINGS
