"""Unit tests for MutableIndex: stable ids, tombstones, compaction."""

import pytest

from repro.core.index import FBFIndex
from repro.serve.mutable import MutableIndex

NAMES = ["SMITH", "SMYTH", "JONES", "JONSE", "BROWN", "BROWNE"]


class TestConstruction:
    def test_initial_ids_are_positions(self):
        idx = MutableIndex(NAMES)
        assert len(idx) == len(NAMES)
        assert [sid for sid, _ in idx.items()] == list(range(len(NAMES)))
        assert idx.get(2) == "JONES"

    def test_empty_index(self):
        idx = MutableIndex()
        assert len(idx) == 0
        assert idx.search("SMITH") == []

    def test_rejects_bad_compact_ratio(self):
        for ratio in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="compact_ratio"):
                MutableIndex(compact_ratio=ratio)

    def test_generation_starts_at_zero(self):
        assert MutableIndex(NAMES).generation == 0


class TestMutation:
    def test_add_returns_monotone_ids(self):
        idx = MutableIndex(NAMES[:2])
        assert idx.add("JONES") == 2
        assert idx.add("BROWN") == 3
        assert idx.extend(["TAYLOR", "WILSON"]) == [4, 5]

    def test_add_bumps_generation(self):
        idx = MutableIndex(NAMES)
        gen = idx.generation
        idx.add("TAYLOR")
        assert idx.generation == gen + 1

    def test_remove_tombstones(self):
        idx = MutableIndex(NAMES, compact_ratio=None)
        idx.remove(1)
        assert len(idx) == len(NAMES) - 1
        assert 1 not in idx
        assert idx.tombstones == 1
        with pytest.raises(KeyError):
            idx.get(1)

    def test_remove_unknown_id_raises(self):
        idx = MutableIndex(NAMES)
        with pytest.raises(KeyError, match="no live entry"):
            idx.remove(99)
        idx.remove(0)
        with pytest.raises(KeyError, match="no live entry"):
            idx.remove(0)  # already tombstoned

    def test_removed_entries_never_match(self):
        idx = MutableIndex(NAMES, compact_ratio=None)
        assert idx.search("SMITH", 1) == [0, 1]
        idx.remove(1)
        assert idx.search("SMITH", 1) == [0]

    def test_ids_stay_stable_after_removal(self):
        idx = MutableIndex(NAMES, compact_ratio=None)
        idx.remove(0)
        assert idx.get(1) == "SMYTH"
        assert idx.search("SMYTH", 0) == [1]


class TestCompaction:
    def test_explicit_compact_reclaims(self):
        idx = MutableIndex(NAMES, compact_ratio=None)
        idx.remove(1)
        idx.remove(3)
        assert idx.compact() == 2
        assert idx.tombstones == 0
        assert len(idx.index) == len(NAMES) - 2

    def test_compact_preserves_external_ids(self):
        idx = MutableIndex(NAMES, compact_ratio=None)
        idx.remove(0)
        idx.compact()
        assert idx.get(1) == "SMYTH"
        assert idx.search("SMITH", 1) == [1]
        assert [sid for sid, _ in idx.items()] == [1, 2, 3, 4, 5]

    def test_auto_compaction_at_threshold(self):
        idx = MutableIndex(NAMES, compact_ratio=0.5)
        for sid in (0, 1, 2):
            idx.remove(sid)
        assert idx.compactions == 1
        assert idx.tombstones == 0

    def test_no_auto_compaction_when_disabled(self):
        idx = MutableIndex(NAMES, compact_ratio=None)
        for sid in range(len(NAMES) - 1):
            idx.remove(sid)
        assert idx.compactions == 0
        assert idx.tombstones == len(NAMES) - 1

    def test_ids_resume_after_compaction(self):
        idx = MutableIndex(NAMES, compact_ratio=0.1)
        idx.remove(2)  # triggers compaction
        assert idx.add("TAYLOR") == len(NAMES)

    def test_compact_bumps_generation(self):
        idx = MutableIndex(NAMES, compact_ratio=None)
        idx.remove(0)
        gen = idx.generation
        idx.compact()
        assert idx.generation == gen + 1


class TestRebuildEquivalence:
    def test_matches_fresh_index_after_churn(self):
        idx = MutableIndex(NAMES, compact_ratio=None)
        idx.remove(1)
        idx.extend(["SMITT", "JONES"])
        live = [s for _, s in idx.items()]
        fresh = FBFIndex(live, scheme=idx.scheme)
        for query in ("SMITH", "JONES", "BROWN", "NOPE"):
            got = idx.search_strings(query, 1)
            want = fresh.search_strings(query, 1)
            assert sorted(got) == sorted(want), query
