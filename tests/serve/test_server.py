"""Unit tests for the JSON-lines request loop."""

import io
import json

import pytest

from repro.serve.server import handle, serve_lines
from repro.serve.service import MatchService

NAMES = ["SMITH", "SMYTH", "JONES", "JONSE", "BROWN"]


@pytest.fixture
def svc():
    return MatchService(NAMES, k=1)


class TestHandle:
    def test_query(self, svc):
        res = handle(svc, {"op": "query", "value": "SMITH"})
        assert res["ok"] and res["ids"] == [0, 1]
        assert res["matches"] == ["SMITH", "SMYTH"]

    def test_query_batch(self, svc):
        res = handle(svc, {"op": "query_batch", "values": ["SMITH", "NOPE"]})
        assert res["ok"]
        assert [r["ids"] for r in res["results"]] == [[0, 1], []]

    def test_query_overrides(self, svc):
        res = handle(svc, {"op": "query", "value": "SMITH", "k": 0})
        assert res["ids"] == [0]

    def test_add_and_remove(self, svc):
        res = handle(svc, {"op": "add", "value": "SMITT"})
        assert res["ok"] and res["id"] == 5
        assert handle(svc, {"op": "remove", "id": 5})["ok"]
        assert not handle(svc, {"op": "remove", "id": 5})["ok"]

    def test_add_batch(self, svc):
        res = handle(svc, {"op": "add", "values": ["AA", "BB"]})
        assert res["ids"] == [5, 6]

    def test_compact_and_stats(self, svc):
        svc.index.compact_ratio = None
        handle(svc, {"op": "remove", "id": 0})
        res = handle(svc, {"op": "compact"})
        assert res["ok"] and res["reclaimed"] == 1
        stats = handle(svc, {"op": "stats"})
        assert stats["stats"]["size"] == len(NAMES) - 1

    def test_snapshot_op(self, svc, tmp_path):
        path = tmp_path / "snap.npz"
        res = handle(svc, {"op": "snapshot", "path": str(path)})
        assert res["ok"] and path.exists()
        warm = MatchService.load(path)
        assert warm.query("SMITH").ids == (0, 1)

    def test_unknown_op(self, svc):
        res = handle(svc, {"op": "frobnicate"})
        assert not res["ok"] and "unknown op" in res["error"]

    def test_missing_field(self, svc):
        res = handle(svc, {"op": "query"})
        assert not res["ok"] and "missing field" in res["error"]

    def test_bad_method_reported(self, svc):
        res = handle(svc, {"op": "query", "value": "X", "method": "nope"})
        assert not res["ok"] and "method" in res["error"]


class TestMetricsOp:
    def test_snapshot_round_trip(self, svc):
        handle(svc, {"op": "query", "value": "SMITH"})
        res = handle(svc, {"op": "metrics"})
        assert res["ok"] and res["op"] == "metrics"
        series = res["metrics"]["metrics"]
        assert series["serve_queries_total"]["value"] == 1
        assert json.loads(json.dumps(res))  # JSON-serialisable end to end

    def test_delta_view(self, svc):
        handle(svc, {"op": "query", "value": "SMITH"})
        handle(svc, {"op": "metrics"})  # establishes the baseline
        handle(svc, {"op": "query", "value": "JONES"})
        handle(svc, {"op": "query", "value": "BROWN"})
        res = handle(svc, {"op": "metrics", "delta": True})
        assert res["metrics"]["metrics"]["serve_queries_total"]["value"] == 2

    def test_prometheus_format(self, svc):
        handle(svc, {"op": "query", "value": "SMITH"})
        res = handle(svc, {"op": "metrics", "format": "prometheus"})
        assert res["ok"] and res["format"] == "prometheus"
        text = res["text"]
        assert "# TYPE serve_queries_total counter" in text
        assert "# TYPE serve_request_seconds histogram" in text
        assert "index_size 5" in text

    def test_events_tail_included_on_request(self, svc):
        svc.index.compact_ratio = None
        handle(svc, {"op": "remove", "id": 0})
        handle(svc, {"op": "compact"})
        res = handle(svc, {"op": "metrics", "events": 10})
        assert any(e["kind"] == "compaction" for e in res["events"])
        assert "events" not in handle(svc, {"op": "metrics"})

    def test_error_reasons_tallied(self, svc):
        handle(svc, {"op": "frobnicate"})
        handle(svc, {"op": "query"})  # missing field
        handle(svc, {"op": "query", "value": "X", "method": "nope"})
        handle(svc, {"op": "remove", "id": 99})
        series = handle(svc, {"op": "metrics"})["metrics"]["metrics"]
        for reason in ("unknown_op", "missing_field", "bad_value", "unknown_id"):
            key = f'serve_bad_requests_total{{reason="{reason}"}}'
            assert series[key]["value"] == 1, (reason, sorted(series))
        assert series["serve_request_errors_total"]["value"] == 4

    def test_metrics_off_service_still_answers(self):
        svc = MatchService(NAMES, k=1, metrics=False)
        res = handle(svc, {"op": "metrics"})
        assert res["ok"] and res["metrics"]["metrics"] == {}
        res = handle(svc, {"op": "metrics", "format": "prometheus"})
        assert res["ok"] and res["text"] == ""


class TestServeLines:
    def run(self, svc, requests):
        out = io.StringIO()
        lines = [
            r if isinstance(r, str) else json.dumps(r) for r in requests
        ]
        served = serve_lines(svc, lines, out)
        return served, [json.loads(x) for x in out.getvalue().splitlines()]

    def test_round_trip(self, svc):
        served, responses = self.run(
            svc,
            [
                {"op": "query", "value": "SMITH"},
                {"op": "add", "value": "SMITT"},
                {"op": "query", "value": "SMITH"},
            ],
        )
        assert served == 3
        assert responses[0]["ids"] == [0, 1]
        assert responses[2]["ids"] == [0, 1, 5]

    def test_blank_lines_skipped(self, svc):
        served, responses = self.run(
            svc, ["", "  ", {"op": "stats"}]
        )
        assert served == 1 and responses[0]["ok"]

    def test_bad_json_keeps_serving(self, svc):
        served, responses = self.run(
            svc, ["{not json", {"op": "stats"}]
        )
        assert served == 2
        assert not responses[0]["ok"] and "bad json" in responses[0]["error"]
        assert responses[1]["ok"]

    def test_non_object_rejected(self, svc):
        _, responses = self.run(svc, ["[1, 2]"])
        assert not responses[0]["ok"]

    def test_shutdown_stops_loop(self, svc):
        served, responses = self.run(
            svc,
            [
                {"op": "shutdown"},
                {"op": "query", "value": "SMITH"},
            ],
        )
        assert served == 1
        assert responses[-1]["shutdown"] is True

    def test_shutdown_ack_carries_totals(self, svc):
        served, responses = self.run(
            svc,
            [
                {"op": "query", "value": "SMITH"},
                "{not json",
                {"op": "frobnicate"},
                {"op": "shutdown"},
            ],
        )
        ack = responses[-1]
        assert ack["served"] == served == 4
        assert ack["errors"] == 2

    def test_protocol_failures_tallied_as_metrics(self, svc):
        self.run(svc, ["{not json", "[1, 2]", {"op": "shutdown"}])
        series = svc.metrics_snapshot()["metrics"]
        assert series['serve_bad_requests_total{reason="bad_json"}'][
            "value"
        ] == 1
        assert series['serve_bad_requests_total{reason="not_an_object"}'][
            "value"
        ] == 1
