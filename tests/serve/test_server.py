"""Unit tests for the JSON-lines request loop."""

import io
import json

import pytest

from repro.serve.server import handle, serve_lines
from repro.serve.service import MatchService

NAMES = ["SMITH", "SMYTH", "JONES", "JONSE", "BROWN"]


@pytest.fixture
def svc():
    return MatchService(NAMES, k=1)


class TestHandle:
    def test_query(self, svc):
        res = handle(svc, {"op": "query", "value": "SMITH"})
        assert res["ok"] and res["ids"] == [0, 1]
        assert res["matches"] == ["SMITH", "SMYTH"]

    def test_query_batch(self, svc):
        res = handle(svc, {"op": "query_batch", "values": ["SMITH", "NOPE"]})
        assert res["ok"]
        assert [r["ids"] for r in res["results"]] == [[0, 1], []]

    def test_query_overrides(self, svc):
        res = handle(svc, {"op": "query", "value": "SMITH", "k": 0})
        assert res["ids"] == [0]

    def test_add_and_remove(self, svc):
        res = handle(svc, {"op": "add", "value": "SMITT"})
        assert res["ok"] and res["id"] == 5
        assert handle(svc, {"op": "remove", "id": 5})["ok"]
        assert not handle(svc, {"op": "remove", "id": 5})["ok"]

    def test_add_batch(self, svc):
        res = handle(svc, {"op": "add", "values": ["AA", "BB"]})
        assert res["ids"] == [5, 6]

    def test_compact_and_stats(self, svc):
        svc.index.compact_ratio = None
        handle(svc, {"op": "remove", "id": 0})
        res = handle(svc, {"op": "compact"})
        assert res["ok"] and res["reclaimed"] == 1
        stats = handle(svc, {"op": "stats"})
        assert stats["stats"]["size"] == len(NAMES) - 1

    def test_snapshot_op(self, svc, tmp_path):
        path = tmp_path / "snap.npz"
        res = handle(svc, {"op": "snapshot", "path": str(path)})
        assert res["ok"] and path.exists()
        warm = MatchService.load(path)
        assert warm.query("SMITH").ids == (0, 1)

    def test_unknown_op(self, svc):
        res = handle(svc, {"op": "frobnicate"})
        assert not res["ok"] and "unknown op" in res["error"]

    def test_missing_field(self, svc):
        res = handle(svc, {"op": "query"})
        assert not res["ok"] and "missing field" in res["error"]

    def test_bad_method_reported(self, svc):
        res = handle(svc, {"op": "query", "value": "X", "method": "nope"})
        assert not res["ok"] and "method" in res["error"]


class TestServeLines:
    def run(self, svc, requests):
        out = io.StringIO()
        lines = [
            r if isinstance(r, str) else json.dumps(r) for r in requests
        ]
        served = serve_lines(svc, lines, out)
        return served, [json.loads(x) for x in out.getvalue().splitlines()]

    def test_round_trip(self, svc):
        served, responses = self.run(
            svc,
            [
                {"op": "query", "value": "SMITH"},
                {"op": "add", "value": "SMITT"},
                {"op": "query", "value": "SMITH"},
            ],
        )
        assert served == 3
        assert responses[0]["ids"] == [0, 1]
        assert responses[2]["ids"] == [0, 1, 5]

    def test_blank_lines_skipped(self, svc):
        served, responses = self.run(
            svc, ["", "  ", {"op": "stats"}]
        )
        assert served == 1 and responses[0]["ok"]

    def test_bad_json_keeps_serving(self, svc):
        served, responses = self.run(
            svc, ["{not json", {"op": "stats"}]
        )
        assert served == 2
        assert not responses[0]["ok"] and "bad json" in responses[0]["error"]
        assert responses[1]["ok"]

    def test_non_object_rejected(self, svc):
        _, responses = self.run(svc, ["[1, 2]"])
        assert not responses[0]["ok"]

    def test_shutdown_stops_loop(self, svc):
        served, responses = self.run(
            svc,
            [
                {"op": "shutdown"},
                {"op": "query", "value": "SMITH"},
            ],
        )
        assert served == 1
        assert responses[-1]["shutdown"] is True
